#!/usr/bin/env python3
"""MemSynth-style model synthesis: learn a memory model from litmus
verdicts (paper §9 related work).

Two demonstrations:

1. the classic shapes' x86 verdicts pin down TSO exactly — the unique
   weakest sketch preserves every program-order pair except W→R and
   treats MFENCE as a barrier;
2. a transactional corpus recovers the paper's TM story — TxnOrder
   alone suffices, independently rediscovering the §3.4 remark that
   "TxnOrder subsumes the StrongIsol axiom".
"""

from repro.catalog import CATALOG
from repro.models.registry import get_model
from repro.synth.diy import Cycle, classic, cycle_execution
from repro.synth.modelsynth import Example, SketchModel, synthesize_model


def main() -> None:
    # 1. Label the classic shapes with the real x86 model's verdicts.
    x86 = get_model("x86")
    corpus = []
    for name in ("sb", "mp", "lb", "iriw", "2+2w", "wrc"):
        x = classic(name)
        corpus.append(Example(x, x86.consistent(x), name))
    corpus.append(
        Example(
            cycle_execution(Cycle.of("MFencedWR", "Fre", "MFencedWR", "Fre")),
            False,
            "sb+mfence",
        )
    )
    print("=== corpus " + "=" * 53)
    for example in corpus:
        print(f"  {example.name:<10} {'allowed' if example.allowed else 'forbidden'}")
    print()

    outcome = synthesize_model(corpus, include_tm=False)
    print(
        f"=== synthesis: {outcome.candidates_tried} sketches in "
        f"{outcome.elapsed:.2f}s, {len(outcome.consistent)} fit the corpus"
    )
    for params in outcome.weakest:
        print(f"  weakest: {params.describe()}")
    print("  (TSO: every po pair preserved except W->R, mfence a barrier)")
    print()

    # 2. Add transactional examples and the TM holes.
    txn_corpus = list(corpus)
    txn_corpus.append(
        Example(
            cycle_execution(Cycle.of("TxndWR", "Fre", "TxndWR", "Fre")),
            False,
            "sb-txn",
        )
    )
    for name in ("fig2", "fig3a", "fig3b", "fig3c", "fig3d",
                 "sb_txn_both", "sb_txn_one", "txn_reads_own_write"):
        entry = CATALOG[name]
        if "x86" in entry.expected:
            txn_corpus.append(
                Example(entry.execution, entry.expected["x86"], name)
            )

    outcome = synthesize_model(txn_corpus)
    print(
        f"=== with transactions: {outcome.candidates_tried} sketches, "
        f"{len(outcome.weakest)} weakest solutions"
    )
    for params in outcome.weakest:
        print(f"  weakest: {params.describe()}")
    print("  (TxnOrder alone explains the corpus: it subsumes StrongIsol,")
    print("   exactly the paper's remark in section 3.4)")
    print()

    # 3. The synthesized model really is a model: use it like any other.
    best = SketchModel(outcome.weakest[0])
    check = classic("mp")
    print(f"synthesized model on MP: consistent={best.consistent(check)}")


if __name__ == "__main__":
    main()
