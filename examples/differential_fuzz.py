"""Walkthrough: differential conformance fuzzing.

The repository carries three independent implementations of each
architecture's semantics — the native Python axiomatic model, the .cat
library model, and an operational machine — plus a brute-force
candidate enumerator kept as ground truth.  The conformance layer
cross-checks them at scale and *shrinks* anything that disagrees.

Run with::

    PYTHONPATH=src python examples/differential_fuzz.py
"""

from repro.conformance import (
    KNOWN_MUTANTS,
    drop_axiom,
    generate_suite,
    run_fuzz,
    witness_execution,
)
from repro.conformance.report import to_markdown
from repro.litmus.parse import dumps
from repro.models.registry import get_model
from repro.synth.minimality import shrink
from repro.synth.vocab import get_vocab

# ----------------------------------------------------------------------
# 1. A stock run: every checker must agree on every generated test.
# ----------------------------------------------------------------------

print("=== stock armv8 run (smoke budget) ===")
report = run_fuzz("armv8", seed=0, budget="smoke")
print(report.summary())
print()

# The suite mixes four deterministic-by-seed sources:
suite = generate_suite("armv8", 0, "smoke")
for source in ("diy", "directed", "catalog", "mutation", "random"):
    example = next(i for i in suite if i.source == source)
    print(f"{source:>9}: e.g. {example.name}")
print()

# ----------------------------------------------------------------------
# 2. Mutant mode: prove the harness has teeth.  Dropping the TxnOrder
#    axiom from ARMv8 recreates the paper's §6.2 RTL bug; the fuzzer
#    must detect it and shrink a witness to a handful of events.
# ----------------------------------------------------------------------

print("=== mutant mode: injected weakenings must be caught ===")
report = run_fuzz("armv8", seed=0, budget="smoke", mutants=True)
for m in report.mutants:
    print(" ", m.describe())
print()
print(f"known mutants per arch: { {a: list(m) for a, m in KNOWN_MUTANTS.items()} }")
print()

# ----------------------------------------------------------------------
# 3. Shrinking by hand: the §4.2 ⊏ weakening order as a delta debugger.
# ----------------------------------------------------------------------

print("=== shrinking a TxnOrder violation by hand ===")
stock = get_model("armv8")
buggy = drop_axiom("armv8", "TxnOrder")  # the §6.2 RTL prototype
vocab = get_vocab("armv8")

# Find any test the two models disagree on and grab the witness
# execution the buggy model accepts.
for item in suite:
    from repro.litmus.candidates import observable

    if observable(item.test, stock) != observable(item.test, buggy):
        witness = witness_execution(item.test, buggy)
        minimal = shrink(
            witness,
            lambda x: stock.consistent(x) != buggy.consistent(x),
            vocab,
        )
        print(f"disagreement on {item.name}: witness has {witness.n} events,")
        print(f"shrunk to {minimal.n} events:")
        print(minimal.describe())
        break
print()

# ----------------------------------------------------------------------
# 4. Reports: JSONL for machines, markdown for humans.
# ----------------------------------------------------------------------

print("=== markdown report (first lines) ===")
print("\n".join(to_markdown(report).splitlines()[:12]))
print()
print("CLI equivalent:")
print("  repro fuzz --arch armv8 --seed 0 --budget small --mutants \\")
print("      --jsonl fuzz.jsonl --report fuzz.md")
