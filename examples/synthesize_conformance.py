#!/usr/bin/env python3
"""The full §4–5 toolflow: synthesize conformance suites, run them on
simulated hardware, and print a Table 1 row.

For x86 at |E| = 3 this discovers exactly the four isolation shapes of
Fig. 3 as the minimally forbidden tests; none is observable on the
TSO+HTM machine (the model is sound), while the maximally-allowed
weakenings mostly are (the model is not too weak).
"""

from repro.experiments.table1 import Table1, format_table1, run_table1_cell
from repro.litmus import render, to_litmus
from repro.synth import synthesize


def main() -> None:
    print("Synthesizing the x86 Forbid suite at |E| = 3 ...")
    result = synthesize("x86", 3)
    print(result.summary())
    print()
    for i, x in enumerate(result.forbid):
        print(f"--- minimally forbidden test {i} "
              f"({len(x.txns)} transaction) ---")
        print(render(to_litmus(x, f"forbid-{i}", "x86")))
        print()

    print("Running Forbid and Allow suites on the TSO+HTM machine ...")
    row, _ = run_table1_cell("x86", 3)
    table = Table1(rows=[row])
    print(format_table1(table))
    print()
    print(f"Forbid observed: {row.forbid_seen}/{row.forbid_total} "
          f"(soundness requires 0)")
    print(f"Allow observed:  {row.allow_seen}/{row.allow_total} "
          f"(completeness wants most)")


if __name__ == "__main__":
    main()
