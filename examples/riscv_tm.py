#!/usr/bin/env python3
"""RISC-V transactional memory: applying the paper's methodology to the
architecture its §9 names as the next target ("RISC-V, which plans to
incorporate TM in the future").

The recipe is the paper's ARMv8 one (section 6.1): start from the
architecture's axiomatic model (RVWMO), add StrongIsol, boundary
fences, TxnOrder, and TxnCancelsRMW.  The headline finding transfers
too: lock elision over the standard LR.aq/SC spinlock is *unsound*, for
exactly the Example 1.1 reason, and the FENCE fix restores soundness at
the usual cost.
"""

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.metatheory.lockelision import check_lock_elision
from repro.models.registry import get_model
from repro.synth.synthesis import synthesize


def main() -> None:
    riscv = get_model("riscv")

    # 1. Baseline sanity: the classic verdicts.
    print("=== RVWMO baseline " + "=" * 45)
    from repro.synth.diy import classic

    for name in ("sb", "mp", "lb", "iriw", "2+2w"):
        verdict = "allowed" if riscv.consistent(classic(name)) else "forbidden"
        print(f"  {name:<5} {verdict}")
    print()

    # 2. The TM axioms at work: an LR/SC pair split across a transaction
    # boundary can never succeed (TxnCancelsRMW) — the same shape that
    # makes transaction coalescing unsound on Power/ARMv8 (§8.1).
    b = ExecutionBuilder()
    t0 = b.thread()
    r = t0.read("x", Label.EXCL)
    w = t0.write("x", Label.EXCL)
    b.rmw(r, w)
    b.txn([r])
    x = b.build()
    print("=== TxnCancelsRMW " + "=" * 46)
    print(x.describe())
    print(f"  consistent: {riscv.consistent(x)}")
    print(f"  violated:   {riscv.failed_axioms(x)}")
    print()

    # 3. Synthesize the Forbid suite at a small bound — the conformance
    # tests one would hand to a RISC-V TM working group.
    result = synthesize("riscv", 3, time_budget=60.0)
    print("=== synthesized conformance tests (|E| <= 3) " + "=" * 19)
    print(
        f"  Forbid: {len(result.forbid)} tests, "
        f"Allow: {len(result.allow)} tests "
        f"({result.elapsed:.1f}s, exhausted={result.exhausted})"
    )
    for x in result.forbid[:2]:
        print()
        print(x.describe())
    print()

    # 4. Lock elision: unsound with the standard spinlock, sound with a
    # trailing FENCE rw,rw.
    print("=== lock elision " + "=" * 47)
    broken = check_lock_elision("riscv")
    print(f"  {broken.summary()}")
    if broken.counterexample:
        abstract, concrete = broken.counterexample
        print()
        print("  the (concrete) mutual-exclusion violation:")
        for line in concrete.describe().splitlines():
            print("   ", line)
    fixed = check_lock_elision("riscv", fixed=True)
    print()
    print(f"  {fixed.summary()}")


if __name__ == "__main__":
    main()
