#!/usr/bin/env python3
"""Diy-style test generation: critical cycles of candidate relaxations.

The paper's related work (§9) contrasts Memalloy-style synthesis with
Diy, "which generates litmus tests by enumerating relaxations of SC".
This example drives our implementation of the latter: the classic
shapes fall out of four-edge cycles, fence/dependency/transaction
decorations are edge annotations, and enumerating a vocabulary produces
a model-targeted test suite.
"""

from repro.litmus import render, to_litmus
from repro.models.registry import get_model
from repro.synth.diy import (
    CLASSIC_CYCLES,
    Cycle,
    cycle_execution,
    enumerate_cycles,
    interesting_cycles,
)


def main() -> None:
    # 1. The classic six as critical cycles.
    print("=== the classics, as cycles " + "=" * 36)
    for name, cycle in CLASSIC_CYCLES.items():
        x = cycle_execution(cycle)
        verdicts = " ".join(
            f"{arch}={'ok' if get_model(arch).consistent(x) else 'FORBID'}"
            for arch in ("sc", "x86", "power", "armv8", "riscv")
        )
        print(f"  {name:<5} = {str(cycle):<40} {verdicts}")
    print()

    # 2. A transactional cycle: SB with both sides inside transactions
    # is forbidden by every TM model (TxnOrder) though TSO allows the
    # plain shape.
    cycle = Cycle.of("TxndWR", "Fre", "TxndWR", "Fre")
    x = cycle_execution(cycle)
    print("=== transactional SB " + "=" * 43)
    print(f"cycle: {cycle}")
    print(x.describe())
    for arch in ("x86", "power", "armv8", "riscv"):
        print(
            f"  {arch:<6} tm: {get_model(arch).consistent(x)}   "
            f"baseline: {get_model(arch, tm=False).consistent(x)}"
        )
    print()
    print(render(to_litmus(x, "sb-txn", "x86")))
    print()

    # 3. Enumerate a vocabulary and keep the cycles the x86 TM model
    # forbids — diy's notion of tests worth running on hardware.
    vocab = ["PodWR", "PodWW", "PodRR", "PodRW", "Rfe", "Fre", "Wse",
             "TxndWR", "TxndWW"]
    x86 = get_model("x86")
    found = list(interesting_cycles(vocab, 4, x86))
    total = sum(1 for _ in enumerate_cycles(vocab, 4))
    print(f"=== vocabulary sweep: {len(found)}/{total} cycles forbidden "
          f"by x86 TM (length <= 4)")
    for cycle, _ in found[:10]:
        print(f"  {cycle}")
    print("  ...")


if __name__ == "__main__":
    main()
