#!/usr/bin/env python3
"""The operational machines: exhaustive execution of litmus programs on
a non-multicopy-atomic Power machine and MCA ARMv8/RISC-V machines,
with HTM.

These machines are the repository's stand-ins for the paper's POWER8
runs.  They reproduce the textbook architectural behaviours from first
principles — out-of-order commit plus per-thread write propagation —
including the famous result that ``lwsync`` is too weak to forbid IRIW
while ``sync`` restores it.
"""

from repro.core.events import Label
from repro.litmus.program import Fence, Load, Program, Store, TxBegin, TxEnd
from repro.sim.weakmachine import WeakMachine, reachable_outcomes


def iriw(fence: str | None) -> Program:
    th2 = [Load("r0", "x")] + ([Fence(fence)] if fence else []) + [Load("r1", "y")]
    th3 = [Load("r2", "y")] + ([Fence(fence)] if fence else []) + [Load("r3", "x")]
    return Program(((Store("x", 1),), (Store("y", 1),), tuple(th2), tuple(th3)))


def iriw_split(outcome) -> bool:
    regs = outcome.registers
    return (
        regs.get((2, "r0"), 0) == 1
        and regs.get((2, "r1"), 0) == 0
        and regs.get((3, "r2"), 0) == 1
        and regs.get((3, "r3"), 0) == 0
    )


def main() -> None:
    # 1. IRIW on Power: plain and lwsync observable (non-MCA), sync not.
    print("=== IRIW on the Power machine " + "=" * 34)
    for fence in (None, Label.LWSYNC, Label.SYNC):
        outcomes = reachable_outcomes(iriw(fence), "power")
        seen = any(iriw_split(o) for o in outcomes)
        label = fence or "plain"
        print(f"  {label:<8} split observation: {'observable' if seen else 'forbidden'}"
              f"   ({len(outcomes)} distinct outcomes)")
    print()

    # 2. The same on ARMv8: plain is observable only via local
    # reordering; any DMB kills it (multicopy atomicity).
    print("=== IRIW on the ARMv8 machine " + "=" * 34)
    for fence in (None, Label.DMB):
        outcomes = reachable_outcomes(iriw(fence), "armv8")
        seen = any(iriw_split(o) for o in outcomes)
        print(f"  {fence or 'plain':<8} split observation: "
              f"{'observable' if seen else 'forbidden'}")
    print()

    # 3. HTM: two conflicting transactions serialise; the machine shows
    # both commit orders plus the abort paths, but never a mixed state.
    prog = Program(
        (
            (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
            (TxBegin(), Store("y", 1), Load("r1", "x"), TxEnd()),
        )
    )
    print("=== transactional SB on each machine " + "=" * 27)
    for arch in ("power", "armv8", "riscv"):
        outcomes = reachable_outcomes(prog, arch)
        both = [
            o
            for o in outcomes
            if (0, 0) in o.committed and (1, 0) in o.committed
        ]
        stale = [
            o
            for o in both
            if o.registers.get((0, "r0"), 0) == 0
            and o.registers.get((1, "r1"), 0) == 0
        ]
        print(
            f"  {arch:<6} outcomes={len(outcomes):<3} "
            f"both-committed={len(both):<3} "
            f"both-stale (must be 0): {len(stale)}"
        )
    print()

    # 4. State-space sizes: the machines explore exhaustively.
    print("=== exploration sizes " + "=" * 42)
    for arch in ("sc", "armv8", "power"):
        machine = WeakMachine(iriw(None), arch)
        outcomes = machine.explore()
        print(f"  {arch:<6} IRIW reachable outcomes: {len(outcomes)}")


if __name__ == "__main__":
    main()
