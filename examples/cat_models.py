#!/usr/bin/env python3
"""The .cat model artefact: load the DSL models, check executions with
them, and cross-validate against the native Python implementations.

The paper's companion material ships every proposed model "in the .cat
format"; this repository reproduces that artefact with a working
interpreter.  The same model therefore exists twice — once as a Python
class in ``repro.models`` and once as a ``.cat`` file in
``repro/cat/library`` — and the two must agree everywhere.
"""

from repro.cat import CAT_MODEL_FILES, load_cat_model
from repro.cat.library import library_path, library_source
from repro.catalog import CATALOG
from repro.models.registry import get_model


def main() -> None:
    # 1. Show a model file, as shipped.
    print("=== x86tm.cat " + "=" * 50)
    print(library_source("x86tm.cat"))

    # 2. Evaluate it against a paper execution (Fig. 2: a strong
    # isolation violation).
    entry = CATALOG["fig2"]
    model = load_cat_model("x86")
    print("=== evaluating x86tm.cat on Fig. 2 " + "=" * 29)
    print(entry.execution.describe())
    print()
    result = model.evaluate(entry.execution)
    for check in result.checks:
        print(f"  {check.describe()}")
    print(f"  => consistent: {result.consistent}")
    print()

    # 3. The C++ model carries its race detector as a herd-style flag.
    cpp = load_cat_model("cpp")
    for name, entry in CATALOG.items():
        if entry.racy is None:
            continue
        flags = cpp.flags_raised(entry.execution)
        print(
            f"  {name:<28} DataRace flag: "
            f"{'raised' if 'DataRace' in flags else 'clear '} "
            f"(catalog says racy={entry.racy})"
        )
    print()

    # 4. Cross-validate every model against its native twin on the
    # whole catalog.
    print("=== cross-validation (cat vs native) " + "=" * 27)
    for name in sorted(CAT_MODEL_FILES):
        cat = load_cat_model(name)
        native = get_model(name)
        agree = sum(
            cat.consistent(e.execution) == native.consistent(e.execution)
            for e in CATALOG.values()
        )
        print(
            f"  {name:<14} {library_path(CAT_MODEL_FILES[name]).name:<14}"
            f" agrees on {agree}/{len(CATALOG)} catalog executions"
        )


if __name__ == "__main__":
    main()
