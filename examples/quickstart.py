#!/usr/bin/env python3
"""Quickstart: build an execution, check it under every model, and turn
it into litmus tests.

This walks the paper's Fig. 2 end to end: a transaction that writes a
location, is overwritten externally, and then reads the external value —
a strong-isolation violation on every hardware architecture, but fine for
a C++ relaxed transaction.
"""

from repro import ExecutionBuilder, get_model, model_names
from repro.litmus import render, to_litmus


def main() -> None:
    # 1. Build the Fig. 2 execution with the DSL.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w_txn = t0.write("x")  # the transaction writes x...
    r_txn = t0.read("x")  # ...and reads it back
    w_ext = t1.write("x")  # an external write intervenes
    b.txn([w_txn, r_txn])
    b.co(w_txn, w_ext)  # coherence: txn write, then external write
    b.rf(w_ext, r_txn)  # the txn read observes the external write
    execution = b.build()

    print("The execution (paper Fig. 2):")
    print(execution.describe())
    print()

    # 2. Check it under every model.
    print("Verdicts:")
    for name in model_names():
        model = get_model(name)
        verdict = model.check(execution)
        failures = ", ".join(r.name for r in verdict.failures) or "-"
        status = "consistent  " if verdict.consistent else "INCONSISTENT"
        print(f"  {model.name:<18} {status}  (violated: {failures})")
    print()

    # 3. Generate the litmus tests that witness it on each architecture.
    for arch in ("x86", "armv8", "cpp"):
        print(f"--- {arch} litmus test " + "-" * 40)
        print(render(to_litmus(execution, "fig2", arch)))
        print()

    # 4. Ask whether the test is observable: on hardware architectures it
    # must not be; under C++ (weak isolation for relaxed txns) it may be.
    from repro.litmus import observable

    for arch in ("x86", "power", "armv8", "cpp"):
        test = to_litmus(execution, "fig2", arch)
        seen = observable(test, get_model(arch))
        print(f"observable under {arch:<6}: {seen}")


if __name__ == "__main__":
    main()
