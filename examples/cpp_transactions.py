#!/usr/bin/env python3
"""C++ transactional memory (paper §7): races, synchronisation, and
compilation to hardware.

Walks the three C++ findings:

* an atomic transaction containing a non-atomic store still races with a
  concurrent atomic store (§7.2's perhaps-surprising example);
* conflicting transactions serialise through the paper's simplified
  `tsw ⊆ hb` formulation — no total order over transactions needed;
* the straightforward compilation of C++ transactions to x86, Power, and
  ARMv8 transactions is sound (checked here at a small bound).
"""

from repro import ExecutionBuilder, Label, get_model
from repro.litmus import render, to_litmus
from repro.metatheory import (
    check_compilation,
    check_theorem_72,
    check_theorem_73,
    compile_execution,
)


def racy_transaction() -> None:
    print("=" * 70)
    print("atomic{ x = 1; }  ||  atomic_store(&x, 2);   -- racy! (§7.2)")
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w_txn = t0.write("x")  # non-atomic store inside atomic{}
    w_sc = t1.atomic_write("x", Label.SC)
    b.txn([w_txn], atomic=True)
    b.co(w_txn, w_sc)
    x = b.build()
    cpp = get_model("cpp")
    print(render(to_litmus(x, "racy-txn", "cpp")))
    print(f"consistent: {cpp.consistent(x)}, race-free: {cpp.race_free(x)}")
    print()


def transactional_synchronisation() -> None:
    print("=" * 70)
    print("Two conflicting relaxed transactions must serialise (tsw ⊆ hb):")
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    r1 = t0.read("y")
    w2 = t1.write("y")
    r2 = t1.read("x")
    b.txn([w1, r1])
    b.txn([w2, r2])
    x = b.build()  # both reads see initial values: an ecom cycle
    verdict = get_model("cpp").check(x)
    print(render(to_litmus(x, "txn-sb", "cpp")))
    print(verdict)
    print()


def compilation() -> None:
    print("=" * 70)
    print("Compiling a transactional C++ execution to each architecture:")
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    wf = t0.atomic_write("y", Label.SC)
    r1 = t1.atomic_read("y", Label.ACQ)
    r2 = t1.read("x")
    b.txn([w, wf[0]] if isinstance(w, tuple) else [w])
    b.rf(wf, r1)
    x = b.build()
    for target in ("x86", "power", "armv8"):
        y = compile_execution(x, target)
        events = ", ".join(str(e) for e in y.events)
        print(f"  {target:<6}: {events}")
    print()
    print("Bounded soundness of the mapping (no inconsistent C++ execution")
    print("has a consistent image):")
    for target in ("x86", "power", "armv8"):
        print(" ", check_compilation(target, 2).summary())
    print()


def theorems() -> None:
    print("=" * 70)
    print("Bounded checks of the §7 theorems:")
    print(" ", check_theorem_72(2).summary())
    print(" ", check_theorem_73(2).summary())


def main() -> None:
    racy_transaction()
    transactional_synchronisation()
    compilation()
    theorems()


if __name__ == "__main__":
    main()
