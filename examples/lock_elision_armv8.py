#!/usr/bin/env python3
"""Example 1.1: lock elision is unsound under the proposed ARMv8 TM.

This reproduces the paper's headline finding end to end:

1. search the abstract space for a mutual-exclusion violation (CROrder);
2. expand it through the Table 3 mapping (recommended ARMv8 spinlock on
   one side, an elided transactional critical region on the other);
3. show the concrete execution is CONSISTENT under ARMv8 + TM — the
   hardware can really produce `x == 2`;
4. print the two litmus tests of Example 1.1;
5. show the DMB fix restores soundness (at a portability/performance
   cost, §1.1), and that x86's LOCK'd-RMW fencing never had the bug.
"""

from repro.experiments.table3 import format_table3
from repro.litmus import render, to_litmus
from repro.metatheory import check_lock_elision
from repro.models import get_model


def main() -> None:
    print(format_table3())
    print()

    print("=" * 70)
    print("Searching for a lock-elision unsoundness witness on ARMv8...")
    result = check_lock_elision("armv8")
    print(result.summary())
    assert result.counterexample is not None
    abstract, concrete = result.counterexample

    print()
    print("Abstract execution (violates mutual exclusion, so it must be")
    print("impossible; CROrder forbids it):")
    print(abstract.describe())
    print()
    print("Concrete image under the Table 3 mapping — CONSISTENT under")
    print("ARMv8+TM, i.e. the hardware can produce it:")
    print(concrete.describe())
    print()

    verdict = get_model("armv8").check(concrete)
    print(f"ARMv8 verdict: {'consistent' if verdict.consistent else 'forbidden'}")
    print()

    print("The litmus test of Example 1.1 (spinlock thread || elided CR):")
    print(render(to_litmus(concrete, "example-1.1", "armv8")))
    print()

    print("=" * 70)
    print("With a DMB appended to lock() (the fix discussed in §1.1):")
    print(check_lock_elision("armv8", fixed=True).summary())
    print()
    print("On x86, where LOCK'd RMWs fence both ways:")
    print(check_lock_elision("x86").summary())


if __name__ == "__main__":
    main()
