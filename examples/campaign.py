#!/usr/bin/env python3
"""Quickstart for the campaign engine: synthesize a diy suite and sweep
it across models, with caching and a worker pool.

The same flow is available from the command line::

    repro campaign --arch x86 --models x86,x86tm,sc --jobs 4

Run this twice — the second run is served from ``.repro-cache/`` (here
redirected to a temporary directory so the example leaves nothing
behind).
"""

import tempfile

from repro.engine import (
    ResultCache,
    catalog_suite,
    diy_suite,
    run_campaign,
)


def main() -> None:
    # 1. Synthesize a diy critical-cycle suite, rendered as x86 litmus
    #    tests.  Every cycle over the vocabulary becomes one test.
    suite = diy_suite("x86", max_length=3)
    print(f"diy suite: {len(suite)} tests")

    with tempfile.TemporaryDirectory() as cache_dir:
        # 2. Sweep it across the native x86 model, its .cat twin, and
        #    SC.  Each test is expanded into candidate executions once
        #    and checked against all three models; misses go to the
        #    worker pool; every verdict lands in the persistent cache.
        #    Using the cache as a context manager guarantees buffered
        #    verdicts are flushed to disk when the block exits.
        models = ["x86", "x86tm", "sc"]
        with ResultCache(cache_dir) as cache:
            result = run_campaign(suite, models, jobs=2, cache=cache)
        print(result.format_matrix())
        print(result.summary())
        print()

        # 3. Re-running is incremental: everything is a cache hit.
        with ResultCache(cache_dir) as cache:
            rerun = run_campaign(suite, models, cache=cache)
        print(f"re-run: {rerun.summary()}")
        print()

        # 4. The native model and its .cat source agree on every test.
        matrix = result.matrix()
        assert matrix["x86"] == matrix["x86tm"]
        print("native x86 and x86tm.cat agree on the whole suite")

        # 5. Campaigns also take catalog entries (bare executions, with
        #    expected verdicts attached) — diffs() reports any model
        #    that disagrees with the paper's expectations.
        entries = catalog_suite(tags=["classic"])
        with ResultCache(cache_dir) as cache:
            check = run_campaign(entries, ["sc", "x86", "power"], cache=cache)
        print(f"catalog sweep: {check.summary()}")
        print(f"disagreements with the paper: {check.diffs(entries)}")


if __name__ == "__main__":
    main()
