#!/usr/bin/env python3
"""Running litmus tests on the operational x86-TSO + HTM machine.

The machine plays the role of the paper's Haswell/Skylake TSX parts: it
executes programs over every interleaving (store buffers, speculative
transactions, eager conflict detection) and reports the reachable final
states.  We run the classic shapes and the transactional ones, comparing
against the axiomatic model's verdicts.
"""

from repro.catalog import CATALOG
from repro.litmus import observable, render, to_litmus
from repro.models import get_model
from repro.sim import TsoMachine, X86Hardware

SHAPES = [
    ("sb", "store buffering: the TSO hallmark"),
    ("sb_mfence", "SB fenced with MFENCE"),
    ("mp", "message passing"),
    ("fig2", "txn overwritten externally (Fig 2)"),
    ("fig3d", "txn intermediate write leaks (Fig 3d)"),
    ("sb_txn_both", "SB with both sides transactional"),
    ("sb_txn_one", "SB with one side transactional"),
]


def main() -> None:
    hw = X86Hardware()
    model = get_model("x86")
    print(f"{'test':<14} {'model':>9} {'machine':>9}   agreement")
    print("-" * 50)
    for name, description in SHAPES:
        test = to_litmus(CATALOG[name].execution, name, "x86")
        allowed = observable(test, model)
        reachable = hw.observable(test)
        agree = "ok" if (not reachable or allowed) else "UNSOUND!"
        print(
            f"{name:<14} {'allow' if allowed else 'forbid':>9} "
            f"{'seen' if reachable else 'not seen':>9}   {agree}"
            f"   ({description})"
        )

    print()
    print("A closer look at transactional conflict detection:")
    test = to_litmus(CATALOG["fig3a"].execution, "fig3a", "x86")
    print(render(test))
    outcomes = TsoMachine(test.program).explore()
    print(f"\n{len(outcomes)} reachable outcomes; txn aborted in "
          f"{sum(1 for o in outcomes if o.aborted)} of them "
          f"(conflict detection at work), and the forbidden outcome "
          f"{'WAS' if any(test.check(o) for o in outcomes) else 'was never'} "
          f"reached.")


if __name__ == "__main__":
    main()
