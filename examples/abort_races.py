#!/usr/bin/env python3
"""Aborted transactions and data races (paper Remarks 3.1 and 7.1).

The C++ TM specification says events of an unsuccessful transaction are
unobservable yet still race; the paper's framework covers this for
transactions that *can* succeed and leaves ``abort()`` — transactions
that never succeed — as future work.  This example exercises our
implementation of that future work: the truncated-success race
semantics of :mod:`repro.models.aborts`.
"""

from repro.core.events import Label
from repro.litmus.program import Load, Program, Store, TxAbort, TxBegin, TxEnd
from repro.litmus.render import render
from repro.litmus.test import LitmusTest
from repro.models.aborts import program_racy, truncate_aborts
from repro.sim.tso import TsoMachine

_ATO = frozenset({Label.ATO, Label.RLX})


def main() -> None:
    # 1. Remark 7.1's program.
    prog = Program(
        (
            (TxBegin(atomic=True), Store("x", 1), TxAbort(), TxEnd()),
            (Store("x", 2, labels=_ATO),),
        )
    )
    print("=== Remark 7.1 " + "=" * 49)
    print(render(LitmusTest("remark71", "cpp", prog, ())))
    print()
    print(f"  racy: {program_racy(prog)}   (the paper: 'must be considered racy')")
    print()
    print("  truncated-success variant used for race detection:")
    print(render(LitmusTest("truncated", "cpp", truncate_aborts(prog), ())))
    print()

    # 2. The abort is not the race: events after it never execute.
    after = Program(
        (
            (TxBegin(), TxAbort(), Store("x", 1), TxEnd()),
            (Store("x", 2, labels=_ATO),),
        )
    )
    print(f"  store placed after abort() -> racy: {program_racy(after)}")
    print()

    # 3. Operationally: a self-aborting transaction rolls back; its
    # write is never observable.
    prog = Program(
        (
            (TxBegin(), Store("x", 1), TxAbort(), TxEnd()),
            (Load("r0", "x"),),
        )
    )
    outcomes = TsoMachine(prog).explore()
    print("=== operational view (TSO+HTM machine) " + "=" * 25)
    print(f"  outcomes: {len(outcomes)}")
    print(f"  transaction ever commits: "
          f"{any((0, 0) in o.committed for o in outcomes)}")
    print(f"  write ever observed: "
          f"{any(o.registers.get((1, 'r0'), 0) == 1 for o in outcomes)}")
    print()

    # 4. The conditional self-abort idiom of lock elision (Example 1.1):
    # read the lock, abort if taken.
    elision = Program(
        (
            (
                TxBegin(),
                Load("r0", "m"),
                TxAbort("r0"),  # abort if the lock was held
                Store("x", 1),
                TxEnd(),
            ),
            (Store("m", 1),),
        )
    )
    print("=== conditional self-abort (lock-elision idiom) " + "=" * 16)
    print(render(LitmusTest("self-abort", "armv8", elision, ())))
    outcomes = TsoMachine(elision).explore()
    committed = [o for o in outcomes if (0, 0) in o.committed]
    print(f"  commits observed: {len(committed)} "
          f"(every one read the lock free: "
          f"{all(o.registers.get((0, 'r0'), 0) == 0 for o in committed)})")


if __name__ == "__main__":
    main()
