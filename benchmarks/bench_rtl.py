"""Section 6.2: the ARMv8 Forbid suite catches the RTL TxnOrder bug."""

from repro.experiments.rtl import format_rtl, run_rtl_check


def test_rtl_bug_detection(benchmark):
    report = benchmark.pedantic(
        run_rtl_check,
        kwargs={"n_events": 4, "time_budget": 240.0},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rtl(report))
    assert report.bug_found, "the buggy RTL must fail some Forbid test"
    assert not report.fixed_violations, "the fixed RTL must pass all"
