"""Benchmark: MemSynth-style model synthesis (§9).

Times the exhaustive sketch search for the TSO-recovery and TM-recovery
corpora and prints the synthesized models.
"""

from repro.catalog import CATALOG
from repro.models.registry import get_model
from repro.synth.diy import Cycle, classic, cycle_execution
from repro.synth.modelsynth import Example, synthesize_model


def _base_corpus():
    x86 = get_model("x86")
    corpus = []
    for name in ("sb", "mp", "lb", "iriw", "2+2w", "wrc"):
        x = classic(name)
        corpus.append(Example(x, x86.consistent(x), name))
    corpus.append(
        Example(
            cycle_execution(Cycle.of("MFencedWR", "Fre", "MFencedWR", "Fre")),
            False,
            "sb+mfence",
        )
    )
    return corpus


def _txn_corpus():
    corpus = _base_corpus()
    corpus.append(
        Example(
            cycle_execution(Cycle.of("TxndWR", "Fre", "TxndWR", "Fre")),
            False,
            "sb-txn",
        )
    )
    for name in ("fig2", "fig3a", "fig3b", "fig3c", "fig3d",
                 "sb_txn_both", "sb_txn_one", "txn_reads_own_write"):
        entry = CATALOG[name]
        if "x86" in entry.expected:
            corpus.append(Example(entry.execution, entry.expected["x86"], name))
    return corpus


def test_tso_recovery(benchmark, once):
    outcome = once(benchmark, synthesize_model, _base_corpus(), False)
    print(f"\n{len(outcome.consistent)}/{outcome.candidates_tried} sketches fit")
    for params in outcome.weakest:
        print(f"weakest: {params.describe()}")
    assert len(outcome.weakest) == 1
    assert outcome.weakest[0].ppo == {"WW", "RW", "RR"}


def test_tm_recovery(benchmark, once):
    outcome = once(benchmark, synthesize_model, _txn_corpus())
    print(f"\n{len(outcome.consistent)}/{outcome.candidates_tried} sketches fit")
    for params in outcome.weakest:
        print(f"weakest: {params.describe()}")
    assert outcome.satisfiable
    assert any(params.tm == {"txn_order"} for params in outcome.weakest)
