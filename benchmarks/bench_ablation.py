"""Section 9 ablation: full Power TM model vs atomicity-only (Dongol)."""

from repro.catalog import CATALOG
from repro.experiments.ablation import format_ablation, run_ablation
from repro.models.registry import get_model


def test_ablation_power_vs_dongol(benchmark):
    report = benchmark.pedantic(
        run_ablation, kwargs={"n_events": 3}, rounds=1, iterations=1
    )
    print()
    print(format_ablation(report))
    assert report.only_dongol_forbids == 0, "ours must be strictly stronger"
    assert report.only_ours_forbids > 0, "the ordering axioms must bite"


def test_ablation_gap_witness(benchmark):
    """The paper's own §9 witness separates the models."""
    x = CATALOG["dongol_gap"].execution
    ours = get_model("power")
    theirs = get_model("power-dongol")

    def verdicts():
        return ours.consistent(x), theirs.consistent(x)

    ok_ours, ok_theirs = benchmark(verdicts)
    assert not ok_ours and ok_theirs
