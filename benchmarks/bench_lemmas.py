"""Benchmark: the Appendix C lemma suite.

Runs every lemma check exhaustively at |E| ≤ 2 and on a capped |E| ≤ 3
prefix, timing each — the per-lemma analogue of the paper's Isabelle
artefact, with the bounded-evidence character of Table 2.
"""

import pytest

from repro.metatheory.lemmas import (
    check_all_lemmas,
    check_cnf_identity,
    check_com_plus_expansion,
    check_lemma_c1,
    check_lemma_c2,
    check_lemma_c3,
    check_lemma_c6,
    check_psc_inclusions,
)

_CHECKS = {
    "C.1": check_lemma_c1,
    "C.2": check_lemma_c2,
    "C.3": check_lemma_c3,
    "C.6": check_lemma_c6,
    "cnf": check_cnf_identity,
    "com+": check_com_plus_expansion,
    "psc": check_psc_inclusions,
}


@pytest.mark.parametrize("name", sorted(_CHECKS))
def test_lemma_exhaustive_two_events(benchmark, name, once):
    report = once(benchmark, _CHECKS[name], 2)
    print(f"\n{report.summary()}")
    assert report.holds


def test_all_lemmas_capped_three_events(benchmark, once):
    reports = once(benchmark, check_all_lemmas, 3, 1500)
    print()
    for report in reports:
        print(report.summary())
        assert report.holds
