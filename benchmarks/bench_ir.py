"""Benchmark: unified-IR evaluation throughput and cross-model sharing.

Measures what the IR layer buys a campaign:

* axiom-evals/sec — how fast the one evaluation engine drives all eight
  native models (fresh executions each round, so the per-candidate memo
  works but nothing is pre-warmed), measured scalar
  (``model.consistent`` per execution) and batched
  (``repro.ir.plan.consistent_batch`` over same-universe stacks), with
  the ratio reported as ``batch_vs_scalar_speedup``;
* cross-model sharing — the static DAG statistic: how many interned
  nodes the full model roster (native + ``.cat``) needs, versus the sum
  of each model compiled alone.  The acceptance bar for the IR refactor
  is a ratio > 1.5×;
* memo leverage — evaluations of *shared* nodes actually performed per
  candidate when sweeping all models, versus the as-if-unshared count.

Run directly (``python benchmarks/bench_ir.py --json OUT.json``) for the
CI artifact (BENCH_ir.json), tracked next to BENCH_campaign.json and
BENCH_fuzz.json from PR 4 onward.
"""

import pytest

from repro.catalog import CATALOG
from repro.cat.model import CAT_MODEL_FILES, load_cat_model
from repro.ir import ir_definition
from repro.ir.eval import STATS
from repro.ir.nodes import cross_model_stats
from repro.models.registry import get_model, model_names

#: Catalog entries used as the candidate workload (diverse shapes:
#: plain SB/MP/IRIW, transactional figures, dependencies).
_ENTRIES = ("sb", "mp", "lb", "iriw", "fig2", "2+2w")


def _fresh_executions():
    """Structurally fresh executions (fresh analyses, cold memos)."""
    out = []
    for name in _ENTRIES:
        x = CATALOG[name].execution
        out.append(x.with_txns(x.txns))
    return out


def _sweep_all_models(executions) -> int:
    """Run every native model's full check over every execution."""
    evals = 0
    for x in executions:
        for name in model_names():
            model = get_model(name)
            model.consistent(x)
            evals += len(model.axioms())
    return evals


def _sweep_all_models_batched(executions) -> int:
    """The same workload through the compiled per-model plans: bucket
    the executions by universe size and run every model's plan over
    each whole bucket."""
    from repro.ir.plan import consistent_batch

    buckets: dict[int, list] = {}
    for x in executions:
        buckets.setdefault(x.n, []).append(x)
    evals = 0
    for name in model_names():
        model = get_model(name)
        definition = model.batch_definition()
        assert definition is not None
        for stack in buckets.values():
            consistent_batch(model, definition, stack)
            evals += len(model.axioms()) * len(stack)
    return evals


def _bucketed(executions) -> dict:
    buckets: dict[int, list] = {}
    for x in executions:
        buckets.setdefault(x.n, []).append(x)
    return buckets


def _sweep_prefill(executions, use_codegen: bool) -> int:
    """The ``engine.batchsweep`` prefill shape: one shared
    :class:`BatchContext` per universe bucket, every model swept over
    it — through the generated kernels or the interpreted plans.

    This is the shape the codegen tier targets: leaves are packed once
    per context, interior values are shared across models, and the two
    tiers differ only in how each model's kernel sequence is driven
    (straight-line generated code vs per-node dispatch)."""
    from repro.ir import codegen
    from repro.ir.batch import BatchContext
    from repro.ir.plan import plan_for

    evals = 0
    for stack in _bucketed(executions).values():
        ctx = BatchContext.of(stack)
        for name in model_names():
            model = get_model(name)
            definition = model.batch_definition()
            assert definition is not None
            token = model.definition_token()
            target = ctx if model.tm else ctx.baseline
            runner = None
            if use_codegen:
                runner = codegen.compiled_for(token, definition, ctx.n)
            if runner is None:
                runner = plan_for(token, definition, ctx.n)
            runner.consistent(target)
            evals += len(model.axioms()) * len(stack)
    return evals


def test_ir_all_models_sweep(benchmark, once):
    executions = _fresh_executions()
    _sweep_all_models(executions)  # warm class-level definitions
    evals = once(benchmark, _sweep_all_models, _fresh_executions())
    assert evals > 0


def test_ir_all_models_sweep_batched(benchmark, once):
    stack = [x for _ in range(8) for x in _fresh_executions()]
    _sweep_all_models_batched(stack)  # warm compiled plans
    evals = once(
        benchmark,
        _sweep_all_models_batched,
        [x for _ in range(8) for x in _fresh_executions()],
    )
    assert evals > 0


def test_ir_all_models_sweep_codegen(benchmark, once):
    _sweep_prefill(_fresh_executions(), use_codegen=True)  # warm kernels
    evals = once(
        benchmark, _sweep_prefill, _fresh_executions(), use_codegen=True
    )
    assert evals > 0


def test_cross_model_sharing_ratio():
    """The acceptance criterion: > 1.5× sharing across the full roster."""
    ratio, _, _ = _sharing()
    assert ratio > 1.5, f"cross-model sharing ratio {ratio:.2f}x"


def _all_definitions():
    out = []
    for name in model_names():
        definition = ir_definition(get_model(name))
        assert definition is not None
        out.append((name, definition))
    for name in sorted(CAT_MODEL_FILES):
        cat = load_cat_model(name)
        assert cat.compiled is not None
        out.append((f"cat:{name}", cat.definition()))
    return out


def _sharing():
    """(cross-model ratio, union DAG nodes, sum of per-model DAGs)."""
    definitions = _all_definitions()
    stats = cross_model_stats([d.roots() for _, d in definitions])
    return stats["sharing"], stats["union_nodes"], stats["sum_of_models"]


# ----------------------------------------------------------------------
# Standalone mode: the CI perf artifact (no pytest-benchmark needed)
# ----------------------------------------------------------------------


def _campaign_resweep() -> dict:
    """The campaign shape the memo layer targets: all models over one
    expanded suite, re-swept (fig7/minimality-style repeated checking).

    The first sweep pays candidate expansion + first evaluation; the
    re-sweep isolates what repeated checking costs once the shared DAG
    values are attached to the candidates."""
    import time

    from repro.engine import diy_suite, run_campaign

    models = [
        "x86", "tsc", "sc", "x86tm", "power", "armv8", "riscv", "cpp",
        "x86!notm",
    ]
    suite = diy_suite("x86", max_length=4)
    run_campaign(suite, models)
    start = time.perf_counter()
    result = run_campaign(suite, models)
    elapsed = time.perf_counter() - start
    return {
        "campaign_resweep_cells": len(result.cells),
        "campaign_resweep_seconds": round(elapsed, 4),
        "campaign_resweep_cells_per_second": round(
            len(result.cells) / elapsed, 1
        )
        if elapsed
        else 0.0,
    }


def _artifact(json_path: str, manifest_path: "str | None" = None) -> dict:
    import json
    import time

    # Warm the class-level definitions and import side effects.
    warm = _fresh_executions()
    _sweep_all_models(warm)

    rounds = 40
    executions = [_fresh_executions() for _ in range(rounds)]
    STATS.reset()
    start = time.perf_counter()
    evals = 0
    for batch in executions:
        evals += _sweep_all_models(batch)
    elapsed = time.perf_counter() - start
    computes = STATS.computes

    batched_stack = [x for batch in executions for x in batch]
    _sweep_all_models_batched(batched_stack)  # warm compiled plans
    batched_stack = [
        x for _ in range(rounds) for x in _fresh_executions()
    ]
    start = time.perf_counter()
    batched_evals = _sweep_all_models_batched(batched_stack)
    batched_elapsed = time.perf_counter() - start

    # Codegen vs interpreted: the same prefill-shaped sweep driven by
    # the generated kernels and by the interpreted plans, fresh
    # contexts each round, best-of-repeats (wall noise on shared CI
    # runners dwarfs the per-round spread otherwise).
    _sweep_prefill(_fresh_executions(), use_codegen=True)  # warm kernels
    cg_rounds = 12

    def _tier_seconds(use_codegen: bool) -> float:
        best = None
        for _ in range(3):
            batches = [_fresh_executions() for _ in range(cg_rounds)]
            start = time.perf_counter()
            for batch in batches:
                _sweep_prefill(batch, use_codegen=use_codegen)
            took = time.perf_counter() - start
            best = took if best is None else min(best, took)
        return best

    interp_seconds = _tier_seconds(False)
    codegen_seconds = _tier_seconds(True)
    cg_evals = cg_rounds * _sweep_prefill(
        _fresh_executions(), use_codegen=True
    )

    ratio, union_nodes, individual_nodes = _sharing()

    payload = {
        "benchmark": "ir-all-models-sweep",
        "models": len(model_names()),
        "executions": rounds * len(_ENTRIES),
        "axiom_evals": evals,
        "elapsed_seconds": round(elapsed, 4),
        "axiom_evals_per_second": round(evals / elapsed, 1)
        if elapsed
        else 0.0,
        "batched_axiom_evals": batched_evals,
        "batched_axiom_evals_per_second": round(
            batched_evals / batched_elapsed, 1
        )
        if batched_elapsed
        else 0.0,
        "batch_vs_scalar_speedup": round(
            (batched_evals / batched_elapsed) / (evals / elapsed), 2
        )
        if elapsed and batched_elapsed
        else 0.0,
        "codegen_axiom_evals_per_second": round(
            cg_evals / codegen_seconds, 1
        )
        if codegen_seconds
        else 0.0,
        "interpreted_axiom_evals_per_second": round(
            cg_evals / interp_seconds, 1
        )
        if interp_seconds
        else 0.0,
        "codegen_vs_interpreted_speedup": round(
            interp_seconds / codegen_seconds, 2
        )
        if codegen_seconds
        else 0.0,
        "node_computes": computes,
        "node_computes_per_candidate": round(
            computes / (rounds * len(_ENTRIES)), 1
        ),
        "cross_model_dag_nodes": union_nodes,
        "sum_of_per_model_dag_nodes": individual_nodes,
        "cross_model_sharing_ratio": round(ratio, 3),
    }
    payload.update(_campaign_resweep())
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if manifest_path is not None:
        import sys

        from repro.obs import manifest as obs_manifest

        manifest = obs_manifest.from_rates(
            kind="bench",
            label="ir-all-models-sweep",
            rates={
                "axiom_evals_per_second": payload[
                    "axiom_evals_per_second"
                ],
                "batched_axiom_evals_per_second": payload[
                    "batched_axiom_evals_per_second"
                ],
                "batch_vs_scalar_speedup": payload[
                    "batch_vs_scalar_speedup"
                ],
                "codegen_vs_interpreted_speedup": payload[
                    "codegen_vs_interpreted_speedup"
                ],
                "cross_model_sharing_ratio": payload[
                    "cross_model_sharing_ratio"
                ],
                "campaign_resweep_cells_per_second": payload[
                    "campaign_resweep_cells_per_second"
                ],
            },
            elapsed=elapsed,
            counters={
                "node_computes": payload["node_computes"],
                "axiom_evals": payload["axiom_evals"],
            },
            argv=sys.argv[1:],
            extra={
                "models": payload["models"],
                "executions": payload["executions"],
            },
        )
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_ir.json",
        help="where to write the perf artifact",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="also write a repro.run-manifest for `repro stats diff`",
    )
    args = parser.parse_args()
    print(
        json.dumps(
            _artifact(args.json, args.manifest), indent=2, sort_keys=True
        )
    )
