"""Benchmark: the .cat interpreter against the native models.

Measures (a) end-to-end cross-validation over the catalog for every
paired model and (b) the per-evaluation cost of the interpreted Power
model — the heaviest file in the library thanks to its ``let rec``
ppo fixpoint — against the hand-written Python implementation.
"""

import pytest

from repro.cat import CAT_MODEL_FILES, load_cat_model
from repro.catalog import CATALOG
from repro.models.registry import get_model

_PAIRED = ["sc", "tsc", "x86", "power", "armv8", "cpp", "riscv"]


def _crosscheck(name: str) -> int:
    cat = load_cat_model(name)
    native = get_model(name)
    agreements = 0
    for entry in CATALOG.values():
        assert cat.consistent(entry.execution) == native.consistent(
            entry.execution
        )
        agreements += 1
    return agreements


@pytest.mark.parametrize("name", _PAIRED)
def test_catalog_crosscheck(benchmark, name, once):
    agreements = once(benchmark, _crosscheck, name)
    assert agreements == len(CATALOG)


def test_power_cat_evaluation(benchmark):
    model = load_cat_model("power")
    execution = CATALOG["power_exec1"].execution
    verdict = benchmark(model.consistent, execution)
    assert verdict is False


def test_power_native_evaluation(benchmark):
    model = get_model("power")
    execution = CATALOG["power_exec1"].execution
    verdict = benchmark(model.consistent, execution)
    assert verdict is False


def test_parse_library(benchmark):
    from repro.cat.library import library_source
    from repro.cat.parser import parse

    source = library_source("powertm.cat")
    ast = benchmark(parse, source)
    assert ast.title
