"""Benchmark: the RISC-V TM extension (the paper's §9 future target).

Regenerates the Table 1 / Table 2 rows RISC-V would occupy: synthesis
counts with conformance on the operational machine, the monotonicity
counterexample, and the lock-elision verdicts (unsound; fixed by a
FENCE; sound but serialising with the write-to-lock variant).
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1_cell, Table1
from repro.metatheory.lockelision import check_lock_elision, elision_serialisation
from repro.metatheory.monotonicity import check_monotonicity
from repro.sim.oracle import MachineHardware


def test_riscv_table1_row(benchmark, once):
    def run():
        table = Table1()
        for n in (2, 3):
            row, _ = run_table1_cell(
                "riscv", n, oracle=MachineHardware("riscv"), time_budget=90.0
            )
            table.rows.append(row)
        return table

    table = once(benchmark, run)
    print()
    print(format_table1(table))
    for row in table.rows:
        assert row.forbid_seen == 0  # soundness on the machine


def test_riscv_monotonicity(benchmark, once):
    result = once(benchmark, check_monotonicity, "riscv", 2)
    # Same counterexample family as Power/ARMv8: an RMW split across a
    # transaction boundary (TxnCancelsRMW), so coalescing is unsound.
    assert result.counterexample is not None


@pytest.mark.parametrize(
    "fixed,txn_writes_lock,expect_sound",
    [
        (False, False, False),  # the headline: elision unsound
        (True, False, True),  # FENCE rw,rw fix
        (False, True, True),  # write-to-lock fix
    ],
)
def test_riscv_lock_elision(benchmark, fixed, txn_writes_lock, expect_sound, once):
    result = once(
        benchmark,
        check_lock_elision,
        "riscv",
        fixed=fixed,
        txn_writes_lock=txn_writes_lock,
    )
    print(f"\n{result.summary()}")
    assert result.sound == expect_sound


def test_write_to_lock_serialises(benchmark, once):
    serialises = once(benchmark, elision_serialisation, "riscv", True)
    assert serialises is True
