"""Benchmark: the operational machines as conformance hardware.

Mirrors the role of the paper's POWER8 runs (§5.3): the Forbid suite
synthesized from each TM model must never be observable on the
corresponding machine, and a healthy share of the Allow suite should
be.  Also times exhaustive exploration of the canonical shapes.
"""

import pytest

from repro.core.events import Label
from repro.litmus.from_execution import to_litmus
from repro.litmus.program import Fence, Load, Program, Store
from repro.sim.oracle import MachineHardware
from repro.sim.weakmachine import WeakMachine, runnable_on
from repro.synth.synthesis import synthesize


def _iriw(fence=None):
    th2 = [Load("r0", "x")] + ([Fence(fence)] if fence else []) + [Load("r1", "y")]
    th3 = [Load("r2", "y")] + ([Fence(fence)] if fence else []) + [Load("r3", "x")]
    return Program(((Store("x", 1),), (Store("y", 1),), tuple(th2), tuple(th3)))


@pytest.mark.parametrize("arch", ["power", "armv8", "riscv", "sc"])
def test_iriw_exploration(benchmark, arch, once):
    outcomes = once(benchmark, lambda: WeakMachine(_iriw(), arch).explore())
    assert outcomes


def test_power_iriw_sync_exploration(benchmark, once):
    outcomes = once(
        benchmark, lambda: WeakMachine(_iriw(Label.SYNC), "power").explore()
    )
    assert outcomes


@pytest.mark.parametrize(
    "arch,n_events",
    [("armv8", 3), ("riscv", 3), ("power", 3)],
)
def test_forbid_suite_never_observed(benchmark, arch, n_events, once):
    """The §5.3 soundness loop, with the operational machine as the
    hardware: no Forbid test may be reachable."""

    def run():
        result = synthesize(arch, n_events, time_budget=90.0)
        oracle = MachineHardware(arch)
        seen = 0
        run_count = 0
        skipped = 0
        # Single-core budget: a 25-test sample keeps the bench tractable
        # (the full-suite soundness run is the same loop, unsampled).
        for x in result.forbid[:25]:
            test = to_litmus(x, f"{arch}-forbid", arch)
            if not runnable_on(test.program, arch):
                skipped += 1
                continue
            run_count += 1
            if oracle.observable(test):
                seen += 1
        return seen, run_count, skipped, len(result.allow)

    seen, run_count, skipped, _ = once(benchmark, run)
    print(
        f"\n{arch}: {run_count} Forbid tests on the machine, "
        f"{seen} observed (must be 0), {skipped} not machine-expressible"
    )
    assert seen == 0
    assert run_count > 0


def test_allow_suite_mostly_observed(benchmark, once):
    """Completeness on ARMv8 at a small bound: most Allow tests are
    reachable on the machine (the paper's 83-88% shape)."""

    def run():
        result = synthesize("armv8", 3, time_budget=90.0)
        oracle = MachineHardware("armv8")
        seen = 0
        run_count = 0
        for x in result.allow[:30]:  # sampled, as above
            test = to_litmus(x, "armv8-allow", "armv8")
            if not runnable_on(test.program, "armv8"):
                continue
            run_count += 1
            if oracle.observable(test):
                seen += 1
        return seen, run_count

    seen, run_count = once(benchmark, run)
    print(f"\narmv8 Allow: {seen}/{run_count} observed on the machine")
    assert run_count > 0
    assert seen / run_count > 0.5
