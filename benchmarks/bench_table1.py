"""Table 1: Forbid/Allow synthesis + hardware conformance (§5.3).

Each benchmark regenerates one (architecture, |E|) cell: synthesis of the
minimally-forbidden and maximally-allowed suites, then conformance runs
on the simulated hardware.  The assertions pin the paper's headline
shapes: Forbid never observed, Allow mostly observed.
"""

import pytest

from repro.experiments.table1 import Table1, format_table1, run_table1_cell

_ROWS = []


@pytest.mark.parametrize("n_events", [2, 3])
def test_table1_x86(benchmark, n_events):
    row, result = benchmark.pedantic(
        run_table1_cell,
        args=("x86", n_events),
        kwargs={"time_budget": 90.0},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(row)
    assert row.forbid_seen == 0, "a Forbid test was observed: model unsound"
    if row.allow_total:
        assert row.allow_seen / row.allow_total >= 0.5


@pytest.mark.parametrize("n_events", [2, 3])
def test_table1_power(benchmark, n_events):
    row, result = benchmark.pedantic(
        run_table1_cell,
        args=("power", n_events),
        kwargs={"time_budget": 120.0},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(row)
    assert row.forbid_seen == 0
    if row.allow_total:
        assert row.allow_seen / row.allow_total >= 0.5


def test_table1_x86_four_events(benchmark):
    """The largest default x86 cell (time-budgeted, like the paper's
    two-hour cap)."""
    row, result = benchmark.pedantic(
        run_table1_cell,
        args=("x86", 4),
        kwargs={"time_budget": 240.0},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(row)
    assert row.forbid_seen == 0
    assert row.forbid_total >= 4  # at least the |E|=3 shapes' extensions


def test_zz_print_table1(benchmark):
    """Print the accumulated table after all cells ran."""
    table = Table1(rows=sorted(_ROWS, key=lambda r: (r.arch, r.n_events)))
    text = benchmark(format_table1, table)
    print()
    print(text)
    assert _ROWS
