"""Benchmark: herd-frontend parsing and corpus campaign throughput.

Measures the two hot paths the litmus frontend adds:

* **parse throughput** — every ``tests/corpus/*/*.litmus`` file through
  :func:`repro.litmus.frontend.load_dialect` (files/sec);
* **corpus campaign throughput** — the full corpus × native-model
  cross-product through the campaign engine, cold and warm
  (cells/sec), which is what the CI corpus job sweeps.  The cold
  number is measured three ways: batched (the default path —
  cross-item kernel prefill, the headline ``corpus_cells_per_second``),
  scalar (``set_batch_size(0)``), and parallel (``jobs =
  default_jobs()`` over batch-aware shards, one prefill per worker);
  the ratios are ``batch_vs_scalar_speedup`` and
  ``parallel_vs_serial_speedup``.

Run directly (``python benchmarks/bench_corpus.py --json OUT.json``)
for the CI artifact: files parsed/sec and corpus cells/sec, tracked
from PR 5 onward.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))

from repro.engine.campaign import CampaignItem, run_campaign
from repro.litmus.candidates import _expand_test, expand_program, set_batch_size
from repro.litmus.frontend import dump_dialect, load_dialect
from repro.models.registry import MODELS

CORPUS = pathlib.Path(__file__).resolve().parent.parent / "tests" / "corpus"


def _corpus_texts() -> dict[str, str]:
    return {
        p.relative_to(CORPUS).as_posix(): p.read_text(encoding="utf-8")
        for p in sorted(CORPUS.glob("*/*.litmus"))
    }


def _parse_all(texts: dict[str, str]) -> int:
    return sum(1 for text in texts.values() if load_dialect(text))


def _corpus_items(texts: dict[str, str]) -> list[CampaignItem]:
    return [
        CampaignItem(relpath, load_dialect(text))
        for relpath, text in texts.items()
    ]


def _cold_campaign(items, batch=None, jobs=1):
    """One corpus campaign from cold expansion caches; ``batch=0``
    forces the scalar per-candidate path, ``None`` keeps the default
    (batched); ``jobs`` selects the batch-aware sharded pool path."""
    expand_program.cache_clear()
    _expand_test.cache_clear()
    set_batch_size(batch)
    try:
        return run_campaign(items, sorted(MODELS), jobs=jobs)
    finally:
        set_batch_size(None)


def test_parse_corpus(benchmark):
    texts = _corpus_texts()
    parsed = benchmark(_parse_all, texts)
    assert parsed >= 150


def test_roundtrip_corpus(benchmark, once):
    texts = _corpus_texts()
    tests = [load_dialect(text) for text in texts.values()]

    def roundtrip():
        return sum(1 for t in tests if load_dialect(dump_dialect(t)) == t)

    assert once(benchmark, roundtrip) == len(tests)


def test_corpus_campaign_cold(benchmark, once):
    items = _corpus_items(_corpus_texts())
    result = once(benchmark, _cold_campaign, items)
    assert not result.errors()


def test_corpus_campaign_cold_parallel(benchmark, once):
    """The batch-aware sharded pool path (one shard prefill per
    worker) over the full corpus."""
    from repro.engine.pool import default_jobs

    items = _corpus_items(_corpus_texts())
    result = once(benchmark, _cold_campaign, items, jobs=default_jobs())
    assert not result.errors()


@pytest.mark.parametrize("jobs", [1])
def test_corpus_campaign_warm(benchmark, jobs):
    items = _corpus_items(_corpus_texts())
    run_campaign(items, sorted(MODELS), jobs=jobs)  # prime the memos
    result = benchmark(run_campaign, items, sorted(MODELS), jobs=jobs)
    assert not result.errors()


# ----------------------------------------------------------------------
# Standalone mode: the CI perf artifact (no pytest-benchmark needed)
# ----------------------------------------------------------------------


def _artifact(json_path: str, manifest_path: "str | None" = None) -> dict:
    import json
    import time

    texts = _corpus_texts()

    start = time.perf_counter()
    rounds = 5
    for _ in range(rounds):
        _parse_all(texts)
    parse_elapsed = (time.perf_counter() - start) / rounds

    items = _corpus_items(texts)
    _cold_campaign(items)  # warm compiled plans and model definitions
    start = time.perf_counter()
    result = _cold_campaign(items)
    cold_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    scalar = _cold_campaign(items, batch=0)
    scalar_elapsed = time.perf_counter() - start
    # The sharded pool path: same cold workload fanned out over
    # batch-aware shards, one prefill per worker.  On a single-CPU
    # runner ``default_jobs() == 1`` degrades to the serial prefill, so
    # the ratio reads ~1 there by construction.
    from repro.engine.pool import default_jobs

    par_jobs = default_jobs()
    start = time.perf_counter()
    parallel = _cold_campaign(items, jobs=par_jobs)
    parallel_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_campaign(items, sorted(MODELS))
    warm_elapsed = time.perf_counter() - start
    assert not result.errors() and not warm.errors()
    assert not scalar.errors() and not parallel.errors()

    cells = len(result.cells)
    payload = {
        "benchmark": "corpus-frontend",
        "files": len(texts),
        "models": len(MODELS),
        "cells": cells,
        "parse_seconds": round(parse_elapsed, 4),
        "files_parsed_per_second": round(len(texts) / parse_elapsed, 1),
        "campaign_cold_seconds": round(cold_elapsed, 4),
        "campaign_scalar_seconds": round(scalar_elapsed, 4),
        "campaign_parallel_seconds": round(parallel_elapsed, 4),
        "campaign_warm_seconds": round(warm_elapsed, 4),
        "parallel_jobs": par_jobs,
        "corpus_cells_per_second": round(cells / cold_elapsed, 1),
        "corpus_cells_per_second_scalar": round(cells / scalar_elapsed, 1),
        "corpus_cells_per_second_parallel": round(
            cells / parallel_elapsed, 1
        ),
        "corpus_cells_per_second_warm": round(cells / warm_elapsed, 1),
        "batch_vs_scalar_speedup": round(scalar_elapsed / cold_elapsed, 2)
        if cold_elapsed
        else 0.0,
        "parallel_vs_serial_speedup": round(
            cold_elapsed / parallel_elapsed, 2
        )
        if parallel_elapsed
        else 0.0,
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if manifest_path is not None:
        from repro.obs import manifest as obs_manifest

        manifest = obs_manifest.from_rates(
            kind="bench",
            label="corpus-frontend",
            rates={
                "files_parsed_per_second": payload[
                    "files_parsed_per_second"
                ],
                "corpus_cells_per_second": payload[
                    "corpus_cells_per_second"
                ],
                "corpus_cells_per_second_scalar": payload[
                    "corpus_cells_per_second_scalar"
                ],
                "corpus_cells_per_second_parallel": payload[
                    "corpus_cells_per_second_parallel"
                ],
                "corpus_cells_per_second_warm": payload[
                    "corpus_cells_per_second_warm"
                ],
                "batch_vs_scalar_speedup": payload[
                    "batch_vs_scalar_speedup"
                ],
                "parallel_vs_serial_speedup": payload[
                    "parallel_vs_serial_speedup"
                ],
            },
            elapsed=cold_elapsed,
            stages={
                "parse": {"seconds": round(parse_elapsed, 6), "calls": 1},
                "campaign_cold": {
                    "seconds": round(cold_elapsed, 6),
                    "calls": 1,
                },
                "campaign_scalar": {
                    "seconds": round(scalar_elapsed, 6),
                    "calls": 1,
                },
                "campaign_parallel": {
                    "seconds": round(parallel_elapsed, 6),
                    "calls": 1,
                },
                "campaign_warm": {
                    "seconds": round(warm_elapsed, 6),
                    "calls": 1,
                },
            },
            argv=sys.argv[1:],
            extra={"files": len(texts), "cells": cells},
        )
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_corpus.json",
        help="where to write the perf artifact",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="also write a repro.run-manifest for `repro stats diff`",
    )
    args = parser.parse_args()
    print(
        json.dumps(
            _artifact(args.json, args.manifest), indent=2, sort_keys=True
        )
    )
