"""Benchmark: differential-fuzzer throughput.

Measures the conformance pipeline end to end — generation, the
campaign cross-product over the full checker trio (native model, .cat
model, operational machine, brute-force oracle), classification, and
mutant shrinking — plus the pieces in isolation:

* suite generation (diy enumeration + catalog mutation + random
  programs) per architecture;
* a cold stock run (no cache, no mutants): the "is everything still in
  agreement?" sweep CI performs;
* the mutant run, which adds one weakened model per known mutant and
  shrinks every witness down the ⊏ order.

Run directly (``python benchmarks/bench_fuzz.py --json OUT.json``) for
the CI artifact: tests/sec and cells/sec for a small stock sweep of
every architecture, tracked from PR 3 onward.
"""

import pytest

from repro.conformance import generate_suite, run_fuzz
from repro.litmus.candidates import _expand_test, expand_program


def _clear_expansions():
    expand_program.cache_clear()
    _expand_test.cache_clear()


def _cold_fuzz(arch, budget="smoke", **kwargs):
    _clear_expansions()
    return run_fuzz(arch, seed=0, budget=budget, **kwargs)


@pytest.mark.parametrize("arch", ["x86", "armv8"])
def test_generate_suite(benchmark, once, arch):
    suite = once(benchmark, generate_suite, arch, 0, "small")
    assert len(suite) > 50


def test_fuzz_stock_smoke(benchmark, once):
    report = once(benchmark, _cold_fuzz, "armv8")
    assert report.ok
    print(report.summary())


def test_fuzz_mutants_smoke(benchmark, once):
    report = once(benchmark, _cold_fuzz, "armv8", mutants=True)
    assert report.ok
    print(report.summary())


def test_fuzz_stock_small(benchmark, once):
    report = once(benchmark, _cold_fuzz, "armv8", budget="small")
    assert report.ok
    print(report.summary())


# ----------------------------------------------------------------------
# Standalone mode: the CI perf artifact (no pytest-benchmark needed)
# ----------------------------------------------------------------------

_ARTIFACT_ARCHES = ["x86", "power", "armv8", "riscv", "cpp"]


def _artifact(json_path: str) -> dict:
    import json
    import time

    per_arch = {}
    total_items = total_cells = 0
    start = time.perf_counter()
    for arch in _ARTIFACT_ARCHES:
        _clear_expansions()
        arch_start = time.perf_counter()
        report = run_fuzz(arch, seed=0, budget="small", mutants=True)
        arch_elapsed = time.perf_counter() - arch_start
        total_items += report.n_items
        total_cells += report.n_cells
        per_arch[arch] = {
            "tests": report.n_items,
            "cells": report.n_cells,
            "ok": report.ok,
            "mutants_detected": sum(m.detected for m in report.mutants),
            "mutants_total": len(report.mutants),
            "elapsed_seconds": round(arch_elapsed, 4),
        }
    elapsed = time.perf_counter() - start

    payload = {
        "benchmark": "fuzz-small-sweep",
        "arches": per_arch,
        "tests": total_items,
        "cells": total_cells,
        "elapsed_seconds": round(elapsed, 4),
        "tests_per_second": round(total_items / elapsed, 1),
        "cells_per_second": round(total_cells / elapsed, 1),
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_fuzz.json",
        help="where to write the perf artifact",
    )
    args = parser.parse_args()
    print(json.dumps(_artifact(args.json), indent=2, sort_keys=True))
