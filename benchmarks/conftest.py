"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the regenerated artefact (run with ``-s`` to see them).  The heavy
experiments run exactly once per benchmark (``pedantic`` with one round)
— the interesting measurement is the wall-clock of the whole experiment,
mirroring the paper's own synthesis-time columns.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (heavy experiment)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
