"""Benchmark: the §7 theorems, bounded (the paper's Isabelle artefact).

Runs the WeakIsol lemma, Theorem 7.2 (strong isolation for atomic
transactions), Theorem 7.3 (transactional SC-DRF), and baseline
conservativity for every TM model, each over the exhaustive execution
space at laptop-sized bounds.
"""

import pytest

from repro.metatheory.theorems import (
    check_conservativity,
    check_theorem_72,
    check_theorem_73,
    check_weak_isolation_lemma,
)


def test_weak_isolation_lemma(benchmark, once):
    report = once(benchmark, check_weak_isolation_lemma, 3)
    print(f"\n{report.summary()}")
    assert report.holds
    assert report.executions_checked > 0


def test_theorem_72(benchmark, once):
    report = once(benchmark, check_theorem_72, 3)
    print(f"\n{report.summary()}")
    assert report.holds


def test_theorem_73(benchmark, once):
    report = once(benchmark, check_theorem_73, 3)
    print(f"\n{report.summary()}")
    assert report.holds


@pytest.mark.parametrize("arch", ["x86", "power", "armv8", "riscv", "cpp"])
def test_conservativity(benchmark, arch, once):
    report = once(benchmark, check_conservativity, arch, 3)
    print(f"\n{report.summary()}")
    assert report.holds
