"""Benchmark: campaign-engine throughput.

Measures the mechanisms the engine stacks on top of a naive
(test, model) double loop:

* cold cross-product — includes candidate expansion per test, through
  the constraint-pruned incremental enumerator and the shared
  per-candidate analysis layer;
* warm expansion memo — a second sweep with more models reuses every
  test's expansion, isolating the per-model check cost;
* warm persistent cache — a re-run served entirely from
  ``.repro-cache``-style storage (here a tmp dir), the incremental
  re-run path;
* parallel dispatch — the same cold cross-product across two workers.

Run directly (``python benchmarks/bench_campaign.py --json OUT.json``)
for the CI artifact: a heavier cold sweep reporting tests/sec and
candidates/sec, tracked from PR 2 onward.
"""

import pytest

from repro.engine import ResultCache, diy_suite, run_campaign
from repro.litmus.candidates import _expand_test, expand_program

MODELS = ["x86", "tsc", "sc"]


def _suite():
    return diy_suite("x86", max_length=3)


def _clear_expansions():
    expand_program.cache_clear()
    _expand_test.cache_clear()


def _cold(suite, models, jobs=1):
    _clear_expansions()
    return run_campaign(suite, models, jobs=jobs)


def test_campaign_cold(benchmark, once):
    suite = _suite()
    # One unmeasured run warms process-level state (model classes,
    # checker resolution, import side effects); the measured run still
    # re-expands every test from scratch.
    _cold(suite, MODELS)
    result = once(benchmark, _cold, suite, MODELS)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())


def test_campaign_warm_expansion(benchmark, once):
    suite = _suite()
    run_campaign(suite, ["x86"])  # pre-expand every test once
    result = once(benchmark, run_campaign, suite, MODELS)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())


def test_campaign_warm_cache(benchmark, once, tmp_path):
    suite = _suite()
    run_campaign(suite, MODELS, cache=ResultCache(tmp_path))
    result = once(
        benchmark, run_campaign, suite, MODELS, cache=ResultCache(tmp_path)
    )
    assert result.hit_rate == 1.0
    print(result.summary())


def test_campaign_parallel(benchmark, once):
    suite = _suite()
    result = once(benchmark, _cold, suite, MODELS, 2)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())


# ----------------------------------------------------------------------
# Standalone mode: the CI perf artifact (no pytest-benchmark needed)
# ----------------------------------------------------------------------

#: The heavier sweep the artifact tracks: every architecture model plus
#: a .cat model and a no-TM baseline, over length-4 diy cycles.
_ARTIFACT_MODELS = [
    "x86", "tsc", "sc", "x86tm", "power", "armv8", "riscv", "cpp",
    "x86!notm",
]


def _artifact(json_path: str, manifest_path: "str | None" = None) -> dict:
    import json
    import time

    from repro.core import profiling

    suite = diy_suite("x86", max_length=4)
    _clear_expansions()
    profiler = profiling.enable()
    start = time.perf_counter()
    result = run_campaign(suite, _ARTIFACT_MODELS)
    elapsed = time.perf_counter() - start
    profiling.disable()

    candidates = profiler.counters.get("candidates", 0)
    payload = {
        "benchmark": "campaign-cold-sweep",
        "tests": len(suite),
        "models": len(_ARTIFACT_MODELS),
        "cells": len(result.cells),
        "candidates": candidates,
        "elapsed_seconds": round(elapsed, 4),
        "tests_per_second": round(len(suite) / elapsed, 1),
        "cells_per_second": round(len(result.cells) / elapsed, 1),
        "candidates_per_second": round(candidates / elapsed, 1)
        if elapsed
        else 0.0,
        "stage_seconds": {
            name: round(secs, 4) for name, secs in profiler.seconds.items()
        },
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if manifest_path is not None:
        import sys

        from repro.obs import manifest as obs_manifest

        manifest = obs_manifest.from_rates(
            kind="bench",
            label="campaign-cold-sweep",
            rates={
                "tests_per_second": payload["tests_per_second"],
                "cells_per_second": payload["cells_per_second"],
                "candidates_per_second": payload["candidates_per_second"],
            },
            elapsed=elapsed,
            stages={
                name: {
                    "seconds": round(secs, 6),
                    "calls": profiler.calls.get(name, 0),
                }
                for name, secs in profiler.seconds.items()
            },
            counters=dict(profiler.counters),
            argv=sys.argv[1:],
            extra={
                "tests": len(suite),
                "models": len(_ARTIFACT_MODELS),
                "cells": len(result.cells),
            },
        )
        # An explicit path, not the runs/ directory: CI diffs it against
        # a committed baseline (`repro stats diff` resolves bare paths).
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_campaign.json",
        help="where to write the perf artifact",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="also write a repro.run-manifest for `repro stats diff`",
    )
    args = parser.parse_args()
    print(
        json.dumps(
            _artifact(args.json, args.manifest), indent=2, sort_keys=True
        )
    )
