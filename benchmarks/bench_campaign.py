"""Benchmark: campaign-engine throughput.

Measures the three mechanisms the engine stacks on top of a naive
(test, model) double loop:

* cold cross-product — includes candidate expansion per test;
* warm expansion memo — a second sweep with more models reuses every
  test's expansion, isolating the per-model check cost;
* warm persistent cache — a re-run served entirely from
  ``.repro-cache``-style storage (here a tmp dir), the incremental
  re-run path;
* parallel dispatch — the same cold cross-product across two workers.
"""

import pytest

from repro.engine import ResultCache, diy_suite, run_campaign
from repro.litmus.candidates import expand_program

MODELS = ["x86", "tsc", "sc"]


def _suite():
    return diy_suite("x86", max_length=3)


def _cold(suite, models, jobs=1):
    expand_program.cache_clear()
    return run_campaign(suite, models, jobs=jobs)


def test_campaign_cold(benchmark, once):
    suite = _suite()
    result = once(benchmark, _cold, suite, MODELS)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())


def test_campaign_warm_expansion(benchmark, once):
    suite = _suite()
    run_campaign(suite, ["x86"])  # pre-expand every test once
    result = once(benchmark, run_campaign, suite, MODELS)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())


def test_campaign_warm_cache(benchmark, once, tmp_path):
    suite = _suite()
    run_campaign(suite, MODELS, cache=ResultCache(tmp_path))
    result = once(
        benchmark, run_campaign, suite, MODELS, cache=ResultCache(tmp_path)
    )
    assert result.hit_rate == 1.0
    print(result.summary())


def test_campaign_parallel(benchmark, once):
    suite = _suite()
    result = once(benchmark, _cold, suite, MODELS, 2)
    assert len(result.cells) == len(suite) * len(MODELS)
    print(result.summary())
