"""Figures 1, 2, 3, and 10: the paper's worked executions.

These benchmarks regenerate the figures' artefacts — the execution→litmus
constructions of Figs. 1 and 2, the isolation verdicts of Fig. 3, and the
Fig. 10 lock-elision pair (rediscovered by search) — and measure the
model-checking machinery on them.
"""

from repro.catalog import CATALOG
from repro.litmus.from_execution import to_litmus
from repro.litmus.render import render
from repro.metatheory.lockelision import check_lock_elision
from repro.models.isolation import strongly_isolated, weakly_isolated
from repro.models.registry import get_model


def test_fig1_fig2_litmus_construction(benchmark):
    def construct():
        return (
            to_litmus(CATALOG["fig1"].execution, "fig1", "x86"),
            to_litmus(CATALOG["fig2"].execution, "fig2", "x86"),
        )

    fig1, fig2 = benchmark(construct)
    print()
    print(render(fig1))
    print()
    print(render(fig2))
    # Fig 1's postcondition checks the register and the final value;
    # Fig 2 additionally checks the ok flag.
    assert "exists" in render(fig1)
    assert "txn0@P0=ok" in render(fig2)


def test_fig3_isolation_verdicts(benchmark):
    shapes = [CATALOG[f"fig3{s}"].execution for s in "abcd"]

    def verdicts():
        return [
            (weakly_isolated(x), strongly_isolated(x)) for x in shapes
        ]

    results = benchmark(verdicts)
    print()
    for name, (weak, strong) in zip("abcd", results):
        print(f"Fig 3({name}): weak isolation {'ok' if weak else 'VIOLATED'}, "
              f"strong isolation {'ok' if strong else 'VIOLATED'}")
    assert all(weak and not strong for weak, strong in results)


def test_fig10_lock_elision_pair(benchmark):
    result = benchmark.pedantic(
        check_lock_elision, args=("armv8",), rounds=1, iterations=1
    )
    assert not result.sound
    abstract, concrete = result.counterexample
    print()
    print("Fig 10 (abstract, forbidden by CROrder):")
    print(abstract.describe())
    print()
    print("Fig 10 (concrete, consistent under ARMv8+TM):")
    print(concrete.describe())
    print()
    print("Example 1.1 litmus test:")
    print(render(to_litmus(concrete, "example-1.1", "armv8")))
    assert get_model("armv8").consistent(concrete)
