"""Table 2: metatheory — monotonicity, compilation, lock elision (§8)."""

import pytest

from repro.experiments.table2 import Table2Row, format_table2
from repro.metatheory.compilation import check_compilation
from repro.metatheory.lockelision import check_lock_elision
from repro.metatheory.monotonicity import check_monotonicity

_ROWS = []


@pytest.mark.parametrize(
    "arch,bound,expect_cex",
    [("x86", 3, False), ("power", 2, True), ("armv8", 2, True), ("cpp", 3, False)],
)
def test_monotonicity(benchmark, arch, bound, expect_cex):
    result = benchmark.pedantic(
        check_monotonicity,
        args=(arch, bound),
        kwargs={"time_budget": 120.0},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(
        Table2Row(
            "Monotonicity", arch, bound, result.elapsed,
            result.counterexample is not None, result.exhausted,
        )
    )
    assert (result.counterexample is not None) == expect_cex


@pytest.mark.parametrize("target", ["x86", "power", "armv8"])
def test_compilation(benchmark, target):
    result = benchmark.pedantic(
        check_compilation,
        args=(target, 3),
        kwargs={"time_budget": 180.0},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(
        Table2Row(
            "Compilation", target, 3, result.elapsed,
            result.counterexample is not None, result.exhausted,
        )
    )
    assert result.sound


@pytest.mark.parametrize(
    "arch,fixed,expect_cex",
    [
        ("x86", False, False),
        ("armv8", False, True),
        ("armv8", True, False),
        # Power: the paper's SAT search timed out (>48h); our guided
        # expansion finds an Example-1.1-style witness (EXPERIMENTS.md).
        ("power", False, True),
    ],
)
def test_lock_elision(benchmark, arch, fixed, expect_cex):
    result = benchmark.pedantic(
        check_lock_elision,
        args=(arch,),
        kwargs={"fixed": fixed, "time_budget": 120.0},
        rounds=1,
        iterations=1,
    )
    label = f"{arch} (fixed)" if fixed else arch
    _ROWS.append(
        Table2Row(
            "Lock elision", label, 0, result.elapsed,
            result.counterexample is not None, result.exhausted,
        )
    )
    assert (result.counterexample is not None) == expect_cex


def test_zz_print_table2(benchmark):
    text = benchmark(format_table2, _ROWS)
    print()
    print(text)
    assert _ROWS
