"""Figure 7: the distribution of synthesis times (§5.3).

The paper's observation — most Forbid tests are found early in the run,
the tail of the synthesis merely confirms exhaustion — is asserted on the
regenerated curve.
"""

from repro.experiments.fig7 import format_fig7, run_fig7


def test_fig7_x86(benchmark):
    series = benchmark.pedantic(
        run_fig7,
        kwargs={"arch": "x86", "n_events": 3, "time_budget": 120.0},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig7(series))
    assert series.discovery_times
    # The curve is a valid cumulative distribution ending at 100%.  (The
    # paper's strong front-loading — 98% of tests in 6% of the time —
    # emerges at larger bounds with hundreds of tests; at |E|=3 there are
    # only four tests and discovery tracks enumeration order.)
    curve = series.cumulative()
    assert all(b[1] >= a[1] for a, b in zip(curve, curve[1:]))
    assert curve[-1][1] == 100.0
    assert all(t <= series.total_time for t in series.discovery_times)


def test_fig7_power(benchmark):
    series = benchmark.pedantic(
        run_fig7,
        kwargs={"arch": "power", "n_events": 3, "time_budget": 180.0},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig7(series))
    assert series.discovery_times
