"""Benchmark: Diy-style cycle enumeration and realisation (§9).

Times cycle enumeration over growing vocabularies, and prints the
per-model Forbid counts for the generated suites — the Diy analogue of
Table 1's synthesis columns.
"""

import pytest

from repro.models.registry import get_model
from repro.synth.diy import (
    CLASSIC_CYCLES,
    cycle_execution,
    enumerate_cycles,
    interesting_cycles,
)

_BASE_VOCAB = ["PodWR", "PodWW", "PodRR", "PodRW", "Rfe", "Fre", "Wse"]
_TXN_VOCAB = _BASE_VOCAB + ["TxndWR", "TxndWW", "TxndRR", "TxndRW"]


def test_enumerate_base_vocab(benchmark, once):
    cycles = once(benchmark, lambda: list(enumerate_cycles(_BASE_VOCAB, 5)))
    print(f"\n{len(cycles)} canonical cycles (base vocabulary, length <= 5)")
    assert len(cycles) > 100


def test_enumerate_txn_vocab(benchmark, once):
    cycles = once(benchmark, lambda: list(enumerate_cycles(_TXN_VOCAB, 4)))
    print(f"\n{len(cycles)} canonical cycles (txn vocabulary, length <= 4)")
    assert cycles


def test_realise_all_classics(benchmark):
    def run():
        return [cycle_execution(c) for c in CLASSIC_CYCLES.values()]

    executions = benchmark(run)
    assert len(executions) == len(CLASSIC_CYCLES)


@pytest.mark.parametrize("arch", ["x86", "power", "armv8", "riscv"])
def test_interesting_cycles_per_model(benchmark, arch, once):
    model = get_model(arch)
    found = once(
        benchmark, lambda: list(interesting_cycles(_TXN_VOCAB, 4, model))
    )
    total = len(list(enumerate_cycles(_TXN_VOCAB, 4)))
    print(f"\n{arch}: {len(found)}/{total} cycles forbidden")
    for cycle, x in found:
        assert not model.consistent(x)
    assert found
