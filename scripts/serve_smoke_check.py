#!/usr/bin/env python
"""Check a campaign-service job's verdicts against the golden corpus matrix.

CI's serve-smoke job submits the x86 litmus corpus to a live ``repro
serve`` instance and captures the job record + streamed cells with
``repro submit --json``.  This script replays the path -> item-name
mapping (``litmus_suite`` preserves submission order) and asserts that
every streamed cell matches ``tests/corpus_verdicts.json`` exactly —
full coverage, no errors, no poisoned cells, no verdict drift.

Usage::

    PYTHONPATH=src python scripts/serve_smoke_check.py \
        serve-job.json tests/corpus_verdicts.json tests/corpus/x86 x86,sc
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if len(argv) != 5:
        print(__doc__, file=sys.stderr)
        return 2
    job_path, golden_path, corpus_dir, models_arg = argv[1:]
    models = [m for m in models_arg.split(",") if m]

    from repro.engine import litmus_suite

    corpus = Path(corpus_dir)
    paths = sorted(corpus.glob("*.litmus"))
    if not paths:
        print(f"no .litmus files under {corpus}", file=sys.stderr)
        return 2
    # litmus_suite preserves path order, so items[i] came from paths[i];
    # the golden matrix is keyed by <arch>/<file>.litmus.
    items = litmus_suite([str(p) for p in paths])
    name_to_key = {
        item.name: f"{corpus.name}/{path.name}"
        for item, path in zip(items, paths)
    }

    golden = json.loads(Path(golden_path).read_text())
    payload = json.loads(Path(job_path).read_text())
    record, cells = payload["job"], payload["cells"]

    failures = []
    if record["state"] != "done":
        failures.append(f"job state {record['state']!r}, expected 'done'")
    if record["cells"]["poisoned"]:
        failures.append(f"{record['cells']['poisoned']} poisoned cells")

    seen = {}
    for cell in cells:
        key = name_to_key.get(cell["item"])
        if key is None:
            failures.append(f"unknown item {cell['item']!r}")
            continue
        if cell["error"]:
            failures.append(f"{key} x {cell['model']}: error {cell['error']}")
            continue
        seen[(key, cell["model"])] = cell["verdict"]

    for path in paths:
        key = f"{corpus.name}/{path.name}"
        expected_row = golden.get(key)
        if expected_row is None:
            failures.append(f"{key} missing from golden matrix")
            continue
        for model in models:
            got = seen.get((key, model))
            expected = expected_row.get(model)
            if got is None:
                failures.append(f"{key} x {model}: no cell streamed")
            elif got != expected:
                failures.append(
                    f"{key} x {model}: verdict {got}, golden {expected}"
                )

    if failures:
        print(f"serve smoke: {len(failures)} mismatches", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"serve smoke: {len(seen)} cells "
        f"({len(paths)} tests x {len(models)} models) match the golden matrix"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
