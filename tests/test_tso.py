"""Tests for the operational x86-TSO + HTM machine."""

import pytest

from repro.catalog import CATALOG
from repro.litmus.candidates import all_outcomes
from repro.litmus.from_execution import to_litmus
from repro.litmus.program import Fence, Load, Program, Store, TxBegin, TxEnd
from repro.litmus.test import Outcome
from repro.models.registry import get_model
from repro.sim.tso import TsoMachine, reachable_outcomes, runnable_on_tso


def prog(*threads):
    return Program(tuple(tuple(t) for t in threads))


def regs(outcomes, tid, reg):
    return {o.registers.get((tid, reg), 0) for o in outcomes}


class TestTsoBasics:
    def test_store_then_load_forwarding(self):
        # A thread must see its own buffered store.
        outcomes = reachable_outcomes(
            prog([Store("x", 1), Load("r0", "x")])
        )
        assert regs(outcomes, 0, "r0") == {1}

    def test_final_memory(self):
        outcomes = reachable_outcomes(prog([Store("x", 7)]))
        assert all(o.memory.get("x") == 7 for o in outcomes)

    def test_store_buffering_relaxation(self):
        # SB: both threads can read 0 (the TSO hallmark).
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Load("r0", "y")],
                [Store("y", 1), Load("r0", "x")],
            )
        )
        keys = {
            (o.registers[(0, "r0")], o.registers[(1, "r0")]) for o in outcomes
        }
        assert (0, 0) in keys
        assert (1, 1) in keys

    def test_mfence_forbids_sb(self):
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Fence("mfence"), Load("r0", "y")],
                [Store("y", 1), Fence("mfence"), Load("r0", "x")],
            )
        )
        keys = {
            (o.registers[(0, "r0")], o.registers[(1, "r0")]) for o in outcomes
        }
        assert (0, 0) not in keys

    def test_tso_forbids_mp(self):
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Store("y", 1)],
                [Load("r0", "y"), Load("r1", "x")],
            )
        )
        assert all(
            not (o.registers[(1, "r0")] == 1 and o.registers[(1, "r1")] == 0)
            for o in outcomes
        )

    def test_locked_rmw_is_atomic(self):
        # Two increments via LOCK'd RMW: the final value reflects both.
        outcomes = reachable_outcomes(
            prog(
                [Load("r0", "x", excl=True), Store("x", 1, excl=True)],
                [Load("r0", "x", excl=True), Store("x", 2, excl=True)],
            )
        )
        for o in outcomes:
            # One RMW read 0, the other read the first one's value.
            assert {o.registers[(0, "r0")], o.registers[(1, "r0")]} in (
                {0, 1},
                {0, 2},
            )

    def test_non_x86_fence_rejected(self):
        with pytest.raises(ValueError):
            TsoMachine(prog([Fence("sync")]))
        assert not runnable_on_tso(prog([Fence("dmb")]))

    def test_state_explosion_guard(self):
        threads = [
            [Store(f"x{t}", v + 1) for v in range(3)] for t in range(3)
        ]
        with pytest.raises(RuntimeError):
            TsoMachine(prog(*threads), max_states=10).explore()


class TestHtm:
    def test_txn_commits_atomically(self):
        # Another thread never sees x=1 with y=0 if both written in a txn.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Store("x", 1), Store("y", 1), TxEnd()],
                [Load("r0", "y"), Load("r1", "x")],
            )
        )
        for o in outcomes:
            if (0, 0) in o.committed and o.registers[(1, "r0")] == 1:
                assert o.registers[(1, "r1")] == 1

    def test_conflicting_write_aborts_txn(self):
        # The txn reads x, the other thread writes it mid-flight: some
        # schedule aborts the transaction.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Load("r0", "x"), Load("r1", "y"), TxEnd()],
                [Store("x", 1)],
            )
        )
        assert any(o.aborted for o in outcomes)
        assert any(o.committed for o in outcomes)

    def test_strong_isolation_nontxn_read(self):
        # A plain load of a location in a txn write-set aborts the txn.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Store("x", 1), Store("y", 1), TxEnd()],
                [Load("r0", "x")],
            )
        )
        # Whenever the reader saw x==0 after the txn started writing, the
        # machine either ordered it before or aborted; in no outcome does
        # the reader see an uncommitted intermediate value.
        for o in outcomes:
            if o.registers[(1, "r0")] == 1:
                assert (0, 0) in o.committed

    def test_txn_reads_own_writes(self):
        outcomes = reachable_outcomes(
            prog([TxBegin(), Store("x", 1), Load("r0", "x"), TxEnd()])
        )
        committed = [o for o in outcomes if o.committed]
        assert committed
        assert regs(committed, 0, "r0") == {1}

    def test_aborted_txn_rolls_back(self):
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Load("r0", "x"), TxEnd()],
                [Store("x", 5)],
            )
        )
        for o in outcomes:
            if (0, 0) in o.aborted:
                # Rolled-back register state: r0 never holds the txn read.
                assert o.registers.get((0, "r0"), 0) == 0
                assert o.memory.get("x") == 5


class TestConformance:
    """Soundness of the machine against the axiomatic model: every
    reachable outcome must be allowed by the x86 TM model."""

    NAMES = [
        "sb", "sb_mfence", "mp", "lb", "iriw", "2+2w", "corr",
        "fig2", "fig3a", "fig3b", "fig3c", "fig3d",
        "sb_txn_both", "sb_txn_one", "rmw_intervene",
    ]

    @pytest.mark.parametrize("name", NAMES)
    def test_machine_sound_wrt_model(self, name):
        test = to_litmus(CATALOG[name].execution, name, "x86")
        model_outcomes = all_outcomes(test, get_model("x86"))
        machine_outcomes = {
            o.key() for o in TsoMachine(test.program).explore()
        }
        extra = machine_outcomes - model_outcomes
        assert not extra, f"{name}: machine reaches {len(extra)} outcomes the model forbids"
