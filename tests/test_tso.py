"""Tests for the operational x86-TSO + HTM machine."""

import pytest

from repro.catalog import CATALOG
from repro.litmus.candidates import all_outcomes
from repro.litmus.from_execution import to_litmus
from repro.litmus.program import Fence, Load, Program, Store, TxBegin, TxEnd
from repro.litmus.test import Outcome
from repro.models.registry import get_model
from repro.sim.tso import TsoMachine, reachable_outcomes, runnable_on_tso


def prog(*threads):
    return Program(tuple(tuple(t) for t in threads))


def regs(outcomes, tid, reg):
    return {o.registers.get((tid, reg), 0) for o in outcomes}


class TestTsoBasics:
    def test_store_then_load_forwarding(self):
        # A thread must see its own buffered store.
        outcomes = reachable_outcomes(
            prog([Store("x", 1), Load("r0", "x")])
        )
        assert regs(outcomes, 0, "r0") == {1}

    def test_final_memory(self):
        outcomes = reachable_outcomes(prog([Store("x", 7)]))
        assert all(o.memory.get("x") == 7 for o in outcomes)

    def test_store_buffering_relaxation(self):
        # SB: both threads can read 0 (the TSO hallmark).
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Load("r0", "y")],
                [Store("y", 1), Load("r0", "x")],
            )
        )
        keys = {
            (o.registers[(0, "r0")], o.registers[(1, "r0")]) for o in outcomes
        }
        assert (0, 0) in keys
        assert (1, 1) in keys

    def test_mfence_forbids_sb(self):
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Fence("mfence"), Load("r0", "y")],
                [Store("y", 1), Fence("mfence"), Load("r0", "x")],
            )
        )
        keys = {
            (o.registers[(0, "r0")], o.registers[(1, "r0")]) for o in outcomes
        }
        assert (0, 0) not in keys

    def test_tso_forbids_mp(self):
        outcomes = reachable_outcomes(
            prog(
                [Store("x", 1), Store("y", 1)],
                [Load("r0", "y"), Load("r1", "x")],
            )
        )
        assert all(
            not (o.registers[(1, "r0")] == 1 and o.registers[(1, "r1")] == 0)
            for o in outcomes
        )

    def test_locked_rmw_is_atomic(self):
        # Two increments via LOCK'd RMW: the final value reflects both.
        outcomes = reachable_outcomes(
            prog(
                [Load("r0", "x", excl=True), Store("x", 1, excl=True)],
                [Load("r0", "x", excl=True), Store("x", 2, excl=True)],
            )
        )
        for o in outcomes:
            # One RMW read 0, the other read the first one's value.
            assert {o.registers[(0, "r0")], o.registers[(1, "r0")]} in (
                {0, 1},
                {0, 2},
            )

    def test_non_x86_fence_rejected(self):
        with pytest.raises(ValueError):
            TsoMachine(prog([Fence("sync")]))
        assert not runnable_on_tso(prog([Fence("dmb")]))

    def test_state_explosion_guard(self):
        threads = [
            [Store(f"x{t}", v + 1) for v in range(3)] for t in range(3)
        ]
        with pytest.raises(RuntimeError):
            TsoMachine(prog(*threads), max_states=10).explore()


class TestHtm:
    def test_txn_commits_atomically(self):
        # Another thread never sees x=1 with y=0 if both written in a txn.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Store("x", 1), Store("y", 1), TxEnd()],
                [Load("r0", "y"), Load("r1", "x")],
            )
        )
        for o in outcomes:
            if (0, 0) in o.committed and o.registers[(1, "r0")] == 1:
                assert o.registers[(1, "r1")] == 1

    def test_conflicting_write_aborts_txn(self):
        # The txn reads x, the other thread writes it mid-flight: some
        # schedule aborts the transaction.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Load("r0", "x"), Load("r1", "y"), TxEnd()],
                [Store("x", 1)],
            )
        )
        assert any(o.aborted for o in outcomes)
        assert any(o.committed for o in outcomes)

    def test_strong_isolation_nontxn_read(self):
        # A plain load of a location in a txn write-set aborts the txn.
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Store("x", 1), Store("y", 1), TxEnd()],
                [Load("r0", "x")],
            )
        )
        # Whenever the reader saw x==0 after the txn started writing, the
        # machine either ordered it before or aborted; in no outcome does
        # the reader see an uncommitted intermediate value.
        for o in outcomes:
            if o.registers[(1, "r0")] == 1:
                assert (0, 0) in o.committed

    def test_txn_reads_own_writes(self):
        outcomes = reachable_outcomes(
            prog([TxBegin(), Store("x", 1), Load("r0", "x"), TxEnd()])
        )
        committed = [o for o in outcomes if o.committed]
        assert committed
        assert regs(committed, 0, "r0") == {1}

    def test_aborted_txn_rolls_back(self):
        outcomes = reachable_outcomes(
            prog(
                [TxBegin(), Load("r0", "x"), TxEnd()],
                [Store("x", 5)],
            )
        )
        for o in outcomes:
            if (0, 0) in o.aborted:
                # Rolled-back register state: r0 never holds the txn read.
                assert o.registers.get((0, "r0"), 0) == 0
                assert o.memory.get("x") == 5


class TestConformance:
    """Soundness of the machine against the axiomatic model: every
    reachable outcome must be allowed by the x86 TM model."""

    NAMES = [
        "sb", "sb_mfence", "mp", "lb", "iriw", "2+2w", "corr",
        "fig2", "fig3a", "fig3b", "fig3c", "fig3d",
        "sb_txn_both", "sb_txn_one", "rmw_intervene",
    ]

    @pytest.mark.parametrize("name", NAMES)
    def test_machine_sound_wrt_model(self, name):
        test = to_litmus(CATALOG[name].execution, name, "x86")
        model_outcomes = all_outcomes(test, get_model("x86"))
        machine_outcomes = {
            o.key() for o in TsoMachine(test.program).explore()
        }
        extra = machine_outcomes - model_outcomes
        assert not extra, f"{name}: machine reaches {len(extra)} outcomes the model forbids"


class TestExclusivePairing:
    """Regressions found by the differential fuzzer: exclusive-load
    pairing must match the candidate expansion exactly."""

    def test_unpaired_exclusive_load_executes_as_plain_load(self):
        prog = Program(((Store("z", 1), Load("r0", "z", excl=True)),))
        outcomes = list(TsoMachine(prog).explore())
        assert {o.registers.get((0, "r0"), 0) for o in outcomes} == {1}

    def test_cross_location_exclusives_do_not_pair(self):
        prog = Program(
            ((Load("r0", "x", excl=True), Store("y", 1, excl=True)),)
        )
        outcomes = list(TsoMachine(prog).explore())
        # the load reads x (0 from memory), never y's old value
        assert {o.registers.get((0, "r0"), 0) for o in outcomes} == {0}

    def test_pairing_is_commit_aware(self):
        """An exclusive load inside an always-aborting transaction is
        rolled back; the post-transaction exclusive store must run
        unpaired instead of resurrecting its register write."""
        from repro.litmus.program import TxAbort
        from repro.litmus.test import LitmusTest, RegEq
        from repro.litmus.candidates import brute_force_observable

        prog = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "x", excl=True),
                    TxAbort(),
                    TxEnd(),
                    Store("x", 1, excl=True),
                ),
                (Store("x", 2),),
            )
        )
        outcomes = list(TsoMachine(prog).explore())
        assert {o.registers.get((0, "r0"), 0) for o in outcomes} == {0}
        test = LitmusTest("t", "x86", prog, (RegEq(0, "r0", 2),))
        assert not brute_force_observable(test, get_model("x86"))

    def test_straddling_pair_with_committed_txn_blocks(self):
        """A pair straddling a *committed* transaction cannot execute
        atomically (the read already happened — and may have been
        consumed — inside the transaction): the store blocks, so the
        commit path yields no outcome at all rather than a retroactive
        register rewrite the model forbids."""
        prog = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "x", excl=True),
                    TxEnd(),
                    Store("x", 1, excl=True),
                ),
            )
        )
        assert list(TsoMachine(prog).explore()) == []

    def test_conditional_abort_on_deferred_register(self):
        """A TxAbort condition must never observe a register the paired
        store would rewrite afterwards (review-found ⊆-escape)."""
        from repro.litmus.program import TxAbort
        from repro.litmus.candidates import brute_force_candidates

        prog = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "x", excl=True),
                    TxAbort("r0"),
                    TxEnd(),
                    Store("x", 1, excl=True),
                ),
                (Store("x", 5),),
            )
        )
        model = get_model("x86")
        machine = {o.key() for o in TsoMachine(prog).explore()}
        allowed = {
            c.outcome.key()
            for c in brute_force_candidates(prog)
            if model.consistent(c.execution)
        }
        assert machine <= allowed

    def test_lost_reservation_blocks_instead_of_misreading(self):
        """An intervening same-location access between the exclusive
        halves loses the reservation: the deferred read would otherwise
        observe the po-later write (a coRW1 violation the model
        forbids).  The path blocks, like the weak machine's failed
        store-exclusive, so only reservation-free outcomes remain."""
        prog = Program(
            (
                (Store("x", 1, excl=True),),
                (
                    Load("r0", "x", excl=True),
                    Store("x", 2),
                    Store("x", 3, excl=True),
                ),
            )
        )
        model = get_model("x86")
        machine = {o.key() for o in TsoMachine(prog).explore()}
        from repro.litmus.candidates import brute_force_candidates

        allowed = {
            c.outcome.key()
            for c in brute_force_candidates(prog)
            if model.consistent(c.execution)
        }
        assert machine <= allowed
        # The dirty pair's store never commits: x never ends at 3.
        assert all(
            dict(key[1]).get("x") != 3 for key in machine
        )

    def test_lock_inside_transaction_aborts_it(self):
        """A LOCK'd store inside a TSX transaction aborts it (Intel SDM
        16.3.8); the old direct-to-memory path leaked the write past
        the rollback."""
        prog = Program(
            (
                (
                    Store("x", 1),
                    Load("r0", "x", excl=True),
                    TxBegin(),
                    Store("x", 2, excl=True),
                    TxEnd(),
                ),
            )
        )
        outcomes = list(TsoMachine(prog).explore())
        assert outcomes
        for o in outcomes:
            assert o.memory.get("x") == 1  # the txn write rolled back
            assert (0, 0) in o.aborted
