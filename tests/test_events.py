"""Unit tests for events and labels."""

import pytest

from repro.core.events import Event, EventKind, Label, call, fence, read, write


class TestConstructors:
    def test_read(self):
        e = read("x", Label.ACQ)
        assert e.is_read and not e.is_write
        assert e.loc == "x"
        assert e.has(Label.ACQ)

    def test_write(self):
        e = write("y")
        assert e.is_write and e.is_access
        assert e.labels == frozenset()

    def test_fence(self):
        e = fence(Label.SYNC)
        assert e.is_fence
        assert e.fence_kind == Label.SYNC
        assert e.loc is None

    def test_call(self):
        e = call(Label.LOCK)
        assert e.is_call
        assert e.call_kind == Label.LOCK

    def test_read_requires_location(self):
        with pytest.raises(ValueError):
            Event(EventKind.READ, None)

    def test_fence_rejects_location(self):
        with pytest.raises(ValueError):
            Event(EventKind.FENCE, "x")

    def test_labels_coerced_to_frozenset(self):
        e = Event(EventKind.READ, "x", {"acq"})
        assert isinstance(e.labels, frozenset)


class TestDerived:
    def test_mode_single(self):
        assert read("x", Label.ATO, Label.ACQ).mode == Label.ACQ
        assert read("x").mode is None

    def test_mode_conflict(self):
        with pytest.raises(ValueError):
            read("x", Label.ACQ, Label.SC).mode

    def test_fence_kind_conflict(self):
        e = Event(EventKind.FENCE, None, frozenset({Label.SYNC, Label.DMB}))
        with pytest.raises(ValueError):
            e.fence_kind

    def test_call_kind_none_for_access(self):
        assert read("x").call_kind is None


class TestSurgery:
    def test_with_labels(self):
        e = read("x", Label.ACQ).with_labels(frozenset())
        assert e.labels == frozenset()
        assert e.loc == "x"

    def test_add_drop_labels(self):
        e = read("x").add_labels(Label.ACQ, Label.EXCL)
        assert e.has(Label.ACQ) and e.has(Label.EXCL)
        assert not e.drop_labels(Label.ACQ).has(Label.ACQ)

    def test_str(self):
        assert str(read("x")) == "R x"
        assert "acq" in str(read("x", Label.ACQ))
        assert str(fence(Label.SYNC)) == "F[sync]"

    def test_hashable(self):
        assert read("x") == read("x")
        assert {read("x"), read("x")} == {read("x")}
