"""Randomized equivalence suite: pruned enumeration vs. brute force.

The constraint-pruned incremental enumerator of
:mod:`repro.litmus.candidates` must be *semantics-preserving*:

* the full stream yields exactly the brute-force candidate set (as
  execution signatures and outcomes), with a ``coherent`` bit equal to
  ``acyclic(po_loc ∪ com)`` computed from first principles;
* the ``coherent_only`` stream is exactly the coherent subset;
* the postcondition-filtered stream is exactly the satisfying subset;
* :func:`~repro.litmus.candidates.observable` and
  :func:`~repro.litmus.candidates.all_outcomes` agree with the naive
  reference loop for every model.

Programs are generated pseudo-randomly over the full instruction
vocabulary: loads/stores with dependencies and exclusives, fences,
control branches, and committed/aborted/conditionally-aborting
transactions.  All randomness derives from ``REPRO_TEST_SEED`` (printed
in the pytest header), so any failure is reproducible from the log line
alone.
"""

import random

import pytest

from repro.conformance.generators import random_postcondition
from repro.conformance.seeds import derive_seed, reproducible_seed
from repro.litmus.candidates import (
    _enumerate_candidates,
    brute_force_candidates,
    brute_force_observable,
    brute_force_outcomes,
    all_outcomes,
    observable,
)
from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from repro.litmus.test import CoSeq, LitmusTest, MemEq, RegEq, TxnOk
from repro.models.registry import get_model

#: Hard cap on brute-force candidates per program (keeps the suite fast).
_MAX_CANDIDATES = 1500

#: Session seed: $REPRO_TEST_SEED or the fixed default.
_SEED = reproducible_seed()


def random_program(rng: random.Random) -> Program:
    """A small random program over the full instruction vocabulary."""
    locs = ["x", "y", "z"][: rng.randint(1, 3)]
    next_value = {loc: 0 for loc in locs}
    threads = []
    for _tid in range(rng.randint(1, 3)):
        instrs = []
        defined: list[str] = []
        in_txn = False
        reg_counter = 0
        for _ in range(rng.randint(1, 5)):
            roll = rng.random()
            loc = rng.choice(locs)
            if roll < 0.35:
                next_value[loc] += 1
                deps = {}
                if defined and rng.random() < 0.3:
                    deps["data_dep"] = (rng.choice(defined),)
                if defined and rng.random() < 0.15:
                    deps["addr_dep"] = (rng.choice(defined),)
                instrs.append(
                    Store(
                        loc,
                        next_value[loc],
                        excl=rng.random() < 0.1,
                        **deps,
                    )
                )
            elif roll < 0.7:
                reg = f"r{reg_counter}"
                reg_counter += 1
                deps = {}
                if defined and rng.random() < 0.2:
                    deps["addr_dep"] = (rng.choice(defined),)
                instrs.append(
                    Load(reg, loc, excl=rng.random() < 0.1, **deps)
                )
                defined.append(reg)
            elif roll < 0.78:
                instrs.append(
                    Fence(rng.choice(["mfence", "sync", "lwsync", "dmb"]))
                )
            elif roll < 0.84 and defined:
                instrs.append(CtrlBranch((rng.choice(defined),)))
            elif roll < 0.94 and not in_txn:
                instrs.append(TxBegin(atomic=rng.random() < 0.3))
                in_txn = True
            elif in_txn:
                if rng.random() < 0.3:
                    reg = rng.choice(defined) if (
                        defined and rng.random() < 0.7
                    ) else None
                    instrs.append(TxAbort(reg))
                instrs.append(TxEnd())
                in_txn = False
        if in_txn:
            instrs.append(TxEnd())
        if instrs:
            threads.append(tuple(instrs))
    if not threads:
        threads.append((Store("x", 1),))
        next_value.setdefault("x", 0)
        next_value["x"] = max(next_value.get("x", 0), 1)
    return Program(tuple(threads))


def _corpus(n: int, seed: int = _SEED):
    """Deterministic corpus of (program, brute-force candidate list)."""
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        program = random_program(rng)
        brute = []
        for candidate in brute_force_candidates(program):
            brute.append(candidate)
            if len(brute) > _MAX_CANDIDATES:
                break
        else:
            out.append((program, brute))
    return out


CORPUS = _corpus(30)


def _key(candidate):
    return (
        candidate.execution.signature(),
        candidate.outcome.key(),
        candidate.coherent,
    )


class TestCandidateSetEquivalence:
    def test_full_stream_matches_brute_force(self):
        """Same signatures, outcomes, AND coherence bits (the pruned
        enumerator's pattern-based bit must equal the from-first-
        principles ``acyclic(po_loc ∪ com)``)."""
        for program, brute in CORPUS:
            new = list(map(_key, _enumerate_candidates(program)))
            old = list(map(_key, brute))
            # Keys are unique per candidate (rf/co/commit choices pin the
            # signature and outcome), so set equality plus equal counts
            # is multiset equality.
            assert len(new) == len(old), program
            assert set(new) == set(old), program

    def test_coherent_only_stream_is_the_coherent_subset(self):
        for program, brute in CORPUS:
            pruned = list(
                map(_key, _enumerate_candidates(program, coherent_only=True))
            )
            expected = [_key(c) for c in brute if c.coherent]
            assert len(pruned) == len(expected), program
            assert set(pruned) == set(expected), program

    def test_filtered_stream_is_the_satisfying_subset(self):
        rng = random.Random(derive_seed(_SEED, "equivalence-filtered"))
        for program, brute in CORPUS:
            post = random_postcondition(rng, program)
            test = LitmusTest("rand", "neutral", program, post)
            filtered = list(
                map(_key, _enumerate_candidates(program, postcondition=post))
            )
            expected = [_key(c) for c in brute if test.check(c.outcome)]
            assert len(filtered) == len(expected), (program, post)
            assert set(filtered) == set(expected), (program, post)


# The reference semantics now live next to the enumerators themselves
# (they double as the differential fuzzer's ground-truth checker).
_reference_observable = brute_force_observable
_reference_outcomes = brute_force_outcomes


class TestVerdictEquivalence:
    MODELS = ["sc", "tsc", "x86", "power", "armv8", "riscv", "cpp"]

    def test_observable_matches_reference(self):
        rng = random.Random(derive_seed(_SEED, "equivalence-observable"))
        models = [get_model(name) for name in self.MODELS]
        models.append(get_model("x86", tm=False))
        for program, _ in CORPUS[:12]:
            post = random_postcondition(rng, program)
            test = LitmusTest("rand", "neutral", program, post)
            for model in models:
                assert observable(test, model) == _reference_observable(
                    test, model
                ), (program, post, model.name)

    def test_observable_matches_reference_cat(self):
        from repro.cat.model import load_cat_model

        rng = random.Random(derive_seed(_SEED, "equivalence-cat"))
        model = load_cat_model("x86")
        assert model.enforces_coherence
        for program, _ in CORPUS[:4]:
            post = random_postcondition(rng, program)
            test = LitmusTest("rand", "neutral", program, post)
            assert observable(test, model) == _reference_observable(
                test, model
            ), (program, post)

    def test_all_outcomes_matches_reference(self):
        for program, _ in CORPUS[:6]:
            test = LitmusTest("rand", "neutral", program, ())
            for name in ("x86", "sc", "armv8"):
                model = get_model(name)
                assert all_outcomes(test, model) == _reference_outcomes(
                    test, model
                ), (program, name)
