"""Tests for the experiment harnesses (small bounds)."""

import pytest

from repro.experiments.ablation import format_ablation, run_ablation
from repro.experiments.fig7 import Fig7Series, format_fig7, run_fig7
from repro.experiments.rtl import format_rtl, run_rtl_check
from repro.experiments.table1 import (
    Table1,
    format_table1,
    run_table1,
    run_table1_cell,
)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3
from repro.synth.generate import EnumerationSpace


class TestTable1:
    def test_cell_x86_small(self):
        row, result = run_table1_cell("x86", 3)
        assert row.forbid_total == 4
        # Headline shape: no Forbid test is ever observed on hardware.
        assert row.forbid_seen == 0
        # Most Allow tests are observable.
        assert row.allow_seen >= row.allow_total * 0.5
        assert row.exhausted

    def test_cell_power_small(self):
        row, _ = run_table1_cell("power", 3, time_budget=120)
        assert row.forbid_seen == 0
        assert row.allow_total > 0

    def test_format(self):
        table = run_table1(bounds={"x86": [2]}, time_budget=60)
        text = format_table1(table)
        assert "Forbid" in text and "Allow" in text
        assert "x86" in text


class TestTable2:
    def test_rows_and_verdicts(self):
        rows = run_table2(
            monotonicity_bounds={"x86": 2, "power": 2, "armv8": 2, "cpp": 2},
            compilation_bound=2,
            time_budget=60,
        )
        verdicts = {(r.prop, r.target): r.verdict for r in rows}
        assert verdicts[("Monotonicity", "power")] == "yes"
        assert verdicts[("Monotonicity", "armv8")] == "yes"
        assert verdicts[("Monotonicity", "x86")] == "no"
        assert verdicts[("Compilation", "x86")] == "no"
        assert verdicts[("Lock elision", "armv8")] == "yes"
        assert verdicts[("Lock elision", "armv8 (fixed)")] == "no"
        assert verdicts[("Lock elision", "x86")] == "no"
        text = format_table2(rows)
        assert "Lock elision" in text and "Paper" in text


class TestTable3:
    def test_contents(self):
        text = format_table3()
        assert "TxnReadsLockFree" in text
        assert "rmw" in text
        assert "ARMv8 (fixed)" in text
        assert "dmb" in text


class TestFig7:
    def test_series_and_plot(self):
        series = run_fig7(n_events=3, time_budget=60)
        assert series.discovery_times
        curve = series.cumulative(points=10)
        assert curve[0][1] <= curve[-1][1]
        assert curve[-1][1] == 100.0
        text = format_fig7(series)
        assert "100%" in text and "time" in text

    def test_empty_series(self):
        series = Fig7Series("x86", 2, total_time=1.0, discovery_times=[])
        assert series.cumulative() == [(0.0, 0.0), (1.0, 0.0)]
        assert series.half_found_fraction() == 0.0


class TestRtl:
    def test_bug_found_in_buggy_rtl(self):
        report = run_rtl_check(n_events=4, time_budget=240)
        assert report.suite_size > 0
        assert report.bug_found
        assert not report.fixed_violations
        assert "BUG FOUND" in format_rtl(report)


class TestAblation:
    def test_ours_strictly_stronger(self):
        report = run_ablation(n_events=3)
        assert report.only_dongol_forbids == 0
        assert report.only_ours_forbids > 0
        assert report.by_axiom  # ordering axioms account for the gap
        text = format_ablation(report)
        assert "only ours forbids" in text
