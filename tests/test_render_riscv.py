"""Tests for the RISC-V litmus renderer."""

import pytest

from repro.catalog import CATALOG
from repro.core.events import Label
from repro.litmus.from_execution import to_litmus
from repro.litmus.program import (
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from repro.litmus.render import render, render_riscv
from repro.litmus.test import LitmusTest


def _render(prog: Program) -> str:
    return render_riscv(LitmusTest("t", "riscv", prog, ()))


class TestInstructions:
    def test_plain_load_store(self):
        text = _render(Program(((Load("r0", "x"), Store("y", 1)),)))
        assert "lw x5,0(x)" in text
        assert "li x28,1" in text and "sw x28,0(y)" in text

    def test_fence_flavours(self):
        for kind, mnemonic in [
            (Label.FENCE_RW_RW, "fence rw,rw"),
            (Label.FENCE_R_RW, "fence r,rw"),
            (Label.FENCE_RW_W, "fence rw,w"),
            (Label.FENCE_TSO, "fence.tso"),
        ]:
            text = _render(
                Program(((Store("x", 1), Fence(kind), Store("y", 1)),))
            )
            assert mnemonic in text

    def test_exclusive_pair(self):
        prog = Program(
            (
                (
                    Load("r0", "m", labels={Label.ACQ}, excl=True),
                    Store("m", 1, excl=True),
                ),
            )
        )
        text = _render(prog)
        assert "lr.w.aq" in text
        assert "sc.w" in text

    def test_release_store_uses_amoswap(self):
        text = _render(Program(((Store("x", 1, labels={Label.REL}),),)))
        assert "amoswap.w.rl" in text

    def test_acquire_load_uses_amoor(self):
        text = _render(Program(((Load("r0", "x", labels={Label.ACQ}),),)))
        assert "amoor.w.aq" in text

    def test_transaction_brackets(self):
        prog = Program(
            ((TxBegin(), Store("x", 1), TxEnd()),)
        )
        text = _render(prog)
        assert "tx.begin fail0" in text
        assert "tx.end" in text

    def test_conditional_abort(self):
        prog = Program(
            ((TxBegin(), Load("r0", "m"), TxAbort("r0"), TxEnd()),)
        )
        text = _render(prog)
        assert "beqz x5,L0" in text
        assert "tx.abort" in text

    def test_data_dependency_via_xor(self):
        prog = Program(
            ((Load("r0", "x"), Store("y", 1, data_dep=("r0",))),)
        )
        text = _render(prog)
        assert "xor" in text and "addi" in text

    def test_address_dependency(self):
        prog = Program(
            ((Load("r0", "x"), Load("r1", "y", addr_dep=("r0",))),)
        )
        text = _render(prog)
        assert "xor" in text and "add " in text


class TestDispatch:
    def test_render_dispatches_riscv(self):
        test = to_litmus(CATALOG["mp"].execution, "mp", "riscv")
        text = render(test)
        assert text.startswith("RISCV mp")
        assert "exists" in text

    def test_synthesized_tests_render(self):
        from repro.synth.synthesis import synthesize

        result = synthesize("riscv", 2, time_budget=30.0)
        for x in result.forbid:
            text = render(to_litmus(x, "f", "riscv"))
            assert "RISCV" in text
