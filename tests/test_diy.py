"""Tests for the Diy-style critical-cycle generator (paper §9 related
work: Diy "generates litmus tests by enumerating relaxations of SC")."""

import pytest

from repro.catalog import CATALOG
from repro.models.registry import get_model
from repro.synth.diy import (
    CLASSIC_CYCLES,
    COM_EDGES,
    Cycle,
    DEP_EDGES,
    FENCE_EDGES,
    PO_EDGES,
    TXN_EDGES,
    classic,
    cycle_execution,
    edge,
    enumerate_cycles,
    interesting_cycles,
)


class TestEdges:
    def test_lookup(self):
        assert edge("Rfe").com == "rf"
        assert edge("PodWR").src == "W" and edge("PodWR").dst == "R"
        assert edge("PosRR").same_loc
        assert edge("DpAddrdR").dep == "addr"
        assert edge("SyncdWW").fence == "sync"
        assert edge("TxndWR").txn

    def test_unknown_edge(self):
        with pytest.raises(ValueError, match="unknown edge"):
            edge("PodXY")

    def test_vocabularies_disjoint_names(self):
        groups = [COM_EDGES, PO_EDGES, DEP_EDGES, FENCE_EDGES, TXN_EDGES]
        names = [n for g in groups for n in g]
        assert len(names) == len(set(names))

    def test_str(self):
        assert str(edge("Fre")) == "Fre"


class TestCycleValidity:
    def test_kind_mismatch_rejected(self):
        # PodWR ends at R; Wse starts at W.
        cycle = Cycle.of("PodWR", "Wse")
        assert not cycle.is_valid()
        assert any("ends at R" in p for p in cycle.problems())

    def test_po_only_rejected(self):
        cycle = Cycle.of("PodWR", "PodRW")
        assert not cycle.is_valid()
        assert any("never leaves" in p for p in cycle.problems())

    def test_classics_valid(self):
        for name, cycle in CLASSIC_CYCLES.items():
            assert cycle.is_valid(), name

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            Cycle(())

    def test_invalid_cycle_not_realisable(self):
        with pytest.raises(ValueError):
            cycle_execution(Cycle.of("PodWR", "Wse"))

    def test_canonical_rotation(self):
        a = Cycle.of("PodWR", "Fre", "PodWR", "Fre")
        b = Cycle.of("Fre", "PodWR", "Fre", "PodWR")
        assert a.canonical() == b.canonical()

    def test_str_lists_edges(self):
        assert str(Cycle.of("PodWR", "Fre")) == "PodWR Fre"


class TestClassicRealisation:
    def test_shapes(self):
        for name, n_events, n_threads, n_locs in [
            ("sb", 4, 2, 2),
            ("mp", 4, 2, 2),
            ("lb", 4, 2, 2),
            ("wrc", 5, 3, 2),
            ("iriw", 6, 4, 2),
            ("2+2w", 4, 2, 2),
        ]:
            x = classic(name)
            assert x.n == n_events, name
            assert len(x.threads) == n_threads, name
            assert len(x.locations) == n_locs, name

    def test_all_classics_sc_forbidden(self):
        sc = get_model("sc")
        for name in CLASSIC_CYCLES:
            assert not sc.consistent(classic(name)), name

    def test_well_formed(self):
        from repro.core.wellformed import check as check_wellformed

        for name in CLASSIC_CYCLES:
            assert not check_wellformed(classic(name)), name

    def test_x86_verdicts(self):
        x86 = get_model("x86")
        assert x86.consistent(classic("sb"))  # TSO allows SB
        assert not x86.consistent(classic("mp"))
        assert not x86.consistent(classic("iriw"))

    def test_power_verdicts(self):
        power = get_model("power")
        assert power.consistent(classic("sb"))
        assert power.consistent(classic("mp"))
        assert power.consistent(classic("lb"))
        assert power.consistent(classic("iriw"))

    def test_riscv_verdicts(self):
        riscv = get_model("riscv")
        assert riscv.consistent(classic("sb"))
        assert riscv.consistent(classic("mp"))

    def test_verdicts_match_catalog_classics(self):
        """The diy-built shapes get the same verdicts as the hand-built
        catalog entries of the same name, under every expected model."""
        pairs = [("sb", "sb"), ("mp", "mp"), ("lb", "lb"), ("iriw", "iriw")]
        for diy_name, cat_name in pairs:
            if cat_name not in CATALOG:
                continue
            entry = CATALOG[cat_name]
            x = classic(diy_name)
            for model_name, expected in entry.expected.items():
                model = get_model(model_name)
                assert model.consistent(x) == expected, (
                    f"{diy_name} under {model_name}"
                )


class TestDecorations:
    def test_fenced_sb_forbidden_on_x86(self):
        x = cycle_execution(Cycle.of("MFencedWR", "Fre", "MFencedWR", "Fre"))
        assert x.fences, "fence events must be materialised"
        assert not get_model("x86").consistent(x)

    def test_sync_mp_forbidden_on_power(self):
        x = cycle_execution(Cycle.of("SyncdWW", "Rfe", "SyncdRR", "Fre"))
        assert not get_model("power").consistent(x)

    def test_lwsync_sb_still_allowed_on_power(self):
        x = cycle_execution(Cycle.of("LwSyncdWR", "Fre", "LwSyncdWR", "Fre"))
        assert get_model("power").consistent(x)

    def test_dep_mp_forbidden_on_armv8(self):
        x = cycle_execution(Cycle.of("DmbdWW", "Rfe", "DpAddrdR", "Fre"))
        assert not get_model("armv8").consistent(x)

    def test_dep_lb_forbidden_on_power(self):
        x = cycle_execution(Cycle.of("DpDatadW", "Rfe", "DpDatadW", "Rfe"))
        assert not get_model("power").consistent(x)

    def test_txn_sb_forbidden_with_tm_only(self):
        x = cycle_execution(Cycle.of("TxndWR", "Fre", "TxndWR", "Fre"))
        assert len(x.txns) == 2
        assert not get_model("x86").consistent(x)
        assert get_model("x86", tm=False).consistent(x)

    def test_txn_decoration_spans_are_contiguous(self):
        from repro.core.wellformed import check as check_wellformed

        x = cycle_execution(Cycle.of("TxndWW", "Wse", "TxndWW", "Wse"))
        assert not check_wellformed(x)

    def test_fre_after_rfe_forces_coherence(self):
        # WRC-style: the fr source reads a write, so the fr target must
        # be co-later than that write.
        x = cycle_execution(Cycle.of("Rfe", "PosRR", "Fre", "PodWW"))
        # the read chain is on one location; co must order the rf source
        # before the fr target.
        assert any(len(order) == 2 for order in x.co.values())


class TestEnumeration:
    VOCAB = ["PodWR", "PodWW", "PodRR", "PodRW", "Rfe", "Fre", "Wse"]

    def test_all_valid_and_canonical(self):
        cycles = list(enumerate_cycles(self.VOCAB, 4))
        assert cycles
        for cycle in cycles:
            assert cycle.is_valid()
            assert cycle == cycle.canonical()

    def test_no_rotation_duplicates(self):
        keys = {
            tuple(e.name for e in c.edges)
            for c in enumerate_cycles(self.VOCAB, 4)
        }
        cycles = list(enumerate_cycles(self.VOCAB, 4))
        assert len(keys) == len(cycles)

    def test_classics_discovered(self):
        found = {str(c) for c in enumerate_cycles(self.VOCAB, 4)}
        assert str(CLASSIC_CYCLES["sb"].canonical()) in found
        assert str(CLASSIC_CYCLES["mp"].canonical()) in found
        assert str(CLASSIC_CYCLES["lb"].canonical()) in found

    def test_min_length_respected(self):
        for cycle in enumerate_cycles(self.VOCAB, 4, min_length=3):
            assert len(cycle.edges) >= 3

    def test_interesting_cycles_forbidden(self):
        x86 = get_model("x86")
        pairs = list(interesting_cycles(self.VOCAB, 4, x86))
        assert pairs
        for cycle, execution in pairs:
            assert not x86.consistent(execution), str(cycle)

    def test_interesting_excludes_allowed(self):
        x86 = get_model("x86")
        names = {str(c) for c, _ in interesting_cycles(self.VOCAB, 4, x86)}
        # SB is TSO-allowed, so its cycle must not be "interesting".
        assert str(CLASSIC_CYCLES["sb"].canonical()) not in names

    def test_every_realisation_is_wellformed(self):
        from repro.core.wellformed import check as check_wellformed

        for cycle in enumerate_cycles(self.VOCAB + ["PosWW", "PosRR"], 3):
            assert not check_wellformed(cycle_execution(cycle)), str(cycle)
