"""Unit tests for well-formedness checking."""

import pytest

from repro.core.builder import ExecutionBuilder
from repro.core.events import Event, EventKind, Label, call, read, write
from repro.core.execution import Execution, Transaction
from repro.core.wellformed import (
    WellformednessError,
    check,
    check_cpp,
    is_wellformed,
    require,
)


def simple():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    r = t1.read("x")
    b.rf(w, r)
    return b.build()


class TestStructure:
    def test_valid(self):
        assert is_wellformed(simple())
        require(simple())  # must not raise

    def test_event_in_no_thread(self):
        x = Execution(events=[write("x"), write("y")], threads=[[0]])
        assert any("not in any thread" in p for p in check(x))

    def test_event_in_two_threads(self):
        x = Execution(events=[write("x")], threads=[[0], [0]])
        assert any("several threads" in p for p in check(x))

    def test_require_raises(self):
        x = Execution(events=[write("x")], threads=[[0], [0]])
        with pytest.raises(WellformednessError):
            require(x)


class TestEdgeChecks:
    def test_dep_from_non_read(self):
        x = Execution(
            events=[write("x"), write("y")],
            threads=[[0, 1]],
            data=[(0, 1)],
        )
        assert any("does not start at a read" in p for p in check(x))

    def test_dep_outside_po(self):
        x = Execution(
            events=[read("x"), write("y")],
            threads=[[0], [1]],
            data=[(0, 1)],
        )
        assert any("not within po" in p for p in check(x))

    def test_data_to_read(self):
        x = Execution(
            events=[read("x"), read("y")],
            threads=[[0, 1]],
            data=[(0, 1)],
        )
        assert any("target a write" in p for p in check(x))

    def test_rmw_same_location(self):
        x = Execution(
            events=[read("x"), write("y")],
            threads=[[0, 1]],
            rmw=[(0, 1)],
        )
        assert any("different locations" in p for p in check(x))

    def test_rmw_backwards(self):
        x = Execution(
            events=[write("x"), read("x")],
            threads=[[0, 1]],
            rmw=[(1, 0)],
        )
        assert any("not within po" in p for p in check(x))

    def test_rf_wrong_location(self):
        x = Execution(
            events=[write("x"), read("y")],
            threads=[[0], [1]],
            rf={1: 0},
        )
        assert any("different locations" in p for p in check(x))

    def test_rf_from_read(self):
        x = Execution(
            events=[read("x"), read("x")],
            threads=[[0], [1]],
            rf={1: 0},
        )
        assert any("not a write" in p for p in check(x))


class TestCoherenceChecks:
    def test_co_must_cover_location_writes(self):
        x = Execution(
            events=[write("x"), write("x")],
            threads=[[0], [1]],
            co={"x": (0,)},
        )
        assert any("exactly the writes" in p for p in check(x))

    def test_multi_write_location_needs_co(self):
        x = Execution(
            events=[write("x"), write("x")],
            threads=[[0], [1]],
        )
        assert any("no co order" in p for p in check(x))

    def test_co_repeats(self):
        x = Execution(
            events=[write("x"), write("x")],
            threads=[[0], [1]],
            co={"x": (0, 0)},
        )
        assert any("repeats" in p for p in check(x))


class TestTxnChecks:
    def test_txn_contiguous(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.write("y")
        d = t0.write("z")
        b.txn([a, d])
        assert any("not contiguous" in p for p in check(b.build()))

    def test_txn_cross_thread(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        c = t1.write("y")
        b.txn([a, c])
        assert any("several threads" in p for p in check(b.build()))

    def test_txn_overlap(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.write("y")
        b.txn([a, c])
        b.txn([c])
        assert any("overlaps" in p for p in check(b.build()))


class TestCallChecks:
    def test_calls_need_flag(self):
        x = Execution(events=[call(Label.LOCK), call(Label.UNLOCK)], threads=[[0, 1]])
        assert check(x) and not check(x, allow_calls=True)

    def test_unmatched_unlock(self):
        x = Execution(events=[call(Label.UNLOCK)], threads=[[0]])
        assert any("unmatched unlock" in p for p in check(x, allow_calls=True))

    def test_lock_without_unlock(self):
        x = Execution(events=[call(Label.LOCK)], threads=[[0]])
        assert any("without unlock" in p for p in check(x, allow_calls=True))

    def test_mismatched_flavours(self):
        x = Execution(
            events=[call(Label.LOCK), call(Label.UNLOCK_T)], threads=[[0, 1]]
        )
        assert any("unmatched" in p for p in check(x, allow_calls=True))

    def test_nested_lock(self):
        x = Execution(
            events=[call(Label.LOCK), call(Label.LOCK_T)], threads=[[0, 1]]
        )
        assert any("nested" in p for p in check(x, allow_calls=True))


class TestCppChecks:
    def test_atomic_without_mode(self):
        b = ExecutionBuilder()
        b.thread().read("x", Label.ATO)
        assert any("without a memory order" in p for p in check_cpp(b.build()))

    def test_mode_without_atomic(self):
        b = ExecutionBuilder()
        b.thread().read("x", Label.ACQ)
        assert any("non-atomic access" in p for p in check_cpp(b.build()))

    def test_atomic_txn_with_atomic_op(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.atomic_write("x", Label.RLX)
        b.txn([a], atomic=True)
        assert any("contains atomic" in p for p in check_cpp(b.build()))

    def test_clean_cpp(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        t0.atomic_write("y", Label.REL)
        assert not check_cpp(b.build())
