"""Unit tests for the .cat parser: precedence, statements, errors."""

import pytest

from repro.cat.ast import (
    Apply,
    Binary,
    Check,
    EmptyRel,
    Include,
    Let,
    LetRec,
    Lift,
    Name,
    Postfix,
    SetLiteral,
    Show,
    Unary,
)
from repro.cat.errors import CatSyntaxError
from repro.cat.parser import parse, parse_expression


class TestExpressionPrecedence:
    def test_union_is_loosest(self):
        # a | b ; c  ==  a | (b ; c)
        expr = parse_expression("a | b ; c")
        assert isinstance(expr, Binary) and expr.op == "|"
        assert isinstance(expr.right, Binary) and expr.right.op == ";"

    def test_intersection_binds_tighter_than_union(self):
        expr = parse_expression("a | b & c")
        assert expr.op == "|"
        assert isinstance(expr.right, Binary) and expr.right.op == "&"

    def test_difference_binds_tighter_than_intersection(self):
        expr = parse_expression("a & b \\ c")
        assert expr.op == "&"
        assert isinstance(expr.right, Binary) and expr.right.op == "\\"

    def test_seq_binds_tighter_than_difference(self):
        # lwsync \ a ; b  ==  lwsync \ (a ; b)
        expr = parse_expression("lwsync \\ a ; b")
        assert expr.op == "\\"
        assert isinstance(expr.right, Binary) and expr.right.op == ";"

    def test_cross_binds_tighter_than_seq(self):
        # a ; W * R  ==  a ; (W * R)
        expr = parse_expression("a ; W * R")
        assert expr.op == ";"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_left_associativity_of_difference(self):
        # a \ b \ c  ==  (a \ b) \ c
        expr = parse_expression("a \\ b \\ c")
        assert expr.op == "\\"
        assert isinstance(expr.left, Binary) and expr.left.op == "\\"

    def test_complement_binds_tighter_than_cross(self):
        expr = parse_expression("~a * b")
        assert isinstance(expr, Binary) and expr.op == "*"
        assert isinstance(expr.left, Unary)

    def test_postfix_binds_tightest(self):
        expr = parse_expression("~a^+")
        assert isinstance(expr, Unary)
        assert isinstance(expr.body, Postfix) and expr.body.op == "^+"


class TestExpressionForms:
    def test_name(self):
        expr = parse_expression("po")
        assert isinstance(expr, Name) and expr.ident == "po"

    def test_lift(self):
        expr = parse_expression("[W]")
        assert isinstance(expr, Lift)
        assert isinstance(expr.body, Name)

    def test_zero_is_empty_relation(self):
        assert isinstance(parse_expression("0"), EmptyRel)

    def test_braces_are_empty_set(self):
        assert isinstance(parse_expression("{}"), SetLiteral)

    def test_nonzero_number_rejected(self):
        with pytest.raises(CatSyntaxError, match="only numeric literal"):
            parse_expression("2")

    def test_bare_plus_postfix(self):
        expr = parse_expression("po+")
        assert isinstance(expr, Postfix) and expr.op == "^+"

    def test_bare_opt_postfix(self):
        expr = parse_expression("rfe?")
        assert isinstance(expr, Postfix) and expr.op == "^?"

    def test_inverse(self):
        expr = parse_expression("rf^-1")
        assert isinstance(expr, Postfix) and expr.op == "^-1"

    def test_stacked_postfix(self):
        expr = parse_expression("a^-1^+")
        assert expr.op == "^+"
        assert isinstance(expr.body, Postfix) and expr.body.op == "^-1"

    def test_application(self):
        expr = parse_expression("fencerel(SYNC)")
        assert isinstance(expr, Apply)
        assert expr.func == "fencerel" and len(expr.args) == 1

    def test_application_two_args(self):
        expr = parse_expression("weaklift(com, stxn)")
        assert isinstance(expr, Apply) and len(expr.args) == 2

    def test_parenthesised(self):
        expr = parse_expression("(a | b) ; c")
        assert expr.op == ";"
        assert isinstance(expr.left, Binary) and expr.left.op == "|"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CatSyntaxError):
            parse_expression("a b")


class TestStatements:
    def test_title(self):
        model = parse('"my model"\nlet x = po')
        assert model.title == "my model"
        assert len(model.statements) == 1

    def test_let(self):
        (stmt,) = parse("let hb = po | rf").statements
        assert isinstance(stmt, Let)
        assert stmt.name == "hb" and stmt.params == ()

    def test_let_function(self):
        (stmt,) = parse("let lift2(r, t) = t; r; t").statements
        assert isinstance(stmt, Let)
        assert stmt.params == ("r", "t")

    def test_let_rec(self):
        (stmt,) = parse("let rec a = b and b = a").statements
        assert isinstance(stmt, LetRec)
        assert [name for name, _ in stmt.bindings] == ["a", "b"]

    def test_check_with_name(self):
        (stmt,) = parse("acyclic po | com as Order").statements
        assert isinstance(stmt, Check)
        assert stmt.kind == "acyclic" and stmt.name == "Order"
        assert not stmt.flag and not stmt.negated

    def test_check_auto_name(self):
        (stmt,) = parse("empty rmw").statements
        assert stmt.name.startswith("empty@")

    def test_flagged_negated_check(self):
        (stmt,) = parse("flag ~empty race as DataRace").statements
        assert stmt.flag and stmt.negated and stmt.kind == "empty"

    def test_irreflexive_check(self):
        (stmt,) = parse("irreflexive hb ; com as HbCom").statements
        assert stmt.kind == "irreflexive"

    def test_include(self):
        (stmt,) = parse('include "stdlib.cat"').statements
        assert isinstance(stmt, Include)
        assert stmt.filename == "stdlib.cat"

    def test_show_is_parsed_and_kept_inert(self):
        (stmt,) = parse("show ppo, fence").statements
        assert isinstance(stmt, Show)
        assert stmt.names == ("ppo", "fence")

    def test_unshow(self):
        (stmt,) = parse("unshow po").statements
        assert isinstance(stmt, Show)

    def test_statement_required(self):
        with pytest.raises(CatSyntaxError, match="expected a statement"):
            parse("po | rf")

    def test_multiline_model(self):
        model = parse(
            """
            "two statements"
            let hb = po | rf
            acyclic hb as Order
            """
        )
        assert len(model.statements) == 2

    def test_error_position(self):
        with pytest.raises(CatSyntaxError) as exc:
            parse("let x = ")
        assert exc.value.line == 1
