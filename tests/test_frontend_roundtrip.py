"""Corpus-wide round-trip property: ``loads(dumps(p)) == p``.

Runs over every file in ``tests/corpus/`` and over seeded
fuzzer-generated programs, in both serialisations:

* the neutral format (:mod:`repro.litmus.parse`);
* the herd dialect of the test's architecture
  (:mod:`repro.litmus.frontend`).

Seeded via ``$REPRO_TEST_SEED`` like every randomized suite.
"""

import pathlib
import random

import pytest

from repro.conformance.budget import get_budget
from repro.conformance.generators import generate_suite, random_litmus
from repro.conformance.seeds import derive_seed
from repro.litmus.frontend import DIALECTS, dump_dialect, load_dialect
from repro.litmus.parse import dumps, loads

CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"
ALL_FILES = sorted(
    p.relative_to(CORPUS).as_posix() for p in CORPUS.glob("*/*.litmus")
)


@pytest.mark.parametrize("relpath", ALL_FILES)
def test_corpus_roundtrip_both_formats(relpath):
    test = load_dialect((CORPUS / relpath).read_text(encoding="utf-8"))
    assert loads(dumps(test)) == test, f"{relpath}: neutral round-trip"
    assert load_dialect(dump_dialect(test)) == test, (
        f"{relpath}: dialect round-trip"
    )


@pytest.mark.parametrize("arch", sorted(DIALECTS))
def test_random_programs_roundtrip_both_formats(arch, test_seed):
    rng = random.Random(derive_seed(test_seed, f"frontend-rt-{arch}"))
    budget = get_budget("small")
    for i in range(60):
        test = random_litmus(arch, rng, budget, f"rt-{i}")
        assert loads(dumps(test)) == test
        assert load_dialect(dump_dialect(test)) == test


def test_cpp_random_programs_roundtrip_neutral(test_seed):
    """C++ has no herd dialect; its fuzzer stream still must round-trip
    through the neutral format (atomic{} brackets, memory orders)."""
    rng = random.Random(derive_seed(test_seed, "frontend-rt-cpp"))
    budget = get_budget("small")
    for i in range(60):
        test = random_litmus("cpp", rng, budget, f"rt-{i}")
        assert loads(dumps(test)) == test


@pytest.mark.parametrize("arch", sorted(DIALECTS))
def test_fuzzer_suite_roundtrips(arch, test_seed):
    """Every test the fuzzer would actually emit (all streams, smoke
    budget) round-trips through both serialisations."""
    for item in generate_suite(arch, test_seed, "smoke"):
        assert loads(dumps(item.test)) == item.test, item.name
        try:
            herd = dump_dialect(item.test)
        except ValueError:
            # Catalog entries can carry constructs with no dialect
            # rendering (e.g. C++ memory orders on an x86 sweep);
            # those legitimately stay neutral-only.
            continue
        assert load_dialect(herd) == item.test, item.name
