"""Tests for the RISC-V RVWMO model and its TM extension.

The paper names RISC-V as a future target of its methodology (section 9);
these tests pin down the baseline RVWMO behaviours on the classic litmus
shapes, the TM axioms added by the paper's recipe, and the agreement
between the native model and ``riscvtm.cat``.
"""

import pytest

from repro.cat import load_cat_model
from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.registry import get_model
from repro.models.riscv import RiscV, riscv_ppo
from repro.synth.generate import EnumerationSpace, enumerate_executions


@pytest.fixture(scope="module")
def riscv():
    return get_model("riscv")


@pytest.fixture(scope="module")
def riscv_notm():
    return get_model("riscv", tm=False)


def sb(fence: str | None = None, txns: bool = False):
    """Store buffering, optionally fenced or fully transactional."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    if fence:
        t0.fence(fence)
    r0 = t0.read("y")
    c = t1.write("y")
    if fence:
        t1.fence(fence)
    r1 = t1.read("x")
    if txns:
        b.txn([a, r0])
        b.txn([c, r1])
    return b.build()


def mp(*, writer_fence=None, reader_fence=None, rel_acq=False, addr_dep=False):
    """Message passing with the stale-read outcome."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    if writer_fence:
        t0.fence(writer_fence)
    wy = t0.rel_write("y") if rel_acq else t0.write("y")
    ry = t1.acq_read("y") if rel_acq else t1.read("y")
    if reader_fence:
        t1.fence(reader_fence)
    rx = t1.read("x")
    if addr_dep:
        b.addr(ry, rx)
    b.rf(wy, ry)
    return b.build()


class TestBaselineClassics:
    def test_sb_allowed(self, riscv):
        assert riscv.consistent(sb())

    def test_sb_with_full_fence_forbidden(self, riscv):
        assert not riscv.consistent(sb(Label.FENCE_RW_RW))

    def test_sb_with_rw_w_fence_still_allowed(self, riscv):
        # fence rw,w does not order the later load.
        assert riscv.consistent(sb(Label.FENCE_RW_W))

    def test_mp_allowed_unfenced(self, riscv):
        assert riscv.consistent(mp())

    def test_mp_writer_fence_alone_insufficient(self, riscv):
        assert riscv.consistent(mp(writer_fence=Label.FENCE_RW_W))

    def test_mp_fenced_both_sides_forbidden(self, riscv):
        assert not riscv.consistent(
            mp(writer_fence=Label.FENCE_RW_W, reader_fence=Label.FENCE_R_RW)
        )

    def test_mp_release_acquire_forbidden(self, riscv):
        assert not riscv.consistent(mp(rel_acq=True))

    def test_mp_writer_fence_reader_addr_dep_forbidden(self, riscv):
        assert not riscv.consistent(
            mp(writer_fence=Label.FENCE_RW_W, addr_dep=True)
        )

    def test_fence_tso_forbids_mp(self, riscv):
        # fence.tso orders W->W on the writer and R->R on the reader.
        assert not riscv.consistent(
            mp(writer_fence=Label.FENCE_TSO, reader_fence=Label.FENCE_TSO)
        )

    def test_fence_tso_allows_sb(self, riscv):
        # fence.tso does not order W->R, the TSO relaxation.
        assert riscv.consistent(sb(Label.FENCE_TSO))

    def test_lb_allowed(self, riscv):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("y")
        w0 = t0.write("x")
        r1 = t1.read("x")
        w1 = t1.write("y")
        b.rf(w0, r1)
        b.rf(w1, r0)
        assert riscv.consistent(b.build())

    def test_lb_with_data_deps_forbidden(self, riscv):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("y")
        w0 = t0.write("x")
        r1 = t1.read("x")
        w1 = t1.write("y")
        b.rf(w0, r1)
        b.rf(w1, r0)
        b.data(r0, w0)
        b.data(r1, w1)
        assert not riscv.consistent(b.build())

    def test_lb_with_ctrl_deps_forbidden(self, riscv):
        # Rule 11: control dependencies into stores are preserved
        # (no RVWMO analogue of the Power ctrl+isync requirement).
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("y")
        w0 = t0.write("x")
        r1 = t1.read("x")
        w1 = t1.write("y")
        b.rf(w0, r1)
        b.rf(w1, r0)
        b.ctrl(r0, w0)
        b.ctrl(r1, w1)
        assert not riscv.consistent(b.build())

    def test_corr_forbidden_by_coherence(self, riscv):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        ra = t1.read("x")
        rb = t1.read("x")
        b.rf(w2, ra)
        b.rf(w1, rb)
        assert not riscv.consistent(b.build())

    def test_iriw_plain_allowed(self, riscv):
        assert riscv.consistent(self._iriw(fence=None))

    def test_iriw_fenced_forbidden_multicopy_atomic(self, riscv):
        assert not riscv.consistent(self._iriw(fence=Label.FENCE_RW_RW))

    @staticmethod
    def _iriw(fence):
        b = ExecutionBuilder()
        t0, t1, t2, t3 = (b.thread() for _ in range(4))
        wx = t0.write("x")
        wy = t1.write("y")
        r0 = t2.read("x")
        if fence:
            t2.fence(fence)
        r1 = t2.read("y")
        r2 = t3.read("y")
        if fence:
            t3.fence(fence)
        r3 = t3.read("x")
        b.rf(wx, r0)
        b.rf(wy, r2)
        return b.build()

    def test_2plus2w_allowed(self, riscv):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        bb = t0.write("y")
        c = t1.write("y")
        d = t1.write("x")
        b.co(a, d)
        b.co(c, bb)
        assert riscv.consistent(b.build())


class TestPpoRules:
    def test_r1_same_address_store_ordered(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        w = t0.write("x")
        x = b.build()
        assert (r, w) in riscv_ppo(x)

    def test_r2_same_address_loads_from_different_writes(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        ra = t0.read("x")
        rb = t0.read("x")
        w = t1.write("x")
        b.rf(w, rb)
        x = b.build()
        assert (ra, rb) in riscv_ppo(x)

    def test_r2_excludes_same_source_loads(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        ra = t0.read("x")
        rb = t0.read("x")
        w = t1.write("x")
        b.rf(w, ra)
        b.rf(w, rb)
        x = b.build()
        assert (ra, rb) not in riscv_ppo(x)

    def test_r2_excludes_loads_with_intervening_store(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        ra = t0.read("x")
        w = t0.write("x")
        rb = t0.read("x")
        b.rf(w, rb)
        x = b.build()
        ppo = riscv_ppo(x)
        assert (ra, w) in ppo  # r1: same-address later store
        # The intervening store disables r2, and a plain (non-AMO/SC)
        # store being read locally is store-forwarding, not ppo.
        assert (ra, rb) not in ppo
        assert (w, rb) not in ppo

    def test_r3_amo_write_read_locally(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        r2 = t0.read("x")
        b.rmw(r, w)
        b.rf(w, r2)
        x = b.build()
        assert (w, r2) in riscv_ppo(x)

    def test_r5_acquire_orders_later(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.acq_read("x")
        w = t0.write("y")
        x = b.build()
        assert (r, w) in riscv_ppo(x)

    def test_r6_release_orders_earlier(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        w = t0.rel_write("y")
        x = b.build()
        assert (r, w) in riscv_ppo(x)

    def test_r7_rcsc_pair(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.rel_write("x")
        r = t0.acq_read("y")
        x = b.build()
        assert (w, r) in riscv_ppo(x)

    def test_plain_wr_not_ordered(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        r = t0.read("y")
        x = b.build()
        assert (w, r) not in riscv_ppo(x)

    def test_r13_addr_then_po_to_store(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r = t0.read("x")
        m = t0.read("y")
        w = t0.write("z")
        b.addr(r, m)
        x = b.build()
        assert (r, w) in riscv_ppo(x)


class TestTmExtension:
    def test_transactional_sb_forbidden(self, riscv):
        assert not riscv.consistent(sb(txns=True))

    def test_transactional_sb_allowed_without_tm(self, riscv_notm):
        assert riscv_notm.consistent(sb(txns=True))

    def test_one_sided_txn_sb_allowed(self, riscv):
        # With only one side transactional there is no StrongIsol/TxnOrder
        # cycle, and tfence materialises only on po-edges that cross a
        # boundary — a whole-thread transaction has none.  The paper makes
        # the analogous observation for x86/Power ("a behaviour similar to
        # (3) but with only one write transactional was observed", §5.2).
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        r0 = t0.read("y")
        c = t1.write("y")
        r1 = t1.read("x")
        b.txn([a, r0])
        assert riscv.consistent(b.build())

    def test_txn_boundary_fence_orders_sb(self, riscv):
        # A store *before* the transaction is fenced against the
        # transaction's read: the W->R reordering is gone.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        r0 = t0.read("y")
        c = t1.write("y")
        r1 = t1.read("x")
        b.txn([r0])  # a is outside: po-edge a->r0 crosses the boundary
        b.txn([c])   # r1 outside: po-edge c->r1 crosses the boundary
        assert not riscv.consistent(b.build())

    def test_strong_isolation_non_interference(self, riscv):
        # Fig. 3(a): a non-transactional write intervening between a
        # transaction's read pair.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        ra = t0.read("x")
        rb = t0.read("x")
        w = t1.write("x")
        b.rf(w, rb)
        b.txn([ra, rb])
        assert not riscv.consistent(b.build())

    def test_txn_cancels_rmw(self, riscv):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r])  # boundary between the two halves
        assert not riscv.consistent(b.build())
        assert "TxnCancelsRMW" in riscv.failed_axioms(b.build())

    def test_rmw_inside_txn_fine(self, riscv):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r, w])
        assert riscv.consistent(b.build())

    def test_monotonicity_counterexample_shape(self, riscv):
        """Like Power/ARMv8 (section 8.1): coalescing two transactions
        over an RMW makes a consistent execution inconsistent."""
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r])
        b.txn([w])
        split = b.build()
        assert not riscv.consistent(split)

        b2 = ExecutionBuilder()
        t0 = b2.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b2.rmw(r, w)
        b2.txn([r, w])
        merged = b2.build()
        assert riscv.consistent(merged)


class TestAxiomSurface:
    def test_axiom_names(self, riscv):
        names = [a.name for a in riscv.axioms()]
        assert names == [
            "Coherence",
            "RMWIsol",
            "Main",
            "StrongIsol",
            "TxnOrder",
            "TxnCancelsRMW",
        ]

    def test_model_is_registered(self):
        assert isinstance(get_model("riscv"), RiscV)

    def test_baseline_name(self, riscv_notm):
        assert "(no TM)" in riscv_notm.name


class TestCatAgreement:
    def test_cat_model_loads(self):
        assert load_cat_model("riscv").arch == "riscv"

    def test_agreement_on_enumerated_executions(self):
        space = EnumerationSpace.for_arch(
            "riscv", 3, max_deps=1, include_fences=False
        )
        cat = load_cat_model("riscv")
        native = get_model("riscv")
        count = 0
        for x in enumerate_executions(space):
            assert cat.consistent(x) == native.consistent(x), x.describe()
            count += 1
        assert count > 100

    def test_agreement_with_fences(self):
        space = EnumerationSpace.for_arch(
            "riscv", 3, max_deps=0, max_rmws=0, max_txns=1
        )
        cat = load_cat_model("riscv")
        native = get_model("riscv")
        for x in enumerate_executions(space):
            assert cat.consistent(x) == native.consistent(x), x.describe()
