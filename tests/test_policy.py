"""Unit tests for the commit-ordering policies of the weak machine."""

import pytest

from repro.core.events import Label
from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxBegin,
    TxEnd,
)
from repro.sim.policy import POLICIES, blocking_matrix, get_policy


def matrix_for(thread, arch):
    program = Program((tuple(thread),))
    return blocking_matrix(program, get_policy(arch))[0]


class TestRegistry:
    def test_known_policies(self):
        assert set(POLICIES) == {"power", "armv8", "riscv", "sc"}

    def test_unknown_arch(self):
        with pytest.raises(ValueError, match="no commit policy"):
            get_policy("vax")

    def test_mca_flags(self):
        assert not get_policy("power").mca
        assert get_policy("armv8").mca
        assert get_policy("riscv").mca
        assert get_policy("sc").mca

    def test_supported_fences(self):
        assert Label.SYNC in get_policy("power").supported_fences
        assert Label.DMB_LD in get_policy("armv8").supported_fences
        assert Label.FENCE_TSO in get_policy("riscv").supported_fences
        assert Label.DMB not in get_policy("power").supported_fences


class TestDirectRules:
    def test_plain_accesses_unordered(self):
        rows = matrix_for([Store("x", 1), Load("r0", "y")], "power")
        assert rows[1] == frozenset()

    def test_same_location_ordered(self):
        rows = matrix_for([Store("x", 1), Load("r0", "x")], "power")
        assert rows[1] == {0}

    def test_address_dependency_ordered(self):
        rows = matrix_for(
            [Load("r0", "x"), Load("r1", "y", addr_dep=("r0",))], "power"
        )
        assert rows[1] == {0}

    def test_data_dependency_ordered(self):
        rows = matrix_for(
            [Load("r0", "x"), Store("y", 1, data_dep=("r0",))], "armv8"
        )
        assert rows[1] == {0}

    def test_ctrl_dependency_orders_store_not_load(self):
        thread = [
            Load("r0", "x"),
            CtrlBranch(("r0",)),
            Load("r1", "y"),
            Store("z", 1),
        ]
        rows = matrix_for(thread, "armv8")
        assert rows[1] == {0}  # branch waits for its register
        assert 1 not in rows[2]  # later load may speculate past the branch
        assert 1 in rows[3]  # the store may not

    def test_acquire_blocks_all_on_armv8(self):
        rows = matrix_for(
            [Load("r0", "x", labels={Label.ACQ}), Load("r1", "y")], "armv8"
        )
        assert rows[1] == {0}

    def test_release_waits_all_on_armv8(self):
        rows = matrix_for(
            [Load("r0", "x"), Store("y", 1, labels={Label.REL})], "armv8"
        )
        assert rows[1] == {0}

    def test_power_ignores_acq_rel_labels(self):
        rows = matrix_for(
            [Load("r0", "x", labels={Label.ACQ}), Load("r1", "y")], "power"
        )
        assert rows[1] == frozenset()

    def test_txn_brackets_are_barriers(self):
        thread = [Store("x", 1), TxBegin(), Load("r0", "y"), TxEnd()]
        rows = matrix_for(thread, "armv8")
        assert rows[1] == {0}
        assert 1 in rows[2]
        assert rows[3] >= {1, 2}


class TestFenceRules:
    def _sb_thread(self, kind):
        return [Store("x", 1), Fence(kind), Load("r0", "y")]

    def test_sync_orders_store_load(self):
        rows = matrix_for(self._sb_thread(Label.SYNC), "power")
        assert 0 in rows[2]

    def test_lwsync_relaxes_store_load(self):
        rows = matrix_for(self._sb_thread(Label.LWSYNC), "power")
        assert 0 not in rows[2]  # W -> R free through lwsync
        assert 1 not in rows[2]  # ... and the fence does not block loads

    def test_lwsync_orders_loads(self):
        thread = [Load("r0", "x"), Fence(Label.LWSYNC), Load("r1", "y")]
        rows = matrix_for(thread, "power")
        assert 0 in rows[2]

    def test_lwsync_orders_stores(self):
        thread = [Store("x", 1), Fence(Label.LWSYNC), Store("y", 1)]
        rows = matrix_for(thread, "power")
        assert 0 in rows[2]

    def test_dmb_full_barrier(self):
        rows = matrix_for(self._sb_thread(Label.DMB), "armv8")
        assert 0 in rows[2]

    def test_dmb_ld_orders_loads_before_everything(self):
        thread = [Load("r0", "x"), Fence(Label.DMB_LD), Store("y", 1)]
        rows = matrix_for(thread, "armv8")
        assert 0 in rows[2]

    def test_dmb_ld_ignores_stores(self):
        thread = [Store("x", 1), Fence(Label.DMB_LD), Load("r0", "y")]
        rows = matrix_for(thread, "armv8")
        assert 0 not in rows[2]

    def test_dmb_st_orders_stores_only(self):
        thread = [Store("x", 1), Fence(Label.DMB_ST), Store("y", 1)]
        rows = matrix_for(thread, "armv8")
        assert 0 in rows[2]
        thread2 = [Store("x", 1), Fence(Label.DMB_ST), Load("r0", "y")]
        rows2 = matrix_for(thread2, "armv8")
        assert 0 not in rows2[2]

    def test_fence_tso_orders_rr_and_ww_not_wr(self):
        policy = get_policy("riscv")
        load, store = Load("r", "x"), Store("y", 1)
        assert policy.fence_orders(Label.FENCE_TSO, load, load)
        assert policy.fence_orders(Label.FENCE_TSO, load, store)
        assert policy.fence_orders(Label.FENCE_TSO, store, store)
        assert not policy.fence_orders(Label.FENCE_TSO, store, load)

    def test_isync_conservative(self):
        thread = [Load("r0", "x"), Fence(Label.ISYNC), Load("r1", "y")]
        rows = matrix_for(thread, "power")
        assert 0 in rows[2]

    def test_fences_commit_in_order(self):
        thread = [Fence(Label.LWSYNC), Fence(Label.SYNC)]
        rows = matrix_for(thread, "power")
        assert rows[1] == {0}


class TestScPolicy:
    def test_strict_program_order(self):
        thread = [Store("x", 1), Load("r0", "y"), Store("z", 1)]
        rows = matrix_for(thread, "sc")
        assert rows[0] == frozenset()
        assert rows[1] == {0}
        assert rows[2] == {0, 1}
