"""Tests for the metatheory checkers (Table 2)."""

import pytest

from repro.catalog import CATALOG
from repro.core.events import Label
from repro.metatheory.compilation import check_compilation, compile_execution
from repro.metatheory.lockelision import (
    abstract_executions,
    check_lock_elision,
    cr_order_violated,
    elide,
    scr_relation,
)
from repro.metatheory.monotonicity import check_monotonicity, txn_structures
from repro.metatheory.theorems import (
    check_conservativity,
    check_theorem_72,
    check_theorem_73,
    check_weak_isolation_lemma,
)
from repro.models.registry import get_model


class TestMonotonicity:
    def test_power_counterexample_at_two_events(self):
        r = check_monotonicity("power", 2)
        assert not r.holds
        x, y = r.counterexample
        # X: rmw split across txns (TxnCancelsRMW); Y: coalesced.
        assert x.rmw and y.rmw
        assert len(x.txns) > len(y.txns) or sum(
            len(t.events) for t in y.txns
        ) >= sum(len(t.events) for t in x.txns)
        assert not get_model("power").consistent(x)
        assert get_model("power").consistent(y)

    def test_armv8_counterexample_at_two_events(self):
        assert not check_monotonicity("armv8", 2).holds

    def test_x86_monotonic_at_small_bound(self):
        assert check_monotonicity("x86", 3).holds

    def test_cpp_monotonic_at_small_bound(self):
        assert check_monotonicity("cpp", 2).holds

    def test_txn_structures_cover_coalescing(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        t0.write("y")
        base = b.build()
        structures = txn_structures(base)
        shapes = {
            tuple(sorted(txn.events for txn in s)) for s in structures
        }
        assert ((0,), (1,)) in shapes  # two singletons
        assert ((0, 1),) in shapes  # coalesced
        assert () in shapes

    def test_time_budget(self):
        r = check_monotonicity("x86", 4, time_budget=0.05)
        assert not r.exhausted
        assert "monotonicity" in r.summary()


class TestCompilationMapping:
    def test_power_acquire_load_gets_isync(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        b_ = t0.atomic_read("x", Label.ACQ)
        x = b.build()
        y = compile_execution(x, "power")
        kinds = [e.kind.value for e in y.events]
        assert kinds == ["R", "F"]
        assert y.events[1].has(Label.ISYNC)
        assert (0, 1) in y.ctrl_rel

    def test_power_sc_store_gets_sync(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        b.thread().atomic_write("x", Label.SC)
        y = compile_execution(b.build(), "power")
        assert y.events[0].has(Label.SYNC)
        assert y.events[1].is_write

    def test_armv8_modes_become_acq_rel(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        t0.atomic_read("x", Label.SC)
        t0.atomic_write("y", Label.REL)
        y = compile_execution(b.build(), "armv8")
        assert y.events[0].has(Label.ACQ)
        assert y.events[1].has(Label.REL)

    def test_x86_sc_store_gets_mfence(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        b.thread().atomic_write("x", Label.SC)
        y = compile_execution(b.build(), "x86")
        assert y.events[1].has(Label.MFENCE)

    def test_stxn_preserved(self):
        x = CATALOG["cpp_tsw_cycle"].execution
        y = compile_execution(x, "armv8")
        assert len(y.txns) == len(x.txns)
        assert y.txn_events

    def test_rf_co_mapped(self):
        x = CATALOG["cpp_mp_rel_acq"].execution
        y = compile_execution(x, "power")
        assert len(y.rf) == len(x.rf)
        assert sum(len(v) for v in y.co.values()) == sum(
            len(v) for v in x.co.values()
        )

    def test_compiled_mp_rel_acq_still_forbidden(self):
        """The rel/acq MP must stay forbidden through compilation."""
        x = CATALOG["cpp_mp_rel_acq"].execution
        assert not get_model("cpp").consistent(x)
        for target in ("x86", "power", "armv8"):
            y = compile_execution(x, target)
            assert not get_model(target).consistent(y), target

    @pytest.mark.parametrize("target", ["x86", "power", "armv8"])
    def test_sound_at_two_events(self, target):
        assert check_compilation(target, 2).sound


class TestLockElision:
    def test_scr_relation_groups_crs(self):
        abstract = next(iter(abstract_executions()))
        scr = scr_relation(abstract)
        # Every CR's lock call relates to its body and unlock.
        for thread in abstract.threads:
            first, last = thread[0], thread[-1]
            assert (first, last) in scr

    def test_serial_executions_pass_cr_order(self):
        # An abstract execution where the elided CR reads the other CR's
        # write (one-directional communication) is serialisable.
        count = 0
        for abstract in abstract_executions():
            if not cr_order_violated(abstract):
                count += 1
        assert count > 0

    def test_violating_executions_exist(self):
        assert any(cr_order_violated(a) for a in abstract_executions())

    def test_armv8_unsound(self):
        r = check_lock_elision("armv8")
        assert not r.sound
        abstract, concrete = r.counterexample
        assert cr_order_violated(abstract)
        assert get_model("armv8").consistent(concrete)
        # The concrete has the Example 1.1 ingredients.
        assert concrete.rmw
        assert concrete.txns
        assert any(e.has(Label.ACQ) for e in concrete.events)
        assert any(e.has(Label.REL) for e in concrete.events)

    def test_armv8_fixed_sound(self):
        assert check_lock_elision("armv8", fixed=True).sound

    def test_x86_sound(self):
        assert check_lock_elision("x86").sound

    def test_elide_enforces_txn_reads_lock_free(self):
        for abstract in abstract_executions():
            for concrete in elide(abstract, "armv8"):
                lock_write_sources = {
                    w
                    for r, w in concrete.rf.items()
                    if concrete.events[w].loc == "m"
                    and concrete.events[w].has(Label.EXCL)
                }
                assert not lock_write_sources
            break

    def test_elide_x86_tatas(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(iter(elide(abstract, "x86")))
        m_reads = [
            e for e in concrete.events if e.is_read and e.loc == "m"
        ]
        # TATAS: test read + exclusive read (+ the Lt read).
        assert len(m_reads) == 3
        assert concrete.rmw

    def test_power_counterexample_shape(self):
        """Our guided search finds an Example-1.1-style Power witness —
        the shape the paper's SAT search timed out before reaching (see
        EXPERIMENTS.md)."""
        r = check_lock_elision("power")
        assert not r.sound
        _, concrete = r.counterexample
        assert any(e.has(Label.ISYNC) for e in concrete.events)
        assert any(e.has(Label.SYNC) for e in concrete.events)


class TestTheorems:
    def test_weak_isolation_lemma(self):
        assert check_weak_isolation_lemma(2).holds

    def test_theorem_72(self):
        assert check_theorem_72(2).holds

    def test_theorem_73(self):
        assert check_theorem_73(2).holds

    @pytest.mark.parametrize("arch", ["x86", "power", "armv8", "cpp"])
    def test_conservativity(self, arch):
        assert check_conservativity(arch, 2).holds

    def test_report_summary(self):
        r = check_theorem_72(2)
        assert "Theorem 7.2" in r.summary()
