"""Tests for the enumeration/minimality/synthesis pipeline (§4.2)."""

import pytest

from repro.core.wellformed import is_wellformed
from repro.models.registry import get_model
from repro.synth.canonical import canonical_key
from repro.synth.generate import (
    EnumerationSpace,
    _interval_sets,
    enumerate_executions,
    thread_partitions,
)
from repro.synth.minimality import is_minimal_inconsistent, weakenings
from repro.synth.synthesis import synthesize, synthesize_forbid
from repro.synth.vocab import get_vocab


class TestPartitions:
    def test_partitions_of_4(self):
        parts = list(thread_partitions(4, 4))
        assert sorted(parts) == sorted(
            [(4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1)]
        )

    def test_thread_cap(self):
        assert (1, 1, 1) not in thread_partitions(3, 2)

    def test_non_increasing(self):
        for parts in thread_partitions(6, 4):
            assert list(parts) == sorted(parts, reverse=True)


class TestIntervalSets:
    def test_singletons_and_pairs(self):
        sets = _interval_sets(2, frozenset())
        assert ((0, 0),) in sets
        assert ((0, 1),) in sets
        assert ((0, 0), (1, 1)) in sets
        assert () in sets

    def test_disjointness(self):
        for intervals in _interval_sets(4, frozenset()):
            covered = []
            for a, b in intervals:
                covered.extend(range(a, b + 1))
            assert len(covered) == len(set(covered))

    def test_fence_only_intervals_pruned(self):
        sets = _interval_sets(2, frozenset({1}))
        assert ((1, 1),) not in sets
        assert ((0, 1),) in sets  # mixed interval is fine


class TestEnumeration:
    def test_all_wellformed(self):
        space = EnumerationSpace.for_arch("x86", 3)
        for x in enumerate_executions(space):
            assert is_wellformed(x)

    def test_no_canonical_duplicates(self):
        space = EnumerationSpace.for_arch("x86", 3)
        keys = [canonical_key(x) for x in enumerate_executions(space)]
        assert len(keys) == len(set(keys))

    def test_require_txn(self):
        space = EnumerationSpace.for_arch("x86", 2, require_txn=True)
        for x in enumerate_executions(space):
            assert x.txns

    def test_no_boundary_fences(self):
        space = EnumerationSpace.for_arch("power", 3)
        for x in enumerate_executions(space):
            for thread in x.threads:
                assert not x.events[thread[0]].is_fence
                assert not x.events[thread[-1]].is_fence

    def test_labels_from_vocab(self):
        space = EnumerationSpace.for_arch("armv8", 2)
        seen_acq = False
        for x in enumerate_executions(space):
            for e in x.events:
                if e.has("acq"):
                    seen_acq = True
                    assert e.is_read
        assert seen_acq

    def test_canonical_key_invariant_under_thread_swap(self):
        from repro.core.builder import ExecutionBuilder

        def build(swap):
            b = ExecutionBuilder()
            threads = [b.thread(), b.thread()]
            if swap:
                threads.reverse()
            t0, t1 = threads
            w = t0.write("x")
            r = t1.read("x")
            b.rf(w, r)
            return b.build()

        assert canonical_key(build(False)) == canonical_key(build(True))

    def test_canonical_key_invariant_under_location_renaming(self):
        from repro.core.builder import ExecutionBuilder

        def build(locs):
            b = ExecutionBuilder()
            t0 = b.thread()
            t0.write(locs[0])
            t0.write(locs[1])
            return b.build()

        assert canonical_key(build(["x", "y"])) == canonical_key(
            build(["p", "q"])
        )


class TestWeakenings:
    def test_counts(self):
        from repro.catalog import CATALOG

        x = CATALOG["fig2"].execution  # 3 events, 1 txn of 2, no deps
        ws = list(weakenings(x, get_vocab("x86")))
        # 3 event removals + 2 txn shrinks = 5.
        assert len(ws) == 5

    def test_all_wellformed(self):
        from repro.catalog import CATALOG

        for name in ("fig2", "power_exec1", "armv8_lock_elision"):
            x = CATALOG[name].execution
            vocab = get_vocab("armv8")
            for w in weakenings(x, vocab):
                assert is_wellformed(w), name

    def test_downgrade_weakening(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        b.thread().acq_read("x")
        x = b.build()
        ws = list(weakenings(x, get_vocab("armv8")))
        downgraded = [w for w in ws if w.n == 1 and not w.events[0].has("acq")]
        assert downgraded

    def test_minimal_inconsistent_fig3a(self):
        from repro.catalog import CATALOG

        x = CATALOG["fig3a"].execution
        assert is_minimal_inconsistent(x, get_model("x86"), get_vocab("x86"))

    def test_non_minimal_rejected(self):
        # fig3c is inconsistent but NOT minimal under x86: removing the
        # external write leaves a coherence violation.
        from repro.catalog import CATALOG

        x = CATALOG["fig3c"].execution
        model = get_model("x86")
        assert not model.consistent(x)
        assert not is_minimal_inconsistent(x, model, get_vocab("x86"))


class TestSynthesis:
    def test_x86_three_events_finds_isolation_shapes(self):
        result = synthesize("x86", 3)
        assert len(result.forbid) == 4
        assert result.txn_histogram == {1: 4}
        # Every forbid test: inconsistent with TM, consistent without.
        model = get_model("x86")
        baseline = get_model("x86", tm=False)
        for x in result.forbid:
            assert not model.consistent(x)
            assert baseline.consistent(x)

    def test_allow_suite_consistent(self):
        result = synthesize("x86", 3)
        model = get_model("x86")
        assert result.allow
        for x in result.allow:
            assert model.consistent(x)

    def test_time_budget_partial(self):
        result = synthesize_forbid("power", 3, time_budget=0.05)
        assert not result.exhausted

    def test_discovery_times_recorded(self):
        result = synthesize_forbid("x86", 3)
        assert len(result.discovery_times) == len(result.forbid)
        assert all(t >= 0 for t in result.discovery_times)

    def test_summary_format(self):
        result = synthesize("x86", 2)
        assert "x86 |E|=2" in result.summary()
