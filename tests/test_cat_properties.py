"""Property-based tests for the .cat evaluator.

Hypothesis generates random small executions (via the existing strategy
in ``test_properties``) and random relational expressions; evaluation
must satisfy the relational-algebra laws and agree with the native
:class:`~repro.core.relation.Relation` operators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat.evaluator import evaluate_expr
from repro.cat.errors import CatError
from repro.core.builder import ExecutionBuilder
from repro.core.relation import Relation

#: Leaf names usable in generated expressions (all relation-valued).
_LEAVES = ("po", "rf", "co", "fr", "loc", "int", "id", "addr", "ctrl")


@st.composite
def executions(draw):
    """Small random executions: 2 threads, up to 5 events, rf/co random."""
    b = ExecutionBuilder()
    writes: list[int] = []
    reads: list[int] = []
    for _ in range(2):
        thread = b.thread()
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            loc = draw(st.sampled_from(["x", "y"]))
            if draw(st.booleans()):
                writes.append(thread.write(loc))
            else:
                reads.append(thread.read(loc))
    x_probe = b.build()
    for r in reads:
        loc = x_probe.events[r].loc
        candidates = [w for w in writes if x_probe.events[w].loc == loc]
        if candidates and draw(st.booleans()):
            b.rf(draw(st.sampled_from(candidates)), r)
    return b.build()


@st.composite
def expressions(draw, depth: int = 3):
    """A random expression string over the leaf relations."""
    if depth == 0 or draw(st.integers(min_value=0, max_value=2)) == 0:
        return draw(st.sampled_from(_LEAVES))
    form = draw(st.sampled_from(["bin", "post", "compl"]))
    if form == "bin":
        op = draw(st.sampled_from(["|", "&", "\\", ";"]))
        left = draw(expressions(depth=depth - 1))
        right = draw(expressions(depth=depth - 1))
        return f"({left} {op} {right})"
    if form == "post":
        op = draw(st.sampled_from(["^+", "^*", "?", "^-1"]))
        return f"({draw(expressions(depth=depth - 1))}){op}"
    return f"~({draw(expressions(depth=depth - 1))})"


class TestAlgebraicLaws:
    @settings(max_examples=60, deadline=None)
    @given(x=executions(), data=st.data())
    def test_random_expressions_evaluate_to_relations(self, x, data):
        source = data.draw(expressions())
        value = evaluate_expr(source, x)
        assert isinstance(value, Relation)
        assert value.n == x.n

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_union_commutes(self, x, data):
        a = data.draw(expressions(depth=2))
        b = data.draw(expressions(depth=2))
        assert evaluate_expr(f"({a}) | ({b})", x) == evaluate_expr(
            f"({b}) | ({a})", x
        )

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_de_morgan(self, x, data):
        a = data.draw(expressions(depth=2))
        b = data.draw(expressions(depth=2))
        lhs = evaluate_expr(f"~(({a}) | ({b}))", x)
        rhs = evaluate_expr(f"~({a}) & ~({b})", x)
        assert lhs == rhs

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_double_complement(self, x, data):
        a = data.draw(expressions(depth=2))
        assert evaluate_expr(f"~(~({a}))", x) == evaluate_expr(a, x)

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_closure_idempotent(self, x, data):
        a = data.draw(expressions(depth=2))
        once = evaluate_expr(f"({a})^*", x)
        twice = evaluate_expr(f"(({a})^*)^*", x)
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_inverse_involution(self, x, data):
        a = data.draw(expressions(depth=2))
        assert evaluate_expr(f"(({a})^-1)^-1", x) == evaluate_expr(a, x)

    @settings(max_examples=40, deadline=None)
    @given(x=executions(), data=st.data())
    def test_seq_associates(self, x, data):
        a = data.draw(expressions(depth=1))
        b = data.draw(expressions(depth=1))
        c = data.draw(expressions(depth=1))
        lhs = evaluate_expr(f"(({a}) ; ({b})) ; ({c})", x)
        rhs = evaluate_expr(f"({a}) ; (({b}) ; ({c}))", x)
        assert lhs == rhs


class TestNativeAgreement:
    @settings(max_examples=60, deadline=None)
    @given(x=executions())
    def test_fr_matches_paper_definition(self, x):
        """fr = ([R]; loc; [W]) \\ (rf^-1; (co^-1)^*) — the §2.1 formula
        evaluated in cat equals the primitive."""
        derived = evaluate_expr(
            "([R] ; loc ; [W]) \\ (rf^-1 ; (co^-1)^*)", x
        )
        assert derived == x.fr

    @settings(max_examples=60, deadline=None)
    @given(x=executions())
    def test_com_union(self, x):
        assert evaluate_expr("rf | co | fr", x) == x.com

    @settings(max_examples=60, deadline=None)
    @given(x=executions())
    def test_external_restriction(self, x):
        assert evaluate_expr("(rf | co | fr) & ext", x) == x.come
