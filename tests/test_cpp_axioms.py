"""Axiom-level tests for the C++/RC11 model (Fig. 9)."""

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.cpp import Cpp


def failed(x):
    return Cpp().failed_axioms(x)


class TestHbCom:
    def test_coherence_per_location(self):
        # CoRR violation: same-location reads disagree with coherence.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t0.atomic_write("x")
        r1 = t1.atomic_read("x")
        r2 = t1.atomic_read("x")
        b.rf(w, r1)  # r2 reads the initial value afterwards
        assert "HbCom" in failed(b.build())

    def test_release_acquire_mp_forbidden(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wd = t0.write("x")
        wf = t0.atomic_write("y", Label.REL)
        rf_ = t1.atomic_read("y", Label.ACQ)
        rd = t1.read("x")
        b.rf(wf, rf_)
        assert "HbCom" in failed(b.build())

    def test_relaxed_mp_allowed(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.atomic_write("x")
        wf = t0.atomic_write("y")
        rf_ = t1.atomic_read("y")
        t1.atomic_read("x")
        b.rf(wf, rf_)
        assert Cpp().consistent(b.build())

    def test_release_sequence_rmw(self):
        # A release write followed by a relaxed RMW still synchronises.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wd = t0.write("d")
        wrel = t0.atomic_write("x", Label.REL)
        r_rmw = t1.atomic_read("x")
        w_rmw = t1.atomic_write("x")
        racq = t1.atomic_read("x", Label.ACQ)
        rd = t1.read("d")
        b.rmw(r_rmw, w_rmw)
        b.rf(wrel, r_rmw)
        b.co(wrel, w_rmw)
        b.rf(w_rmw, racq)
        x = b.build()
        # hb: wd -> wrel -> (rs through the RMW) -> racq -> rd, so the
        # read of d must not see the initial value... here it does: racy
        # would be the alternative; instead assert sw edge exists by
        # checking the execution with rd reading wd is consistent and
        # race-free.
        b2 = ExecutionBuilder()
        t0, t1 = b2.thread(), b2.thread()
        wd = t0.write("d")
        wrel = t0.atomic_write("x", Label.REL)
        r_rmw = t1.atomic_read("x")
        w_rmw = t1.atomic_write("x")
        racq = t1.atomic_read("x", Label.ACQ)
        rd = t1.read("d")
        b2.rmw(r_rmw, w_rmw)
        b2.rf(wrel, r_rmw)
        b2.co(wrel, w_rmw)
        b2.rf(w_rmw, racq)
        b2.rf(wd, rd)
        y = b2.build()
        cpp = Cpp()
        assert cpp.consistent(y)
        assert cpp.race_free(y)


class TestNoThinAir:
    def test_lb_forbidden(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.atomic_read("x")
        w0 = t0.atomic_write("y")
        r1 = t1.atomic_read("y")
        w1 = t1.atomic_write("x")
        b.rf(w0, r1)
        b.rf(w1, r0)
        assert "NoThinAir" in failed(b.build())


class TestSeqCst:
    def test_sc_sb_forbidden(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.atomic_write("x", Label.SC)
        t0.atomic_read("y", Label.SC)
        t1.atomic_write("y", Label.SC)
        t1.atomic_read("x", Label.SC)
        assert "SeqCst" in failed(b.build())

    def test_mixed_sc_rlx_sb_allowed(self):
        # One relaxed access breaks the psc chain: allowed (RC11).
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.atomic_write("x", Label.SC)
        t0.atomic_read("y", Label.SC)
        t1.atomic_write("y", Label.SC)
        t1.atomic_read("x", Label.RLX)
        assert Cpp().consistent(b.build())

    def test_sc_iriw_forbidden(self):
        b = ExecutionBuilder()
        t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
        wx = t0.atomic_write("x", Label.SC)
        r1 = t1.atomic_read("x", Label.SC)
        r2 = t1.atomic_read("y", Label.SC)
        r3 = t2.atomic_read("y", Label.SC)
        r4 = t2.atomic_read("x", Label.SC)
        wy = t3.atomic_write("y", Label.SC)
        b.rf(wx, r1)
        b.rf(wy, r3)
        assert "SeqCst" in failed(b.build())


class TestTransactions:
    def test_tsw_orders_conflicting_txns(self):
        from repro.catalog import CATALOG

        assert "HbCom" in failed(CATALOG["cpp_tsw_cycle"].execution)

    def test_non_conflicting_txns_unordered(self):
        # Transactions on different locations need no serialisation edges.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("y")
        b.txn([w1])
        b.txn([w2])
        assert Cpp().consistent(b.build())

    def test_txn_synchronisation_creates_hb(self):
        # If txn A writes x and txn B reads it, B's later non-atomic read
        # of A's earlier plain write is NOT racy: tsw gives hb.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wd = t0.write("d")
        wx = t0.write("x")
        rx = t1.read("x")
        rd = t1.read("d")
        b.txn([wd, wx])
        b.txn([rx, rd])
        b.rf(wx, rx)
        b.rf(wd, rd)
        x = b.build()
        cpp = Cpp()
        assert cpp.consistent(x)
        assert cpp.race_free(x)

    def test_same_accesses_without_txns_racy(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wd = t0.write("d")
        wx = t0.write("x")
        rx = t1.read("x")
        rd = t1.read("d")
        b.rf(wx, rx)
        b.rf(wd, rd)
        assert not Cpp().race_free(b.build())

    def test_ecom_includes_co_rf(self):
        # Two txns ordered only by co;rf chains still synchronise.
        b = ExecutionBuilder()
        t0, t1, t2 = b.thread(), b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("x")
        r = t2.read("x")
        b.txn([w1])
        b.txn([w2])
        b.co(w1, w2)
        b.rf(w2, r)
        x = b.build()
        relations = Cpp().relations(x)
        assert (w1, w2) in relations["hb"]
