"""Tests for the herd7-style litmus frontend (dialect parsers/renderers)."""

import pytest

from repro.core.events import Label
from repro.litmus.frontend import (
    DIALECTS,
    TXN_PRAGMA,
    FrontendError,
    detect_dialect,
    dump_dialect,
    load_any,
    load_dialect,
    load_litmus_file,
)
from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from repro.litmus.test import CoSeq, LitmusTest, MemEq, RegEq, TxnOk

X86_SB = """X86 SB
"Fre PodWR Fre PodWR"
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EBX,[x] ;
exists (0:EAX=0 /\\ 1:EBX=0)
"""

AARCH64_MP = """AArch64 MP
{
0:X1=x; 0:X3=y;
1:X1=y; 1:X3=x;
}
 P0          | P1          ;
 MOV W0,#1   | LDR W0,[X1] ;
 STR W0,[X1] | LDR W2,[X3] ;
 MOV W2,#1   |             ;
 STR W2,[X3] |             ;
exists (1:X0=1 /\\ 1:X2=0)
"""

PPC_MP = """PPC MP+lwsync+addr
{
0:r2=x; 0:r4=y;
1:r2=y; 1:r4=x;
}
 P0           | P1            ;
 li r1,1      | lwz r1,0(r2)  ;
 stw r1,0(r2) | xor r3,r1,r1  ;
 lwsync       | lwz r5,r3(r4) ;
 li r3,1      |               ;
 stw r3,0(r4) |               ;
exists (1:r1=1 /\\ 1:r5=0)
"""

RISCV_MP = """RISCV MP
{
0:x6=x; 0:x7=y;
1:x6=y; 1:x7=x;
}
 P0           | P1           ;
 li x5,1      | lw x5,0(x6)  ;
 sw x5,0(x6)  | fence r,rw   ;
 fence rw,w   | lw x8,0(x7)  ;
 li x8,1      |              ;
 sw x8,0(x7)  |              ;
exists (1:x5=1 /\\ 1:x8=0)
"""


class TestHerdShapes:
    def test_x86_sb(self):
        t = load_dialect(X86_SB)
        assert t.arch == "x86" and t.name == "SB"
        assert t.program.threads == (
            (Store("x", 1), Load("r0", "y")),
            (Store("y", 1), Load("r1", "x")),
        )
        assert t.postcondition == (RegEq(0, "r0", 0), RegEq(1, "r1", 0))

    def test_aarch64_mp_with_register_bindings(self):
        t = load_dialect(AARCH64_MP)
        assert t.arch == "armv8"
        assert t.program.threads == (
            (Store("x", 1), Store("y", 1)),
            (Load("r0", "y"), Load("r2", "x")),
        )
        # Condition may name W or X registers interchangeably.
        assert t.postcondition == (RegEq(1, "r0", 1), RegEq(1, "r2", 0))

    def test_ppc_mp_with_addr_dep(self):
        t = load_dialect(PPC_MP)
        assert t.arch == "power"
        (t0, t1) = t.program.threads
        assert t0 == (Store("x", 1), Fence(Label.LWSYNC), Store("y", 1))
        # The xor-zero idiom folds into an address dependency.
        assert t1 == (Load("r0", "y"), Load("r4", "x", addr_dep=("r0",)))

    def test_riscv_mp_with_fences(self):
        t = load_dialect(RISCV_MP)
        assert t.arch == "riscv"
        assert t.program.threads == (
            (Store("x", 1), Fence(Label.FENCE_RW_W), Store("y", 1)),
            (Load("r0", "y"), Fence(Label.FENCE_R_RW), Load("r3", "x")),
        )


class TestQuantifiers:
    def _sb(self, quantifier):
        return X86_SB.replace("exists", quantifier, 1)

    def test_tilde_exists(self):
        t = load_dialect(self._sb("~exists"))
        assert t.quantifier == "~exists"

    def test_forall(self):
        t = load_dialect(self._sb("forall"))
        assert t.quantifier == "forall"

    def test_true_condition(self):
        t = load_dialect(
            "X86 t\n{ x=0; }\n P0 ;\n MOV [x],$1 ;\nexists (true)\n"
        )
        assert t.postcondition == ()

    def test_multiline_condition(self):
        t = load_dialect(
            "X86 t\n{ x=0; }\n P0 ;\n MOV EAX,[x] ;\n"
            "exists (0:EAX=0\n/\\ x=0)\n"
        )
        assert t.postcondition == (RegEq(0, "r0", 0), MemEq("x", 0))

    def test_txn_and_co_atoms(self):
        t = load_dialect(
            f"X86 t\n{TXN_PRAGMA}\n{{ x=0; }}\n P0 ;\n XBEGIN ;\n"
            " MOV [x],$1 ;\n MOV [x],$2 ;\n XEND ;\n"
            "exists (txn(0,0)=ok /\\ co(x)=1,2)\n"
        )
        assert t.postcondition == (TxnOk(0, 0, True), CoSeq("x", (1, 2)))

    def test_disjunction_rejected(self):
        with pytest.raises(FrontendError, match="disjunctive"):
            load_dialect(self._sb("exists").replace("/\\", "\\/"))


class TestTransactions:
    def test_pragma_required(self):
        with pytest.raises(FrontendError, match="pragma"):
            load_dialect(
                "AArch64 t\n{ x=0; }\n P0 ;\n TSTART ;\n"
                " MOV W9,#1 ;\n STR W9,[x] ;\n TCOMMIT ;\nexists (x=1)\n"
            )

    def test_pragma_emitted_for_transactional_programs(self):
        p = Program(((TxBegin(), Store("x", 1), TxEnd()),))
        t = LitmusTest("t", "armv8", p, (TxnOk(0, 0, True),))
        assert TXN_PRAGMA in dump_dialect(t)

    @pytest.mark.parametrize("arch", sorted(DIALECTS))
    def test_conditional_abort_round_trips(self, arch):
        p = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "y"),
                    TxAbort("r0"),
                    Store("x", 1),
                    TxEnd(),
                ),
                (Store("y", 1),),
            )
        )
        t = LitmusTest(
            "elide", arch, p, (RegEq(0, "r0", 0), TxnOk(0, 0, True))
        )
        assert load_dialect(dump_dialect(t)) == t

    def test_ppc_tbegin_beq_absorbed(self):
        t = load_dialect(
            f"PPC t\n{TXN_PRAGMA}\n{{ x=0; }}\n P0 ;\n tbegin. ;\n"
            " beq LF0 ;\n li r9,1 ;\n stw r9,0(x) ;\n tend. ;\n"
            "exists (x=1)\n"
        )
        assert t.program.threads[0] == (TxBegin(), Store("x", 1), TxEnd())


class TestDiagnostics:
    def test_unknown_instruction_is_located(self):
        with pytest.raises(FrontendError) as err:
            load_dialect("X86 t\n{ x=0; }\n P0 ;\n FNORD ;\nexists (x=0)\n")
        assert err.value.lineno == 4

    def test_xchg_rejected_with_hint(self):
        with pytest.raises(FrontendError, match="LOCK MOV"):
            load_dialect(
                "X86 t\n{ x=0; }\n P0 ;\n XCHG [x],EAX ;\nexists (x=0)\n"
            )

    def test_nonzero_init_rejected(self):
        with pytest.raises(FrontendError, match="non-zero initial value"):
            load_dialect(
                "X86 t\n{ x=1; }\n P0 ;\n MOV EAX,[x] ;\nexists (0:EAX=1)\n"
            )

    def test_unbound_address_register(self):
        with pytest.raises(FrontendError, match="not bound to a location"):
            load_dialect(
                "AArch64 t\n P0 ;\n LDR W0,[X1] ;\nexists (0:W0=0)\n"
            )

    def test_store_of_runtime_value(self):
        with pytest.raises(FrontendError, match="data dependency"):
            load_dialect(
                "AArch64 t\n{ x=0; y=0; }\n P0 ;\n LDR W0,[x] ;\n"
                " STR W0,[y] ;\nexists (y=0)\n"
            )

    def test_missing_condition(self):
        with pytest.raises(FrontendError, match="condition"):
            load_dialect("X86 t\n{ x=0; }\n P0 ;\n MOV [x],$1 ;\n")

    def test_file_loader_prefixes_path(self, tmp_path):
        path = tmp_path / "bad.litmus"
        path.write_text("X86 t\n{ x=0; }\n P0 ;\n FNORD ;\nexists (x=0)\n")
        with pytest.raises(FrontendError, match="bad.litmus:4"):
            load_litmus_file(str(path))


class TestDetection:
    @pytest.mark.parametrize(
        "header,arch",
        [
            ("X86 t", "x86"),
            ("X86_64 t", "x86"),
            ("AArch64 t", "armv8"),
            ("PPC t", "power"),
            ("POWER t", "power"),
            ("RISCV t", "riscv"),
        ],
    )
    def test_detect(self, header, arch):
        assert detect_dialect(f"(* note *)\n{header}\n") == arch

    def test_neutral_not_detected(self):
        assert detect_dialect('litmus "t" x86\n') is None

    def test_load_any_neutral(self):
        t = load_any('litmus "t" x86\nthread\n  store x 1\nexists x=1\n')
        assert t.arch == "x86"

    def test_load_any_dialect(self):
        assert load_any(X86_SB).arch == "x86"

    def test_load_any_unknown(self):
        with pytest.raises(FrontendError, match="unrecognised litmus format"):
            load_any("what even is this\nnot litmus\nexists (x=0)\n")


class TestRendererScratchHygiene:
    def test_scratch_avoids_condition_registers(self):
        """A condition can name a register no load defines; the
        renderer's scratch registers must not collide with it."""
        p = Program(((Store("x", 1),),))
        t = LitmusTest("t", "armv8", p, (RegEq(0, "r0", 0),))
        text = dump_dialect(t)
        assert load_dialect(text) == t

    def test_empty_thread_round_trips(self):
        p = Program(((Store("x", 1),), ()))
        t = LitmusTest("t", "x86", p, (MemEq("x", 1),))
        assert load_dialect(dump_dialect(t)) == t

    def test_multi_reg_ctrl_branch_round_trips(self):
        p = Program(
            (
                (
                    Load("r0", "x"),
                    Load("r1", "y"),
                    CtrlBranch(("r0", "r1")),
                    Store("z", 1),
                ),
            )
        )
        t = LitmusTest("t", "armv8", p, (MemEq("z", 1),))
        assert load_dialect(dump_dialect(t)) == t


class TestRowHygiene:
    def test_all_empty_row_is_not_a_phantom_thread(self):
        """A stray row of empty cells must neither add a thread nor be
        mistaken for the P-column header."""
        t = load_dialect(
            "X86 t\n{ x=0; }\n P0          | P1          ;\n"
            "             |             ;\n"
            " MOV [x],$1  | MOV EAX,[x] ;\nexists (1:EAX=1)\n"
        )
        assert t.program.n_threads == 2
        assert load_dialect(dump_dialect(t)) == t

    def test_x86_txn_fail_labels_are_defined_and_unique(self):
        p = Program(
            (
                (
                    TxBegin(),
                    Store("x", 1),
                    TxEnd(),
                    TxBegin(),
                    Store("y", 1),
                    TxEnd(),
                ),
            )
        )
        t = LitmusTest("t", "x86", p, (TxnOk(0, 1, True),))
        text = dump_dialect(t)
        for label in ("LF00", "LF01"):
            assert f"XBEGIN {label}" in text
            assert f"{label}:" in text
        assert load_dialect(text) == t
