"""The SC reference machine is *exactly* the SC model.

For the weak machines we can only assert machine ⊆ model (they are
deliberately conservative); the in-order, instantly-propagating SC
machine should match the axiomatic SC model outcome-for-outcome, which
pins down both the machine skeleton and the candidate expansion.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.candidates import all_outcomes
from repro.litmus.program import Load, Program, Store
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.sim.weakmachine import reachable_outcomes

_LOCS = ("x", "y")


def _sc_outcomes(prog: Program) -> set:
    test = LitmusTest("sc", "sc", prog, ())
    return all_outcomes(test, get_model("sc"))


def _machine_outcomes(prog: Program) -> set:
    return {o.key() for o in reachable_outcomes(prog, "sc")}


class TestFixedPrograms:
    def test_sb(self):
        prog = Program(
            (
                (Store("x", 1), Load("r0", "y")),
                (Store("y", 1), Load("r1", "x")),
            )
        )
        assert _machine_outcomes(prog) == _sc_outcomes(prog)

    def test_mp(self):
        prog = Program(
            (
                (Store("x", 1), Store("y", 1)),
                (Load("r0", "y"), Load("r1", "x")),
            )
        )
        assert _machine_outcomes(prog) == _sc_outcomes(prog)

    def test_coherence_chain(self):
        prog = Program(
            (
                (Store("x", 1), Store("x", 2)),
                (Load("r0", "x"), Load("r1", "x")),
            )
        )
        assert _machine_outcomes(prog) == _sc_outcomes(prog)

    def test_three_threads(self):
        prog = Program(
            (
                (Store("x", 1),),
                (Load("r0", "x"), Store("y", 1)),
                (Load("r1", "y"), Load("r2", "x")),
            )
        )
        assert _machine_outcomes(prog) == _sc_outcomes(prog)


@st.composite
def _program(draw):
    counter = [0, 1]
    threads = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        instrs = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            loc = draw(st.sampled_from(_LOCS))
            if draw(st.booleans()):
                instrs.append(Load(f"r{counter[0]}", loc))
                counter[0] += 1
            else:
                instrs.append(Store(loc, counter[1]))
                counter[1] += 1
        threads.append(tuple(instrs))
    return Program(tuple(threads))


class TestRandomPrograms:
    @settings(max_examples=40, deadline=None)
    @given(prog=_program())
    def test_machine_equals_model(self, prog):
        assert _machine_outcomes(prog) == _sc_outcomes(prog)
