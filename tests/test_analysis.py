"""Unit tests for the shared candidate-analysis layer."""

import pytest

from repro.core import profiling
from repro.core.analysis import CandidateAnalysis, analyze
from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.core.lifting import stronglift, weaklift
from repro.core.relation import Relation
from repro.models.registry import get_model, model_names


def txn_execution():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    w2 = t0.write("y")
    b.txn([w1, w2], atomic=True)
    r1 = t1.read("y")
    r2 = t1.read("x")
    b.rf(w2, r1)
    return b.build()


def plain_execution():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    t0.fence("mfence")
    r = t1.read("x")
    b.rf(w, r)
    return b.build()


class TestSharing:
    def test_of_is_idempotent_and_shared(self):
        x = txn_execution()
        a = CandidateAnalysis.of(x)
        assert CandidateAnalysis.of(x) is a
        assert analyze(x) is a
        assert analyze(a) is a

    def test_delegated_relations_match_execution(self):
        x = txn_execution()
        a = analyze(x)
        for name in ("po", "fr", "com", "sloc", "sthd", "po_loc", "rfe",
                     "coe", "fre", "come", "stxn", "stxnat", "tfence"):
            assert getattr(a, name) == getattr(x, name), name
        assert a.reads == x.reads
        assert a.writes == x.writes
        assert a.txn_events == x.txn_events

    def test_helper_values_are_memoized(self):
        a = analyze(plain_execution())
        assert a.lift(a.writes) is a.lift(a.writes)
        assert a.cross(a.reads, a.writes) is a.cross(a.reads, a.writes)
        assert a.fence_rel(Label.MFENCE) is a.fence_rel(Label.MFENCE)
        assert a.labelled(Label.MFENCE) is a.labelled(Label.MFENCE)
        hb = a.po | a.com
        assert a.stronglift(hb) is a.stronglift(hb)

    def test_helper_values_are_correct(self):
        x = txn_execution()
        a = analyze(x)
        assert a.lift(x.writes) == Relation.lift(x.n, x.writes)
        assert a.cross(x.reads, x.writes) == Relation.cross(
            x.n, x.reads, x.writes
        )
        assert a.fence_rel(Label.MFENCE) == x.fence_rel(Label.MFENCE)
        assert a.stronglift(x.com) == stronglift(x.com, x.stxn)
        assert a.weaklift(x.com) == weaklift(x.com, x.stxn)
        assert a.ext == Relation.full(x.n) - x.sthd
        assert a.coherence == (x.po_loc | x.com)
        assert a.rmw_isol == (x.rmw_rel & (x.fre @ x.coe))

    def test_generic_memo_computes_once(self):
        a = analyze(plain_execution())
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert a.memo("k", compute) == 42
        assert a.memo("k", compute) == 42
        assert len(calls) == 1


class TestBaseline:
    def test_baseline_of_txn_free_execution_is_itself(self):
        a = analyze(plain_execution())
        assert a.baseline is a

    def test_baseline_erases_transactions(self):
        x = txn_execution()
        a = analyze(x)
        b = a.baseline
        assert b is not a
        assert b.baseline is b
        assert b.stxn.is_empty()
        assert b.stxnat.is_empty()
        assert b.tfence.is_empty()
        assert b.txn_events == frozenset()
        assert b.atomic_txn_events == frozenset()

    def test_baseline_matches_without_transactions(self):
        x = txn_execution()
        b = analyze(x).baseline
        y = x.without_transactions()
        assert b.po == y.po
        assert b.fr == y.fr
        assert b.stxn == y.stxn
        assert b.tfence == y.tfence
        assert b.execution.signature() == y.signature()

    def test_txn_free_memo_shared_with_parent(self):
        x = txn_execution()
        a = analyze(x)
        b = a.baseline
        v1 = b.memo("shared", lambda: object(), txn_free=True)
        v2 = a.memo("shared", lambda: object(), txn_free=True)
        assert v1 is v2
        # ...but plain memo entries stay per-view.
        p1 = a.memo("private", lambda: object())
        p2 = b.memo("private", lambda: object())
        assert p1 is not p2

    def test_models_agree_with_legacy_tm_false_path(self):
        x = txn_execution()
        for name in model_names():
            model = get_model(name, tm=False)
            legacy = model.relations(x.without_transactions())
            shared = model.relations(model._analysis(x))
            assert set(legacy) == set(shared), name
            for key in legacy:
                assert legacy[key] == shared[key], (name, key)


class TestModelEntryPoints:
    def test_relations_accept_execution_and_analysis(self):
        x = txn_execution()
        for name in model_names():
            model = get_model(name)
            via_x = model.relations(x)
            via_a = model.relations(analyze(x))
            assert set(via_x) == set(via_a)
            for key in via_x:
                assert via_x[key] == via_a[key], (name, key)

    def test_consistent_accepts_analysis(self):
        x = plain_execution()
        a = analyze(x)
        for name in model_names():
            model = get_model(name)
            assert model.consistent(a) == model.consistent(x), name

    def test_cat_env_built_from_analysis(self):
        from repro.cat.env import RELATION_NAMES, SET_NAMES, base_env

        x = txn_execution()
        env_x = base_env(x)
        env_a = base_env(analyze(x))
        for name in SET_NAMES + RELATION_NAMES:
            assert env_x[name] == env_a[name], name
        # Fresh dict per call, shared values underneath.
        assert env_x is not env_a
        assert env_x["po"] is env_a["po"]

    def test_cat_models_accept_analysis(self):
        from repro.cat.model import load_cat_model

        x = txn_execution()
        model = load_cat_model("x86")
        assert model.consistent(analyze(x)) == model.consistent(x)

    def test_every_registry_model_enforces_coherence(self):
        for name in model_names():
            assert get_model(name).enforces_coherence, name

    def test_checkless_library_preludes_stay_conservative(self):
        from repro.cat.model import load_cat_model

        # stdlib/powerppo define relations but carry no checks; tagging
        # them coherence-enforcing would flip observable() verdicts.
        assert not load_cat_model("stdlib.cat").enforces_coherence
        assert not load_cat_model("powerppo.cat").enforces_coherence
        assert load_cat_model("x86tm.cat").enforces_coherence

    def test_repeated_cat_evaluation_is_stable_with_diamond_includes(self):
        from repro.cat.model import CatModel

        # powerppo.cat itself includes stdlib.cat; the explicit second
        # include must stay a no-op on cached replays too.
        source = (
            '"diamond"\n'
            'include "powerppo.cat"\n'
            'include "stdlib.cat"\n'
            "acyclic po | com as Order\n"
        )
        model = CatModel(source)
        x = txn_execution()
        first = model.evaluate(x)
        second = model.evaluate(x)
        assert [c.name for c in first.checks] == ["Order"]
        assert [c.name for c in second.checks] == ["Order"]


class TestProfiling:
    def test_stage_accounting_is_self_time(self):
        prof = profiling.enable()
        try:
            with profiling.stage("axioms"):
                with profiling.stage("analysis"):
                    pass
        finally:
            profiling.disable()
        assert set(prof.seconds) == {"axioms", "analysis"}
        assert prof.calls == {"axioms": 1, "analysis": 1}
        report = prof.report()
        assert "axioms" in report and "analysis" in report

    def test_disabled_profiling_is_a_noop(self):
        assert profiling.ACTIVE is None
        with profiling.stage("whatever"):
            pass
        profiling.count("whatever")

    def test_campaign_profile_records_pipeline_stages(self):
        from repro.engine import diy_suite, run_campaign
        from repro.litmus.candidates import _expand_test, expand_program

        expand_program.cache_clear()
        _expand_test.cache_clear()
        prof = profiling.enable()
        try:
            run_campaign(diy_suite("x86", max_length=2), ["x86", "sc"])
        finally:
            profiling.disable()
        assert "expansion" in prof.seconds
        assert "axioms" in prof.seconds
        assert prof.counters.get("candidates", 0) > 0


class TestExpansionCacheLimit:
    def test_fall_through_to_reenumeration(self):
        from repro.litmus.candidates import (
            _expand_test,
            candidate_executions,
            expand_program,
            set_expansion_cache_limit,
        )
        from repro.litmus.program import Load, Program, Store

        program = Program((
            (Store("x", 1), Store("x", 2)),
            (Load("r0", "x"), Load("r1", "x")),
        ))
        expand_program.cache_clear()
        _expand_test.cache_clear()
        unbounded = [c.execution.signature() for c in
                     candidate_executions(program)]
        assert len(unbounded) > 4

        old = set_expansion_cache_limit(3)
        try:
            expand_program.cache_clear()
            stream = expand_program(program)
            first = [c.execution.signature() for c in stream]
            second = [c.execution.signature() for c in stream]
            assert first == unbounded
            assert second == unbounded
            # Only the capped prefix was retained.
            assert len(stream._seen) == 3
        finally:
            set_expansion_cache_limit(old)
            expand_program.cache_clear()
