"""Unit tests for executions and their derived relations."""

import pytest

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.core.execution import Execution, Transaction
from repro.core.events import read, write


def mp_execution():
    """Message passing: T0: Wx, Wy; T1: Ry (reads Wy), Rx (reads init)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    wy = t0.write("y")
    ry = t1.read("y")
    rx = t1.read("x")
    b.rf(wy, ry)
    return b.build(), (wx, wy, ry, rx)


class TestBasics:
    def test_event_counts(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert x.n == 4
        assert x.reads == {ry, rx}
        assert x.writes == {wx, wy}
        assert x.fences == frozenset()
        assert x.accesses == {wx, wy, ry, rx}

    def test_tid_of(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert x.tid_of[wx] == 0
        assert x.tid_of[rx] == 1

    def test_locations_first_use_order(self):
        x, _ = mp_execution()
        assert x.locations == ("x", "y")

    def test_po(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert (wx, wy) in x.po
        assert (ry, rx) in x.po
        assert (wx, ry) not in x.po
        assert (wy, wx) not in x.po

    def test_sloc_reflexive_on_accesses(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert (wx, wx) in x.sloc
        assert (wx, rx) in x.sloc
        assert (wx, wy) not in x.sloc

    def test_rf_rel_direction(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert (wy, ry) in x.rf_rel
        assert (ry, wy) not in x.rf_rel


class TestDerivedRelations:
    def test_fr_initial_read(self):
        x, (wx, wy, ry, rx) = mp_execution()
        # rx reads the initial value, so it is fr-before wx.
        assert (rx, wx) in x.fr
        # ry reads wy itself: no fr (no co-later write to y).
        assert (ry, wy) not in x.fr

    def test_fr_with_co(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        r = t1.read("x")
        b.rf(w1, r)
        b.co(w1, w2)
        x = b.build()
        assert (r, w2) in x.fr
        assert (r, w1) not in x.fr

    def test_com_union(self):
        x, _ = mp_execution()
        assert x.com == (x.rf_rel | x.co_rel | x.fr)

    def test_external_internal(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert (wy, ry) in x.rfe
        assert x.rfi.is_empty()
        assert (rx, wx) in x.fre

    def test_internal_rf(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        r = t0.read("x")
        b.rf(w, r)
        x = b.build()
        assert (w, r) in x.rfi
        assert x.rfe.is_empty()

    def test_po_loc(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        r = t0.read("x")
        r2 = t0.read("y")
        x = b.build()
        assert (w, r) in x.po_loc
        assert (w, r2) not in x.po_loc

    def test_fence_rel(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        t0.fence(Label.SYNC)
        r = t0.read("y")
        x = b.build()
        assert (w, r) in x.fence_rel(Label.SYNC)
        assert x.fence_rel(Label.LWSYNC).is_empty()


class TestTransactions:
    def build_txn(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.read("x")
        d = t0.write("y")
        b.txn([c, d])
        return b.build(), (a, c, d)

    def test_stxn_partial_equivalence(self):
        x, (a, c, d) = self.build_txn()
        assert (c, d) in x.stxn and (d, c) in x.stxn
        assert (c, c) in x.stxn  # reflexive on its domain
        assert (a, a) not in x.stxn

    def test_txn_events(self):
        x, (a, c, d) = self.build_txn()
        assert x.txn_events == {c, d}
        assert x.txn_of == {c: 0, d: 0}

    def test_tfence_boundary(self):
        x, (a, c, d) = self.build_txn()
        # a (outside) to c/d (inside) crosses the boundary.
        assert (a, c) in x.tfence
        assert (a, d) in x.tfence
        assert (c, d) not in x.tfence

    def test_tfence_exit(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.write("y")
        b.txn([a])
        x = b.build()
        assert (a, c) in x.tfence

    def test_stxnat(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        b.txn([a], atomic=True)
        x = b.build()
        assert (a, a) in x.stxnat

    def test_without_transactions(self):
        x, _ = self.build_txn()
        y = x.without_transactions()
        assert y.stxn.is_empty()
        assert y.tfence.is_empty()
        assert y.po == x.po

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            Transaction(())


class TestValues:
    def test_write_values_coherence_positions(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("x")
        b.co(w2, w1)
        x = b.build()
        assert x.write_values[w2] == 1
        assert x.write_values[w1] == 2
        assert x.final_value("x") == 2

    def test_read_values(self):
        x, (wx, wy, ry, rx) = mp_execution()
        assert x.read_value(ry) == x.write_values[wy]
        assert x.read_value(rx) == 0


class TestSurgery:
    def test_without_event_renumbers(self):
        x, (wx, wy, ry, rx) = mp_execution()
        y = x.without_event(wx)
        assert y.n == 3
        assert y.events[0].loc == "y"  # wy shifted down
        assert len(y.threads) == 2
        # The rf edge survives with renumbered ids.
        assert len(y.rf) == 1

    def test_without_event_drops_incident_rf(self):
        x, (wx, wy, ry, rx) = mp_execution()
        y = x.without_event(wy)
        assert not y.rf  # the rf edge vanished with its source

    def test_without_event_empty_thread_removed(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        w = t1.write("x")
        x = b.build()
        y = x.without_event(w)
        assert len(y.threads) == 1

    def test_without_event_shrinks_txn(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.write("y")
        b.txn([a, c])
        x = b.build()
        y = x.without_event(a)
        assert len(y.txns) == 1
        assert y.txns[0].events == (0,)

    def test_without_dep(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        w = t0.write("y")
        b.data(r, w)
        x = b.build()
        y = x.without_dep("data", (r, w))
        assert not y.data

    def test_without_dep_unknown_kind(self):
        x, _ = mp_execution()
        with pytest.raises(ValueError):
            x.without_dep("bogus", (0, 1))

    def test_with_event_downgrade(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.acq_read("x")
        x = b.build()
        y = x.with_event(r, x.events[r].drop_labels(Label.ACQ))
        assert not y.events[r].has(Label.ACQ)

    def test_equality_and_hash(self):
        x1, _ = mp_execution()
        x2, _ = mp_execution()
        assert x1 == x2
        assert hash(x1) == hash(x2)
        assert x1 != x1.without_event(0)

    def test_describe_mentions_structure(self):
        x, _ = mp_execution()
        text = x.describe()
        assert "thread 0" in text
        assert "rf<-" in text
