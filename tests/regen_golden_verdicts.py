#!/usr/bin/env python
"""Regenerate the golden catalog verdict matrix.

Run after an *intentional* semantic change to a native model or a
catalog entry::

    PYTHONPATH=src python tests/regen_golden_verdicts.py

and commit the updated ``tests/golden_verdicts.json`` together with the
change that motivated it.  ``tests/test_golden_verdicts.py`` fails on
any unexplained flip.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.conformance.golden import write_snapshot  # noqa: E402

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_verdicts.json"


def main() -> int:
    matrix = write_snapshot(GOLDEN)
    cells = sum(len(row) for row in matrix.values())
    print(f"wrote {GOLDEN} ({len(matrix)} entries x "
          f"{len(next(iter(matrix.values())))} models = {cells} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
