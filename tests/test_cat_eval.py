"""Unit tests for the .cat evaluator against hand-built executions."""

import pytest

from repro.cat.errors import CatError, CatNameError, CatTypeError
from repro.cat.evaluator import evaluate, evaluate_expr
from repro.cat.library import library_source
from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.core.lifting import stronglift, weaklift
from repro.core.relation import Relation


@pytest.fixture
def mp():
    """Message-passing: t0 writes x then y; t1 reads y (from t0) then x
    (stale, from the initial state)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    wy = t0.write("y")
    ry = t1.read("y")
    rx = t1.read("x")
    b.rf(wy, ry)
    return b.build()


@pytest.fixture
def txn_exec():
    """One transaction on each thread, conflicting on x."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    c = t1.write("x")
    d = t1.read("x")
    b.rf(a, d)
    b.co(c, a)
    b.txn([a])
    b.txn([c, d])
    return b.build()


class TestPrimitives:
    def test_po(self, mp):
        po = evaluate_expr("po", mp)
        assert (0, 1) in po and (2, 3) in po
        assert (0, 2) not in po

    def test_sets(self, mp):
        assert evaluate_expr("W", mp) == frozenset({0, 1})
        assert evaluate_expr("R", mp) == frozenset({2, 3})
        assert evaluate_expr("M", mp) == frozenset(range(4))

    def test_universe(self, mp):
        assert evaluate_expr("_", mp) == frozenset(range(4))

    def test_rf(self, mp):
        assert list(evaluate_expr("rf", mp).pairs()) == [(1, 2)]

    def test_fr_includes_init_reads(self, mp):
        # rx reads the initial x, so it is fr-before the write wx.
        assert (3, 0) in evaluate_expr("fr", mp)

    def test_loc(self, mp):
        loc = evaluate_expr("loc", mp)
        assert (0, 3) in loc and (1, 2) in loc
        assert (0, 1) not in loc

    def test_int_ext_partition_non_diagonal_pairs(self, mp):
        union = evaluate_expr("int | ext", mp)
        assert union == Relation.full(4)

    def test_empty_relation_literal(self, mp):
        assert evaluate_expr("0", mp).is_empty()

    def test_empty_set_literal(self, mp):
        assert evaluate_expr("{}", mp) == frozenset()


class TestOperators:
    def test_union_and_intersection_on_sets(self, mp):
        assert evaluate_expr("R | W", mp) == frozenset(range(4))
        assert evaluate_expr("R & W", mp) == frozenset()

    def test_difference_on_sets(self, mp):
        assert evaluate_expr("M \\ R", mp) == frozenset({0, 1})

    def test_cross_product(self, mp):
        wr = evaluate_expr("W * R", mp)
        assert (0, 2) in wr and (1, 3) in wr and (2, 0) not in wr

    def test_cross_on_relations_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="Cartesian"):
            evaluate_expr("po * rf", mp)

    def test_mixed_boolean_op_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="two sets or two relations"):
            evaluate_expr("po | W", mp)

    def test_lift(self, mp):
        lifted = evaluate_expr("[W]", mp)
        assert list(lifted.pairs()) == [(0, 0), (1, 1)]

    def test_lift_of_relation_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="event set"):
            evaluate_expr("[po]", mp)

    def test_seq(self, mp):
        # po ; rf : wx -> ry
        assert (0, 2) in evaluate_expr("po ; rf", mp)

    def test_seq_promotes_sets_to_identity(self, mp):
        explicit = evaluate_expr("[W] ; po ; [R]", mp)
        promoted = evaluate_expr("W ; po ; R", mp)
        assert explicit == promoted

    def test_complement_of_set(self, mp):
        assert evaluate_expr("~R", mp) == frozenset({0, 1})

    def test_complement_of_relation_includes_diagonal(self, mp):
        compl = evaluate_expr("~po", mp)
        assert (0, 0) in compl and (1, 0) in compl and (0, 1) not in compl

    def test_closures(self, mp):
        assert evaluate_expr("po^?", mp) == evaluate_expr("po", mp).opt()
        assert evaluate_expr("po^+", mp) == evaluate_expr("po", mp).plus()
        assert evaluate_expr("po^*", mp) == evaluate_expr("po", mp).star()

    def test_inverse(self, mp):
        assert list(evaluate_expr("rf^-1", mp).pairs()) == [(2, 1)]

    def test_closure_of_set_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="expects a relation"):
            evaluate_expr("W^+", mp)

    def test_unbound_name(self, mp):
        with pytest.raises(CatNameError, match="unbound name 'zz'"):
            evaluate_expr("zz", mp)


class TestStatements:
    def test_let_binds(self, mp):
        result = evaluate('let hb = po | rf\nacyclic hb as Order', mp)
        assert result.consistent
        assert result.relation("hb") == evaluate_expr("po | rf", mp)

    def test_let_function_and_application(self, mp):
        source = """
        let fences(S) = po; [S]; po
        let f = fences(W)
        empty f \\ po as Sub
        """
        result = evaluate(source, mp)
        assert result.consistent

    def test_function_wrong_arity(self, mp):
        with pytest.raises(CatTypeError, match="expects 1 argument"):
            evaluate("let f(x) = x\nlet y = f(po, rf)", mp)

    def test_calling_a_relation_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="not a function"):
            evaluate("let y = po(rf)", mp)

    def test_domain_and_range(self, mp):
        result = evaluate(
            "let d = domain(rf)\nlet r = range(rf)\n"
            "empty [d] \\ [W] as DomW\nempty [r] \\ [R] as RanR",
            mp,
        )
        assert result.consistent
        assert result.bindings["d"] == frozenset({1})
        assert result.bindings["r"] == frozenset({2})

    def test_domain_of_set_is_an_error(self, mp):
        with pytest.raises(CatTypeError, match="expects a relation"):
            evaluate("let d = domain(W)", mp)

    def test_let_rec_fixpoint(self, mp):
        # Transitive closure of po by recursion.
        source = "let rec tc = po | (tc; tc)"
        result = evaluate(source, mp)
        assert result.bindings["tc"] == evaluate_expr("po^+", mp)

    def test_let_rec_mutual(self, mp):
        source = """
        let rec a = po | (b; b)
        and b = rf | a
        """
        result = evaluate(source, mp)
        assert result.bindings["a"] <= result.bindings["b"]

    def test_let_rec_must_be_relation(self, mp):
        with pytest.raises(CatTypeError, match="relation-valued"):
            evaluate("let rec s = W", mp)

    def test_failing_check_reported(self, mp):
        result = evaluate("acyclic po | po^-1 as Bad", mp)
        assert not result.consistent
        (check,) = result.checks
        assert check.name == "Bad" and not check.holds
        assert "VIOLATED" in check.describe()

    def test_flag_does_not_affect_consistency(self, mp):
        result = evaluate("flag ~empty po as Diag\nacyclic po as Order", mp)
        assert result.consistent
        assert result.flagged == ["Diag"]

    def test_flag_not_raised_when_test_fails(self, mp):
        result = evaluate("flag ~empty 0 as Diag", mp)
        assert result.flagged == []

    def test_include_without_loader_fails(self, mp):
        with pytest.raises(CatError, match="needs a loader"):
            evaluate('include "stdlib.cat"', mp)

    def test_relation_accessor_type_guard(self, mp):
        result = evaluate("let s = W", mp)
        with pytest.raises(CatTypeError):
            result.relation("s")


class TestStdlib:
    def _eval(self, extra: str, x):
        from repro.cat.model import _library_loader

        return evaluate(library_source("stdlib.cat") + "\n" + extra, x,
                        _library_loader)

    def test_rfe_rfi(self, mp):
        result = self._eval("let probe = rfe", mp)
        assert result.bindings["rfe"] == mp.rfe
        assert result.bindings["rfi"] == mp.rfi

    def test_com(self, mp):
        result = self._eval("let probe = com", mp)
        assert result.bindings["com"] == mp.com

    def test_po_loc(self, mp):
        result = self._eval("let probe = po_loc", mp)
        assert result.bindings["po_loc"] == mp.po_loc

    def test_fencerel_matches_native(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        t0.fence(Label.SYNC)
        t0.write("y")
        x = b.build()
        result = self._eval("let s = fencerel(SYNC)", x)
        assert result.bindings["s"] == x.fence_rel(Label.SYNC)

    def test_weaklift_matches_native(self, txn_exec):
        result = self._eval("let wl = weaklift(com, stxn)", txn_exec)
        assert result.bindings["wl"] == weaklift(txn_exec.com, txn_exec.stxn)

    def test_stronglift_matches_native(self, txn_exec):
        result = self._eval("let sl = stronglift(com, stxn)", txn_exec)
        assert result.bindings["sl"] == stronglift(
            txn_exec.com, txn_exec.stxn
        )

    def test_tfence_primitive(self, txn_exec):
        assert evaluate_expr("tfence", txn_exec) == txn_exec.tfence

    def test_stxn_primitive(self, txn_exec):
        assert evaluate_expr("stxn", txn_exec) == txn_exec.stxn
