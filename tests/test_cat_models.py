"""Cross-validation: every .cat library model agrees with its native
Python counterpart — on the whole paper catalog and on exhaustively
enumerated executions.  This is the test that makes the .cat artefact
meaningful: two independent implementations of each model, one in Python
and one in the DSL, computing identical verdicts from shared primitives.
"""

import pytest

from repro.cat import CAT_MODEL_FILES, CatModel, load_cat_model
from repro.cat.library import library_files, library_path, library_source
from repro.catalog import CATALOG
from repro.models.registry import get_model, model_names
from repro.synth.generate import EnumerationSpace, enumerate_executions

#: Models cross-checked here (riscv is covered by test_riscv.py).
PAIRED = ["sc", "tsc", "x86", "power", "armv8", "cpp", "power-dongol"]


@pytest.fixture(scope="module")
def cat_models():
    return {name: load_cat_model(name) for name in PAIRED}


@pytest.fixture(scope="module")
def native_models():
    return {name: get_model(name) for name in PAIRED}


class TestLibraryShape:
    def test_every_registry_model_has_a_cat_file(self):
        for name in model_names():
            assert name in CAT_MODEL_FILES

    def test_library_files_exist(self):
        files = library_files()
        assert "stdlib.cat" in files
        for name in PAIRED:
            assert CAT_MODEL_FILES[name] in files

    def test_library_path_unknown_file(self):
        with pytest.raises(FileNotFoundError, match="no library model"):
            library_path("nonsense.cat")

    def test_titles_present(self):
        for name in PAIRED:
            model = load_cat_model(name)
            assert model.ast.title, f"{name} has no title line"


class TestLoadCatModel:
    def test_load_by_registry_name(self):
        model = load_cat_model("x86")
        assert isinstance(model, CatModel)
        assert model.arch == "x86"

    def test_load_by_file_name(self):
        model = load_cat_model("x86tm.cat")
        assert model.arch == "x86tm"

    def test_load_by_path(self, tmp_path):
        path = tmp_path / "tiny.cat"
        path.write_text('"tiny"\nacyclic po as Order')
        model = load_cat_model(str(path))
        assert model.arch == "tiny"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown cat model"):
            load_cat_model("not-a-model")

    def test_axioms_match_native_names(self):
        for name in PAIRED:
            cat_names = {a.name for a in load_cat_model(name).axioms()}
            native_names = {a.name for a in get_model(name).axioms()}
            assert cat_names == native_names, name


class TestCatalogAgreement:
    @pytest.mark.parametrize("name", PAIRED)
    def test_consistency_agreement(self, name, cat_models, native_models):
        cat, native = cat_models[name], native_models[name]
        for ename, entry in CATALOG.items():
            assert cat.consistent(entry.execution) == native.consistent(
                entry.execution
            ), f"{name} disagrees on {ename}"

    @pytest.mark.parametrize("name", PAIRED)
    def test_notm_baseline_agreement(self, name):
        cat = load_cat_model(name, tm=False)
        native = get_model(name, tm=False)
        for ename, entry in CATALOG.items():
            assert cat.consistent(entry.execution) == native.consistent(
                entry.execution
            ), f"{name} (no TM) disagrees on {ename}"

    @pytest.mark.parametrize("name", ["x86", "power", "armv8", "cpp"])
    def test_failed_axiom_agreement(self, name, cat_models, native_models):
        cat, native = cat_models[name], native_models[name]
        for ename, entry in CATALOG.items():
            cat_failures = {r.name for r in cat.check(entry.execution).failures}
            native_failures = set(native.failed_axioms(entry.execution))
            assert cat_failures == native_failures, f"{name}/{ename}"

    def test_race_flag_agreement(self, cat_models, native_models):
        cat, native = cat_models["cpp"], native_models["cpp"]
        for ename, entry in CATALOG.items():
            if entry.racy is None:
                continue
            assert cat.race_free(entry.execution) == native.race_free(
                entry.execution
            ), ename
            assert cat.race_free(entry.execution) != entry.racy, ename

    def test_expected_catalog_verdicts_through_cat(self, cat_models):
        """The catalog's expected verdicts hold under the cat models too."""
        for ename, entry in CATALOG.items():
            for model_name, expected in entry.expected.items():
                if model_name not in PAIRED:
                    continue
                got = cat_models[model_name].consistent(entry.execution)
                assert got == expected, f"{model_name} on {ename}"


class TestEnumeratedAgreement:
    """Exhaustive agreement over every canonical execution at a small
    bound — thousands of executions per architecture."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("x86", {}),
            ("armv8", {"max_deps": 1}),
            ("cpp", {}),
        ],
    )
    def test_agreement_at_three_events(self, name, kwargs):
        space = EnumerationSpace.for_arch(name, 3, **kwargs)
        cat = load_cat_model(name)
        native = get_model(name)
        count = 0
        for x in enumerate_executions(space):
            assert cat.consistent(x) == native.consistent(x), x.describe()
            count += 1
        assert count > 100  # the space is non-trivial

    def test_power_agreement_at_three_events(self):
        space = EnumerationSpace.for_arch(
            "power", 3, max_deps=1, include_fences=False
        )
        cat = load_cat_model("power")
        native = get_model("power")
        for x in enumerate_executions(space):
            assert cat.consistent(x) == native.consistent(x), x.describe()

    def test_sc_tsc_agreement_at_four_events(self):
        for name in ("sc", "tsc"):
            space = EnumerationSpace.for_arch(name, 4, max_txns=2)
            cat = load_cat_model(name)
            native = get_model(name)
            for x in enumerate_executions(space):
                assert cat.consistent(x) == native.consistent(x)
