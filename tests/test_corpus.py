"""The committed herd-dialect corpus: parse, round-trip, verdicts.

``tests/corpus/<arch>/*.litmus`` is the conformance workload the CI
corpus job sweeps; this suite pins its three contracts:

* every file parses through the dialect frontend and round-trips
  byte-exactly through the matching renderer;
* the full corpus × native-model verdict matrix equals the golden
  ``tests/corpus_verdicts.json`` (regen:
  ``PYTHONPATH=src python tests/regen_corpus.py``);
* every ``cat-*`` file (a classic catalog entry imported through the
  dialect) reproduces the catalog's pinned observability row across
  all eight models — frontend↔catalog agreement.
"""

import json
import pathlib

import pytest

from repro.conformance.golden import litmus_key, load_snapshot
from repro.engine.campaign import litmus_suite, run_campaign
from repro.engine.checkers import resolve_checker
from repro.litmus.frontend import (
    DIALECTS,
    detect_dialect,
    dump_dialect,
    load_dialect,
)
from repro.models.registry import MODELS

CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"
VERDICTS = pathlib.Path(__file__).resolve().parent / "corpus_verdicts.json"
GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_verdicts.json"

_REGEN_HINT = (
    "if this change is intentional, regenerate with "
    "`PYTHONPATH=src python tests/regen_corpus.py` and commit the result"
)

ALL_FILES = sorted(
    p.relative_to(CORPUS).as_posix() for p in CORPUS.glob("*/*.litmus")
)


def _load(relpath: str):
    return load_dialect((CORPUS / relpath).read_text(encoding="utf-8"))


class TestCorpusShape:
    def test_at_least_150_files_across_four_dialects(self):
        assert len(ALL_FILES) >= 150, f"corpus shrank to {len(ALL_FILES)}"
        by_arch = {p.split("/")[0] for p in ALL_FILES}
        assert by_arch == set(DIALECTS), by_arch

    def test_matrix_covers_exactly_the_corpus(self):
        matrix = json.loads(VERDICTS.read_text(encoding="utf-8"))
        assert set(matrix) == set(ALL_FILES), _REGEN_HINT
        for row in matrix.values():
            assert set(row) == set(MODELS), _REGEN_HINT

    def test_every_shape_family_is_present(self):
        names = {p.split("/", 1)[1] for p in ALL_FILES}
        for family in (
            "sb.litmus",
            "mp.litmus",
            "lb.litmus",
            "iriw.litmus",
            "corr.litmus",
            "txnorder.litmus",
            "forall+stores.litmus",
            "cat-sb.litmus",
        ):
            assert family in names, f"missing corpus family {family}"


@pytest.mark.parametrize("relpath", ALL_FILES)
def test_parse_and_roundtrip(relpath):
    """Each file parses in its directory's dialect and the renderer
    reproduces the committed text exactly."""
    text = (CORPUS / relpath).read_text(encoding="utf-8")
    arch = relpath.split("/")[0]
    assert detect_dialect(text) == arch
    test = load_dialect(text)
    assert test.arch == arch
    assert dump_dialect(test) == text
    assert load_dialect(dump_dialect(test)) == test


class TestCorpusVerdicts:
    def test_matrix_matches_golden(self):
        """The full corpus × native-model matrix (quantifier-aware)
        equals the committed snapshot."""
        golden = json.loads(VERDICTS.read_text(encoding="utf-8"))
        checkers = {name: resolve_checker(name) for name in sorted(MODELS)}
        flipped = []
        for relpath in ALL_FILES:
            test = _load(relpath)
            for model, checker in checkers.items():
                got = bool(checker.verdict(test))
                want = golden[relpath][model]
                if got != want:
                    flipped.append((relpath, model, want, got))
        assert not flipped, (
            f"corpus verdicts flipped (file, model, pinned, got): "
            f"{flipped[:10]}; {_REGEN_HINT}"
        )

    def test_campaign_over_corpus_dir_has_no_expected_diffs(self):
        """`repro campaign` semantics: a sweep of one dialect directory
        honours every ~exists expectation (no diffs, no errors)."""
        paths = [str(CORPUS / p) for p in ALL_FILES if p.startswith("x86/")]
        items = litmus_suite(paths)
        result = run_campaign(items, ["x86", "sc"])
        assert not result.errors()
        assert result.diffs(items) == []

    def test_tilde_exists_forbidden_under_own_arch(self):
        """The corpus contract the campaign expectations rely on."""
        for relpath in ALL_FILES:
            test = _load(relpath)
            if test.quantifier != "~exists":
                continue
            assert not resolve_checker(test.arch).verdict(test), (
                f"{relpath}: ~exists condition observable under {test.arch}"
            )


class TestFrontendCatalogAgreement:
    """Each imported classic entry must reproduce the golden litmus
    observability row across all eight models."""

    CAT_FILES = [p for p in ALL_FILES if p.split("/", 1)[1].startswith("cat-")]

    def test_catalog_imports_exist(self):
        assert len(self.CAT_FILES) >= 40

    @pytest.mark.parametrize(
        "relpath", [p for p in ALL_FILES if "/cat-" in p]
    )
    def test_row_matches_golden(self, relpath):
        golden = load_snapshot(GOLDEN)
        arch, filename = relpath.split("/", 1)
        entry = filename[len("cat-"):-len(".litmus")]
        key = litmus_key(entry, arch)
        assert key in golden, f"{key} missing from golden_verdicts.json"
        test = _load(relpath)
        row = {
            name: bool(resolve_checker(name).verdict(test))
            for name in sorted(MODELS)
        }
        assert row == golden[key], (
            f"{relpath}: verdict row diverged from the catalog's pinned "
            f"row {key}"
        )
