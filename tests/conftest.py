"""Shared test configuration: one seed to reproduce every random suite.

All randomized suites (``test_equivalence``, ``test_relation_properties``,
``test_conformance``, …) derive their randomness from ``REPRO_TEST_SEED``
via :mod:`repro.conformance.seeds`.  The value is printed in the pytest
header, so any CI failure is reproducible from the log line alone::

    REPRO_TEST_SEED=<value from the log> python -m pytest tests/...
"""

import pytest


def pytest_report_header(config):
    try:
        from repro.conformance.seeds import ENV_VAR, reproducible_seed

        return f"{ENV_VAR}={reproducible_seed()}"
    except Exception:  # pragma: no cover - src not on sys.path
        return None


@pytest.fixture
def test_seed() -> int:
    """The session seed (``$REPRO_TEST_SEED`` or the fixed default)."""
    from repro.conformance.seeds import reproducible_seed

    return reproducible_seed()
