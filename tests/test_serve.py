"""Campaign service tests: the shared result store, resilient pool
dispatch, the batching×telemetry composition, and the job service with
its HTTP face."""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine import diy_suite, run_campaign
from repro.engine.cache import NullCache, ResultCache
from repro.engine.pool import PoisonedTask, resilient_map
from repro.litmus.candidates import batch_size, set_batch_size
from repro.obs import telemetry
from repro.serve import (
    CampaignService,
    JobSpec,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SpecError,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


# ----------------------------------------------------------------------
# Shared result store
# ----------------------------------------------------------------------


def _append_records(path, prefix, count):
    """Child-process body: append ``count`` records via a own cache."""
    with ResultCache(path) as cache:
        for i in range(count):
            cache.put(f"{prefix}-{i}", {"verdict": i % 2 == 0, "n": i})


class TestSharedStore:
    def test_two_instances_see_each_others_puts(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultCache(path) as a, ResultCache(path) as b:
            a.put("ka", {"verdict": True})
            b.put("kb", {"verdict": False})
            # Neither has read the other's append yet.
            assert b._records.get("ka") is None
            assert a._records.get("kb") is None
            assert a.refresh() >= 1
            assert b.refresh() >= 1
            assert a._records["kb"]["verdict"] is False
            assert b._records["ka"]["verdict"] is True

    def test_last_record_wins_across_writers(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultCache(path) as a, ResultCache(path) as b:
            a.put("k", {"verdict": True, "writer": "a"})
            b.put("k", {"verdict": False, "writer": "b"})
            a.refresh()
            assert a._records["k"]["writer"] == "b"
        # A cold load resolves the duplicate the same way.
        with ResultCache(path) as fresh:
            assert fresh._records["k"]["writer"] == "b"

    def test_concurrent_processes_produce_no_torn_lines(self, tmp_path):
        path = tmp_path / "results.jsonl"
        workers = [
            multiprocessing.Process(
                target=_append_records, args=(path, f"w{i}", 200)
            )
            for i in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
            assert w.exitcode == 0
        lines = path.read_bytes().split(b"\n")
        assert lines[-1] == b""  # file ends on a record boundary
        for line in lines[:-1]:
            json.loads(line)  # every line is one complete record
        with ResultCache(path) as cache:
            assert len(cache) == 4 * 200
            assert cache.corrupt_lines == 0

    def test_torn_tail_tolerated_then_folded_when_complete(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultCache(path) as cache:
            cache.put("k1", {"verdict": True})
            with path.open("a", encoding="utf-8") as handle:
                handle.write('{"key": "k2", "verd')  # in-flight append
            reader = ResultCache(path)
            assert "k1" in reader._records
            assert "k2" not in reader._records
            assert reader.corrupt_lines == 0  # torn tail is not corruption
            with path.open("a", encoding="utf-8") as handle:
                handle.write('ict": false}\n')
            assert reader.refresh() == 1
            assert reader._records["k2"]["verdict"] is False
            reader.close()

    def test_interior_corruption_counted_and_warned(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text(
            '{"key": "good1", "verdict": true}\n'
            "THIS IS NOT JSON\n"
            '{"verdict": true}\n'
            '{"key": "good2", "verdict": false}\n',
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning, match="corrupt cache line"):
            cache = ResultCache(path)
        assert cache.corrupt_lines == 2  # garbage + keyless record
        assert set(cache._records) == {"good1", "good2"}
        assert cache.stats_dict()["corrupt_lines"] == 2
        assert "2 corrupt lines skipped" in cache.stats()
        cache.close()

    def test_truncation_triggers_full_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultCache(path) as writer:
            writer.put("k1", {"verdict": True})
            writer.put("k2", {"verdict": True})
            reader = ResultCache(path)
            assert len(reader) == 2
            path.write_text(
                '{"key": "k3", "verdict": false}\n', encoding="utf-8"
            )
            reader.refresh()
            assert set(reader._records) == {"k3"}
            reader.close()


# ----------------------------------------------------------------------
# Resilient pool dispatch
# ----------------------------------------------------------------------


def _double(x):
    return x * 2


def _crash_on_7(x):
    if x == 7:
        raise ValueError("seven is right out")
    return x


def _die_on_3(x):
    if x == 3:
        os._exit(13)  # kill the worker process, not just the task
    return x


def _hang_on_2(x):
    if x == 2:
        time.sleep(60)
    return x


class TestResilientMap:
    def test_happy_path_keeps_order(self):
        assert resilient_map(_double, range(8), jobs=2) == [
            x * 2 for x in range(8)
        ]

    def test_crash_is_retried_then_poisoned(self):
        out = resilient_map(_crash_on_7, [1, 7, 9], jobs=2, retries=1)
        assert out[0] == 1 and out[2] == 9
        assert isinstance(out[1], PoisonedTask)
        assert "ValueError" in out[1].error
        assert out[1].attempts == 2  # initial run + one retry

    def test_serial_fallback_poisons_crashes(self):
        out = resilient_map(_crash_on_7, [7, 8], jobs=1, retries=0)
        assert isinstance(out[0], PoisonedTask)
        assert out[1] == 8

    def test_worker_death_poisons_only_the_culprit(self):
        out = resilient_map(_die_on_3, [1, 2, 3, 4, 5], jobs=2, retries=0)
        assert isinstance(out[2], PoisonedTask)
        assert "worker process died" in out[2].error
        assert [out[i] for i in (0, 1, 3, 4)] == [1, 2, 4, 5]

    def test_hang_is_abandoned_within_budget(self):
        start = time.monotonic()
        out = resilient_map(
            _hang_on_2, [1, 2, 4], jobs=3, timeout=1.0, retries=0
        )
        assert time.monotonic() - start < 30  # nobody waited for sleep(60)
        assert out[0] == 1 and out[2] == 4
        assert isinstance(out[1], PoisonedTask)
        assert "TimeoutError" in out[1].error


# ----------------------------------------------------------------------
# Batching × telemetry
# ----------------------------------------------------------------------


class TestBatchedTelemetry:
    def test_telemetry_run_takes_batched_path_with_identical_verdicts(
        self,
    ):
        """The old fallback is gone: with telemetry on, a serial
        campaign still runs the batched prefill, records one span per
        decided cell (tagged ``batched``), feeds the per-model latency
        histograms, and produces verdicts bit-identical to the scalar
        path."""
        suite = diy_suite("x86", max_length=3)
        models = ["x86", "x86tm"]
        saved = batch_size()
        try:
            set_batch_size(0)  # scalar reference
            scalar = run_campaign(suite, models, cache=NullCache())
            set_batch_size(64)
            bundle = telemetry.enable()
            batched = run_campaign(suite, models, cache=NullCache())
            spans = [
                s for s in bundle.tracer.spans if s["name"] == "cell"
            ]
            hist = bundle.metrics.histograms
        finally:
            set_batch_size(saved)
            telemetry.disable()
        assert batched.matrix() == scalar.matrix()
        assert len(spans) == len(suite) * len(models)
        prefilled = [
            s for s in spans if (s.get("attrs") or {}).get("batched")
        ]
        assert prefilled, "no cell went through the batched prefill"
        for span in prefilled:
            assert span["attrs"]["token"]
            assert span["self"] == 0.0  # sweep time lives in stage spans
        for spec in models:
            assert hist[f"cell_seconds:{spec}"].count == len(suite)


# ----------------------------------------------------------------------
# Job spec validation
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_minimal_diy_spec(self):
        spec = JobSpec.from_dict(
            {"suite": {"kind": "diy", "arch": "x86"}, "models": ["x86"]}
        )
        assert spec.models == ["x86"]
        assert spec.cell_timeout == 60.0
        assert spec.retries == 1
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "not an object",
            {},
            {"suite": {"kind": "nope"}, "models": ["x86"]},
            {"suite": {"kind": "files", "paths": []}, "models": ["x86"]},
            {"suite": {"kind": "files", "paths": [1]}, "models": ["x86"]},
            {"suite": {"kind": "diy"}, "models": []},
            {"suite": {"kind": "diy"}, "models": "x86"},
            {
                "suite": {"kind": "diy"},
                "models": ["x86"],
                "options": {"cell_timeout": -1},
            },
            {
                "suite": {"kind": "diy"},
                "models": ["x86"],
                "options": {"retries": -1},
            },
            {
                "suite": {"kind": "diy"},
                "models": ["x86"],
                "options": {"shards": 0},
            },
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(SpecError):
            JobSpec.from_dict(bad)


# ----------------------------------------------------------------------
# The service (in process)
# ----------------------------------------------------------------------


DIY2 = {"suite": {"kind": "diy", "arch": "x86", "length": 2}}


def _wait_done(service, job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while service.job(job.id).state not in ("done", "failed"):
        assert time.monotonic() < deadline, "job did not finish"
        time.sleep(0.02)
    return service.job(job.id)


class TestCampaignService:
    def _service(self, tmp_path, **kwargs):
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("runs_dir", tmp_path / "runs")
        return CampaignService(**kwargs).start()

    def test_job_runs_and_matches_direct_campaign(self, tmp_path):
        service = self._service(tmp_path)
        try:
            job = service.submit(
                JobSpec.from_dict({**DIY2, "models": ["x86", "x86tm"]})
            )
            job = _wait_done(service, job)
            assert job.state == "done"
            assert job.total_cells == len(job.cells) == 10
            assert job.error_cells == 0
            direct = run_campaign(
                diy_suite("x86", max_length=2),
                ["x86", "x86tm"],
                cache=NullCache(),
            )
            got = {
                (c["item"], c["model"]): c["verdict"] for c in job.cells
            }
            want = {
                key: cell.verdict for key, cell in direct.cells.items()
            }
            assert got == want
            assert job.manifest_path is not None
            manifest = json.loads(
                (tmp_path / "runs").joinpath(
                    os.path.basename(job.manifest_path)
                ).read_text()
            )
            assert manifest["run_id"].endswith(job.id)
            assert manifest["suite"]["job"] == job.id
        finally:
            service.stop()

    def test_second_job_dedupes_through_shared_store(self, tmp_path):
        service = self._service(tmp_path)
        try:
            spec = JobSpec.from_dict({**DIY2, "models": ["x86", "x86tm"]})
            # Submit both before either runs — the "two concurrent
            # clients" shape: the scheduler serializes them, the store
            # dedupes them.
            first, second = service.submit(spec), service.submit(spec)
            first = _wait_done(service, first)
            second = _wait_done(service, second)
            assert first.computed_cells == 10
            assert second.cached_cells / second.total_cells > 0.9
            matrix = lambda j: {  # noqa: E731
                (c["item"], c["model"]): c["verdict"] for c in j.cells
            }
            assert matrix(first) == matrix(second)
        finally:
            service.stop()

    def test_sharded_job_matches_serial(self, tmp_path):
        sharded = self._service(tmp_path, jobs=2, cache=NullCache())
        serial = CampaignService(
            jobs=1, cache=NullCache(), runs_dir=tmp_path / "runs2"
        ).start()
        try:
            spec = JobSpec.from_dict({**DIY2, "models": ["x86", "x86tm"]})
            a = _wait_done(sharded, sharded.submit(spec))
            b = _wait_done(serial, serial.submit(spec))
            assert a.state == b.state == "done"
            assert {
                (c["item"], c["model"]): c["verdict"] for c in a.cells
            } == {(c["item"], c["model"]): c["verdict"] for c in b.cells}
        finally:
            sharded.stop()
            serial.stop()

    def test_bad_model_rejected_at_submit(self, tmp_path):
        service = self._service(tmp_path)
        try:
            with pytest.raises(SpecError, match="no-such-model"):
                service.submit(
                    JobSpec.from_dict(
                        {**DIY2, "models": ["no-such-model"]}
                    )
                )
        finally:
            service.stop()

    def test_unbuildable_suite_fails_the_job_not_the_service(
        self, tmp_path
    ):
        service = self._service(tmp_path)
        try:
            bad = service.submit(
                JobSpec.from_dict(
                    {
                        "suite": {
                            "kind": "files",
                            "paths": [str(tmp_path / "missing.litmus")],
                        },
                        "models": ["x86"],
                    }
                )
            )
            bad = _wait_done(service, bad)
            assert bad.state == "failed"
            assert bad.error
            # The scheduler survives: the next job runs normally.
            ok = _wait_done(
                service,
                service.submit(
                    JobSpec.from_dict({**DIY2, "models": ["x86"]})
                ),
            )
            assert ok.state == "done"
        finally:
            service.stop()

    def test_crashing_unit_poisons_its_cells_not_the_job(
        self, tmp_path, monkeypatch
    ):
        from repro.serve import service as service_mod

        real = service_mod._run_unit

        def sabotaged(unit):
            if "Fre+Rfe" in unit[0]:
                raise RuntimeError("synthetic checker crash")
            return real(unit)

        monkeypatch.setattr(service_mod, "_run_unit", sabotaged)
        saved = batch_size()
        set_batch_size(0)  # no prefill: every cell must reach _run_unit
        service = self._service(tmp_path, cache=NullCache())
        try:
            job = _wait_done(
                service,
                service.submit(
                    JobSpec.from_dict({**DIY2, "models": ["x86", "x86tm"]})
                ),
            )
            assert job.state == "done"  # never "failed"
            bad = [c for c in job.cells if c["error"] is not None]
            assert len(bad) == 2  # both models of the sabotaged item
            assert all("synthetic checker crash" in c["error"] for c in bad)
            assert all(c["item"] == "diy-Fre+Rfe" for c in bad)
            good = [c for c in job.cells if c["error"] is None]
            assert len(good) == 8
        finally:
            set_batch_size(saved)
            service.stop()

    def test_cells_cursor_is_stable(self, tmp_path):
        service = self._service(tmp_path, cache=NullCache())
        try:
            job = _wait_done(
                service,
                service.submit(JobSpec.from_dict({**DIY2, "models": ["x86"]})),
            )
            page = service.cells_since(job.id, 0)
            assert page["next"] == len(page["cells"]) == 5
            assert [c["seq"] for c in page["cells"]] == list(range(5))
            tail = service.cells_since(job.id, 3)
            assert [c["seq"] for c in tail["cells"]] == [3, 4]
            assert service.cells_since(job.id, 99)["cells"] == []
            assert service.cells_since("nope", 0) is None
        finally:
            service.stop()

    def test_service_metrics_render(self, tmp_path):
        service = self._service(tmp_path, cache=NullCache())
        try:
            _wait_done(
                service,
                service.submit(JobSpec.from_dict({**DIY2, "models": ["x86"]})),
            )
            text = service.metrics.render_text()
            assert "jobs_submitted 1" in text
            assert "jobs_completed 1" in text
            assert "job_seconds_count 1" in text
        finally:
            service.stop()


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------


class TestServiceHTTP:
    def test_full_loop_over_http(self, tmp_path):
        service = CampaignService(
            cache_dir=tmp_path / "cache", runs_dir=tmp_path / "runs"
        )
        with ServiceServer(service, port=0).start_background() as server:
            client = ServiceClient(server.url)
            health = client.healthz()
            assert health["ok"] is True and health["protocol"] == 1

            job = client.submit({**DIY2, "models": ["x86", "x86tm"]})
            assert job["id"] == "j0001"
            cells = list(client.iter_cells(job["id"], timeout=60))
            assert len(cells) == 10
            record = client.wait(job["id"], timeout=10)
            assert record["state"] == "done"
            assert record["cells"]["done"] == 10

            # Listing, single-record fetch, metrics text.
            assert [j["id"] for j in client.jobs()] == ["j0001"]
            assert client.job("j0001")["state"] == "done"
            assert "jobs_completed 1" in client.metrics_text()

            # Error envelopes: bad spec is a 400, unknown job a 404.
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"suite": {"kind": "nope"}, "models": ["x86"]})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.job("j9999")
            assert excinfo.value.status == 404
