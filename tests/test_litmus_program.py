"""Unit tests for litmus programs and postconditions."""

import pytest

from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxBegin,
    TxEnd,
)
from repro.litmus.test import LitmusTest, MemEq, Outcome, RegEq, TxnOk


def prog(*threads):
    return Program(tuple(tuple(t) for t in threads))


class TestValidation:
    def test_valid_program(self):
        p = prog(
            [Store("x", 1), Load("r0", "y")],
            [Store("y", 1), Load("r0", "x")],
        )
        assert p.n_threads == 2
        assert p.locations() == ("x", "y")

    def test_nested_txn_rejected(self):
        with pytest.raises(ValueError, match="nested"):
            prog([TxBegin(), TxBegin(), TxEnd(), TxEnd()])

    def test_unbalanced_txn_rejected(self):
        with pytest.raises(ValueError, match="unclosed"):
            prog([TxBegin(), Store("x", 1)])
        with pytest.raises(ValueError, match="without txbegin"):
            prog([TxEnd()])

    def test_duplicate_store_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate value"):
            prog([Store("x", 1)], [Store("x", 1)])

    def test_zero_store_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            prog([Store("x", 0)])

    def test_undefined_register_rejected(self):
        with pytest.raises(ValueError, match="undefined register"):
            prog([Store("x", 1, data_dep=("r0",))])
        with pytest.raises(ValueError, match="undefined register"):
            prog([CtrlBranch(("r9",))])

    def test_register_defined_before_use(self):
        p = prog([Load("r0", "x"), Store("y", 1, data_dep=("r0",))])
        assert list(p.stores())[0][2].data_dep == ("r0",)

    def test_loads_iterator(self):
        p = prog([Load("r0", "x")], [Load("r0", "y")])
        assert len(list(p.loads())) == 2


class TestOutcome:
    def outcome(self):
        return Outcome(
            registers={(0, "r0"): 1, (1, "r0"): 0},
            memory={"x": 2},
            committed=frozenset({(0, 0)}),
            aborted=frozenset({(1, 0)}),
        )

    def test_reg_eq(self):
        o = self.outcome()
        assert o.satisfies(RegEq(0, "r0", 1))
        assert not o.satisfies(RegEq(0, "r0", 2))
        assert o.satisfies(RegEq(5, "r9", 0))  # absent registers read 0

    def test_mem_eq(self):
        o = self.outcome()
        assert o.satisfies(MemEq("x", 2))
        assert o.satisfies(MemEq("unwritten", 0))

    def test_txn_ok(self):
        o = self.outcome()
        assert o.satisfies(TxnOk(0, 0, ok=True))
        assert o.satisfies(TxnOk(1, 0, ok=False))
        assert not o.satisfies(TxnOk(0, 0, ok=False))

    def test_outcome_hashable(self):
        assert self.outcome() == self.outcome()
        assert len({self.outcome(), self.outcome()}) == 1


class TestLitmusTest:
    def test_check_conjunction(self):
        p = prog([Load("r0", "x")])
        t = LitmusTest(
            "t", "x86", p,
            postcondition=(RegEq(0, "r0", 0), MemEq("x", 0)),
        )
        good = Outcome(registers={(0, "r0"): 0}, memory={})
        bad = Outcome(registers={(0, "r0"): 1}, memory={})
        assert t.check(good)
        assert not t.check(bad)

    def test_str_shows_postcondition(self):
        p = prog([Load("r0", "x")])
        t = LitmusTest("t", "x86", p, postcondition=(RegEq(0, "r0", 0),))
        assert "0:r0 = 0" in str(t)
