"""Axiom-level tests for the x86 model (Fig. 5), one witness per rule."""

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.x86 import X86


def failed(x):
    return X86().failed_axioms(x)


class TestCoherence:
    def test_cowr_violation(self):
        # A read po-after a same-location write observing a co-earlier one.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        r = t0.read("x")
        w2 = t1.write("x")
        b.co(w2, w1)
        b.rf(w2, r)  # reads the co-overwritten value after writing w1
        assert "Coherence" in failed(b.build())

    def test_read_own_earlier_write_ok(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        r = t0.read("x")
        b.rf(w, r)
        assert X86().consistent(b.build())


class TestOrder:
    def test_wr_reordering_allowed(self):
        # The TSO relaxation: W->R pairs leave ppo.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.read("y")
        t1.write("y")
        t1.read("x")
        assert X86().consistent(b.build())  # SB outcome

    def test_ww_preserved(self):
        # 2+2W is forbidden: W->W stays ordered.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx2 = t0.write("x")
        wy1 = t0.write("y")
        wy2 = t1.write("y")
        wx1 = t1.write("x")
        b.co_order("x", [wx1, wx2])
        b.co_order("y", [wy1, wy2])
        assert "Order" in failed(b.build())

    def test_rfe_in_hb(self):
        # MP is forbidden: rfe + R->R ppo + fr closes the cycle.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        assert "Order" in failed(b.build())

    def test_mfence_restores_sc_for_sb(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.fence(Label.MFENCE)
        t0.read("y")
        t1.write("y")
        t1.fence(Label.MFENCE)
        t1.read("x")
        assert "Order" in failed(b.build())

    def test_locked_rmw_implies_fence(self):
        # SB with a LOCK'd RMW on one side: that side cannot reorder.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("x", Label.EXCL)
        w0 = t0.write("x", Label.EXCL)
        ry = t0.read("y")
        t1.write("y")
        rx = t1.read("x")
        b.rmw(r0, w0)
        # t1 still buffers: its read may run early; but t0's read of y
        # cannot pass the LOCK'd RMW, so if ry=0 then rx must see w0.
        b.rf(w0, rx)  # rx sees the RMW's write: consistent
        assert X86().consistent(b.build())


class TestRmwIsol:
    def test_external_write_between_halves(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        wext = t1.write("x")
        b.rmw(r, w)
        b.co_order("x", [wext, w])  # r reads init; fre(r,wext); coe(wext,w)
        assert "RMWIsol" in failed(b.build())

    def test_internal_interleaving_not_flagged(self):
        # fre;coe requires *external* edges: same-thread does not count.
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        assert X86().consistent(b.build())


class TestTxnAxioms:
    def test_strong_isol_com_cycle(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r1 = t0.read("x")
        r2 = t0.read("x")
        w = t1.write("x")
        b.txn([r1, r2])
        b.rf(w, r2)
        assert "StrongIsol" in failed(b.build())

    def test_txn_order_via_implied_fence(self):
        # The Example 1.1 shape on x86: forbidden through TxnOrder with
        # the LOCK'd RMW's implied fence.
        from repro.catalog import CATALOG

        verdict = X86().check(CATALOG["armv8_lock_elision"].execution)
        assert any(r.name == "TxnOrder" for r in verdict.failures)

    def test_tfence_orders_across_boundary(self):
        # SB where each thread's write is in a txn: tfence acts as MFENCE.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        ry = t0.read("y")
        wy = t1.write("y")
        rx = t1.read("x")
        b.txn([wx])
        b.txn([wy])
        x = b.build()
        assert (wx, ry) in x.tfence
        assert not X86().consistent(x)

    def test_single_whole_thread_txn_sb_allowed(self):
        # With the txn covering a whole thread there is no tfence, and a
        # single txn cannot create a TxnOrder cycle for SB.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        ry = t0.read("y")
        t1.write("y")
        t1.read("x")
        b.txn([wx, ry])
        assert X86().consistent(b.build())
