"""Tests for the neutral-format parser and the per-arch renderers."""

import pytest

from repro.catalog import CATALOG
from repro.litmus.from_execution import to_litmus
from repro.litmus.parse import ParseError, dumps, loads
from repro.litmus.program import CtrlBranch, Fence, Load, Store, TxBegin, TxEnd
from repro.litmus.render import (
    render,
    render_armv8,
    render_cpp,
    render_power,
    render_x86,
)
from repro.litmus.test import MemEq, RegEq, TxnOk

SAMPLE = '''
litmus "sb+txn" x86
init x=0 y=0
thread
  txbegin
  store x 1
  load r0 y
  txend
thread
  store y 1
  load r0 x
exists 0:r0=0 & 1:r0=0 & txn(0,0)=ok & x=1
'''


class TestParser:
    def test_parse_sample(self):
        t = loads(SAMPLE)
        assert t.name == "sb+txn"
        assert t.arch == "x86"
        assert t.init == {"x": 0, "y": 0}
        assert len(t.program.threads) == 2
        assert isinstance(t.program.threads[0][0], TxBegin)
        assert t.postcondition[0] == RegEq(0, "r0", 0)
        assert t.postcondition[2] == TxnOk(0, 0, True)
        assert t.postcondition[3] == MemEq("x", 1)

    def test_parse_options(self):
        t = loads(
            'litmus "t" armv8\n'
            "thread\n"
            "  load r0 x acq\n"
            "  store y 1 rel data=r0\n"
            "  fence dmb\n"
            "  branch r0\n"
            "  load r1 z addr=r0 excl\n"
        )
        load0 = t.program.threads[0][0]
        store = t.program.threads[0][1]
        assert "acq" in load0.labels
        assert store.data_dep == ("r0",)
        assert isinstance(t.program.threads[0][2], Fence)
        assert isinstance(t.program.threads[0][3], CtrlBranch)
        assert t.program.threads[0][4].excl

    def test_parse_atomic_txn(self):
        t = loads('litmus "t" cpp\nthread\n  txbegin atomic\n  store x 1\n  txend\n')
        assert t.program.threads[0][0].atomic

    def test_comments_and_blank_lines(self):
        t = loads('litmus "t" x86\n\n# comment\nthread\n  store x 1  # trailing\n')
        assert len(t.program.threads[0]) == 1

    def test_missing_header(self):
        with pytest.raises(ParseError, match="header"):
            loads("thread\n  store x 1\n")

    def test_instruction_outside_thread(self):
        with pytest.raises(ParseError, match="outside"):
            loads('litmus "t" x86\nstore x 1\n')

    def test_unknown_instruction(self):
        with pytest.raises(ParseError, match="unknown instruction"):
            loads('litmus "t" x86\nthread\n  frobnicate x\n')

    def test_bad_atom(self):
        with pytest.raises(ParseError, match="bad postcondition"):
            loads('litmus "t" x86\nthread\n  store x 1\nexists wat\n')

    def test_roundtrip(self):
        t = loads(SAMPLE)
        assert loads(dumps(t)).program == t.program


class TestRenderers:
    def fig2(self, arch):
        return to_litmus(CATALOG["fig2"].execution, "fig2", arch)

    def test_x86_tsx_mnemonics(self):
        text = render_x86(self.fig2("x86"))
        assert "XBEGIN" in text and "XEND" in text
        assert "MOV [x" in text
        assert "exists" in text

    def test_power_mnemonics(self):
        text = render_power(self.fig2("power"))
        assert "tbegin." in text and "tend." in text
        assert "stw" in text and "lwz" in text

    def test_armv8_mnemonics(self):
        text = render_armv8(self.fig2("armv8"))
        assert "TXBEGIN" in text and "TXEND" in text
        assert "STR" in text and "LDR" in text

    def test_armv8_acquire_release(self):
        test = to_litmus(CATALOG["mp_rel_acq"].execution, "mp", "armv8")
        text = render_armv8(test)
        assert "LDAR" in text and "STLR" in text

    def test_armv8_exclusives(self):
        test = to_litmus(
            CATALOG["armv8_lock_elision"].execution, "ex", "armv8"
        )
        text = render_armv8(test)
        assert "LDAXR" in text and "STXR" in text

    def test_power_fences_and_deps(self):
        test = to_litmus(CATALOG["wrc_sync"].execution, "wrc", "power")
        text = render_power(test)
        assert "sync" in text
        assert "xor" in text  # the addr dep

    def test_x86_mfence(self):
        test = to_litmus(CATALOG["sb_mfence"].execution, "sb", "x86")
        assert "MFENCE" in render_x86(test)

    def test_cpp_rendering(self):
        test = to_litmus(CATALOG["cpp_mp_rel_acq"].execution, "mp", "cpp")
        text = render_cpp(test)
        assert "std::atomic<int>" in text
        assert "memory_order_release" in text
        assert "memory_order_acquire" in text

    def test_cpp_transactions(self):
        test = to_litmus(CATALOG["cpp_tsw_cycle"].execution, "t", "cpp")
        text = render_cpp(test)
        assert "synchronized {" in text

    def test_cpp_atomic_transaction(self):
        test = to_litmus(CATALOG["cpp_txn_serialise"].execution, "t", "cpp")
        assert "atomic {" in render_cpp(test)

    def test_dispatch(self):
        assert "X86" in render(self.fig2("x86"))
        with pytest.raises(ValueError):
            render(to_litmus(CATALOG["fig1"].execution, "f", "vax"))

    def test_data_dep_rendered_as_xor_chain(self):
        test = to_litmus(CATALOG["lb_deps"].execution, "lb", "armv8")
        text = render_armv8(test)
        assert "EOR" in text and "ADD" in text
