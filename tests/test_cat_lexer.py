"""Unit tests for the .cat tokeniser."""

import pytest

from repro.cat.errors import CatSyntaxError
from repro.cat.lexer import Token, TokenKind, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source) if t.kind != TokenKind.EOF]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds(" \t\n\r ") == [TokenKind.EOF]

    def test_identifier(self):
        tokens = list(tokenize("ppo"))
        assert tokens[0].kind == TokenKind.IDENT
        assert tokens[0].text == "ppo"

    def test_identifier_with_dot_and_dash(self):
        assert texts("DMB.LD po-loc") == ["DMB.LD", "po-loc"]

    def test_underscore_is_an_identifier(self):
        tokens = list(tokenize("_"))
        assert tokens[0].kind == TokenKind.IDENT

    def test_keywords_are_reserved(self):
        tokens = list(tokenize("let rec and as acyclic empty"))
        assert all(t.kind == TokenKind.KEYWORD for t in tokens[:-1])

    def test_number_zero(self):
        tokens = list(tokenize("0"))
        assert tokens[0].kind == TokenKind.NUMBER
        assert tokens[0].text == "0"

    def test_string_literal(self):
        tokens = list(tokenize('"a model name"'))
        assert tokens[0].kind == TokenKind.STRING
        assert tokens[0].text == "a model name"


class TestOperators:
    def test_single_char_operators(self):
        expected = [
            TokenKind.UNION,
            TokenKind.INTER,
            TokenKind.DIFF,
            TokenKind.SEQ,
            TokenKind.STAR,
            TokenKind.PLUS,
            TokenKind.OPT,
            TokenKind.COMPL,
            TokenKind.EQUALS,
            TokenKind.COMMA,
            TokenKind.EOF,
        ]
        assert kinds("| & \\ ; * + ? ~ = ,") == expected

    def test_hat_operators(self):
        assert kinds("^+ ^* ^? ^-1") == [
            TokenKind.HATPLUS,
            TokenKind.HATSTAR,
            TokenKind.HATOPT,
            TokenKind.INVERSE,
            TokenKind.EOF,
        ]

    def test_brackets(self):
        assert kinds("( ) [ ] { }") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.EOF,
        ]

    def test_bad_hat_operator(self):
        with pytest.raises(CatSyntaxError):
            list(tokenize("^^"))


class TestComments:
    def test_simple_comment_skipped(self):
        assert texts("po (* comment *) rf") == ["po", "rf"]

    def test_nested_comment(self):
        assert texts("a (* outer (* inner *) still out *) b") == ["a", "b"]

    def test_comment_with_operators_inside(self):
        assert texts("(* r1 ; r2 | ~x *) po") == ["po"]

    def test_unterminated_comment(self):
        with pytest.raises(CatSyntaxError, match="unterminated comment"):
            list(tokenize("po (* oops"))

    def test_unterminated_nested_comment(self):
        with pytest.raises(CatSyntaxError):
            list(tokenize("(* a (* b *)"))


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = list(tokenize("let x =\n  po"))
        let, x, eq, po = tokens[:4]
        assert (let.line, let.col) == (1, 1)
        assert (x.line, x.col) == (1, 5)
        assert (po.line, po.col) == (2, 3)

    def test_error_position_reported(self):
        with pytest.raises(CatSyntaxError) as exc:
            list(tokenize("po\n  $"))
        assert exc.value.line == 2
        assert exc.value.col == 3

    def test_unterminated_string(self):
        with pytest.raises(CatSyntaxError, match="unterminated string"):
            list(tokenize('"no closing quote'))

    def test_string_may_not_span_lines(self):
        with pytest.raises(CatSyntaxError):
            list(tokenize('"line one\nline two"'))


class TestTokenValue:
    def test_token_is_frozen_dataclass(self):
        token = Token(TokenKind.IDENT, "po", 1, 1)
        with pytest.raises(AttributeError):
            token.text = "rf"  # type: ignore[misc]

    def test_str_shows_text(self):
        assert "po" in str(Token(TokenKind.IDENT, "po", 1, 1))
