"""Tests for the policy-driven operational machine.

Three layers:

1. architectural ground truth — the classic litmus shapes behave on the
   machine exactly as the architectures behave in the wild (MP/SB/WRC/
   IRIW × fence placements, including lwsync being too weak for IRIW);
2. HTM semantics — conflicts abort, commits are atomic, exclusive pairs
   respect reservations and transaction boundaries;
3. conformance — every machine-reachable outcome is admitted by the
   corresponding axiomatic model (machine ⊆ model), checked on fixed
   programs and on hypothesis-generated random programs.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Label
from repro.litmus.candidates import all_outcomes
from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxBegin,
    TxEnd,
)
from repro.litmus.test import LitmusTest, MemEq, RegEq, TxnOk
from repro.models.registry import get_model
from repro.sim.oracle import MachineHardware, get_oracle
from repro.sim.weakmachine import WeakMachine, reachable_outcomes, runnable_on


def observable(prog: Program, arch: str, pred) -> bool:
    return any(pred(o) for o in reachable_outcomes(prog, arch))


def mp(writer_fence=None, reader_fence=None, rel_acq=False):
    th0 = [Store("x", 1)]
    if writer_fence:
        th0.append(Fence(writer_fence))
    th0.append(Store("y", 1, labels={Label.REL} if rel_acq else frozenset()))
    th1 = [Load("r0", "y", labels={Label.ACQ} if rel_acq else frozenset())]
    if reader_fence:
        th1.append(Fence(reader_fence))
    th1.append(Load("r1", "x"))
    return Program((tuple(th0), tuple(th1)))


def sb(fence=None):
    th0 = [Store("x", 1)] + ([Fence(fence)] if fence else []) + [Load("r0", "y")]
    th1 = [Store("y", 1)] + ([Fence(fence)] if fence else []) + [Load("r1", "x")]
    return Program((tuple(th0), tuple(th1)))


def iriw(fence=None):
    th2 = [Load("r0", "x")] + ([Fence(fence)] if fence else []) + [Load("r1", "y")]
    th3 = [Load("r2", "y")] + ([Fence(fence)] if fence else []) + [Load("r3", "x")]
    return Program(
        ((Store("x", 1),), (Store("y", 1),), tuple(th2), tuple(th3))
    )


def _mp_stale(o):
    return o.registers.get((1, "r0"), 0) == 1 and o.registers.get((1, "r1"), 0) == 0


def _sb_both_zero(o):
    return o.registers.get((0, "r0"), 0) == 0 and o.registers.get((1, "r1"), 0) == 0


def _iriw_split(o):
    return (
        o.registers.get((2, "r0"), 0) == 1
        and o.registers.get((2, "r1"), 0) == 0
        and o.registers.get((3, "r2"), 0) == 1
        and o.registers.get((3, "r3"), 0) == 0
    )


class TestPowerGroundTruth:
    def test_mp_plain_observable(self):
        assert observable(mp(), "power", _mp_stale)

    def test_mp_sync_forbidden(self):
        assert not observable(mp(Label.SYNC, Label.SYNC), "power", _mp_stale)

    def test_mp_lwsync_forbidden(self):
        assert not observable(
            mp(Label.LWSYNC, Label.LWSYNC), "power", _mp_stale
        )

    def test_sb_plain_observable(self):
        assert observable(sb(), "power", _sb_both_zero)

    def test_sb_sync_forbidden(self):
        assert not observable(sb(Label.SYNC), "power", _sb_both_zero)

    def test_sb_lwsync_still_observable(self):
        """lwsync does not order store→load — the TSO-like relaxation."""
        assert observable(sb(Label.LWSYNC), "power", _sb_both_zero)

    def test_iriw_plain_observable_non_mca(self):
        assert observable(iriw(), "power", _iriw_split)

    def test_iriw_lwsync_still_observable(self):
        """The famous result: lwsync is not cumulative enough for IRIW."""
        assert observable(iriw(Label.LWSYNC), "power", _iriw_split)

    def test_iriw_sync_forbidden(self):
        assert not observable(iriw(Label.SYNC), "power", _iriw_split)

    def test_wrc_plain_observable(self):
        prog = Program(
            (
                (Store("x", 1),),
                (Load("r0", "x"), Store("y", 1)),
                (Load("r1", "y"), Load("r2", "x")),
            )
        )
        weird = lambda o: (
            o.registers.get((1, "r0"), 0) == 1
            and o.registers.get((2, "r1"), 0) == 1
            and o.registers.get((2, "r2"), 0) == 0
        )
        assert observable(prog, "power", weird)

    def test_wrc_sync_forbidden(self):
        prog = Program(
            (
                (Store("x", 1),),
                (Load("r0", "x"), Fence(Label.SYNC), Store("y", 1)),
                (Load("r1", "y"), Fence(Label.SYNC), Load("r2", "x")),
            )
        )
        weird = lambda o: (
            o.registers.get((1, "r0"), 0) == 1
            and o.registers.get((2, "r1"), 0) == 1
            and o.registers.get((2, "r2"), 0) == 0
        )
        assert not observable(prog, "power", weird)


class TestMcaGroundTruth:
    @pytest.mark.parametrize("arch", ["armv8", "riscv"])
    def test_mp_plain_observable(self, arch):
        assert observable(mp(), arch, _mp_stale)

    def test_mp_rel_acq_forbidden_on_armv8(self):
        assert not observable(mp(rel_acq=True), "armv8", _mp_stale)

    def test_mp_rel_acq_forbidden_on_riscv(self):
        assert not observable(mp(rel_acq=True), "riscv", _mp_stale)

    def test_sb_dmb_forbidden(self):
        assert not observable(sb(Label.DMB), "armv8", _sb_both_zero)

    def test_sb_fence_tso_observable_on_riscv(self):
        assert observable(sb(Label.FENCE_TSO), "riscv", _sb_both_zero)

    def test_iriw_plain_observable_via_local_reordering(self):
        assert observable(iriw(), "armv8", _iriw_split)

    def test_iriw_dmb_forbidden_multicopy_atomic(self):
        assert not observable(iriw(Label.DMB), "armv8", _iriw_split)

    def test_iriw_full_fence_forbidden_on_riscv(self):
        assert not observable(iriw(Label.FENCE_RW_RW), "riscv", _iriw_split)

    def test_sc_machine_forbids_everything_weak(self):
        assert not observable(sb(), "sc", _sb_both_zero)
        assert not observable(mp(), "sc", _mp_stale)
        assert not observable(iriw(), "sc", _iriw_split)


class TestHtm:
    def _sb_txn(self):
        return Program(
            (
                (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
                (TxBegin(), Store("y", 1), Load("r1", "x"), TxEnd()),
            )
        )

    @pytest.mark.parametrize("arch", ["power", "armv8", "riscv"])
    def test_transactional_sb_serialises(self, arch):
        both_committed_stale = lambda o: (
            _sb_both_zero(o)
            and (0, 0) in o.committed
            and (1, 0) in o.committed
        )
        assert not observable(self._sb_txn(), arch, both_committed_stale)

    @pytest.mark.parametrize("arch", ["power", "armv8", "riscv"])
    def test_some_commit_exists(self, arch):
        outcomes = reachable_outcomes(self._sb_txn(), arch)
        assert any(
            (0, 0) in o.committed and (1, 0) in o.committed for o in outcomes
        )

    def test_conflicting_txn_aborts(self):
        # A non-transactional store conflicts with an open transaction
        # that has read the location (strong isolation, requester wins).
        prog = Program(
            (
                (TxBegin(), Load("r0", "x"), Load("r1", "y"), TxEnd()),
                (Store("x", 1),),
            )
        )
        outcomes = reachable_outcomes(prog, "armv8")
        assert any((0, 0) in o.aborted for o in outcomes)
        assert any((0, 0) in o.committed for o in outcomes)

    def test_aborted_txn_rolls_back_registers(self):
        prog = Program(
            (
                (TxBegin(), Load("r0", "x"), Load("r1", "x"), TxEnd()),
                (Store("x", 1),),
            )
        )
        for outcome in reachable_outcomes(prog, "armv8"):
            if (0, 0) in outcome.aborted:
                assert outcome.registers.get((0, "r0"), 0) == 0
                assert outcome.registers.get((0, "r1"), 0) == 0

    def test_committed_txn_never_reads_torn_state(self):
        # Inside a committed transaction both reads of x agree with the
        # atomic snapshot discipline: no foreign write can land between.
        prog = Program(
            (
                (TxBegin(), Load("r0", "x"), Load("r1", "x"), TxEnd()),
                (Store("x", 1),),
            )
        )
        for arch in ("power", "armv8"):
            for outcome in reachable_outcomes(prog, arch):
                if (0, 0) in outcome.committed:
                    assert outcome.registers.get(
                        (0, "r0"), 0
                    ) == outcome.registers.get((0, "r1"), 0)

    def test_no_stale_snapshot_commit_on_power(self):
        """Regression: a foreign write committed but not yet propagated
        to the transaction's thread must not let the transaction commit
        a stale read snapshot (strong-isolation violation caught by the
        Power Forbid suite)."""
        prog = Program(
            (
                (TxBegin(), Load("r0", "x"), Store("x", 2), TxEnd()),
                (Store("x", 1),),
            )
        )
        for outcome in reachable_outcomes(prog, "power"):
            if (0, 0) not in outcome.committed:
                continue
            stale = (
                outcome.registers.get((0, "r0"), 0) == 0
                and outcome.write_orders.get("x", ()) == (1, 2)
            )
            assert not stale

    def test_txn_write_invisible_unless_committed(self):
        prog = Program(
            (
                (TxBegin(), Store("x", 1), TxEnd()),
                (Load("r0", "x"),),
            )
        )
        for outcome in reachable_outcomes(prog, "armv8"):
            if outcome.registers.get((1, "r0"), 0) == 1:
                assert (0, 0) in outcome.committed


class TestExclusives:
    def test_exclusive_pair_success(self):
        prog = Program(
            (
                (
                    Load("r0", "m", excl=True),
                    Store("m", 1, excl=True),
                ),
            )
        )
        outcomes = reachable_outcomes(prog, "armv8")
        assert any(o.memory.get("m") == 1 for o in outcomes)

    def test_exclusive_fails_if_interrupted(self):
        # If the foreign store lands between the pair, the reservation is
        # lost: no outcome has the exclusive store overwriting it with 1
        # after reading 0 and m=2 co-later... concretely the final memory
        # m=1 requires co order 2 -> 1, which needs the reservation to
        # survive, i.e. the foreign write must come first and be seen.
        prog = Program(
            (
                (
                    Load("r0", "m", excl=True),
                    Store("m", 1, excl=True),
                ),
                (Store("m", 2),),
            )
        )
        for outcome in reachable_outcomes(prog, "armv8"):
            if outcome.memory.get("m") == 1:
                # exclusive succeeded last: it must have read the foreign 2
                assert outcome.registers.get((0, "r0"), 0) == 2

    def test_exclusive_across_txn_boundary_never_succeeds(self):
        # TxnCancelsRMW, operationally: the pair straddles a boundary.
        prog = Program(
            (
                (
                    Load("r0", "m", excl=True),
                    TxBegin(),
                    Store("m", 1, excl=True),
                    TxEnd(),
                ),
            )
        )
        for arch in ("power", "armv8", "riscv"):
            outcomes = reachable_outcomes(prog, arch)
            assert all(o.memory.get("m", 0) == 0 for o in outcomes)


class TestRunnable:
    def test_wrong_fence_rejected(self):
        prog = sb(Label.DMB)
        assert not runnable_on(prog, "power")
        with pytest.raises(ValueError, match="not available"):
            WeakMachine(prog, "power")

    def test_oracle_wrapper(self):
        oracle = MachineHardware("armv8")
        test = LitmusTest(
            "sb", "armv8", sb(Label.DMB),
            (RegEq(0, "r0", 0), RegEq(1, "r1", 0)),
        )
        assert not oracle.observable(test)

    def test_get_oracle_operational(self):
        assert get_oracle("power", operational=True).name == "power-machine-sim"
        assert get_oracle("riscv").name == "riscv-machine-sim"


# ---------------------------------------------------------------------------
# Conformance: machine ⊆ axiomatic model
# ---------------------------------------------------------------------------

_FIXED_PROGRAMS = [
    mp(),
    mp(Label.SYNC, Label.SYNC),
    mp(Label.LWSYNC, Label.LWSYNC),
    sb(),
    sb(Label.SYNC),
    Program(
        (
            (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
            (TxBegin(), Store("y", 1), Load("r1", "x"), TxEnd()),
        )
    ),
    Program(
        (
            (TxBegin(), Load("r0", "x"), Load("r1", "x"), TxEnd()),
            (Store("x", 1),),
        )
    ),
    Program(
        (
            (Store("x", 1),),
            (Load("r0", "x"), Fence(Label.LWSYNC), Store("y", 1)),
            (Load("r1", "y"), Load("r2", "x")),
        )
    ),
]


class TestConformance:
    @pytest.mark.parametrize("idx", range(len(_FIXED_PROGRAMS)))
    def test_power_machine_subset_of_model(self, idx):
        prog = _FIXED_PROGRAMS[idx]
        if not runnable_on(prog, "power"):
            pytest.skip("power cannot run this program")
        self._check(prog, "power")

    @pytest.mark.parametrize("idx", range(len(_FIXED_PROGRAMS)))
    def test_armv8_machine_subset_of_model(self, idx):
        prog = _FIXED_PROGRAMS[idx]
        if not runnable_on(prog, "armv8"):
            pytest.skip("armv8 cannot run this program")
        self._check(prog, "armv8")

    @pytest.mark.parametrize("idx", range(len(_FIXED_PROGRAMS)))
    def test_riscv_machine_subset_of_model(self, idx):
        prog = _FIXED_PROGRAMS[idx]
        if not runnable_on(prog, "riscv"):
            pytest.skip("riscv cannot run this program")
        self._check(prog, "riscv")

    @staticmethod
    def _check(prog: Program, arch: str):
        test = LitmusTest("conf", arch, prog, ())
        allowed = all_outcomes(test, get_model(arch))
        machine = {o.key() for o in reachable_outcomes(prog, arch)}
        assert machine <= allowed

    def test_sc_machine_subset_of_sc_model(self):
        for prog in (_FIXED_PROGRAMS[0], _FIXED_PROGRAMS[3]):
            test = LitmusTest("conf", "sc", prog, ())
            allowed = all_outcomes(test, get_model("sc"))
            machine = {o.key() for o in reachable_outcomes(prog, "sc")}
            assert machine <= allowed


# -- hypothesis: random small programs --------------------------------------

_LOCS = ("x", "y")


@st.composite
def _instruction(draw, arch: str, reg_counter: list):
    kind = draw(st.sampled_from(["load", "store", "fence"]))
    loc = draw(st.sampled_from(_LOCS))
    if kind == "load":
        reg = f"r{reg_counter[0]}"
        reg_counter[0] += 1
        labels = frozenset()
        if arch in ("armv8", "riscv") and draw(st.booleans()):
            labels = frozenset({Label.ACQ})
        return Load(reg, loc, labels=labels)
    if kind == "store":
        value = reg_counter[1]
        reg_counter[1] += 1
        labels = frozenset()
        if arch in ("armv8", "riscv") and draw(st.booleans()):
            labels = frozenset({Label.REL})
        return Store(loc, value, labels=labels)
    kinds = {
        "power": [Label.SYNC, Label.LWSYNC],
        "armv8": [Label.DMB, Label.DMB_LD, Label.DMB_ST],
        "riscv": [Label.FENCE_RW_RW, Label.FENCE_TSO],
    }[arch]
    return Fence(draw(st.sampled_from(kinds)))


@st.composite
def _program(draw, arch: str):
    counter = [0, 1]  # registers, store values (unique per location works
    # because values are globally unique integers here)
    threads = []
    for _ in range(2):
        n = draw(st.integers(min_value=1, max_value=3))
        instrs = [draw(_instruction(arch, counter)) for _ in range(n)]
        # Strip leading/trailing fences (they order nothing).
        while instrs and isinstance(instrs[0], Fence):
            instrs.pop(0)
        while instrs and isinstance(instrs[-1], Fence):
            instrs.pop()
        if instrs:
            threads.append(tuple(instrs))
    if not threads:
        threads = [(Load("r99", "x"),)]
    return Program(tuple(threads))


@st.composite
def _txn_program(draw, arch: str):
    """Random two-thread programs where one thread wraps a contiguous
    chunk in a transaction — the shape family that exposed the
    stale-snapshot commit bug."""
    counter = [0, 1]
    threads = []
    for tid in range(2):
        n = draw(st.integers(min_value=1, max_value=3))
        instrs = []
        for _ in range(n):
            loc = draw(st.sampled_from(_LOCS))
            if draw(st.booleans()):
                instrs.append(Load(f"r{counter[0]}", loc))
                counter[0] += 1
            else:
                instrs.append(Store(loc, counter[1]))
                counter[1] += 1
        if tid == 0:
            lo = draw(st.integers(min_value=0, max_value=len(instrs) - 1))
            hi = draw(st.integers(min_value=lo, max_value=len(instrs) - 1))
            instrs = (
                instrs[:lo]
                + [TxBegin()]
                + instrs[lo : hi + 1]
                + [TxEnd()]
                + instrs[hi + 1 :]
            )
        threads.append(tuple(instrs))
    return Program(tuple(threads))


class TestConformanceRandom:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_power_random_programs(self, data):
        prog = data.draw(_program("power"))
        TestConformance._check(prog, "power")

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_power_random_txn_programs(self, data):
        prog = data.draw(_txn_program("power"))
        TestConformance._check(prog, "power")

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_armv8_random_txn_programs(self, data):
        prog = data.draw(_txn_program("armv8"))
        TestConformance._check(prog, "armv8")

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_armv8_random_programs(self, data):
        prog = data.draw(_program("armv8"))
        TestConformance._check(prog, "armv8")

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_riscv_random_programs(self, data):
        prog = data.draw(_program("riscv"))
        TestConformance._check(prog, "riscv")
