"""Tests for weaklift/stronglift (§3.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import ExecutionBuilder
from repro.core.lifting import stronglift, weaklift
from repro.core.relation import Relation


def txn_relation(n, *classes):
    rel = Relation.empty(n)
    for cls in classes:
        rel = rel | Relation.cross(n, cls, cls)
    return rel


class TestWeaklift:
    def test_relates_whole_transactions(self):
        # Events 0,1 in txn A; 2,3 in txn B; com edge 1 -> 2.
        t = txn_relation(4, [0, 1], [2, 3])
        r = Relation.from_pairs(4, [(1, 2)])
        lifted = weaklift(r, t)
        assert (0, 2) in lifted and (0, 3) in lifted
        assert (1, 2) in lifted and (1, 3) in lifted

    def test_ignores_non_transactional_endpoints(self):
        t = txn_relation(3, [0, 1])
        r = Relation.from_pairs(3, [(1, 2)])  # target outside any txn
        assert weaklift(r, t).is_empty()

    def test_intra_txn_edges_removed(self):
        t = txn_relation(2, [0, 1])
        r = Relation.from_pairs(2, [(0, 1)])
        assert weaklift(r, t).is_empty()


class TestStronglift:
    def test_allows_non_transactional_endpoints(self):
        t = txn_relation(3, [0, 1])
        r = Relation.from_pairs(3, [(1, 2)])
        lifted = stronglift(r, t)
        assert (0, 2) in lifted
        assert (1, 2) in lifted

    def test_subsumes_weaklift(self):
        t = txn_relation(4, [0, 1], [2, 3])
        r = Relation.from_pairs(4, [(1, 2), (3, 0)])
        assert weaklift(r, t) <= stronglift(r, t)

    def test_plain_edges_kept(self):
        t = Relation.empty(2)
        r = Relation.from_pairs(2, [(0, 1)])
        assert stronglift(r, t) == r


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10
    )
)
def test_stronglift_acyclic_implies_weaklift_acyclic(pairs):
    t = txn_relation(5, [0, 1], [3, 4])
    r = Relation.from_pairs(5, pairs)
    if stronglift(r, t).is_acyclic():
        assert weaklift(r, t).is_acyclic()


def test_fig3_shapes_distinguish_isolations():
    """The Fig. 3 executions violate StrongIsol but satisfy WeakIsol."""
    from repro.catalog import CATALOG
    from repro.models.isolation import strongly_isolated, weakly_isolated

    for name in ("fig3a", "fig3b", "fig3c", "fig3d"):
        x = CATALOG[name].execution
        assert weakly_isolated(x), name
        assert not strongly_isolated(x), name


def test_weak_isolation_violated_between_txns():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    r1 = t0.read("y")
    w2 = t1.write("y")
    r2 = t1.read("x")
    b.txn([w1, r1])
    b.txn([w2, r2])
    b.rf(w1, r2)
    b.rf(w2, r1)
    x = b.build()
    from repro.models.isolation import weakly_isolated

    assert not weakly_isolated(x)
