"""The catalog is the model-validation corpus: every entry must be
well-formed and match its expected verdict under every listed model."""

import pytest

from repro.catalog import CATALOG, get_entry
from repro.core.wellformed import check
from repro.models.registry import get_model

ENTRIES = sorted(CATALOG)


@pytest.mark.parametrize("name", ENTRIES)
def test_wellformed(name):
    assert not check(CATALOG[name].execution), name


_CASES = [
    (name, model)
    for name in ENTRIES
    for model in sorted(CATALOG[name].expected)
]


@pytest.mark.parametrize("name,model_name", _CASES)
def test_expected_verdict(name, model_name):
    entry = CATALOG[name]
    model = get_model(model_name)
    got = model.consistent(entry.execution)
    want = entry.expected[model_name]
    assert got == want, (
        f"{name} under {model_name}: expected "
        f"{'consistent' if want else 'inconsistent'}, got verdict "
        f"{model.check(entry.execution)}"
    )


_RACY = [name for name in ENTRIES if CATALOG[name].racy is not None]


@pytest.mark.parametrize("name", _RACY)
def test_expected_race(name):
    entry = CATALOG[name]
    cpp = get_model("cpp")
    assert (not cpp.race_free(entry.execution)) == entry.racy


def test_get_entry_unknown():
    with pytest.raises(ValueError):
        get_entry("nonexistent")


def test_catalog_names_unique_and_tagged():
    for name, entry in CATALOG.items():
        assert entry.name == name
        assert entry.description
        assert entry.paper_ref


class TestKeyPaperFindings:
    """The paper's headline claims, asserted directly."""

    def test_example_11_lock_elision_unsound_on_armv8(self):
        x = CATALOG["armv8_lock_elision"].execution
        assert get_model("armv8").consistent(x)

    def test_example_11_dmb_fix_works(self):
        x = CATALOG["armv8_lock_elision_fixed"].execution
        verdict = get_model("armv8").check(x)
        assert not verdict.consistent
        assert any(r.name == "TxnOrder" for r in verdict.failures)

    def test_example_11_x86_is_safe(self):
        x = CATALOG["armv8_lock_elision"].execution
        assert not get_model("x86").consistent(x)

    def test_power_integrated_barrier(self):
        verdict = get_model("power").check(CATALOG["power_exec1"].execution)
        assert any(r.name == "Observation" for r in verdict.failures)

    def test_power_txn_multicopy_atomicity(self):
        verdict = get_model("power").check(CATALOG["power_exec2"].execution)
        assert any(r.name == "Observation" for r in verdict.failures)

    def test_power_txn_serialisation(self):
        verdict = get_model("power").check(CATALOG["power_exec3"].execution)
        assert any(r.name == "Order" for r in verdict.failures)

    def test_power_one_txn_iriw_allowed(self):
        assert get_model("power").consistent(
            CATALOG["power_exec3_one_txn"].execution
        )

    def test_monotonicity_counterexample_axiom(self):
        verdict = get_model("power").check(CATALOG["rmw_split"].execution)
        assert [r.name for r in verdict.failures] == ["TxnCancelsRMW"]

    def test_dongol_gap(self):
        x = CATALOG["dongol_gap"].execution
        assert not get_model("power").consistent(x)
        assert get_model("power-dongol").consistent(x)

    def test_rtl_bug_shape_is_txn_order_only(self):
        verdict = get_model("armv8").check(
            CATALOG["mp_dmb_txn_reader"].execution
        )
        assert [r.name for r in verdict.failures] == ["TxnOrder"]
