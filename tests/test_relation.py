"""Unit and property tests for the bitset relation algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation


def rel(n, *pairs):
    return Relation.from_pairs(n, pairs)


# ----------------------------------------------------------------------
# Construction and inspection
# ----------------------------------------------------------------------


class TestConstruction:
    def test_empty(self):
        r = Relation.empty(4)
        assert r.is_empty()
        assert len(r) == 0
        assert not r

    def test_full_includes_diagonal(self):
        r = Relation.full(3)
        assert len(r) == 9
        assert (0, 0) in r
        assert (2, 1) in r

    def test_identity(self):
        r = Relation.identity(3)
        assert set(r.pairs()) == {(0, 0), (1, 1), (2, 2)}

    def test_from_pairs(self):
        r = rel(4, (0, 1), (2, 3))
        assert (0, 1) in r
        assert (1, 0) not in r
        assert len(r) == 2

    def test_from_pairs_out_of_range(self):
        with pytest.raises(ValueError):
            rel(2, (0, 5))

    def test_lift(self):
        r = Relation.lift(4, [1, 3])
        assert set(r.pairs()) == {(1, 1), (3, 3)}

    def test_cross(self):
        r = Relation.cross(4, [0, 1], [2, 3])
        assert set(r.pairs()) == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_total_order(self):
        r = Relation.total_order(4, [2, 0, 3])
        assert set(r.pairs()) == {(2, 0), (2, 3), (0, 3)}
        assert r.is_total_order_on([2, 0, 3])

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            Relation(3, [0, 0])


class TestInspection:
    def test_domain_codomain(self):
        r = rel(4, (0, 1), (0, 2), (3, 2))
        assert r.domain() == {0, 3}
        assert r.codomain() == {1, 2}
        assert r.field() == {0, 1, 2, 3}

    def test_successors(self):
        r = rel(4, (1, 0), (1, 3))
        assert set(r.successors(1)) == {0, 3}
        assert list(r.successors(0)) == []

    def test_len_and_bool(self):
        assert len(rel(3, (0, 1), (1, 2))) == 2
        assert rel(3, (0, 1))
        assert not Relation.empty(3)


# ----------------------------------------------------------------------
# Boolean algebra
# ----------------------------------------------------------------------


class TestBooleanAlgebra:
    def test_union(self):
        assert set((rel(3, (0, 1)) | rel(3, (1, 2))).pairs()) == {(0, 1), (1, 2)}

    def test_intersection(self):
        a = rel(3, (0, 1), (1, 2))
        b = rel(3, (1, 2), (2, 0))
        assert set((a & b).pairs()) == {(1, 2)}

    def test_difference(self):
        a = rel(3, (0, 1), (1, 2))
        assert set((a - rel(3, (1, 2))).pairs()) == {(0, 1)}

    def test_complement_involution(self):
        a = rel(3, (0, 1), (2, 2))
        assert a.complement().complement() == a

    def test_complement_contains_missing_pairs(self):
        a = rel(2, (0, 1))
        comp = a.complement()
        assert (0, 1) not in comp
        assert (1, 0) in comp
        assert (0, 0) in comp

    def test_subset(self):
        assert rel(3, (0, 1)) <= rel(3, (0, 1), (1, 2))
        assert not rel(3, (2, 0)) <= rel(3, (0, 1))

    def test_universe_mismatch(self):
        with pytest.raises(ValueError):
            rel(2, (0, 1)) | rel(3, (0, 1))

    def test_hash_eq(self):
        assert rel(3, (0, 1)) == rel(3, (0, 1))
        assert hash(rel(3, (0, 1))) == hash(rel(3, (0, 1)))
        assert rel(3, (0, 1)) != rel(3, (1, 0))


# ----------------------------------------------------------------------
# Relational operators
# ----------------------------------------------------------------------


class TestOperators:
    def test_composition(self):
        a = rel(4, (0, 1), (1, 2))
        b = rel(4, (1, 3), (2, 0))
        assert set((a @ b).pairs()) == {(0, 3), (1, 0)}

    def test_then_chains(self):
        a = rel(4, (0, 1))
        b = rel(4, (1, 2))
        c = rel(4, (2, 3))
        assert set(a.then(b, c).pairs()) == {(0, 3)}

    def test_inverse(self):
        assert set(rel(3, (0, 1), (1, 2)).inverse().pairs()) == {(1, 0), (2, 1)}

    def test_inverse_involution(self):
        a = rel(4, (0, 3), (2, 1), (1, 1))
        assert a.inverse().inverse() == a

    def test_opt_adds_diagonal(self):
        r = rel(2, (0, 1)).opt()
        assert (0, 0) in r and (1, 1) in r and (0, 1) in r

    def test_plus(self):
        r = rel(4, (0, 1), (1, 2), (2, 3)).plus()
        assert (0, 3) in r
        assert (0, 0) not in r

    def test_plus_cycle(self):
        r = rel(3, (0, 1), (1, 0)).plus()
        assert (0, 0) in r
        assert (1, 1) in r

    def test_star_is_reflexive(self):
        r = rel(3, (0, 1)).star()
        assert (2, 2) in r
        assert (0, 1) in r

    def test_restrict(self):
        r = Relation.full(3).restrict([0], [1, 2])
        assert set(r.pairs()) == {(0, 1), (0, 2)}

    def test_remove_diagonal(self):
        r = Relation.full(2).remove_diagonal()
        assert set(r.pairs()) == {(0, 1), (1, 0)}

    def test_symmetric_closure(self):
        r = rel(3, (0, 1)).symmetric_closure()
        assert (1, 0) in r

    def test_without_events(self):
        r = rel(4, (0, 1), (1, 2), (2, 3)).without_events([1])
        assert set(r.pairs()) == {(2, 3)}

    def test_map_events(self):
        r = rel(4, (0, 1), (2, 3))
        mapped = r.map_events(2, {0: 0, 1: 1})
        assert set(mapped.pairs()) == {(0, 1)}


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


class TestPredicates:
    def test_acyclic(self):
        assert rel(3, (0, 1), (1, 2)).is_acyclic()
        assert not rel(3, (0, 1), (1, 0)).is_acyclic()
        assert not rel(2, (0, 0)).is_acyclic()

    def test_find_cycle_none(self):
        assert rel(3, (0, 1), (1, 2)).find_cycle() is None

    def test_find_cycle_valid(self):
        r = rel(4, (0, 1), (1, 2), (2, 0), (3, 3))
        cycle = r.find_cycle()
        assert cycle is not None
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            assert (a, b) in r

    def test_irreflexive(self):
        assert rel(3, (0, 1)).is_irreflexive()
        assert not rel(3, (1, 1)).is_irreflexive()

    def test_transitive(self):
        assert rel(3, (0, 1), (1, 2), (0, 2)).is_transitive()
        assert not rel(3, (0, 1), (1, 2)).is_transitive()

    def test_symmetric(self):
        assert rel(3, (0, 1), (1, 0)).is_symmetric()
        assert not rel(3, (0, 1)).is_symmetric()

    def test_total_order_on(self):
        r = Relation.total_order(4, [0, 1, 2])
        assert r.is_total_order_on([0, 1, 2])
        assert not r.is_total_order_on([0, 1, 3])


# ----------------------------------------------------------------------
# Algebraic laws (property-based)
# ----------------------------------------------------------------------

N = 5


@st.composite
def relations(draw, n=N):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=12,
        )
    )
    return Relation.from_pairs(n, pairs)


@settings(max_examples=60, deadline=None)
@given(relations(), relations(), relations())
def test_composition_associative(a, b, c):
    assert (a @ b) @ c == a @ (b @ c)


@settings(max_examples=60, deadline=None)
@given(relations(), relations())
def test_union_commutative(a, b):
    assert a | b == b | a


@settings(max_examples=60, deadline=None)
@given(relations(), relations(), relations())
def test_composition_distributes_over_union(a, b, c):
    assert a @ (b | c) == (a @ b) | (a @ c)


@settings(max_examples=60, deadline=None)
@given(relations())
def test_plus_is_transitive_and_contains(a):
    p = a.plus()
    assert a <= p
    assert p.is_transitive()


@settings(max_examples=60, deadline=None)
@given(relations())
def test_plus_fixpoint(a):
    assert a.plus().plus() == a.plus()


@settings(max_examples=60, deadline=None)
@given(relations())
def test_star_absorbs_identity(a):
    assert Relation.identity(N) <= a.star()
    assert a.star() == a.star().star()


@settings(max_examples=60, deadline=None)
@given(relations(), relations())
def test_inverse_of_composition(a, b):
    assert (a @ b).inverse() == b.inverse() @ a.inverse()


@settings(max_examples=60, deadline=None)
@given(relations())
def test_acyclic_iff_no_cycle_witness(a):
    assert a.is_acyclic() == (a.find_cycle() is None)


@settings(max_examples=60, deadline=None)
@given(relations())
def test_acyclic_implies_plus_irreflexive(a):
    if a.is_acyclic():
        assert a.plus().is_irreflexive()
    else:
        assert not a.plus().is_irreflexive()


@settings(max_examples=60, deadline=None)
@given(relations(), relations())
def test_demorgan_union(a, b):
    assert (a | b).complement() == a.complement() & b.complement()
