"""Differential + cache suite for the generated-kernel tier.

:mod:`repro.ir.codegen` lowers compiled :class:`~repro.ir.plan.
BatchPlan`s to straight-line Python source.  Its contract mirrors the
batched kernels': bit-identical verdicts, never an approximation.  Four
layers pin it:

* **Golden catalog** — generated kernels over the whole curated catalog
  against the pinned scalar matrix, every native model plus ``.cat``
  fixpoint models, on *both* backends (numpy dense and the pure-Python
  packed fallback);
* **Corpus matrix** — the full committed litmus corpus swept three
  ways through the campaign engine (codegen / interpreted plans /
  scalar), cell for cell;
* **Fuzz stream** — a seeded generator suite (reproducible via
  ``REPRO_TEST_SEED``) swept with codegen on vs off;
* **Disk cache** — generated modules persist under
  ``.repro-cache/codegen/`` keyed by ``(digest, n, backend,
  CODEGEN_VERSION)``: a second process loads without regenerating, a
  version bump makes stale entries unreachable by name, and a corrupt
  entry is regenerated, never executed.

Plus the batch-floor rules (:func:`repro.ir.plan.kernel_floor`) and the
batch-aware shard assembly the parallel campaign paths dispatch over.
"""

import pathlib

import pytest

from repro.catalog import CATALOG
from repro.cat.model import load_cat_model
from repro.conformance.generators import generate_suite
from repro.conformance.golden import load_snapshot
from repro.conformance.seeds import derive_seed, reproducible_seed
from repro.core.execution import Execution
from repro.core.relbatch import HAVE_NUMPY, set_backend
from repro.engine.batchsweep import assemble_shards, run_shard
from repro.engine.campaign import litmus_suite, run_campaign
from repro.ir.batch import BatchContext
from repro.litmus.candidates import (
    _expand_test,
    expand_program,
    set_batch_size,
)
from repro.models.registry import MODELS, get_model
import repro.ir.codegen as codegen
import repro.ir.plan as plan

_SEED = reproducible_seed()
CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"
GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_verdicts.json"

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


@pytest.fixture(params=BACKENDS)
def backend(request):
    set_backend(request.param)
    try:
        yield request.param
    finally:
        set_backend(None)


@pytest.fixture
def codegen_cache(tmp_path, monkeypatch):
    """An isolated on-disk codegen cache plus cold in-process state, so
    cache tests observe exactly their own writes."""
    monkeypatch.setenv("REPRO_CODEGEN_DIR", str(tmp_path))
    codegen.reset()
    try:
        yield tmp_path
    finally:
        codegen.reset()


def _fresh(x: Execution) -> Execution:
    """A copy with no cached analysis (see ``test_batch._fresh``)."""
    return Execution(
        x.events, x.threads, x.rf, x.co, x.addr, x.data, x.ctrl, x.rmw, x.txns
    )


def _catalog_buckets():
    buckets: dict[int, list] = {}
    for name, entry in sorted(CATALOG.items()):
        buckets.setdefault(entry.execution.n, []).append(
            (name, _fresh(entry.execution))
        )
    return buckets


def _compiled_verdicts(model, definition, stack):
    """Verdicts through the generated kernel, which must exist."""
    token = model.definition_token()
    ctx = BatchContext.of([x for _, x in stack])
    compiled = codegen.compiled_for(token, definition, ctx.n)
    assert compiled is not None, f"codegen failed for {model.name}"
    target = ctx if model.tm else ctx.baseline
    return list(map(bool, compiled.consistent(target)))


# ----------------------------------------------------------------------
# Golden catalog through the generated kernels
# ----------------------------------------------------------------------


class TestGoldenCatalogCodegen:
    def test_native_models_match_pinned_scalar_matrix(
        self, backend, codegen_cache
    ):
        golden = load_snapshot(GOLDEN)
        mismatches = []
        for model_name in sorted(MODELS):
            model = get_model(model_name)
            definition = model.batch_definition()
            assert definition is not None, f"{model_name} lost its IR"
            for stack in _catalog_buckets().values():
                flags = _compiled_verdicts(model, definition, stack)
                for (entry_name, _), flag in zip(stack, flags):
                    if flag != golden[entry_name][model_name]:
                        mismatches.append((entry_name, model_name, flag))
        assert not mismatches, f"codegen verdicts flipped: {mismatches[:10]}"

    @pytest.mark.parametrize("cat_name", ["power", "armv8"])
    def test_cat_models_match_interpreted(
        self, backend, codegen_cache, cat_name
    ):
        """`.cat` models (``let rec`` fixpoints included): the generated
        kernel against the interpreted plan on independent contexts."""
        model = load_cat_model(cat_name)
        definition = model.batch_definition()
        if definition is None:
            pytest.skip(f"cat:{cat_name} has no batchable IR")
        token = model.definition_token()
        for stack in _catalog_buckets().values():
            ctx = BatchContext.of([_fresh(x) for _, x in stack])
            interp = plan.plan_for(token, definition, ctx.n).consistent(
                ctx if model.tm else ctx.baseline
            )
            assert _compiled_verdicts(model, definition, stack) == list(
                map(bool, interp)
            )


# ----------------------------------------------------------------------
# Campaign-level differentials (corpus matrix + seeded fuzz stream)
# ----------------------------------------------------------------------


@pytest.fixture
def forced_kernels(monkeypatch):
    monkeypatch.setattr(plan, "MIN_KERNEL_BATCH", 1)


def _campaign_verdicts(items, specs, batch, use_codegen):
    expand_program.cache_clear()
    _expand_test.cache_clear()
    set_batch_size(batch)
    codegen.set_enabled(use_codegen)
    try:
        result = run_campaign(items, specs)
    finally:
        set_batch_size(None)
        codegen.set_enabled(None)
        expand_program.cache_clear()
        _expand_test.cache_clear()
    return {
        key: (cell.verdict, cell.error) for key, cell in result.cells.items()
    }


def _assert_three_way(items, specs):
    """codegen == interpreted == scalar, cell for cell."""
    scalar = _campaign_verdicts(items, specs, 0, False)
    interpreted = _campaign_verdicts(items, specs, 64, False)
    generated = _campaign_verdicts(items, specs, 64, True)
    assert interpreted == scalar
    assert generated == scalar


class TestCampaignDifferential:
    def test_full_corpus_matrix(self, forced_kernels):
        """The complete committed corpus (every dialect; ``exists``,
        ``~exists`` and ``forall`` alike) × every native model: the
        generated-kernel, interpreted, and scalar campaigns agree on
        every cell."""
        paths = sorted(str(p) for p in CORPUS.glob("*/*.litmus"))
        assert len(paths) >= 150, "corpus shrank; differential is hollow"
        _assert_three_way(litmus_suite(paths), sorted(MODELS))

    def test_seeded_fuzz_stream(self, forced_kernels, backend):
        """A reproducible generator suite swept with codegen on vs off
        on both backends, including a ``.cat`` checker so ``let rec``
        kernels run inside the campaign."""
        for arch, specs in (
            ("x86", ["x86", "sc"]),
            ("power", ["power", "cat:power"]),
        ):
            seed = derive_seed(_SEED, f"codegen-differential-{arch}")
            items = [
                item.campaign_item()
                for item in generate_suite(arch, seed, "smoke")
            ]
            assert items, "empty fuzz suite; differential is hollow"
            _assert_three_way(items, specs)


# ----------------------------------------------------------------------
# Disk cache: persist, reload, invalidate
# ----------------------------------------------------------------------


def _small_plan():
    """A (model, definition, stack) triple on the smallest bucket."""
    model = get_model("sc")
    definition = model.batch_definition()
    stack = min(_catalog_buckets().values(), key=lambda s: s[0][1].n)
    return model, definition, stack


class TestDiskCache:
    def test_persists_and_reloads_without_regenerating(
        self, backend, codegen_cache, monkeypatch
    ):
        model, definition, stack = _small_plan()
        want = _compiled_verdicts(model, definition, stack)
        files = list(codegen_cache.glob("*.py"))
        assert len(files) == 1, files
        assert f"-v{codegen.CODEGEN_VERSION}.py" in files[0].name

        # A "new process": compile state dropped, disk cache kept.  The
        # module must come back from disk — regeneration is a bug here.
        codegen.reset()
        calls = []
        real = codegen.generate_source
        monkeypatch.setattr(
            codegen,
            "generate_source",
            lambda *a, **k: calls.append(a) or real(*a, **k),
        )
        assert _compiled_verdicts(model, definition, stack) == want
        assert not calls, "reloaded entry was regenerated"

    def test_version_bump_makes_stale_entries_unreachable(
        self, backend, codegen_cache, monkeypatch
    ):
        model, definition, stack = _small_plan()
        want = _compiled_verdicts(model, definition, stack)
        (stale,) = codegen_cache.glob("*.py")

        codegen.reset()
        monkeypatch.setattr(codegen, "CODEGEN_VERSION", 999)
        assert _compiled_verdicts(model, definition, stack) == want
        names = {p.name for p in codegen_cache.glob("*.py")}
        assert stale.name in names  # the old entry is left, not loaded
        assert any(n.endswith("-v999.py") for n in names - {stale.name})

    def test_corrupt_entry_is_regenerated_not_executed(
        self, backend, codegen_cache
    ):
        model, definition, stack = _small_plan()
        want = _compiled_verdicts(model, definition, stack)
        (path,) = codegen_cache.glob("*.py")
        path.write_text("raise AssertionError('stale module executed')\n")

        codegen.reset()
        assert _compiled_verdicts(model, definition, stack) == want
        # The poisoned text was replaced by a freshly generated module.
        assert "AssertionError" not in path.read_text()


# ----------------------------------------------------------------------
# Batch floor (MIN_KERNEL_BATCH / REPRO_MIN_KERNEL_BATCH)
# ----------------------------------------------------------------------


class TestKernelFloor:
    def test_default_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_MIN_KERNEL_BATCH", raising=False)
        assert plan.kernel_floor() == plan.MIN_KERNEL_BATCH

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_KERNEL_BATCH", "3")
        assert plan.kernel_floor() == 3
        monkeypatch.setenv("REPRO_MIN_KERNEL_BATCH", "not-a-number")
        assert plan.kernel_floor() == plan.MIN_KERNEL_BATCH

    def test_warm_generated_kernel_lowers_floor(
        self, backend, codegen_cache, monkeypatch
    ):
        monkeypatch.delenv("REPRO_MIN_KERNEL_BATCH", raising=False)
        model, definition, stack = _small_plan()
        token = model.definition_token()
        n = stack[0][1].n
        assert plan.kernel_floor(token, n) == plan.MIN_KERNEL_BATCH
        assert codegen.compiled_for(token, definition, n) is not None
        assert plan.kernel_floor(token, n) == plan.CODEGEN_KERNEL_BATCH
        # ... but never below an explicit test pin.
        monkeypatch.setattr(plan, "MIN_KERNEL_BATCH", 1)
        assert plan.kernel_floor(token, n) == 1


# ----------------------------------------------------------------------
# Batch-aware sharding (the parallel campaign / serve dispatch unit)
# ----------------------------------------------------------------------


def _units(k):
    """k campaign units over catalog executions (varied universes)."""
    entries = sorted(CATALOG.items())
    return [
        (
            f"u{i:03d}-{entries[i % len(entries)][0]}",
            entries[i % len(entries)][1].execution,
            ("x86", "sc"),
            False,
        )
        for i in range(k)
    ]


class TestShardAssembly:
    def test_partition_is_exact_and_nonempty(self):
        units = _units(17)
        for n_shards in (1, 2, 5, 16, 17, 50):
            shards = assemble_shards(units, n_shards)
            assert all(shards)
            assert len(shards) == min(n_shards, len(units))
            flat = sorted(u[0] for shard in shards for u in shard)
            assert flat == sorted(u[0] for u in units)

    def test_same_universe_units_stay_contiguous(self):
        units = _units(20)
        shards = assemble_shards(units, 4)
        # Sorted-by-size assembly: sizes never decrease across the
        # shard sequence, so equal-size runs span adjacent shards only.
        sizes = [u[1].n for shard in shards for u in shard]
        assert sizes == sorted(sizes)

    def test_deterministic(self):
        units = _units(13)
        a = assemble_shards(list(reversed(units)), 3)
        b = assemble_shards(units, 3)
        assert [[u[0] for u in s] for s in a] == [
            [u[0] for u in s] for s in b
        ]

    def test_empty(self):
        assert assemble_shards([], 4) == []

    def test_run_shard_matches_serial_verdicts(self):
        units = _units(9)
        serial = {
            (name, spec): verdict
            for unit in units
            for name, spec, verdict, _t, _e in run_shard([unit])[0][0]
        }
        batched = {
            (name, spec): verdict
            for rows, _snap in run_shard(units)
            for name, spec, verdict, _t, _e in rows
        }
        assert batched == serial


class TestParallelCampaignDifferential:
    def test_jobs2_matches_serial(self):
        """The sharded parallel path returns the serial path's exact
        verdict matrix (suite with mixed universe sizes and a forall
        test via the diy generator would be slow here; the catalog
        crossed with two models exercises the shard prefill + fallback
        split)."""
        from repro.engine.campaign import catalog_suite

        suite = catalog_suite()
        models = ["x86", "power", "armv8", "x86tm"]
        serial = run_campaign(suite, models, jobs=1)
        parallel = run_campaign(suite, models, jobs=2)
        assert {
            k: (c.verdict, c.error) for k, c in serial.cells.items()
        } == {
            k: (c.verdict, c.error) for k, c in parallel.cells.items()
        }
