"""Axiom-level tests for the ARMv8 model (Fig. 8)."""

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.armv8 import ARMv8


def failed(x):
    return ARMv8().failed_axioms(x)


class TestDob:
    def test_data_dep_orders(self):
        # LB+datas forbidden.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("x")
        w0 = t0.write("y")
        r1 = t1.read("y")
        w1 = t1.write("x")
        b.rf(w0, r1)
        b.rf(w1, r0)
        b.data(r0, w0)
        b.data(r1, w1)
        assert "Order" in failed(b.build())

    def test_plain_lb_allowed(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("x")
        w0 = t0.write("y")
        r1 = t1.read("y")
        w1 = t1.write("x")
        b.rf(w0, r1)
        b.rf(w1, r0)
        assert ARMv8().consistent(b.build())

    def test_ctrl_orders_writes_only(self):
        # ctrl to a write orders; ctrl to a read does not (MP+ctrl-read).
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        t0.fence(Label.DMB)
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        b.ctrl(ry, rx)
        assert ARMv8().consistent(b.build())  # ctrl->R gives no order


class TestBob:
    def test_acquire_orders_later(self):
        # MP with acquire read: forbidden.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.rel_write("y")
        ry = t1.acq_read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        assert "Order" in failed(b.build())

    def test_release_orders_earlier(self):
        # Without the acquire the release alone does not forbid MP.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.rel_write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        assert ARMv8().consistent(b.build())

    def test_dmb_ld_orders_read_read(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        t0.fence(Label.DMB)
        wy = t0.write("y")
        ry = t1.read("y")
        t1.fence(Label.DMB_LD)
        rx = t1.read("x")
        b.rf(wy, ry)
        assert not ARMv8().consistent(b.build())

    def test_dmb_st_orders_write_write_only(self):
        # DMB ST between a write and a read gives no order: SB stays.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.fence(Label.DMB_ST)
        t0.read("y")
        t1.write("y")
        t1.fence(Label.DMB_ST)
        t1.read("x")
        assert ARMv8().consistent(b.build())

    def test_full_dmb_forbids_sb(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.fence(Label.DMB)
        t0.read("y")
        t1.write("y")
        t1.fence(Label.DMB)
        t1.read("x")
        assert "Order" in failed(b.build())


class TestMultiCopyAtomicity:
    def test_wrc_deps_forbidden(self):
        # Unlike Power, ARMv8 is MCA: WRC+deps is forbidden.
        b = ExecutionBuilder()
        t0, t1, t2 = b.thread(), b.thread(), b.thread()
        wx = t0.write("x")
        r1 = t1.read("x")
        wy = t1.write("y")
        ry = t2.read("y")
        rx = t2.read("x")
        b.rf(wx, r1)
        b.rf(wy, ry)
        b.data(r1, wy)
        b.addr(ry, rx)
        assert "Order" in failed(b.build())


class TestTxnAxioms:
    def test_example_11_consistent(self):
        from repro.catalog import CATALOG

        assert ARMv8().consistent(CATALOG["armv8_lock_elision"].execution)

    def test_appendix_b_consistent(self):
        from repro.catalog import CATALOG

        assert ARMv8().consistent(CATALOG["armv8_lock_elision_b"].execution)

    def test_dmb_fix_forbids(self):
        from repro.catalog import CATALOG

        verdict = ARMv8().check(CATALOG["armv8_lock_elision_fixed"].execution)
        assert [r.name for r in verdict.failures] == ["TxnOrder"]

    def test_txn_cancels_rmw(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([w])
        assert "TxnCancelsRMW" in failed(b.build())

    def test_tfence_in_ob(self):
        # MP with the writer's second write transactional: the boundary
        # fence orders wx before wy, and the txn reader path closes it.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.txn([wy])
        b.rf(wy, ry)
        b.addr(ry, rx)
        assert not ARMv8().consistent(b.build())
