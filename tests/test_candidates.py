"""Unit tests for the program→candidate-execution expansion."""

import pytest

from repro.core.wellformed import is_wellformed
from repro.litmus.candidates import candidate_executions
from repro.litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxBegin,
    TxEnd,
)


def prog(*threads):
    return Program(tuple(tuple(t) for t in threads))


def candidates(*threads):
    return list(candidate_executions(prog(*threads)))


class TestExpansionCounts:
    def test_single_load_two_candidates(self):
        # The load reads the initial value or the store.
        cands = candidates([Load("r0", "x")], [Store("x", 1)])
        assert len(cands) == 2
        values = {c.outcome.registers[(0, "r0")] for c in cands}
        assert values == {0, 1}

    def test_co_permutations(self):
        cands = candidates([Store("x", 1)], [Store("x", 2)])
        orders = {c.outcome.write_orders["x"] for c in cands}
        assert orders == {(1, 2), (2, 1)}

    def test_txn_commit_and_abort_variants(self):
        cands = candidates([TxBegin(), Store("x", 1), TxEnd()])
        assert len(cands) == 2
        committed = [c for c in cands if c.outcome.committed]
        aborted = [c for c in cands if c.outcome.aborted]
        assert len(committed) == 1 and len(aborted) == 1
        assert aborted[0].execution.n == 0  # events vanish (§3.1)
        assert committed[0].execution.txns

    def test_all_candidates_wellformed(self):
        cands = candidates(
            [TxBegin(), Load("r0", "x"), Store("y", 1, data_dep=("r0",)), TxEnd()],
            [Store("x", 1), Load("r0", "y")],
        )
        for c in cands:
            assert is_wellformed(c.execution)


class TestStructure:
    def test_register_carried_data_dep(self):
        cands = candidates(
            [Load("r0", "x"), Store("y", 1, data_dep=("r0",))]
        )
        for c in cands:
            assert (0, 1) in c.execution.data

    def test_addr_dep(self):
        cands = candidates([Load("r0", "x"), Load("r1", "y", addr_dep=("r0",))])
        for c in cands:
            assert (0, 1) in c.execution.addr

    def test_ctrl_branch_downward_closed(self):
        cands = candidates(
            [Load("r0", "x"), CtrlBranch(("r0",)), Store("y", 1), Store("z", 2)]
        )
        for c in cands:
            assert (0, 1) in c.execution.ctrl
            assert (0, 2) in c.execution.ctrl

    def test_exclusive_pairing(self):
        cands = candidates(
            [Load("r0", "x", excl=True), Store("x", 1, excl=True)]
        )
        for c in cands:
            assert (0, 1) in c.execution.rmw

    def test_exclusive_pairing_same_location_only(self):
        cands = candidates(
            [Load("r0", "x", excl=True), Store("y", 1, excl=True)]
        )
        for c in cands:
            assert not c.execution.rmw

    def test_fences_are_events(self):
        cands = candidates([Store("x", 1), Fence("sync"), Store("y", 1)])
        for c in cands:
            assert len(c.execution.fences) == 1

    def test_atomic_txn_flag(self):
        cands = candidates([TxBegin(atomic=True), Store("x", 1), TxEnd()])
        committed = [c for c in cands if c.outcome.committed]
        assert committed[0].execution.txns[0].atomic

    def test_two_txns_independent_fates(self):
        cands = candidates(
            [TxBegin(), Store("x", 1), TxEnd(), TxBegin(), Store("y", 1), TxEnd()]
        )
        fates = {
            (len(c.outcome.committed), len(c.outcome.aborted)) for c in cands
        }
        assert fates == {(2, 0), (1, 1), (0, 2)}

    def test_memory_final_values(self):
        cands = candidates([Store("x", 1), Store("x", 2)])
        finals = {c.outcome.memory["x"] for c in cands}
        # po order does not constrain candidates' co... but wellformedness
        # of the outcome means the final is the co-last of each order.
        assert finals == {1, 2}
