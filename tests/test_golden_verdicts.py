"""Golden conformance snapshots: the catalog verdict matrix, pinned.

Any refactor of a native model (or of the shared analysis layer under
it) that flips a single catalog verdict fails here with the exact
(entry, model) cells that moved.  If the change was *intentional*,
regenerate the fixture and commit it together with the change::

    PYTHONPATH=src python tests/regen_golden_verdicts.py
"""

import json
import pathlib

from repro.catalog import CATALOG
from repro.conformance.golden import (
    LITMUS_ARCHES,
    litmus_entries,
    litmus_key,
    litmus_matrix,
    load_snapshot,
    verdict_matrix,
)
from repro.models.registry import MODELS

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_verdicts.json"

_REGEN_HINT = (
    "if this change is intentional, regenerate with "
    "`PYTHONPATH=src python tests/regen_golden_verdicts.py` and commit "
    "the updated fixture"
)


class TestGoldenVerdicts:
    def test_snapshot_exists_and_is_valid_json(self):
        assert GOLDEN.is_file(), f"missing {GOLDEN}; {_REGEN_HINT}"
        snapshot = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert snapshot, "empty golden snapshot"

    def test_snapshot_covers_the_full_catalog_and_registry(self):
        """New catalog entries / models / litmus imports must be pinned."""
        snapshot = load_snapshot(GOLDEN)
        expected_keys = set(CATALOG) | {
            litmus_key(entry, arch)
            for arch in LITMUS_ARCHES
            for entry in litmus_entries(arch)
        }
        assert set(snapshot) == expected_keys, (
            f"snapshot entries differ from the catalog + litmus imports; "
            f"{_REGEN_HINT}"
        )
        for entry, row in snapshot.items():
            assert set(row) == set(MODELS), (
                f"snapshot models for {entry!r} differ from the "
                f"registry; {_REGEN_HINT}"
            )

    def test_no_verdict_flipped(self):
        snapshot = load_snapshot(GOLDEN)
        current = verdict_matrix()
        flipped = [
            (entry, model, snapshot[entry][model], got)
            for entry, row in current.items()
            for model, got in row.items()
            if snapshot.get(entry, {}).get(model) is not None
            and snapshot[entry][model] != got
        ]
        assert not flipped, (
            "catalog verdicts flipped (entry, model, pinned, got): "
            f"{flipped}; {_REGEN_HINT}"
        )

    def test_no_litmus_observability_flipped(self):
        """The litmus renderings of the corpus-imported classic entries
        keep their pinned observability rows across all eight models."""
        snapshot = load_snapshot(GOLDEN)
        current = litmus_matrix()
        flipped = [
            (key, model, snapshot[key][model], got)
            for key, row in current.items()
            for model, got in row.items()
            if snapshot.get(key, {}).get(model) is not None
            and snapshot[key][model] != got
        ]
        assert not flipped, (
            "litmus observability flipped (key, model, pinned, got): "
            f"{flipped}; {_REGEN_HINT}"
        )
