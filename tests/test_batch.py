"""Differential suite for the batched relation kernels.

Four layers, each pinning batched evaluation to the scalar reference:

* **Algebra** — :class:`repro.core.relbatch.RelationBatch` /
  :class:`SetBatch` operations against per-element scalar
  :class:`repro.core.relation.Relation` results, on *both* backends
  (numpy dense and the pure-Python packed fallback), including a
  universe above 64 events to exercise the non-vectorized unpack path;
* **Golden catalog** — compiled plans (:func:`repro.ir.plan.
  consistent_batch`, kernels forced on) over the whole curated catalog
  against the pinned ``tests/golden_verdicts.json`` scalar matrix, for
  every native model and for ``.cat`` models with ``let rec``
  fixpoints;
* **Corpus matrix** — a batched campaign over the full committed
  litmus corpus (every dialect, ``exists`` and ``forall`` alike)
  against a scalar campaign over the same files, cell for cell;
* **Fuzz stream** — a seeded generator suite (reproducible via
  ``REPRO_TEST_SEED``) swept batched vs scalar.

The batched path must be *bit-identical* to the scalar one: any
mismatch here is a kernel bug, never an acceptable approximation.
"""

import pathlib
import random

import pytest

from repro.catalog import CATALOG
from repro.cat.model import load_cat_model
from repro.conformance.generators import generate_suite
from repro.conformance.golden import load_snapshot
from repro.conformance.seeds import derive_seed, reproducible_seed
from repro.core.execution import Execution
from repro.core.relation import Relation
from repro.core.relbatch import (
    HAVE_NUMPY,
    RelationBatch,
    SetBatch,
    active_backend,
    set_backend,
)
from repro.engine.campaign import litmus_suite, run_campaign
from repro.litmus.candidates import _expand_test, expand_program, set_batch_size
from repro.models.registry import MODELS, get_model
import repro.ir.plan as plan

_SEED = reproducible_seed()
CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"
GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_verdicts.json"

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


@pytest.fixture(params=BACKENDS)
def backend(request):
    set_backend(request.param)
    try:
        yield request.param
    finally:
        set_backend(None)


def _random_relation(rng: random.Random, n: int, density: float) -> Relation:
    pairs = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if rng.random() < density
    ]
    return Relation.from_pairs(n, pairs)


def _random_set(rng: random.Random, n: int, density: float = 0.4):
    return frozenset(i for i in range(n) if rng.random() < density)


def _stacks(stream: str, n: int, batch: int = 6):
    """Deterministic test stacks: relations ``r, s`` and sets ``a, b``."""
    rng = random.Random(derive_seed(_SEED, f"{stream}-{n}"))
    rs = [_random_relation(rng, n, rng.uniform(0.05, 0.5)) for _ in range(batch)]
    ss = [_random_relation(rng, n, rng.uniform(0.05, 0.5)) for _ in range(batch)]
    sa = [_random_set(rng, n) for _ in range(batch)]
    sb = [_random_set(rng, n) for _ in range(batch)]
    return rs, ss, sa, sb


#: Universe sizes: tiny, catalog-typical, and one past the 64-bit packed
#: row (exercises the per-bit unpack path in ``from_relations``).
SIZES = (1, 3, 7, 66)


class TestBatchAlgebra:
    """Every RelationBatch/SetBatch operation against the scalar
    Relation algebra, element by element, on the active backend."""

    def test_roundtrip(self, backend):
        for n in SIZES:
            rs, _, sa, _ = _stacks("roundtrip", n)
            assert RelationBatch.from_relations(rs).to_relations() == rs
            assert SetBatch.from_sets(sa, n).to_sets() == sa

    def test_constructors(self, backend):
        for n in SIZES:
            assert RelationBatch.empty(3, n).to_relations() == [
                Relation.empty(n)
            ] * 3
            assert RelationBatch.identity(3, n).to_relations() == [
                Relation.identity(n)
            ] * 3
            assert RelationBatch.full(3, n).to_relations() == [
                Relation.full(n)
            ] * 3
            assert SetBatch.full(3, n).to_sets() == [frozenset(range(n))] * 3
            assert SetBatch.empty(3, n).to_sets() == [frozenset()] * 3

    def test_binary_relation_ops(self, backend):
        for n in SIZES:
            rs, ss, _, _ = _stacks("binary", n)
            br, bs = RelationBatch.from_relations(rs), RelationBatch.from_relations(ss)
            assert (br | bs).to_relations() == [r | s for r, s in zip(rs, ss)]
            assert (br & bs).to_relations() == [r & s for r, s in zip(rs, ss)]
            assert (br - bs).to_relations() == [r - s for r, s in zip(rs, ss)]
            assert (br @ bs).to_relations() == [r @ s for r, s in zip(rs, ss)]

    def test_unary_relation_ops(self, backend):
        for n in SIZES:
            rs, _, _, _ = _stacks("unary", n)
            br = RelationBatch.from_relations(rs)
            assert br.complement().to_relations() == [r.complement() for r in rs]
            assert br.inverse().to_relations() == [r.inverse() for r in rs]
            assert br.opt().to_relations() == [r.opt() for r in rs]
            assert br.plus().to_relations() == [r.plus() for r in rs]
            assert br.star().to_relations() == [r.star() for r in rs]
            assert br.remove_diagonal().to_relations() == [
                r.remove_diagonal() for r in rs
            ]

    def test_restrictions_and_lifts(self, backend):
        for n in SIZES:
            rs, _, sa, sb = _stacks("restrict", n)
            br = RelationBatch.from_relations(rs)
            ba, bb = SetBatch.from_sets(sa, n), SetBatch.from_sets(sb, n)
            assert br.restrict(ba, bb).to_relations() == [
                r.restrict(a, b) for r, a, b in zip(rs, sa, sb)
            ]
            # restrict_domain/range are the comp-lift peephole kernels:
            # they must equal the lift-then-compose they replace.
            assert br.restrict_domain(ba).to_relations() == [
                Relation.lift(n, a) @ r for r, a in zip(rs, sa)
            ]
            assert br.restrict_range(bb).to_relations() == [
                r @ Relation.lift(n, b) for r, b in zip(rs, sb)
            ]
            assert RelationBatch.lift_set(ba).to_relations() == [
                Relation.lift(n, a) for a in sa
            ]
            assert RelationBatch.cross_sets(ba, bb).to_relations() == [
                Relation.cross(n, a, b) for a, b in zip(sa, sb)
            ]

    def test_domain_codomain(self, backend):
        for n in SIZES:
            rs, _, _, _ = _stacks("domain", n)
            br = RelationBatch.from_relations(rs)
            assert br.domain().to_sets() == [r.domain() for r in rs]
            assert br.codomain().to_sets() == [r.codomain() for r in rs]

    def test_predicates(self, backend):
        for n in SIZES:
            rs, _, _, _ = _stacks("pred", n)
            # Mix in edge cases that random stacks rarely produce.
            rs = rs + [Relation.empty(n), Relation.identity(n)]
            br = RelationBatch.from_relations(rs)
            assert list(map(bool, br.is_empty())) == [r.is_empty() for r in rs]
            assert list(map(bool, br.is_irreflexive())) == [
                r.is_irreflexive() for r in rs
            ]
            assert list(map(bool, br.is_acyclic())) == [
                r.is_acyclic() for r in rs
            ]
            assert br.same_as(RelationBatch.from_relations(rs))
            assert not br.same_as(br.complement())

    def test_set_ops(self, backend):
        for n in SIZES:
            _, _, sa, sb = _stacks("sets", n)
            ba, bb = SetBatch.from_sets(sa, n), SetBatch.from_sets(sb, n)
            universe = frozenset(range(n))
            assert (ba | bb).to_sets() == [a | b for a, b in zip(sa, sb)]
            assert (ba & bb).to_sets() == [a & b for a, b in zip(sa, sb)]
            assert (ba - bb).to_sets() == [a - b for a, b in zip(sa, sb)]
            assert ba.complement().to_sets() == [universe - a for a in sa]
            assert list(map(bool, ba.is_empty())) == [not a for a in sa]
            assert ba.same_as(SetBatch.from_sets(sa, n))

    def test_from_dense_requires_numpy(self, backend):
        if backend == "numpy":
            import numpy as np

            rel = RelationBatch.from_dense(np.eye(4, dtype=np.uint8)[None])
            assert rel.to_relations() == [Relation.identity(4)]
            events = SetBatch.from_dense(np.ones((2, 4), dtype=np.uint8))
            assert events.to_sets() == [frozenset(range(4))] * 2
        else:
            with pytest.raises(RuntimeError):
                RelationBatch.from_dense(None)
            with pytest.raises(RuntimeError):
                SetBatch.from_dense(None)

    def test_backend_selection(self):
        assert active_backend() in ("python", "numpy")
        with pytest.raises(ValueError):
            set_backend("fortran")


# ----------------------------------------------------------------------
# Compiled plans vs the scalar reference
# ----------------------------------------------------------------------


def _fresh(x: Execution) -> Execution:
    """A copy with no cached analysis: batched evaluation on it cannot
    read memos a scalar pass already filled (or vice versa), so the two
    paths stay genuinely independent."""
    return Execution(
        x.events, x.threads, x.rf, x.co, x.addr, x.data, x.ctrl, x.rmw, x.txns
    )


@pytest.fixture
def forced_kernels(monkeypatch):
    """Force every stack through the compiled kernels, however small —
    without this the differential would silently compare scalar against
    scalar below ``MIN_KERNEL_BATCH``."""
    monkeypatch.setattr(plan, "MIN_KERNEL_BATCH", 1)


def _catalog_stacks():
    """Catalog executions bucketed by universe size, as fresh copies."""
    buckets: dict[int, list[tuple[str, Execution]]] = {}
    for name, entry in sorted(CATALOG.items()):
        buckets.setdefault(entry.execution.n, []).append(
            (name, _fresh(entry.execution))
        )
    return buckets


class TestGoldenCatalogBatched:
    def test_native_models_match_pinned_scalar_matrix(self, forced_kernels):
        """Batched plans over the full catalog reproduce the pinned
        scalar golden matrix for every native model."""
        golden = load_snapshot(GOLDEN)
        buckets = _catalog_stacks()
        mismatches = []
        for model_name in sorted(MODELS):
            model = get_model(model_name)
            definition = model.batch_definition()
            assert definition is not None, f"{model_name} lost its IR"
            for stack in buckets.values():
                flags = plan.consistent_batch(
                    model, definition, [x for _, x in stack]
                )
                for (entry_name, _), flag in zip(stack, flags):
                    want = golden[entry_name][model_name]
                    if bool(flag) != want:
                        mismatches.append((entry_name, model_name, want))
        assert not mismatches, f"batched verdicts flipped: {mismatches[:10]}"

    @pytest.mark.parametrize("cat_name", ["power", "armv8"])
    def test_cat_models_match_scalar(self, forced_kernels, cat_name):
        """`.cat` models (``let rec`` fixpoints included) batched vs a
        scalar sweep over independent execution copies."""
        model = load_cat_model(cat_name)
        definition = model.batch_definition()
        if definition is None:
            pytest.skip(f"cat:{cat_name} has no batchable IR")
        for stack in _catalog_stacks().values():
            scalar = [
                bool(model.consistent(_fresh(x))) for _, x in stack
            ]
            flags = plan.consistent_batch(
                model, definition, [x for _, x in stack]
            )
            assert list(map(bool, flags)) == scalar


# ----------------------------------------------------------------------
# Campaign-level differentials (corpus matrix + seeded fuzz stream)
# ----------------------------------------------------------------------


def _campaign_verdicts(items, specs, batch):
    """One campaign pass at the given batch setting, from cold expansion
    caches, returning ``{(name, spec): (verdict, error)}``."""
    expand_program.cache_clear()
    _expand_test.cache_clear()
    set_batch_size(batch)
    try:
        result = run_campaign(items, specs)
    finally:
        set_batch_size(None)
        expand_program.cache_clear()
        _expand_test.cache_clear()
    return {
        key: (cell.verdict, cell.error) for key, cell in result.cells.items()
    }


def _assert_identical(items, specs):
    scalar = _campaign_verdicts(items, specs, 0)
    batched = _campaign_verdicts(items, specs, 64)
    assert batched == scalar


class TestCampaignDifferential:
    def test_full_corpus_matrix(self, forced_kernels):
        """The complete committed corpus (every dialect; ``exists``,
        ``~exists`` and ``forall`` tests alike) × every native model:
        batched and scalar campaigns agree on all cells."""
        paths = sorted(str(p) for p in CORPUS.glob("*/*.litmus"))
        assert len(paths) >= 150, "corpus shrank; differential is hollow"
        _assert_identical(litmus_suite(paths), sorted(MODELS))

    def test_seeded_fuzz_stream(self, forced_kernels):
        """A reproducible generator suite (prints its seed via the
        pytest header) swept batched vs scalar, including a ``.cat``
        checker so ``let rec`` plans run inside the campaign."""
        for arch, specs in (
            ("x86", ["x86", "sc"]),
            ("power", ["power", "cat:power"]),
        ):
            seed = derive_seed(_SEED, f"batch-differential-{arch}")
            items = [
                item.campaign_item()
                for item in generate_suite(arch, seed, "smoke")
            ]
            assert items, "empty fuzz suite; differential is hollow"
            _assert_identical(items, specs)
