"""Per-model unit tests beyond the catalog expectations."""

import pytest

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.base import Axiom, Verdict
from repro.models.cpp import Cpp, acquire_events, atomic_events, release_events, sc_events
from repro.models.power import power_ppo
from repro.models.registry import get_model, model_names


class TestRegistry:
    def test_all_models_instantiate(self):
        for name in model_names():
            model = get_model(name)
            assert model.consistent is not None

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            get_model("itanium")

    def test_baseline_flag(self):
        assert get_model("x86", tm=False).tm is False
        assert "(no TM)" in get_model("x86", tm=False).name


class TestVerdicts:
    def test_check_reports_all_axioms(self):
        b = ExecutionBuilder()
        b.thread().write("x")
        verdict = get_model("x86").check(b.build())
        assert isinstance(verdict, Verdict)
        names = [r.name for r in verdict.results]
        assert names == [
            "Coherence", "RMWIsol", "Order", "StrongIsol", "TxnOrder",
        ]
        assert verdict.consistent
        assert "consistent" in str(verdict)

    def test_failed_axioms(self):
        from repro.catalog import CATALOG

        x = CATALOG["fig2"].execution
        assert "StrongIsol" in get_model("x86").failed_axioms(x)

    def test_bad_axiom_kind(self):
        axiom = Axiom("x", "bogus", "r")
        with pytest.raises(ValueError):
            axiom.holds({"r": None})


class TestBaselineVsTm:
    def test_baseline_ignores_txns(self):
        from repro.catalog import CATALOG

        x = CATALOG["fig2"].execution
        assert not get_model("x86").consistent(x)
        assert get_model("x86", tm=False).consistent(x)

    @pytest.mark.parametrize("arch", ["x86", "power", "armv8", "cpp", "tsc"])
    def test_txn_free_agreement(self, arch):
        from repro.catalog import CATALOG

        for name in ("sb", "mp", "lb", "iriw"):
            x = CATALOG[name].execution
            assert get_model(arch).consistent(x) == get_model(
                arch, tm=False
            ).consistent(x), (arch, name)


class TestPowerPpo:
    def test_data_dep_in_ppo(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        w = t0.write("y")
        b.data(r, w)
        x = b.build()
        assert (r, w) in power_ppo(x)

    def test_plain_po_not_in_ppo(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        w = t0.write("y")
        x = b.build()
        assert (r, w) not in power_ppo(x)

    def test_addr_dep_read_read(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r1 = t0.read("x")
        r2 = t0.read("y")
        b.addr(r1, r2)
        x = b.build()
        assert (r1, r2) in power_ppo(x)

    def test_ctrl_to_read_not_in_ppo(self):
        # Control dependencies order only writes (without isync).
        b = ExecutionBuilder()
        t0 = b.thread()
        r1 = t0.read("x")
        r2 = t0.read("y")
        b.ctrl(r1, r2)
        x = b.build()
        assert (r1, r2) not in power_ppo(x)

    def test_ctrl_isync_orders_reads(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r1 = t0.read("x")
        f = t0.fence(Label.ISYNC)
        r2 = t0.read("y")
        b.ctrl(r1, f)
        x = b.build()
        assert (r1, r2) in power_ppo(x)

    def test_rdw_chain(self):
        # poloc read pairs reading different external writes are ordered.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r1 = t0.read("x")
        r2 = t0.read("x")
        w = t1.write("x")
        b.rf(w, r2)
        x = b.build()
        assert (r1, r2) in power_ppo(x)


class TestCppSets:
    def build(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        na = t0.read("x")
        acq = t0.atomic_read("y", Label.ACQ)
        sc_w = t0.atomic_write("z", Label.SC)
        rel = t0.atomic_write("y", Label.REL)
        return b.build(), (na, acq, sc_w, rel)

    def test_atomic_events(self):
        x, (na, acq, sc_w, rel) = self.build()
        assert atomic_events(x) == {acq, sc_w, rel}

    def test_acquire_release(self):
        x, (na, acq, sc_w, rel) = self.build()
        assert acq in acquire_events(x)
        assert rel in release_events(x)
        assert sc_w in release_events(x)
        assert sc_w not in acquire_events(x)  # an SC *write* is not Acq

    def test_sc_events(self):
        x, (na, acq, sc_w, rel) = self.build()
        assert sc_events(x) == {sc_w}

    def test_races_symmetric_pairing(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t1.write("x")
        b.co(0, 1)
        x = b.build()
        cpp = Cpp()
        races = cpp.races(x)
        assert (0, 1) in races and (1, 0) in races
        assert not cpp.race_free(x)

    def test_same_thread_no_race(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        t0.write("x")
        assert Cpp().race_free(b.build())

    def test_release_acquire_removes_race(self):
        from repro.catalog import CATALOG

        # MP with rel/acq is racy only in the weak outcome; the entry
        # (forbidden outcome) has hb covering the data accesses.
        x = CATALOG["cpp_mp_rel_acq"].execution
        assert Cpp().race_free(x)


class TestSCvsTSC:
    def test_tsc_stronger_than_sc(self):
        from repro.catalog import CATALOG

        sc = get_model("sc")
        tsc = get_model("tsc")
        for entry in CATALOG.values():
            x = entry.execution
            if x.calls:
                continue
            if tsc.consistent(x):
                assert sc.consistent(x), entry.name

    def test_tsc_equals_sc_without_txns(self):
        from repro.catalog import CATALOG

        sc = get_model("sc")
        tsc = get_model("tsc")
        for name in ("sb", "mp", "lb", "iriw", "2+2w", "corr"):
            x = CATALOG[name].execution
            assert sc.consistent(x) == tsc.consistent(x)
