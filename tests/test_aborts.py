"""Tests for explicit transaction aborts (paper Remarks 3.1 and 7.1).

Covers the ``TxAbort`` instruction end to end: program validation, the
candidate expansion (always-aborting transactions never commit;
conditional aborts constrain the rf choice), the operational machines
(self-abort idiom of Example 1.1), the truncated-success race semantics
of :mod:`repro.models.aborts`, and the render/parse round trip.
"""

import pytest

from repro.core.events import Label
from repro.litmus.candidates import candidate_executions
from repro.litmus.parse import dumps, loads
from repro.litmus.program import (
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from repro.litmus.render import render
from repro.litmus.test import LitmusTest, RegEq, TxnOk
from repro.models.aborts import abort_variants, program_racy, truncate_aborts
from repro.models.cpp import Cpp
from repro.sim.tso import TsoMachine
from repro.sim.weakmachine import reachable_outcomes

_ATO = frozenset({Label.ATO, Label.RLX})


def remark71() -> Program:
    """``atomic{ x=1; abort(); } || atomic_store(&x, 2)``."""
    return Program(
        (
            (TxBegin(atomic=True), Store("x", 1), TxAbort(), TxEnd()),
            (Store("x", 2, labels=_ATO),),
        )
    )


class TestValidation:
    def test_abort_outside_txn_rejected(self):
        with pytest.raises(ValueError, match="outside a transaction"):
            Program(((Store("x", 1), TxAbort()),))

    def test_undefined_condition_register_rejected(self):
        with pytest.raises(ValueError, match="undefined register"):
            Program(((TxBegin(), TxAbort("r9"), TxEnd()),))

    def test_valid_conditional_abort(self):
        prog = Program(
            ((TxBegin(), Load("r0", "m"), TxAbort("r0"), TxEnd()),)
        )
        assert prog.validate() == []


class TestCandidates:
    def test_always_aborting_txn_never_commits(self):
        prog = Program(
            (
                (TxBegin(), Store("x", 1), TxAbort(), TxEnd()),
                (Load("r0", "x"),),
            )
        )
        candidates = list(candidate_executions(prog))
        assert candidates
        for c in candidates:
            assert (0, 0) not in c.outcome.committed
            assert (0, 0) in c.outcome.aborted
            assert c.outcome.registers.get((1, "r0"), 0) == 0

    def test_conditional_abort_constrains_rf(self):
        prog = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "m"),
                    TxAbort("r0"),
                    Store("x", 1),
                    TxEnd(),
                ),
                (Store("m", 1),),
            )
        )
        commits = [
            c
            for c in candidate_executions(prog)
            if (0, 0) in c.outcome.committed
        ]
        assert commits  # committing while m reads 0 is possible
        for c in commits:
            assert c.outcome.registers[(0, "r0")] == 0

    def test_abort_choice_still_expanded(self):
        prog = Program(
            (
                (
                    TxBegin(),
                    Load("r0", "m"),
                    TxAbort("r0"),
                    Store("x", 1),
                    TxEnd(),
                ),
                (Store("m", 1),),
            )
        )
        aborts = [
            c
            for c in candidate_executions(prog)
            if (0, 0) in c.outcome.aborted
        ]
        assert aborts
        for c in aborts:
            # aborted transactions leave no events: x was never written
            assert c.outcome.memory.get("x", 0) == 0


class TestMachines:
    def test_tso_unconditional_abort(self):
        prog = Program(
            ((TxBegin(), Store("x", 1), TxAbort(), TxEnd()),)
        )
        outcomes = TsoMachine(prog).explore()
        assert all((0, 0) in o.aborted for o in outcomes)
        assert all(o.memory.get("x", 0) == 0 for o in outcomes)

    def test_tso_conditional_abort_both_ways(self):
        prog = Program(
            (
                (TxBegin(), Load("r0", "m"), TxAbort("r0"), Store("x", 1), TxEnd()),
                (Store("m", 1),),
            )
        )
        outcomes = TsoMachine(prog).explore()
        assert any((0, 0) in o.committed for o in outcomes)
        assert any((0, 0) in o.aborted for o in outcomes)
        for o in outcomes:
            if (0, 0) in o.committed:
                assert o.registers.get((0, "r0"), 0) == 0

    @pytest.mark.parametrize("arch", ["power", "armv8", "riscv"])
    def test_weak_machine_self_abort(self, arch):
        prog = Program(
            (
                (TxBegin(), Load("r0", "m"), TxAbort("r0"), Store("x", 1), TxEnd()),
                (Store("m", 1),),
            )
        )
        outcomes = reachable_outcomes(prog, arch)
        assert any((0, 0) in o.committed for o in outcomes)
        assert any((0, 0) in o.aborted for o in outcomes)
        for o in outcomes:
            if (0, 0) in o.committed:
                assert o.registers.get((0, "r0"), 0) == 0
            if (0, 0) in o.aborted:
                assert o.memory.get("x", 0) == 0

    def test_machine_agrees_with_candidates_on_abort_program(self):
        from repro.litmus.candidates import all_outcomes
        from repro.models.registry import get_model

        prog = Program(
            (
                (TxBegin(), Load("r0", "m"), TxAbort("r0"), Store("x", 1), TxEnd()),
                (Store("m", 1),),
            )
        )
        test = LitmusTest("abort", "armv8", prog, ())
        allowed = all_outcomes(test, get_model("armv8"))
        machine = {o.key() for o in reachable_outcomes(prog, "armv8")}
        assert machine <= allowed


class TestTruncation:
    def test_truncate_cuts_at_abort(self):
        prog = Program(
            (
                (TxBegin(), Store("x", 1), TxAbort(), Store("y", 1), TxEnd()),
            )
        )
        cut = truncate_aborts(prog)
        kinds = [type(i).__name__ for i in cut.threads[0]]
        assert kinds == ["TxBegin", "Store", "TxEnd"]

    def test_variant_count(self):
        prog = Program(
            (
                (TxBegin(), Load("r0", "m"), TxAbort("r0"), TxEnd()),
                (TxBegin(), Load("r1", "n"), TxAbort("r1"), TxEnd()),
            )
        )
        assert len(list(abort_variants(prog))) == 4

    def test_non_firing_variant_keeps_constraint(self):
        prog = Program(
            ((TxBegin(), Load("r0", "m"), TxAbort("r0"), TxEnd()),)
        )
        variants = list(abort_variants(prog))
        kept = [
            v
            for v in variants
            if any(isinstance(i, TxAbort) for i in v.threads[0])
        ]
        assert len(kept) == 1

    def test_programs_without_aborts_unchanged(self):
        prog = Program(((TxBegin(), Store("x", 1), TxEnd()),))
        assert truncate_aborts(prog) == prog
        assert list(abort_variants(prog)) == [prog]


class TestRaceSemantics:
    def test_remark_71_is_racy(self):
        assert program_racy(remark71())

    def test_atomic_operations_do_not_race(self):
        prog = Program(
            (
                (
                    TxBegin(),
                    Store("x", 1, labels=_ATO),
                    TxAbort(),
                    TxEnd(),
                ),
                (Store("x", 2, labels=_ATO),),
            )
        )
        assert not program_racy(prog)

    def test_post_abort_events_do_not_race(self):
        # The conflicting store sits AFTER the abort: it never executes,
        # so there is no race.
        prog = Program(
            (
                (TxBegin(), TxAbort(), Store("x", 1), TxEnd()),
                (Store("x", 2, labels=_ATO),),
            )
        )
        assert not program_racy(prog)

    def test_successful_txn_race_found_without_aborts(self):
        prog = Program(
            (
                (TxBegin(atomic=True), Store("x", 1), TxEnd()),
                (Store("x", 2, labels=_ATO),),
            )
        )
        assert program_racy(prog)

    def test_race_free_program(self):
        prog = Program(
            (
                (Store("x", 1, labels=_ATO),),
                (Load("r0", "x", labels=_ATO),),
            )
        )
        assert not program_racy(prog)

    def test_custom_model_instance(self):
        assert program_racy(remark71(), Cpp())


class TestSurfaceSyntax:
    def _prog(self):
        return Program(
            (
                (
                    TxBegin(),
                    Load("r0", "m"),
                    TxAbort("r0"),
                    Store("x", 1),
                    TxEnd(),
                ),
                (TxBegin(), Store("y", 1), TxAbort(), TxEnd()),
            )
        )

    def test_neutral_roundtrip(self):
        test = LitmusTest("aborts", "armv8", self._prog(), (RegEq(0, "r0", 0),))
        assert loads(dumps(test)).program == test.program

    @pytest.mark.parametrize("arch", ["x86", "power", "armv8", "cpp"])
    def test_renderers_emit_abort(self, arch):
        test = LitmusTest("aborts", arch, self._prog(), ())
        text = render(test)
        marker = {
            "x86": "XABORT",
            "power": "tabort.",
            "armv8": "TXABORT",
            "cpp": "abort();",
        }[arch]
        assert marker in text

    def test_armv8_conditional_renders_cbz(self):
        test = LitmusTest("aborts", "armv8", self._prog(), ())
        assert "CBZ" in render(test)
