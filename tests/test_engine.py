"""Tests for the campaign engine: caching, parallelism, determinism."""

import json

import pytest

from repro.catalog import CATALOG
from repro.engine import (
    CampaignItem,
    MemoModel,
    NullCache,
    ResultCache,
    cache_key,
    catalog_suite,
    diy_suite,
    execution_suite,
    fingerprint,
    parallel_map,
    resolve_checker,
    run_campaign,
)
from repro.engine.checkers import ModelChecker, OracleChecker
from repro.litmus.candidates import expand_program, observable
from repro.litmus.from_execution import to_litmus
from repro.models.registry import get_model
from repro.synth.diy import classic


@pytest.fixture
def suite():
    return diy_suite("x86", max_length=3)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path)


class TestFingerprint:
    def test_stable_across_calls(self):
        x = classic("sb")
        assert fingerprint(x) == fingerprint(x)

    def test_content_not_name(self):
        x = classic("sb")
        a = to_litmus(x, "name-one", "x86")
        b = to_litmus(x, "name-two", "x86")
        # Renaming a test must not invalidate its cache entries.
        assert fingerprint(a) == fingerprint(b)
        c = to_litmus(classic("mp"), "name-one", "x86")
        assert fingerprint(a) != fingerprint(c)

    def test_distinguishes_executions(self):
        assert fingerprint(classic("sb")) != fingerprint(classic("mp"))

    def test_key_includes_model(self):
        fp = fingerprint(classic("sb"))
        assert cache_key(fp, "x86") != cache_key(fp, "power")

    def test_key_includes_model_definition(self):
        fp = fingerprint(classic("sb"))
        assert cache_key(fp, "x86", "def-a") != cache_key(fp, "x86", "def-b")

    def test_definition_hash_tracks_cat_source(self, tmp_path):
        from repro.cat.model import CatModel
        from repro.engine.checkers import definition_hash

        a = CatModel('"t"\nacyclic po as Order')
        b = CatModel('"t"\nacyclic po | rf as Order')
        assert definition_hash(a) != definition_hash(b)
        assert definition_hash(a) == definition_hash(
            CatModel('"t"\nacyclic po as Order')
        )


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"verdict": True, "item": "t", "model": "m"})
        reloaded = ResultCache(tmp_path)
        assert reloaded.get("k1")["verdict"] is True
        assert reloaded.hits == 1

    def test_miss_counting(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.misses == 1 and cache.hit_rate == 0.0

    def test_last_record_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"verdict": True})
        cache.put("k", {"verdict": False})
        assert ResultCache(tmp_path).get("k")["verdict"] is False

    def test_torn_tail_line_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"verdict": True})
        with cache.path.open("a") as handle:
            handle.write('{"key": "torn", "verd')
        assert ResultCache(tmp_path).get("k") is not None

    def test_null_cache(self):
        cache = NullCache()
        cache.put("k", {"verdict": True})
        assert cache.get("k") is None and len(cache) == 0


class TestCheckers:
    def test_native_vs_cat_agree(self, suite):
        native = resolve_checker("x86")
        cat = resolve_checker("x86tm")
        for item in suite:
            assert native.verdict(item.payload) == cat.verdict(item.payload)

    def test_notm_suffix(self):
        checker = resolve_checker("x86!notm")
        assert isinstance(checker, ModelChecker)
        assert checker.model.tm is False

    def test_hw_spec(self):
        assert isinstance(resolve_checker("hw:x86"), OracleChecker)

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown checker"):
            resolve_checker("not-a-model")

    def test_execution_payload_uses_consistent(self):
        checker = resolve_checker("sc")
        x = classic("sb")
        assert checker.verdict(x) == get_model("sc").consistent(x)


class TestRunCampaign:
    def test_matches_direct_observable(self, suite):
        result = run_campaign(suite, ["x86"])
        model = get_model("x86")
        for item in suite:
            assert result.verdict(item.name, "x86") == observable(
                item.payload, model
            )

    def test_parallel_equals_serial(self, suite):
        serial = run_campaign(suite, ["x86", "tsc"], jobs=1)
        parallel = run_campaign(suite, ["x86", "tsc"], jobs=2)
        assert serial.matrix() == parallel.matrix()

    def test_determinism_across_worker_counts(self, suite):
        matrices = [
            run_campaign(suite, ["x86", "sc"], jobs=jobs).matrix()
            for jobs in (1, 2, 3)
        ]
        assert matrices[0] == matrices[1] == matrices[2]

    def test_cache_miss_then_hit(self, suite, tmp_path):
        first = run_campaign(suite, ["x86"], cache=ResultCache(tmp_path))
        assert first.cache_hits == 0
        assert first.cache_misses == len(suite)
        second = run_campaign(suite, ["x86"], cache=ResultCache(tmp_path))
        assert second.cache_hits == len(suite)
        assert second.cache_misses == 0
        assert second.hit_rate == 1.0
        assert second.matrix() == first.matrix()

    def test_cache_is_incremental_per_model(self, suite, tmp_path):
        run_campaign(suite, ["x86"], cache=ResultCache(tmp_path))
        both = run_campaign(suite, ["x86", "tsc"], cache=ResultCache(tmp_path))
        assert both.cache_hits == len(suite)  # the x86 column
        assert both.cache_misses == len(suite)  # the new tsc column

    def test_parallel_run_populates_cache(self, suite, tmp_path):
        run_campaign(suite, ["x86"], jobs=2, cache=ResultCache(tmp_path))
        rerun = run_campaign(suite, ["x86"], cache=ResultCache(tmp_path))
        assert rerun.hit_rate == 1.0

    def test_duplicate_names_rejected(self, suite):
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign([suite[0], suite[0]], ["x86"])

    def test_bad_model_fails_fast(self, suite):
        with pytest.raises(ValueError, match="unknown checker"):
            run_campaign(suite, ["nonsense"])

    def test_format_matrix_and_summary(self, suite):
        result = run_campaign(suite[:4], ["x86"])
        text = result.format_matrix()
        assert "x86" in text and suite[0].name in text
        assert "cells" in result.summary()

    def test_checker_instances_accepted(self, suite):
        checker = ModelChecker("custom-x86", get_model("x86"))
        result = run_campaign(suite[:3], [checker])
        assert result.model_specs == ["custom-x86"]


class TestSuites:
    def test_catalog_suite_expected_diffs(self):
        items = catalog_suite(names=["fig2"])
        assert len(items) == 1
        expected = items[0].expected
        models = [m for m in expected if m in ("x86", "cpp")]
        result = run_campaign(items, models)
        assert result.diffs(items) == []

    def test_diffs_resolve_cat_and_hw_specs(self):
        from repro.engine.campaign import _base_model_name

        assert _base_model_name("x86tm") == "x86"
        assert _base_model_name("cat:x86") == "x86"
        assert _base_model_name("hw:x86:x86-tso-htm-sim") == "x86"
        assert _base_model_name("x86") == "x86"

    def test_cat_spec_checked_against_expected(self):
        # A bare .cat spec must be compared with the registry-name
        # expectations — an inverted expectation must surface as a diff.
        items = catalog_suite(names=["fig2"])
        items[0].expected = {"x86": not items[0].expected["x86"]}
        result = run_campaign(items, ["x86tm"])
        assert len(result.diffs(items)) == 1

    def test_execution_suite(self):
        items = execution_suite([classic("sb"), classic("mp")], prefix="c")
        assert [i.name for i in items] == ["c-0", "c-1"]
        result = run_campaign(items, ["sc"])
        assert result.verdict("c-0", "sc") is False  # SC forbids SB

    def test_diy_suite_names_unique(self, suite):
        names = [item.name for item in suite]
        assert len(names) == len(set(names))


class TestMemoization:
    def test_expand_program_memoized(self, suite):
        expand_program.cache_clear()
        program = suite[0].payload.program
        first = expand_program(program)
        assert expand_program(program) is first
        info = expand_program.cache_info()
        assert info.hits >= 1 and info.misses == 1

    def test_expansion_streams_lazily(self, suite):
        from repro.litmus.candidates import candidate_executions

        expand_program.cache_clear()
        program = suite[0].payload.program
        stream = candidate_executions(program)
        head = next(stream)  # early exit must not force the full tuple
        expansion = expand_program(program)
        assert len(expansion._seen) == 1
        # A second consumer replays the prefix, then both can finish.
        assert next(iter(candidate_executions(program))).outcome == head.outcome
        total = sum(1 for _ in candidate_executions(program))
        assert total == len(expansion._seen) and expansion._done

    def test_memo_model_consults_memo(self):
        class Counting:
            arch = "sc"
            tm = False

            def __init__(self):
                self.calls = 0

            @property
            def name(self):
                return "counting"

            def consistent(self, x):
                self.calls += 1
                return True

        inner = Counting()
        memo = MemoModel.__new__(MemoModel)
        # Bypass MemoryModel.__init__ plumbing: exercise the memo only.
        memo.model = inner
        memo.tm = inner.tm
        memo.arch = inner.arch
        memo.spec = "consistent:counting"
        memo.cache = NullCache()
        memo._memo = {}
        x = classic("sb")
        assert memo.consistent(x) and memo.consistent(x)
        assert inner.calls == 1

    def test_memo_model_uses_persistent_cache(self, tmp_path):
        x = classic("sb")
        first = MemoModel(get_model("sc"), ResultCache(tmp_path))
        verdict = first.consistent(x)
        second = MemoModel(get_model("sc"), ResultCache(tmp_path))
        assert second.consistent(x) == verdict
        assert second.cache.hits == 1

    def test_memo_model_matches_wrapped(self):
        model = get_model("x86")
        memo = MemoModel(model)
        for name in ("sb", "mp", "lb", "2+2w"):
            x = classic(name)
            assert memo.consistent(x) == model.consistent(x)
            assert memo.check(x).consistent == model.check(x).consistent


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(abs, [-1, 2, -3], jobs=1) == [1, 2, 3]

    def test_parallel_preserves_order(self):
        assert parallel_map(abs, list(range(-20, 0)), jobs=2) == list(
            range(20, 0, -1)
        )


class TestCampaignCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_campaign_diy(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out = self._run(
            capsys, "campaign", "--arch", "x86",
            "--models", "x86,x86tm", "--length", "2",
        )
        assert code == 0
        assert "x86tm" in out and "cache" in out
        # Second invocation is served from the cache.
        code, out = self._run(
            capsys, "campaign", "--arch", "x86",
            "--models", "x86,x86tm", "--length", "2",
        )
        assert code == 0
        assert "100% cache hits" in out

    def test_campaign_catalog_no_cache(self, capsys):
        code, out = self._run(
            capsys, "campaign", "--suite", "catalog", "--models", "sc",
            "--no-cache",
        )
        assert code == 0
        assert "tests x 1 models" in out

    def test_campaign_files(self, capsys, tmp_path):
        from repro.litmus.parse import dumps

        test = to_litmus(classic("sb"), "sb-file", "x86")
        path = tmp_path / "sb.litmus"
        path.write_text(dumps(test))
        code, out = self._run(
            capsys, "campaign", str(path), "--models", "x86", "--no-cache"
        )
        assert code == 0
        assert "sb-file" in out


class TestNewCheckerSpecs:
    """The conformance layer's checker families: brute:, mut:, hw variants."""

    def test_brute_spec_matches_native(self):
        test = to_litmus(classic("sb"), "sb", "x86")
        from repro.engine.checkers import resolve_checker

        assert resolve_checker("brute:x86").verdict(test) == resolve_checker(
            "x86"
        ).verdict(test)

    def test_brute_spec_rejects_unknown_model(self):
        from repro.engine.checkers import resolve_checker

        with pytest.raises(ValueError):
            resolve_checker("brute:nosuchmodel")

    def test_mut_spec_is_weaker_than_stock(self):
        """Dropping an axiom is monotone: whatever the stock model
        observes, the mutant observes too."""
        from repro.engine.checkers import resolve_checker

        stock = resolve_checker("armv8")
        mutant = resolve_checker("mut:armv8:Coherence")
        for name in ("sb", "mp", "lb", "2+2w"):
            test = to_litmus(classic(name), name, "armv8")
            if stock.verdict(test):
                assert mutant.verdict(test), name

    def test_hw_variant_specs_resolve(self):
        from repro.engine.checkers import resolve_checker
        from repro.sim.oracle import BuggyRtlArm, MachineHardware

        assert isinstance(
            resolve_checker("hw:armv8:machine").oracle, MachineHardware
        )
        assert isinstance(
            resolve_checker("hw:armv8:buggy").oracle, BuggyRtlArm
        )
        with pytest.raises(ValueError):
            resolve_checker("hw:armv8:nosuchvariant")
        with pytest.raises(ValueError):
            resolve_checker("hw:cpp:buggy")

    def test_definition_hashes_are_distinct_per_mutant(self):
        from repro.engine.checkers import resolve_checker

        hashes = {
            resolve_checker(spec).definition_hash()
            for spec in (
                "armv8",
                "brute:armv8",
                "mut:armv8:TxnOrder",
                "mut:armv8:Coherence",
            )
        }
        assert len(hashes) == 4


class TestErrorCells:
    """Checker crashes become reportable cells, not lost campaigns."""

    class _Boom(ModelChecker):
        def __init__(self):
            super().__init__("boom", get_model("sc"))

        def verdict(self, payload):
            raise RuntimeError("kaboom")

    def test_errors_are_captured_and_reported(self):
        items = [CampaignItem("fig2", CATALOG["fig2"].execution)]
        result = run_campaign(items, [self._Boom(), "sc"])
        cell = result.cells[("fig2", "boom")]
        assert cell.error == "RuntimeError: kaboom"
        assert cell.verdict is False
        assert result.errors() == [("fig2", "boom", "RuntimeError: kaboom")]
        # the healthy checker's cell is unaffected
        assert result.cells[("fig2", "sc")].error is None
        assert "1 checker errors" in result.summary()
        assert "!" in result.format_matrix()

    def test_errored_cells_are_never_cached(self, tmp_path):
        items = [CampaignItem("fig2", CATALOG["fig2"].execution)]
        cache = ResultCache(tmp_path)
        run_campaign(items, [self._Boom()], cache=cache)
        assert len(cache) == 0
        # a healthy run does populate the cache
        run_campaign(items, ["sc"], cache=cache)
        assert len(cache) == 1
