"""Execution → litmus → candidates round-trip tests (§2.2, §3.2).

The construction of a litmus test from an execution must be faithful: the
intended execution appears among the program's candidates, the
postcondition selects it, and observability under a model matches the
model's verdict on the intended execution.
"""

import pytest

from repro.catalog import CATALOG
from repro.litmus.candidates import all_outcomes, candidate_executions, observable
from repro.litmus.from_execution import to_litmus
from repro.litmus.parse import dumps, loads
from repro.models.registry import get_model

# Entries without call events can be converted to litmus tests.
CONVERTIBLE = [
    name for name, e in sorted(CATALOG.items()) if not e.execution.calls
]


@pytest.mark.parametrize("name", CONVERTIBLE)
def test_intended_outcome_is_a_candidate(name):
    """Some candidate satisfies the postcondition and has the intended
    rf/co structure."""
    x = CATALOG[name].execution
    test = to_litmus(x, name, "armv8")
    matches = [
        c
        for c in candidate_executions(test.program)
        if test.check(c.outcome)
    ]
    assert matches, f"{name}: no candidate satisfies the postcondition"
    # The intended candidate reproduces the rf cardinality and co orders.
    intended = [
        c
        for c in matches
        if len(c.execution.rf) == len(x.rf)
        and all(
            len(order) == len(x.co.get(loc, ()))
            for loc, order in c.execution.co.items()
        )
    ]
    assert intended, f"{name}: candidate structure mismatch"


@pytest.mark.parametrize("name", CONVERTIBLE)
def test_observability_matches_model_verdict(name):
    """A test synthesized from a forbidden execution is unobservable under
    the forbidding model; from an allowed one, observable."""
    entry = CATALOG[name]
    for model_name, want in entry.expected.items():
        arch = model_name if model_name in ("x86", "power", "armv8", "cpp") else "armv8"
        test = to_litmus(entry.execution, name, arch)
        model = get_model(model_name)
        got = observable(test, model)
        if want:
            assert got, f"{name}: allowed execution must be observable"
        # A forbidden intended execution can still leave the postcondition
        # reachable via a different consistent candidate only if the
        # postcondition under-constrains; our construction pins rf and the
        # final co write, so the postcondition implies the intended
        # communication structure and observability must be False.
        else:
            assert not got, f"{name}: forbidden execution observable under {model_name}"


@pytest.mark.parametrize("name", CONVERTIBLE[:10])
def test_parse_dump_roundtrip(name):
    x = CATALOG[name].execution
    test = to_litmus(x, name, "power")
    text = dumps(test)
    again = loads(text)
    assert again.program == test.program
    assert again.postcondition == test.postcondition
    assert again.name == test.name and again.arch == test.arch


def test_txn_ok_flag_in_postcondition():
    test = to_litmus(CATALOG["fig2"].execution, "fig2", "x86")
    from repro.litmus.test import TxnOk

    assert any(isinstance(a, TxnOk) for a in test.postcondition)


def test_aborted_txn_candidates_exist():
    """Transactions fail non-deterministically: candidates include the
    aborted variant, whose events vanish (§3.1)."""
    test = to_litmus(CATALOG["fig2"].execution, "fig2", "x86")
    aborted = [
        c
        for c in candidate_executions(test.program)
        if c.outcome.aborted
    ]
    assert aborted
    for c in aborted:
        assert not c.execution.txns
        # The transaction's two events are gone.
        assert c.execution.n == 1


def test_all_outcomes_under_sc_is_subset_of_weak():
    test = to_litmus(CATALOG["sb"].execution, "sb", "x86")
    sc_outcomes = all_outcomes(test, get_model("sc"))
    x86_outcomes = all_outcomes(test, get_model("x86"))
    assert sc_outcomes < x86_outcomes  # strictly: SB is the witness


def test_dependencies_are_register_carried():
    x = CATALOG["lb_deps"].execution
    test = to_litmus(x, "lb_deps", "armv8")
    for candidate in candidate_executions(test.program):
        assert candidate.execution.data, "data deps must survive expansion"
        break
