"""Unit tests for the execution builder DSL."""

import pytest

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.core.wellformed import is_wellformed


class TestThreads:
    def test_events_in_program_order(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.read("y")
        x = b.build()
        assert x.threads == ((a, c),)
        assert (a, c) in x.po

    def test_multiple_threads(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        c = t1.read("x")
        x = b.build()
        assert len(x.threads) == 2
        assert (a, c) not in x.po

    def test_empty_threads_dropped(self):
        b = ExecutionBuilder()
        b.thread()
        t1 = b.thread()
        t1.write("x")
        assert len(b.build().threads) == 1

    def test_convenience_wrappers(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.acq_read("x")
        w = t0.rel_write("y")
        ar = t0.atomic_read("z", Label.SC)
        aw = t0.atomic_write("z", Label.REL)
        x = b.build()
        assert x.events[r].has(Label.ACQ)
        assert x.events[w].has(Label.REL)
        assert x.events[ar].has(Label.ATO) and x.events[ar].mode == Label.SC
        assert x.events[aw].mode == Label.REL


class TestEdges:
    def test_rf_direction_enforced(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w = t0.write("x")
        r = t0.read("x")
        with pytest.raises(ValueError):
            b.rf(r, w)

    def test_co_default_is_construction_order(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        x = b.build()
        assert x.co["x"] == (w1, w2)

    def test_co_constraint_reorders(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("x")
        b.co(w2, w1)
        x = b.build()
        assert x.co["x"] == (w2, w1)

    def test_co_order_explicit(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        w3 = t0.write("x")
        b.co_order("x", [w3, w1, w2])
        assert b.build().co["x"] == (w3, w1, w2)

    def test_co_order_must_cover_writes(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        w1 = t0.write("x")
        t0.write("x")
        b.co_order("x", [w1])
        with pytest.raises(ValueError):
            b.build()

    def test_deps(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        e = t0.read("y")
        w = t0.write("z")
        b.addr(r, e)
        b.data(r, w)
        b.ctrl(e, w)
        x = b.build()
        assert (r, e) in x.addr_rel
        assert (r, w) in x.data_rel
        assert (e, w) in x.ctrl_rel

    def test_ctrl_after_expands(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x")
        e1 = t0.write("y")
        e2 = t0.write("z")
        b.ctrl_after(r)
        x = b.build()
        assert (r, e1) in x.ctrl_rel
        assert (r, e2) in x.ctrl_rel

    def test_rmw_and_txn(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r, w], atomic=True)
        x = b.build()
        assert (r, w) in x.rmw_rel
        assert x.txns[0].atomic
        assert is_wellformed(x)
