"""Tests for the simulated hardware oracles."""

import pytest

from repro.catalog import CATALOG
from repro.litmus.from_execution import to_litmus
from repro.sim.oracle import (
    ArmRtl,
    BuggyRtlArm,
    HardwareOracle,
    PowerHardware,
    X86Hardware,
    get_oracle,
)


def t(name, arch):
    return to_litmus(CATALOG[name].execution, name, arch)


class TestPowerOracle:
    def test_lb_never_observed(self):
        """Real POWER8 parts never exhibit load buffering (§5.3)."""
        oracle = PowerHardware()
        assert not oracle.observable(t("lb", "power"))

    def test_mp_observed(self):
        assert PowerHardware().observable(t("mp", "power"))

    def test_forbidden_tests_not_observed(self):
        oracle = PowerHardware()
        for name in ("power_exec1", "power_exec2", "power_exec3", "fig2"):
            assert not oracle.observable(t(name, "power")), name

    def test_allowed_non_lb_observed(self):
        oracle = PowerHardware()
        for name in ("sb", "wrc_deps", "iriw_addrs", "power_exec3_one_txn"):
            assert oracle.observable(t(name, "power")), name


class TestArmRtl:
    def test_buggy_rtl_violates_txn_order(self):
        """§6.2: the RTL prototype bug is a TxnOrder violation."""
        test = t("mp_dmb_txn_reader", "armv8")
        assert BuggyRtlArm().observable(test)
        assert not ArmRtl().observable(test)

    def test_buggy_rtl_respects_other_axioms(self):
        # Shapes forbidden by Coherence/StrongIsol stay unobservable.
        for name in ("corr", "fig3a", "fig2"):
            assert not BuggyRtlArm().observable(t(name, "armv8")), name


class TestX86Hardware:
    def test_runs_programs(self):
        assert X86Hardware().observable(t("sb", "x86"))
        assert not X86Hardware().observable(t("sb_mfence", "x86"))

    def test_rejects_foreign_fences(self):
        with pytest.raises(ValueError):
            X86Hardware().observable(t("sb_sync", "x86"))


class TestRegistry:
    def test_get_oracle(self):
        assert isinstance(get_oracle("x86"), X86Hardware)
        assert isinstance(get_oracle("power"), PowerHardware)
        assert isinstance(get_oracle("armv8"), ArmRtl)
        assert isinstance(get_oracle("armv8", buggy_rtl=True), BuggyRtlArm)
        with pytest.raises(ValueError):
            get_oracle("sparc")

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            HardwareOracle().observable(None)
