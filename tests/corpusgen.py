"""Deterministic builder of the herd-dialect conformance corpus.

``build_corpus(arch)`` produces every ``.litmus`` test of one dialect:
the classic shapes (SB/MP/LB/S/R/2+2W/CoRR/CoWW/WRC/IRIW) under the
architecture's fence/ordering vocabulary, their transactional variants
(including the paper's TxnOrder-only witness and abort idioms), a pair
of ``forall`` conditions, and the ``cat-*`` imports of every classic
catalog entry expressible in the dialect.

``~exists`` marks tests whose condition is canonically *forbidden*
under the architecture's own model — ``regen_corpus.py`` asserts each
such verdict before committing the corpus, and ``repro campaign``
treats the quantifier as an expected-verdict row, so the CI corpus
sweep doubles as a conformance check.

Run ``python tests/regen_corpus.py`` to rewrite ``tests/corpus/`` and
the golden matrix ``tests/corpus_verdicts.json``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.events import Label  # noqa: E402
from repro.litmus.program import (  # noqa: E402
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from repro.litmus.test import CoSeq, LitmusTest, MemEq, RegEq, TxnOk  # noqa: E402

CORPUS_DIR = pathlib.Path(__file__).resolve().parent / "corpus"
VERDICTS = pathlib.Path(__file__).resolve().parent / "corpus_verdicts.json"

ARCHES = ("x86", "power", "armv8", "riscv")

#: (write-side, read-side) fence pairs per architecture, by variant
#: suffix.  ``None`` entries place no fence on that side.
FENCE_VARIANTS: dict[str, dict[str, tuple[str | None, str | None]]] = {
    "x86": {
        "": (None, None),
        "+mfences": (Label.MFENCE, Label.MFENCE),
    },
    "power": {
        "": (None, None),
        "+syncs": (Label.SYNC, Label.SYNC),
        "+lwsyncs": (Label.LWSYNC, Label.LWSYNC),
    },
    "armv8": {
        "": (None, None),
        "+dmbs": (Label.DMB, Label.DMB),
        "+dmb.st+dmb.ld": (Label.DMB_ST, Label.DMB_LD),
    },
    "riscv": {
        "": (None, None),
        "+fences": (Label.FENCE_RW_RW, Label.FENCE_RW_RW),
        "+fence.tsos": (Label.FENCE_TSO, Label.FENCE_TSO),
        "+fence.rw.w+fence.r.rw": (Label.FENCE_RW_W, Label.FENCE_R_RW),
    },
}

#: The strongest full-fence variant per arch: its SB/MP/LB/IRIW shapes
#: are canonically forbidden and get ``~exists`` conditions.
FULL_FENCE = {
    "x86": "+mfences",
    "power": "+syncs",
    "armv8": "+dmbs",
    "riscv": "+fences",
}

#: Architectures whose base model already forbids the plain shape.
_TSO_LIKE = {"x86"}

#: Fence used inside the directed TxnOrder witness.
TXN_FENCE = {
    "x86": Label.MFENCE,
    "power": Label.SYNC,
    "armv8": Label.DMB,
    "riscv": Label.FENCE_RW_RW,
}

_REL = frozenset({Label.REL})
_ACQ = frozenset({Label.ACQ})


def _seq(*instrs):
    return tuple(i for i in instrs if i is not None)


def _f(kind: str | None) -> Fence | None:
    return Fence(kind) if kind is not None else None


def _test(name, arch, threads, post, quantifier="exists") -> LitmusTest:
    return LitmusTest(
        name=name,
        arch=arch,
        program=Program(tuple(threads)),
        postcondition=tuple(post),
        quantifier=quantifier,
    )


# ----------------------------------------------------------------------
# Classic shapes, fence-parametric
# ----------------------------------------------------------------------


def _shapes(arch: str) -> list[LitmusTest]:
    out = []
    full = FULL_FENCE[arch]
    for suffix, (wf, rf) in FENCE_VARIANTS[arch].items():
        fenced = suffix == full
        # SB: both reads seeing the initial value.
        out.append(
            _test(
                f"sb{suffix}",
                arch,
                (
                    _seq(Store("x", 1), _f(wf), Load("r0", "y")),
                    _seq(Store("y", 1), _f(wf), Load("r0", "x")),
                ),
                (RegEq(0, "r0", 0), RegEq(1, "r0", 0)),
                "~exists" if fenced else "exists",
            )
        )
        # MP: stale data after seeing the flag.
        out.append(
            _test(
                f"mp{suffix}",
                arch,
                (
                    _seq(Store("x", 1), _f(wf), Store("y", 1)),
                    _seq(Load("r0", "y"), _f(rf), Load("r1", "x")),
                ),
                (RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
                "~exists" if fenced or arch in _TSO_LIKE else "exists",
            )
        )
        # LB: both loads observing the other thread's po-later store.
        out.append(
            _test(
                f"lb{suffix}",
                arch,
                (
                    _seq(Load("r0", "y"), _f(rf), Store("x", 1)),
                    _seq(Load("r0", "x"), _f(rf), Store("y", 1)),
                ),
                (RegEq(0, "r0", 1), RegEq(1, "r0", 1)),
                "~exists" if fenced or arch in _TSO_LIKE else "exists",
            )
        )
        # S: write-to-read-from edge against a coherence edge.
        out.append(
            _test(
                f"s{suffix}",
                arch,
                (
                    _seq(Store("x", 2), _f(wf), Store("y", 1)),
                    _seq(Load("r0", "y"), _f(rf), Store("x", 1)),
                ),
                (RegEq(1, "r0", 1), CoSeq("x", (1, 2))),
                "~exists" if fenced else "exists",
            )
        )
        # R: two writers racing against a read.
        out.append(
            _test(
                f"r{suffix}",
                arch,
                (
                    _seq(Store("x", 1), _f(wf), Store("y", 1)),
                    _seq(Store("y", 2), _f(wf), Load("r0", "x")),
                ),
                (CoSeq("y", (1, 2)), RegEq(1, "r0", 0)),
                "~exists" if fenced else "exists",
            )
        )
        # 2+2W: both coherence orders against po.
        out.append(
            _test(
                f"2+2w{suffix}",
                arch,
                (
                    _seq(Store("x", 2), _f(wf), Store("y", 1)),
                    _seq(Store("y", 2), _f(wf), Store("x", 1)),
                ),
                (CoSeq("x", (1, 2)), CoSeq("y", (1, 2))),
                "~exists" if fenced else "exists",
            )
        )
        # IRIW: independent reads of independent writes.
        out.append(
            _test(
                f"iriw{suffix}",
                arch,
                (
                    (Store("x", 1),),
                    (Store("y", 1),),
                    _seq(Load("r0", "x"), _f(rf), Load("r1", "y")),
                    _seq(Load("r0", "y"), _f(rf), Load("r1", "x")),
                ),
                (
                    RegEq(2, "r0", 1),
                    RegEq(2, "r1", 0),
                    RegEq(3, "r0", 1),
                    RegEq(3, "r1", 0),
                ),
                "~exists" if fenced or arch in _TSO_LIKE else "exists",
            )
        )
    # Coherence shapes: forbidden under every model (uniproc).
    out.append(
        _test(
            "corr",
            arch,
            ((Store("x", 1),), (Load("r0", "x"), Load("r1", "x"))),
            (RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
            "~exists",
        )
    )
    out.append(
        _test(
            "coww",
            arch,
            ((Store("x", 1), Store("x", 2)),),
            (CoSeq("x", (2, 1)),),
            "~exists",
        )
    )
    return out


# ----------------------------------------------------------------------
# Dependency variants (arches with dependency vocabularies)
# ----------------------------------------------------------------------


def _dep_shapes(arch: str) -> list[LitmusTest]:
    if arch == "x86":
        return []
    out = [
        _test(
            "mp+addr",
            arch,
            (
                (Store("x", 1), Fence(TXN_FENCE[arch]), Store("y", 1)),
                (Load("r0", "y"), Load("r1", "x", addr_dep=("r0",))),
            ),
            (RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
            "~exists",
        ),
        _test(
            "mp+ctrl",
            arch,
            (
                (Store("x", 1), Fence(TXN_FENCE[arch]), Store("y", 1)),
                (Load("r0", "y"), CtrlBranch(("r0",)), Load("r1", "x")),
            ),
            (RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
        ),
        _test(
            "lb+datas",
            arch,
            (
                (Load("r0", "y"), Store("x", 1, data_dep=("r0",))),
                (Load("r0", "x"), Store("y", 1, data_dep=("r0",))),
            ),
            (RegEq(0, "r0", 1), RegEq(1, "r0", 1)),
            "~exists",
        ),
        _test(
            "wrc+data+addr",
            arch,
            (
                (Store("x", 1),),
                (Load("r0", "x"), Store("y", 1, data_dep=("r0",))),
                (Load("r0", "y"), Load("r1", "x", addr_dep=("r0",))),
            ),
            (RegEq(1, "r0", 1), RegEq(2, "r0", 1), RegEq(2, "r1", 0)),
        ),
    ]
    if arch in ("armv8", "riscv"):
        out.append(
            _test(
                "mp+rel+acq",
                arch,
                (
                    (Store("x", 1), Store("y", 1, labels=_REL)),
                    (Load("r0", "y", labels=_ACQ), Load("r1", "x")),
                ),
                (RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
                "~exists",
            )
        )
        out.append(
            _test(
                "lb+rel+acq",
                arch,
                (
                    (Load("r0", "y", labels=_ACQ), Store("x", 1, labels=_REL)),
                    (Load("r0", "x", labels=_ACQ), Store("y", 1, labels=_REL)),
                ),
                (RegEq(0, "r0", 1), RegEq(1, "r0", 1)),
                "~exists",
            )
        )
        out.append(
            _test(
                "sb+rmw",
                arch,
                (
                    (
                        Load("r0", "x", excl=True),
                        Store("x", 1, excl=True),
                        Load("r1", "y"),
                    ),
                    (
                        Load("r0", "y", excl=True),
                        Store("y", 1, excl=True),
                        Load("r1", "x"),
                    ),
                ),
                (
                    RegEq(0, "r0", 0),
                    RegEq(0, "r1", 0),
                    RegEq(1, "r0", 0),
                    RegEq(1, "r1", 0),
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# Transactional variants
# ----------------------------------------------------------------------


def _txn_shapes(arch: str) -> list[LitmusTest]:
    out = [
        # SB with thread 0 transactional: still observable (a single
        # transaction serialises against nothing here).
        _test(
            "sb+txn0",
            arch,
            (
                (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
                (Store("y", 1), Load("r0", "x")),
            ),
            (RegEq(0, "r0", 0), RegEq(1, "r0", 0), TxnOk(0, 0, True)),
        ),
        # SB with both threads transactional: committed transactions
        # are serialisable, so the SB outcome is forbidden (Fig. 2).
        _test(
            "sb+txns",
            arch,
            (
                (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
                (TxBegin(), Store("y", 1), Load("r0", "x"), TxEnd()),
            ),
            (
                RegEq(0, "r0", 0),
                RegEq(1, "r0", 0),
                TxnOk(0, 0, True),
                TxnOk(1, 0, True),
            ),
            "~exists",
        ),
        # MP with a transactional writer against a plain reader.
        _test(
            "mp+txn0",
            arch,
            (
                (TxBegin(), Store("x", 1), Store("y", 1), TxEnd()),
                (Load("r0", "y"), Load("r1", "x")),
            ),
            (RegEq(1, "r0", 1), RegEq(1, "r1", 0), TxnOk(0, 0, True)),
        ),
        # LB with both threads transactional: forbidden.
        _test(
            "lb+txns",
            arch,
            (
                (TxBegin(), Load("r0", "y"), Store("x", 1), TxEnd()),
                (TxBegin(), Load("r0", "x"), Store("y", 1), TxEnd()),
            ),
            (
                RegEq(0, "r0", 1),
                RegEq(1, "r0", 1),
                TxnOk(0, 0, True),
                TxnOk(1, 0, True),
            ),
            "~exists",
        ),
        # The TxnOrder-only witness (the §6.2 RTL-bug family): hb and
        # stronglift(com) are both acyclic, so only TxnOrder forbids
        # it.  Power's TM model has no TxnOrder axiom (non-MCA base),
        # so there the same shape is genuinely observable.
        _test(
            "txnorder",
            arch,
            (
                (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
                (Store("y", 1), Fence(TXN_FENCE[arch]), Load("r0", "x")),
            ),
            (TxnOk(0, 0, True), RegEq(0, "r0", 0), RegEq(1, "r0", 0)),
            "exists" if arch == "power" else "~exists",
        ),
        # An unconditional abort: the write can never be observed.
        _test(
            "txn+abort",
            arch,
            (
                (TxBegin(), Store("x", 1), TxAbort(), TxEnd()),
                (Load("r0", "x"),),
            ),
            (RegEq(1, "r0", 1),),
            "~exists",
        ),
        # The lock-elision self-abort idiom: committing while having
        # read a non-zero "lock" is contradictory.
        _test(
            "txn+condabort",
            arch,
            (
                (
                    TxBegin(),
                    Load("r0", "y"),
                    TxAbort("r0"),
                    Store("x", 1),
                    TxEnd(),
                ),
                (Store("y", 1),),
            ),
            (RegEq(0, "r0", 1), TxnOk(0, 0, True)),
            "~exists",
        ),
    ]
    return out


# ----------------------------------------------------------------------
# forall conditions
# ----------------------------------------------------------------------


def _forall_shapes(arch: str) -> list[LitmusTest]:
    return [
        # Non-transactional stores always commit: holds everywhere.
        _test(
            "forall+stores",
            arch,
            (
                (Store("x", 1), Store("y", 1)),
                (Load("r0", "x"),),
            ),
            (MemEq("x", 1), MemEq("y", 1)),
            "forall",
        ),
        # SB's registers are not pinned: violated everywhere.
        _test(
            "forall+sb",
            arch,
            (
                (Store("x", 1), Load("r0", "y")),
                (Store("y", 1), Load("r0", "x")),
            ),
            (RegEq(0, "r0", 0), RegEq(1, "r0", 0)),
            "forall",
        ),
    ]


# ----------------------------------------------------------------------
# Catalog imports
# ----------------------------------------------------------------------


def _catalog_shapes(arch: str) -> list[LitmusTest]:
    from repro.catalog import CATALOG
    from repro.conformance.golden import litmus_entries
    from repro.litmus.from_execution import to_litmus

    return [
        to_litmus(CATALOG[name].execution, f"cat-{name}", arch)
        for name in litmus_entries(arch)
    ]


def build_corpus(arch: str) -> list[LitmusTest]:
    """Every corpus test of one dialect, in deterministic order."""
    tests = (
        _shapes(arch)
        + _dep_shapes(arch)
        + _txn_shapes(arch)
        + _forall_shapes(arch)
        + _catalog_shapes(arch)
    )
    names = [t.name for t in tests]
    assert len(names) == len(set(names)), "duplicate corpus test names"
    return tests


def corpus_paths() -> dict[str, LitmusTest]:
    """``{"<arch>/<name>.litmus": test}`` over the whole corpus."""
    return {
        f"{arch}/{test.name}.litmus": test
        for arch in ARCHES
        for test in build_corpus(arch)
    }
