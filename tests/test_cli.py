"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.litmus.from_execution import to_litmus
from repro.litmus.parse import dumps
from repro.catalog import CATALOG


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCli:
    def test_catalog(self, capsys):
        code, out = run(capsys, "catalog")
        assert code == 0
        assert "fig2" in out and "armv8_lock_elision" in out

    def test_check(self, capsys):
        code, out = run(capsys, "check", "fig2")
        assert code == 0
        assert "INCONSISTENT" in out
        assert "StrongIsol" in out

    def test_check_single_model(self, capsys):
        code, out = run(capsys, "check", "fig2", "--model", "sc")
        assert ": consistent" in out

    def test_litmus(self, capsys):
        code, out = run(capsys, "litmus", "fig2", "--arch", "x86")
        assert "XBEGIN" in out

    def test_run_model(self, capsys, tmp_path):
        test = to_litmus(CATALOG["sb"].execution, "sb", "x86")
        path = tmp_path / "sb.litmus"
        path.write_text(dumps(test))
        code, out = run(capsys, "run", str(path))
        assert code == 0
        assert "observable" in out

    def test_run_hw(self, capsys, tmp_path):
        test = to_litmus(CATALOG["sb_mfence"].execution, "sbf", "x86")
        path = tmp_path / "sbf.litmus"
        path.write_text(dumps(test))
        code, out = run(capsys, "run", str(path), "--hw")
        assert "not seen" in out

    def test_synth(self, capsys):
        code, out = run(capsys, "synth", "--arch", "x86", "--events", "2",
                        "--show", "1")
        assert code == 0
        assert "forbid" in out

    def test_table3(self, capsys):
        code, out = run(capsys, "table3")
        assert "TxnReadsLockFree" in out

    def test_ablation(self, capsys):
        code, out = run(capsys, "ablation", "--events", "2")
        assert "atomicity-only" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestNewCommands:
    def test_cat_list(self, capsys):
        code, out = run(capsys, "cat", "--list")
        assert code == 0
        assert "x86tm.cat" in out and "stdlib.cat" in out

    def test_cat_source(self, capsys):
        code, out = run(capsys, "cat", "--source", "sc.cat")
        assert code == 0
        assert "acyclic hb as Order" in out

    def test_cat_evaluate_inconsistent(self, capsys):
        code, out = run(capsys, "cat", "x86", "fig2")
        assert code == 1
        assert "StrongIsol: VIOLATED" in out

    def test_cat_evaluate_consistent(self, capsys):
        code, out = run(capsys, "cat", "cpp", "fig2")
        assert code == 0
        assert "consistent" in out

    def test_diy(self, capsys):
        code, out = run(capsys, "diy", "--model", "x86", "--length", "3")
        assert code == 0
        assert "FORBID" in out and "allow" in out

    def test_diy_forbidden_only(self, capsys):
        code, out = run(
            capsys, "diy", "--model", "sc", "--length", "2",
            "--forbidden-only",
        )
        assert code == 0
        assert "allow" not in out.splitlines()[0]

    def test_lemmas(self, capsys):
        code, out = run(capsys, "lemmas", "--events", "2", "--limit", "300")
        assert code == 0
        assert "Lemma C.1" in out and "holds" in out

    def test_elision_unsound_exit_code(self, capsys):
        code, out = run(capsys, "elision", "--arch", "riscv", "--show")
        assert code == 1
        assert "UNSOUND" in out
        assert "abstract" in out  # --show printed the pair

    def test_elision_fixed_sound(self, capsys):
        code, out = run(
            capsys, "elision", "--arch", "riscv", "--fixed",
            "--budget", "120",
        )
        assert code == 0
        assert "no counterexample" in out

    def test_elision_write_lock(self, capsys):
        code, out = run(
            capsys, "elision", "--arch", "armv8", "--write-lock",
            "--budget", "180",
        )
        assert code == 0

    def test_synth_riscv(self, capsys):
        code, out = run(
            capsys, "synth", "--arch", "riscv", "--events", "2",
        )
        assert code == 0
        assert "forbid" in out.lower()


class TestExitCodes:
    """campaign/fuzz must exit nonzero on disagreements (1) and on
    checker errors (2) — CI gates on these."""

    def test_campaign_clean_exits_zero(self, capsys):
        code, out = run(
            capsys, "campaign", "--arch", "x86", "--models", "x86,sc",
            "--length", "2", "--no-cache",
        )
        assert code == 0

    def test_campaign_disagreement_exits_one(self, capsys):
        # A weakened armv8 flips catalog verdicts against the stock
        # expectations, which the diff report must surface as exit 1.
        code, out = run(
            capsys, "campaign", "--suite", "catalog",
            "--models", "mut:armv8:TxnOrder", "--no-cache",
        )
        assert code == 1
        assert "disagreements with expected verdicts" in out

    def test_campaign_checker_error_exits_two(self, capsys):
        # Oracles judge litmus tests, not bare catalog executions: every
        # cell errors, and the run must say so and exit 2.
        code, out = run(
            capsys, "campaign", "--suite", "catalog",
            "--models", "hw:x86", "--no-cache",
        )
        assert code == 2
        assert "checker errors" in out

    def test_campaign_unknown_model_exits_two(self, capsys):
        code, _ = run(
            capsys, "campaign", "--arch", "x86",
            "--models", "nosuchmodel", "--no-cache",
        )
        assert code == 2

    def test_fuzz_clean_exits_zero(self, capsys):
        code, out = run(
            capsys, "fuzz", "--arch", "x86", "--seed", "0",
            "--budget", "smoke", "--no-cache",
        )
        assert code == 0
        assert "CLEAN" in out

    def test_fuzz_undetected_mutant_exits_one(self, capsys):
        # Dropping x86's Order axiom is extensionally masked by TxnOrder
        # (stronglift(hb) ⊇ hb), so the mutant can never be detected:
        # the run must report the failure and exit 1.
        code, out = run(
            capsys, "fuzz", "--arch", "x86", "--seed", "0",
            "--budget", "smoke", "--mutants", "Order", "--no-cache",
        )
        assert code == 1
        assert "NOT DETECTED" in out

    def test_fuzz_checker_error_exits_two(self, capsys, monkeypatch):
        from repro.sim import oracle

        def boom(self, test):
            raise RuntimeError("injected machine fault")

        monkeypatch.setattr(oracle.MachineHardware, "observable", boom)
        code, out = run(
            capsys, "fuzz", "--arch", "armv8", "--seed", "0",
            "--budget", "smoke", "--no-brute", "--no-cache",
        )
        assert code == 2
        assert "injected machine fault" in out

    def test_fuzz_unknown_mutant_axiom_exits_two(self, capsys):
        code, _ = run(
            capsys, "fuzz", "--arch", "x86", "--seed", "0",
            "--budget", "smoke", "--mutants", "NoSuchAxiom", "--no-cache",
        )
        assert code == 2

    def test_fuzz_writes_reports(self, capsys, tmp_path):
        jsonl = tmp_path / "fuzz.jsonl"
        md = tmp_path / "fuzz.md"
        code, out = run(
            capsys, "fuzz", "--arch", "cpp", "--seed", "0",
            "--budget", "smoke", "--no-cache",
            "--jsonl", str(jsonl), "--report", str(md),
        )
        assert code == 0
        assert jsonl.is_file() and md.is_file()
        import json

        header = json.loads(jsonl.read_text().splitlines()[0])
        assert header["record"] == "header" and header["ok"] is True


class TestExplain:
    def test_explain_catalog_entry(self, capsys):
        code, out = run(capsys, "explain", "--test", "fig2",
                        "--model", "x86,x86tm")
        assert code == 0
        assert "compiled IR DAG" in out
        assert "cross-model" in out
        assert "StrongIsol" in out and "VIOLATED" in out
        # Native x86 and x86tm.cat share the whole DAG: 2.00x.
        assert "sharing=2.00x" in out

    def test_explain_litmus_file(self, capsys, tmp_path):
        test = to_litmus(CATALOG["sb"].execution, "sb", "x86")
        path = tmp_path / "sb.litmus"
        path.write_text(dumps(test))
        code, out = run(capsys, "explain", "--test", str(path),
                        "--model", "x86,sc")
        assert code == 0
        assert "candidate executions" in out
        assert "consistent=" in out

    def test_explain_candidate_dump(self, capsys, tmp_path):
        test = to_litmus(CATALOG["sb"].execution, "sb", "x86")
        path = tmp_path / "sb.litmus"
        path.write_text(dumps(test))
        code, out = run(capsys, "explain", "--test", str(path),
                        "--model", "x86", "--candidate", "0")
        assert code == 0
        assert "Coherence" in out and "cost=" in out

    def test_explain_bad_model_exits_two(self, capsys):
        code, _ = run(capsys, "explain", "--test", "fig2",
                      "--model", "nosuchmodel")
        assert code == 2

    def test_explain_oracle_exits_two(self, capsys):
        code, _ = run(capsys, "explain", "--test", "fig2",
                      "--model", "hw:x86")
        assert code == 2


class TestRunFrontend:
    """`repro run` over the herd frontend: auto-detection, quantifier
    output, and source-located exit-2 diagnostics."""

    HERD_SB = (
        "X86 SB\n"
        "{ x=0; y=0; }\n"
        " P0          | P1          ;\n"
        " MOV [x],$1  | MOV [y],$1  ;\n"
        " MOV EAX,[y] | MOV EBX,[x] ;\n"
        "exists (0:EAX=0 /\\ 1:EBX=0)\n"
    )

    def _write(self, tmp_path, text, name="t.litmus"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_run_herd_file(self, capsys, tmp_path):
        path = self._write(tmp_path, self.HERD_SB)
        code, out = run(capsys, "run", path)
        assert code == 0
        assert "observable" in out

    def test_run_tilde_exists_violation_exits_one(self, capsys, tmp_path):
        # Unfenced SB is observable on x86, so claiming ~exists is a
        # conformance failure: exit 1, mirroring `repro campaign`.
        text = self.HERD_SB.replace("exists", "~exists").replace(
            "SB", "SB-claimed-forbidden"
        )
        path = self._write(tmp_path, text)
        code, out = run(capsys, "run", path)
        assert code == 1
        assert "VIOLATES ~exists" in out

    def test_run_tilde_exists_honoured_exits_zero(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parent / "corpus"
        code, out = run(capsys, "run", str(corpus / "x86" / "sb+mfences.litmus"))
        assert code == 0
        assert "as expected" in out

    def test_run_forall(self, capsys, tmp_path):
        text = self.HERD_SB.replace("exists (0:EAX=0 /\\ 1:EBX=0)",
                                    "forall (x=1 /\\ y=1)")
        path = self._write(tmp_path, text)
        code, out = run(capsys, "run", path)
        assert code == 0
        assert "forall holds" in out

    def test_run_forall_hw(self, capsys, tmp_path):
        text = self.HERD_SB.replace("exists (0:EAX=0 /\\ 1:EBX=0)",
                                    "forall (x=1 /\\ y=1)")
        path = self._write(tmp_path, text)
        code, out = run(capsys, "run", path, "--hw")
        assert code == 0
        assert "forall holds" in out

    def test_run_malformed_exits_two_with_location(self, capsys, tmp_path):
        bad = self.HERD_SB.replace("MOV EAX,[y]", "FNORD EAX")
        path = self._write(tmp_path, bad, "bad.litmus")
        code = main(["run", path])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        assert "bad.litmus:5" in err
        assert "FNORD" in err

    def test_run_malformed_neutral_exits_two(self, capsys, tmp_path):
        path = self._write(
            tmp_path, 'litmus "t" x86\nthread\n  frobnicate x\n', "n.litmus"
        )
        code = main(["run", path])
        err = capsys.readouterr().err
        assert code == 2
        assert "line 3" in err and "n.litmus" in err

    def test_run_missing_file_exits_two(self, capsys, tmp_path):
        code = main(["run", str(tmp_path / "nope.litmus")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_campaign_over_corpus_files(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parent / "corpus" / "x86"
        files = sorted(str(p) for p in corpus.glob("sb*.litmus"))
        code, out = run(capsys, "campaign", *files,
                        "--models", "x86,sc", "--no-cache")
        assert code == 0
        assert "sb+mfences" in out

    def test_campaign_malformed_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text(self.HERD_SB.replace("MOV EAX,[y]", "FNORD"))
        code = main(["campaign", str(bad), "--models", "x86", "--no-cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "bad.litmus:5" in err

    def test_campaign_missing_file_exits_two(self, capsys, tmp_path):
        code = main(["campaign", str(tmp_path / "nope.litmus"),
                     "--models", "x86", "--no-cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_run_neutral_with_leading_comment(self, capsys, tmp_path):
        path = self._write(
            tmp_path,
            '# a header comment\nlitmus "t" x86\nthread\n  store x 1\n'
            "exists x=1\n",
        )
        code, out = run(capsys, "run", path)
        assert code == 0
        assert "observable" in out
