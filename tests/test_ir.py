"""The unified relational IR: interning, evaluation, and the differential
suite asserting the IR path matches the legacy evaluators everywhere.

Three layers of assurance:

* unit tests for the hash-consing invariants (AC normalisation, closure
  towers, lifting recognition, txn-freeness, digest stability);
* evaluator correctness: every registered shortcut equals its structural
  evaluation; fixpoint nodes match the tree-walk ``let rec``;
* the differential suite: for every catalog execution and every model,
  the IR-compiled native model, the IR-compiled ``.cat`` model, and the
  legacy tree-walk ``.cat`` evaluator agree axiom for axiom (both
  ``tm`` sweeps), plus a seeded fuzz smoke run comes back clean.
"""

import json
from pathlib import Path

import pytest

from repro.catalog import CATALOG
from repro.cat.compile import compile_model
from repro.cat.library import library_files, library_source
from repro.cat.model import CAT_MODEL_FILES, CatModel, load_cat_model
from repro.cat.parser import parse
from repro.core.analysis import analyze
from repro.core.builder import ExecutionBuilder
from repro.ir import ir_definition, prelude as P
from repro.ir import nodes as N
from repro.ir.eval import _SHORTCUTS, evaluate
from repro.ir.model import IRAxiom
from repro.models.base import canonical_cycle, witness_for
from repro.models.registry import get_model, model_names


def _loader(name):
    from repro.cat.model import _library_loader

    return _library_loader(name)


# ----------------------------------------------------------------------
# Interning and normalisation
# ----------------------------------------------------------------------


class TestInterning:
    def test_structural_identity(self):
        assert (P.po | P.rf) is (P.rf | P.po)
        assert (P.po & P.loc) is P.po_loc

    def test_union_flattens_and_dedupes(self):
        assert (P.po | (P.rf | P.co)) is ((P.po | P.rf) | P.co)
        assert (P.po | P.po) is P.po
        assert N.union(P.po) is P.po
        assert N.union() is N.empty()

    def test_identity_elements(self):
        assert (P.po | N.empty()) is P.po
        assert N.inter(P.po, N.empty()) is N.empty()
        assert N.diff(P.po, N.empty()) is P.po
        assert N.diff(P.po, P.po) is N.empty()
        assert N.comp(P.po, N.empty()) is N.empty()
        assert N.comp(P.po, P.id_) is P.po

    def test_closure_towers(self):
        assert N.opt(N.opt(P.po)) is N.opt(P.po)
        assert N.star(N.plus(P.po)) is N.star(P.po)
        assert N.plus(N.opt(P.po)) is N.star(P.po)
        assert N.opt(N.star(P.po)) is N.star(P.po)
        assert N.inverse(N.inverse(P.po)) is P.po

    def test_comp_flattens(self):
        a, b, c = P.po, P.rf, P.co
        assert N.comp(N.comp(a, b), c) is N.comp(a, N.comp(b, c))
        assert N.comp(a, b, c).args == (a, b, c)

    def test_lifting_recognised(self):
        body = P.po | P.com
        weak = N.comp(P.stxn, N.diff(body, P.stxn), P.stxn)
        assert weak is N.weaklift(body)
        strong = N.comp(
            N.opt(P.stxn), N.diff(body, P.stxn), N.opt(P.stxn)
        )
        assert strong is N.stronglift(body)

    def test_txn_freeness(self):
        assert P.coherence.txn_free
        assert not P.stxn.txn_free
        assert not N.stronglift(P.com).txn_free
        assert not (P.po | P.tfence).txn_free
        assert not N.bset("TXN").txn_free

    def test_digest_is_order_independent(self):
        assert (P.po | P.rf).digest == (P.rf | P.po).digest
        assert (P.po | P.rf).digest != (P.po & P.rf).digest

    def test_set_normalisation(self):
        assert N.sinter(P.R, P.W, P.R) is N.sinter(P.W, P.R)
        assert N.sunion(P.R, N.sempty()) is P.R
        assert N.lift(N.sempty()) is N.empty()
        assert N.cross(P.R, N.sempty()) is N.empty()

    def test_fix_binds_its_variables(self):
        bodies = (N.var(0) | P.po,)
        node = N.fix(bodies, 0)
        assert not node.free_vars
        assert N.var(0).free_vars

    def test_axiom_rejects_open_nodes(self):
        with pytest.raises(ValueError):
            IRAxiom("bad", "acyclic", "bad", N.var(0))
        with pytest.raises(ValueError):
            IRAxiom("bad", "bogus", "bad", P.po)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


def _sample_executions():
    out = [CATALOG[name].execution for name in ("sb", "mp", "fig2", "iriw")]
    b = ExecutionBuilder()
    t0 = b.thread()
    r = t0.read("x")
    w = t0.write("y")
    b.data(r, w)
    out.append(b.build())
    return out


class TestEvaluation:
    def test_shortcuts_match_structural_evaluation(self):
        """Every registered shortcut is extensionally the node it tags."""
        for x in _sample_executions():
            a = analyze(x)
            for node_id, getter in list(_SHORTCUTS.items()):
                node = next(
                    n
                    for n in _all_interned()
                    if n.id == node_id
                )
                structural = _compute_without_shortcuts(node, a)
                assert getter(a) == structural, node

    def test_fixpoint_matches_tree_walk(self):
        from repro.cat.evaluator import evaluate as tree_evaluate
        from repro.models.power import power_ppo_node

        model = parse(library_source("powerppo.cat"))
        for x in _sample_executions():
            result = tree_evaluate(model, x, _loader)
            assert result.bindings["ppo"] == evaluate(
                power_ppo_node(), x
            )

    def test_baseline_sharing(self):
        x = CATALOG["fig2"].execution
        a = analyze(x)
        node = P.coherence
        value = evaluate(node, a)
        # txn-free values computed on the baseline land on the parent.
        assert evaluate(node, a.baseline) is value

    def test_txn_dependent_on_baseline_is_erased(self):
        x = CATALOG["fig2"].execution
        a = analyze(x)
        assert evaluate(P.stxn, a.baseline).is_empty()
        assert not evaluate(P.stxn, a).is_empty()


def _all_interned():
    from repro.ir.nodes import _INTERN

    return _INTERN.values()


def _compute_without_shortcuts(node, a):
    """Evaluate ``node`` structurally, ignoring the shortcut table.

    Uses a *fresh* execution (fresh analysis memo) so values cached via
    shortcuts earlier cannot leak into the structural evaluation.
    """
    saved = dict(_SHORTCUTS)
    _SHORTCUTS.clear()
    try:
        fresh = analyze(a.x.with_txns(a.x.txns))
        return evaluate(node, fresh)
    finally:
        _SHORTCUTS.update(saved)


# ----------------------------------------------------------------------
# The .cat compiler
# ----------------------------------------------------------------------


class TestCompiler:
    def test_whole_library_compiles(self):
        for name in library_files():
            compiled = compile_model(parse(library_source(name)), _loader)
            assert compiled is not None

    @pytest.mark.parametrize("name", sorted(CAT_MODEL_FILES))
    def test_compiled_cat_shares_nodes_with_native(self, name):
        """Each library model's axiom operands are the *same interned
        nodes* as the native model's (except dongol/power where native
        and .cat are textually identical anyway)."""
        native = get_model(name)
        definition = ir_definition(native)
        assert definition is not None
        cat = load_cat_model(name)
        assert cat.compiled is not None
        cat_nodes = {
            c.name: c.node for c in cat.compiled.axiom_checks
        }
        native_nodes = {ax.name: ax.node for ax in definition.axioms}
        assert set(cat_nodes) == set(native_nodes)
        for axiom_name, node in native_nodes.items():
            assert cat_nodes[axiom_name] is node, (
                f"{name}.{axiom_name} not shared"
            )

    def test_letrec_lowers_to_fix(self):
        src = "let rec a = a | po\nacyclic a as A\n"
        compiled = compile_model(parse(src), None)
        assert compiled.axiom_checks[0].node.kind == "fix"

    def test_single_letrec_matches_tree_walk(self):
        from repro.cat.evaluator import evaluate as tree_evaluate

        src = "let rec a = (a; a) | po | rf\nacyclic a as A\n"
        compiled = compile_model(parse(src), None)
        model = parse(src)
        for x in _sample_executions():
            tree = tree_evaluate(model, x, None)
            assert evaluate(compiled.axiom_checks[0].node, x) == (
                tree.bindings["a"]
            )


# ----------------------------------------------------------------------
# The differential suite
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(CAT_MODEL_FILES))
@pytest.mark.parametrize("tm", [True, False])
def test_ir_matches_legacy_tree_walk(name, tm):
    """IR-compiled evaluation == the legacy tree-walk evaluator ==
    the native model, axiom for axiom, over the whole catalog."""
    native = get_model(name, tm=tm)
    cat = load_cat_model(name, tm=tm)
    assert cat.compiled is not None
    for entry_name, entry in sorted(CATALOG.items()):
        x = entry.execution
        ir_verdict = cat.check(x)
        legacy = cat.evaluate(x)
        assert ir_verdict.consistent == legacy.consistent, entry_name
        legacy_by_name = {c.name: c for c in legacy.checks}
        for result in ir_verdict.results:
            legacy_check = legacy_by_name[result.name]
            assert result.holds == legacy_check.holds, (
                f"{entry_name}: {name}.{result.name}"
            )
            assert result.witness == legacy_check.witness, (
                f"{entry_name}: {name}.{result.name} witness"
            )
        # And the native model agrees wholesale.
        assert native.consistent(x) == ir_verdict.consistent, entry_name
        assert native.consistent(x) == native.check(x).consistent


def test_golden_verdicts_unchanged_through_ir():
    """The golden matrix (pre-refactor verdicts) through the IR path."""
    golden = json.loads(
        (Path(__file__).parent / "golden_verdicts.json").read_text()
    )
    for entry_name, models in golden.items():
        if entry_name.startswith("litmus:"):
            # Litmus-observability rows (frontend↔catalog agreement)
            # are pinned by tests/test_corpus.py, not the IR sweep.
            continue
        x = CATALOG[entry_name].execution
        for model_name, expected in models.items():
            assert get_model(model_name).consistent(x) == expected, (
                entry_name,
                model_name,
            )


def test_seeded_fuzz_smoke_clean(test_seed):
    """A seeded differential smoke run across all checker families."""
    from repro.conformance import run_fuzz

    report = run_fuzz(
        "x86", seed=test_seed, budget="smoke", shrink=False, cache=None
    )
    assert not report.disagreements
    assert not report.errors


# ----------------------------------------------------------------------
# Planner, tokens, witnesses
# ----------------------------------------------------------------------


class TestPlannerAndTokens:
    def test_plan_is_cost_sorted_and_complete(self):
        for name in model_names():
            definition = ir_definition(get_model(name))
            assert definition is not None
            costs = [ax.node.cost for ax in definition.plan]
            assert costs == sorted(costs)
            assert {ax.name for ax in definition.plan} == {
                ax.name for ax in definition.axioms
            }

    def test_definition_token_stability_and_distinctness(self):
        tokens = {}
        for name in model_names():
            token = get_model(name).definition_token()
            assert token == get_model(name).definition_token()
            tokens[name] = token
        assert len(set(tokens.values())) == len(tokens)
        assert get_model("x86", tm=False).definition_token() != tokens["x86"]

    def test_cat_token_ignores_formatting_but_not_semantics(self):
        base = CatModel("let hb = po | rf\nacyclic hb as Order\n", name="t")
        spaced = CatModel(
            '"retitled"\n(* comment *)\nlet  hb  =  rf | po\n'
            "acyclic hb as Order\n",
            name="t",
        )
        changed = CatModel(
            "let hb = po | rf | co\nacyclic hb as Order\n", name="t"
        )
        assert base.definition_token() == spaced.definition_token()
        assert base.definition_token() != changed.definition_token()

    def test_mutant_tokens_track_stock_digest(self):
        from repro.conformance.mutants import drop_axiom

        mutant = drop_axiom("armv8", "TxnOrder")
        stock = get_model("armv8")
        assert mutant.definition_token() != stock.definition_token()
        assert len(mutant.definition().axioms) == len(
            stock.definition().axioms
        ) - 1
        # Surviving axiom nodes are shared with stock by interning.
        stock_nodes = {ax.name: ax.node for ax in stock.definition().axioms}
        for ax in mutant.definition().axioms:
            assert ax.node is stock_nodes[ax.name]


class TestWitnessDeterminism:
    def test_canonical_cycle_rotation(self):
        assert canonical_cycle([3, 1, 2]) == [1, 2, 3]
        assert canonical_cycle([]) == []
        assert canonical_cycle([0]) == [0]

    def test_witnesses_are_sorted(self):
        from repro.core.relation import Relation

        rel = Relation.from_pairs(4, [(3, 1), (0, 2), (1, 1)])
        assert witness_for("empty", rel) == [[0, 2], [1, 1], [3, 1]]
        assert witness_for("irreflexive", rel) == [1]

    def test_check_witnesses_stable_across_paths(self):
        """Native IR check and compiled cat check produce identical
        witnesses (both canonical)."""
        x = CATALOG["fig2"].execution
        native = get_model("x86").check(x)
        cat = load_cat_model("x86").check(x)
        native_by_name = {r.name: r.witness for r in native.results}
        for r in cat.results:
            assert r.witness == native_by_name[r.name], r.name
