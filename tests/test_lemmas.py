"""Tests for the Appendix C lemma checks.

The full-bound runs live in ``benchmarks/bench_theorems.py``-style
harnesses; here each lemma is verified exhaustively at |E| ≤ 2 and on a
capped prefix of the |E| ≤ 3 space, plus targeted witnesses showing each
premise is *necessary* (dropping it finds the counterexample the proof
would predict).
"""

import pytest

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.core.lifting import weaklift
from repro.core.relation import Relation
from repro.metatheory.lemmas import (
    check_all_lemmas,
    check_cnf_identity,
    check_com_plus_expansion,
    check_lemma_c1,
    check_lemma_c2,
    check_lemma_c3,
    check_lemma_c6,
    check_psc_inclusions,
)
from repro.models.cpp import Cpp, sc_events

_LIMIT = 3000


class TestBoundedChecks:
    def test_all_lemmas_hold_at_two_events(self):
        for report in check_all_lemmas(2):
            assert report.holds, report.summary()
            assert report.executions_checked > 0, report.summary()

    @pytest.mark.parametrize(
        "check",
        [
            check_lemma_c1,
            check_lemma_c2,
            check_lemma_c3,
            check_lemma_c6,
            check_cnf_identity,
            check_com_plus_expansion,
            check_psc_inclusions,
        ],
    )
    def test_lemmas_hold_on_capped_three_event_prefix(self, check):
        report = check(3, limit=_LIMIT)
        assert report.holds, report.summary()

    def test_report_summary_format(self):
        report = check_cnf_identity(2)
        assert "cnf identity" in report.summary()
        assert "holds" in report.summary()


class TestPremiseNecessity:
    def test_c1_needs_no_weak_atomics(self):
        """Two relaxed atomics communicate race-freely without hb: the
        exact counterexample the premise exists to exclude."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r = t0.atomic_read("x")  # rlx
        w = t1.atomic_write("x")  # rlx
        x = b.build()
        model = Cpp()
        assert model.consistent(x) and model.race_free(x)
        sc_sq = Relation.cross(x.n, sc_events(x), sc_events(x))
        hb = model.relations(x)["hb"]
        assert not ((x.com - sc_sq) <= hb)

    def test_c1_conclusion_with_sc_atomics(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t1.atomic_write("x", Label.SC)
        r = t0.atomic_read("x", Label.SC)
        b.rf(w, r)
        x = b.build()
        model = Cpp()
        sc_sq = Relation.cross(x.n, sc_events(x), sc_events(x))
        hb = model.relations(x)["hb"]
        # All communication here is SC-SC, so the inclusion is vacuous.
        assert (x.com - sc_sq).is_empty()
        # ... and the SC pair does synchronise anyway.
        assert (w, r) in hb

    def test_c2_simplification_shape(self):
        """On an execution with only SC atomics, hb collapses to
        (po ∪ rf_SC ∪ tsw)+."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("a")
        w2 = t0.atomic_write("x", Label.SC)
        r = t1.atomic_read("x", Label.SC)
        r2 = t1.read("a")
        b.rf(w2, r)
        b.rf(w1, r2)
        x = b.build()
        model = Cpp()
        sc_sq = Relation.cross(x.n, sc_events(x), sc_events(x))
        simplified = (x.po | (x.rf_rel & sc_sq)).plus()
        assert model.relations(x)["hb"] == simplified

    def test_c6_lifting_through_a_transaction(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t0.atomic_write("x", Label.SC)
        a1 = t1.atomic_read("x", Label.SC)
        a2 = t1.read("y")
        b.rf(w, a1)
        b.txn([a1, a2], atomic=True)
        x = b.build()
        # w happens-before a1 (sw); lifting must extend it to a2.
        hb = Cpp().relations(x)["hb"]
        assert (w, a1) in hb
        lifted = x.stxn.star() @ (hb - x.stxn) @ x.stxn.star()
        assert (w, a2) in lifted
        assert lifted <= (hb - x.stxn)


class TestIdentitiesDirect:
    def test_cnf_identity_on_handmade_execution(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("x")
        r = t1.read("x")
        b.rf(w1, r)
        b.co(w1, w2)
        x = b.build()
        model = Cpp()
        ecom = x.com | (x.co_rel @ x.rf_rel)
        assert model.conflicts(x) == (
            ecom | ecom.inverse()
        ).remove_diagonal()

    def test_com_plus_expansion_on_handmade_execution(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t1.write("x")
        r0 = t0.read("x")
        b.rf(w2, r0)
        b.co(w1, w2)
        x = b.build()
        ecom = x.com | (x.co_rel @ x.rf_rel)
        assert x.com.plus() == ecom | (x.fr @ x.rf_rel)

    def test_fr_rf_needed_in_expansion(self):
        """fr;rf really does escape ecom: a read observing a write that a
        co-earlier-reading read conflicts with."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r = t0.read("x")  # reads init
        w = t1.write("x")
        r2 = t1.read("x")
        b.rf(w, r2)
        x = b.build()
        frrf = x.fr @ x.rf_rel
        ecom = x.com | (x.co_rel @ x.rf_rel)
        assert (r, r2) in frrf
        assert (r, r2) not in ecom
