#!/usr/bin/env python
"""Regenerate the herd-dialect corpus and its golden verdict matrix.

Rewrites every ``tests/corpus/<arch>/<name>.litmus`` file from
:mod:`corpusgen` and recomputes ``tests/corpus_verdicts.json`` — the
full corpus × native-model verdict matrix (quantifier-aware: ``forall``
cells are "condition holds in every final state", others are
"condition observable").

Before writing anything it asserts two contracts the corpus relies on:

* every test round-trips exactly through its dialect renderer/parser;
* every ``~exists`` condition really is forbidden under its own
  architecture's model (``repro campaign`` reads the quantifier as an
  expected verdict, so a wrong claim would fail the CI corpus sweep).

Run after an intentional semantic change to a model or to the corpus
builder::

    PYTHONPATH=src python tests/regen_corpus.py
"""

from __future__ import annotations

import json
import pathlib
import shutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import corpusgen  # noqa: E402
from repro.engine.checkers import resolve_checker  # noqa: E402
from repro.litmus.frontend import dump_dialect, load_dialect  # noqa: E402
from repro.models.registry import MODELS  # noqa: E402


def main() -> int:
    paths = corpusgen.corpus_paths()
    checkers = {name: resolve_checker(name) for name in sorted(MODELS)}

    texts: dict[str, str] = {}
    for relpath, test in paths.items():
        text = dump_dialect(test)
        reparsed = load_dialect(text)
        assert reparsed == test, f"{relpath}: dialect round-trip diverged"
        if test.quantifier == "~exists":
            assert not checkers[test.arch].verdict(test), (
                f"{relpath}: claims ~exists but {test.arch} observes it"
            )
        texts[relpath] = text

    matrix: dict[str, dict[str, bool]] = {}
    for relpath, test in sorted(paths.items()):
        matrix[relpath] = {
            name: bool(checker.verdict(test))
            for name, checker in checkers.items()
        }

    if corpusgen.CORPUS_DIR.exists():
        shutil.rmtree(corpusgen.CORPUS_DIR)
    for relpath, text in texts.items():
        target = corpusgen.CORPUS_DIR / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")

    corpusgen.VERDICTS.write_text(
        json.dumps(matrix, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    cells = sum(len(row) for row in matrix.values())
    print(
        f"wrote {len(texts)} corpus files under {corpusgen.CORPUS_DIR} and "
        f"{corpusgen.VERDICTS} ({len(matrix)} files x {len(checkers)} "
        f"models = {cells} cells)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
