"""Tests for the differential conformance fuzzer.

The two headline properties:

* stock models are *clean*: ``repro fuzz --arch armv8 --seed 0
  --budget small`` (and the smoke tier for every architecture) finds
  zero disagreements and zero checker errors;
* the harness has *teeth*: every injected weakening in
  ``KNOWN_MUTANTS`` is detected and shrunk to a ≤6-event reproducer.
"""

import json
import random

import pytest

from repro.conformance import (
    KNOWN_MUTANTS,
    Disagreement,
    drop_axiom,
    generate_suite,
    run_fuzz,
    witness_execution,
)
from repro.conformance.budget import BUDGETS, get_budget
from repro.conformance.generators import (
    FUZZ_ARCHES,
    estimate_candidates,
    random_litmus,
    vocab_compatible,
)
from repro.conformance.report import to_json_lines, to_markdown
from repro.conformance.seeds import derive_seed, reproducible_seed
from repro.conformance.shrink import shrink_disagreement, shrink_litmus
from repro.engine.checkers import resolve_checker
from repro.litmus.candidates import brute_force_observable, observable
from repro.models.registry import get_model
from repro.synth.minimality import shrink
from repro.synth.vocab import get_vocab

_SEED = reproducible_seed()


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


class TestGenerators:
    def test_suite_is_deterministic_in_seed(self):
        a = generate_suite("armv8", 123, "smoke")
        b = generate_suite("armv8", 123, "smoke")
        assert [i.name for i in a] == [i.name for i in b]
        assert [i.test for i in a] == [i.test for i in b]

    def test_different_seeds_differ(self):
        a = generate_suite("armv8", 1, "smoke")
        b = generate_suite("armv8", 2, "smoke")
        assert [i.test for i in a] != [i.test for i in b]

    def test_seed_independent_sources_are_stable(self):
        """diy/directed/catalog streams never depend on the seed, so
        mutant detection cannot hinge on random luck."""
        stable = lambda items: [
            (i.name, i.test)
            for i in items
            if i.source in ("diy", "directed", "catalog")
        ]
        assert stable(generate_suite("x86", 1, "smoke")) == stable(
            generate_suite("x86", 99, "smoke")
        )

    @pytest.mark.parametrize("arch", FUZZ_ARCHES)
    def test_every_arch_generates_a_nonempty_suite(self, arch):
        suite = generate_suite(arch, _SEED, "smoke")
        assert len(suite) > 20
        names = [i.name for i in suite]
        assert len(names) == len(set(names)), "duplicate item names"

    @pytest.mark.parametrize("arch", FUZZ_ARCHES)
    def test_random_programs_respect_the_vocabulary(self, arch):
        rng = random.Random(derive_seed(_SEED, f"vocab-check-{arch}"))
        vocab = get_vocab(arch)
        budget = get_budget("small")
        for i in range(15):
            test = random_litmus(arch, rng, budget, f"t{i}")
            events = sum(len(t) for t in test.program.threads)
            assert events <= budget.max_events + 2 * budget.max_txns + 2
            for thread in test.program.threads:
                for instr in thread:
                    if hasattr(instr, "kind"):  # Fence
                        assert instr.kind in vocab.fence_kinds

    def test_estimate_candidates_bounds_the_brute_force(self):
        from repro.litmus.candidates import brute_force_candidates

        rng = random.Random(derive_seed(_SEED, "estimate-check"))
        for i in range(8):
            test = random_litmus("x86", rng, "smoke", f"t{i}")
            estimate = estimate_candidates(test.program)
            actual = sum(1 for _ in brute_force_candidates(test.program))
            assert actual <= estimate

    def test_vocab_compatible_filters_foreign_labels(self):
        from repro.catalog import CATALOG

        x86 = get_vocab("x86")
        assert not vocab_compatible(
            CATALOG["cpp_mp_rel_acq"].execution, x86
        )
        assert vocab_compatible(CATALOG["sb_mfence"].execution, x86)


# ----------------------------------------------------------------------
# Stock models are clean
# ----------------------------------------------------------------------


class TestStockClean:
    def test_armv8_small_seed0_is_clean(self):
        """The acceptance run: armv8, seed 0, small budget, all four
        checker roles — zero disagreements, zero errors."""
        report = run_fuzz("armv8", seed=0, budget="small")
        assert report.disagreements == []
        assert report.errors == []
        assert report.ok

    @pytest.mark.parametrize("arch", FUZZ_ARCHES)
    def test_every_arch_smoke_is_clean(self, arch):
        report = run_fuzz(arch, seed=_SEED, budget="smoke")
        assert report.disagreements == [], [
            d.describe() for d in report.disagreements
        ]
        assert report.errors == []

    def test_report_counts_are_consistent(self):
        report = run_fuzz("x86", seed=_SEED, budget="smoke")
        assert report.n_items == sum(report.by_source.values())
        assert report.n_cells >= report.n_items  # at least native column
        assert report.arch == "x86"


# ----------------------------------------------------------------------
# Mutant mode: the harness detects injected weakenings
# ----------------------------------------------------------------------


class TestMutantDetection:
    @pytest.mark.parametrize("arch", FUZZ_ARCHES)
    def test_known_mutants_detected_and_shrunk(self, arch):
        """Every injected weakening fires and shrinks to ≤6 events —
        including armv8 TxnOrder, the paper's §6.2 RTL bug."""
        report = run_fuzz(arch, seed=_SEED, budget="smoke", mutants=True)
        assert report.mutants, "mutant mode produced no mutant results"
        assert {m.axiom for m in report.mutants} == set(KNOWN_MUTANTS[arch])
        for m in report.mutants:
            assert m.detected, f"{m.spec} not detected"
            assert m.min_events is not None and m.min_events <= 6, (
                f"{m.spec}: minimal witness has {m.min_events} events"
            )

    def test_armv8_txnorder_is_the_62_bug(self):
        """The TxnOrder mutant is extensionally the BuggyRtlArm oracle."""
        from repro.sim.oracle import BuggyRtlArm

        mutant = drop_axiom("armv8", "TxnOrder")
        buggy = BuggyRtlArm()
        suite = generate_suite("armv8", _SEED, "smoke")
        for item in suite[:40]:
            assert observable(item.test, mutant) == buggy.observable(
                item.test
            ), item.name

    def test_drop_axiom_validates_names(self):
        with pytest.raises(ValueError):
            drop_axiom("armv8", "NoSuchAxiom")
        with pytest.raises(ValueError):
            drop_axiom("nosucharch", "Order")

    def test_mutant_checker_specs_resolve_with_distinct_hashes(self):
        a = resolve_checker("mut:armv8:TxnOrder")
        b = resolve_checker("mut:armv8:StrongIsol")
        stock = resolve_checker("armv8")
        hashes = {
            a.definition_hash(),
            b.definition_hash(),
            stock.definition_hash(),
        }
        assert len(hashes) == 3, "mutant cache keys collide"


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


class TestShrinking:
    def _txnorder_disagreement(self):
        stock = resolve_checker("armv8")
        mutant = resolve_checker("mut:armv8:TxnOrder")
        suite = {i.name: i for i in generate_suite("armv8", _SEED, "smoke")}
        for name, item in sorted(suite.items()):
            sv = stock.verdict(item.test)
            mv = mutant.verdict(item.test)
            if sv != mv:
                return (
                    Disagreement(
                        item=name,
                        kind="mutant-disagreement",
                        left="armv8",
                        right="mut:armv8:TxnOrder",
                        left_verdict=sv,
                        right_verdict=mv,
                        test=item.test,
                        source=item.source,
                        origin=item.origin,
                    ),
                    stock,
                    mutant,
                )
        pytest.fail("no TxnOrder witness in the smoke suite")

    def test_shrunk_reproducer_still_disagrees_and_is_minimal(self):
        d, stock, mutant = self._txnorder_disagreement()
        shrink_disagreement(d, stock, mutant)
        assert d.shrunk is not None
        assert d.shrunk.n <= 6
        # still a disagreement at the execution level
        assert stock.model.consistent(d.shrunk) != mutant.model.consistent(
            d.shrunk
        )
        # ⊏-minimal: no one-step weakening still disagrees
        from repro.synth.minimality import weakenings

        vocab = get_vocab("armv8")
        for weaker in weakenings(d.shrunk, vocab):
            assert stock.model.consistent(weaker) == mutant.model.consistent(
                weaker
            )

    def test_shrink_respects_predicate_exceptions(self):
        """A predicate that raises on some weakening is treated as
        'does not hold' rather than crashing the descent."""
        vocab = get_vocab("armv8")
        d, stock, mutant = self._txnorder_disagreement()
        witness = witness_execution(
            d.test, mutant.model if d.right_verdict else stock.model
        )
        assert witness is not None

        def flaky(x):
            if x.n % 2:
                raise RuntimeError("boom")
            return stock.model.consistent(x) != mutant.model.consistent(x)

        shrunk = shrink(witness, flaky, vocab)
        assert shrunk.n % 2 == 0 or shrunk is witness

    def test_shrink_litmus_reduces_instructions(self):
        from repro.litmus.parse import loads

        test = loads(
            'litmus "t" x86\n'
            "thread\n"
            "  store x 1\n"
            "  store y 1\n"
            "  load r0 x\n"
            "exists 0:r0=1\n"
        )
        model = get_model("x86")
        reduced = shrink_litmus(test, lambda t: observable(t, model))
        n_instrs = sum(len(t) for t in reduced.program.threads)
        assert n_instrs <= 2  # the y-store and, possibly, more are gone


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


class TestReports:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fuzz("x86", seed=_SEED, budget="smoke", mutants=True)

    def test_jsonl_roundtrips_and_carries_the_header(self, report):
        lines = to_json_lines(report).strip().splitlines()
        records = [json.loads(line) for line in lines]
        header = records[0]
        assert header["record"] == "header"
        assert header["arch"] == "x86"
        assert header["seed"] == report.seed
        assert "repro fuzz" in header["reproduce"]
        mutant_records = [r for r in records if r["record"] == "mutant"]
        assert len(mutant_records) == len(report.mutants)

    def test_markdown_renders(self, report):
        text = to_markdown(report)
        assert "# Differential fuzz report: x86" in text
        assert "Injected mutants" in text

    def test_brute_force_agrees_on_the_smoke_suite(self):
        """Spot-check the ground-truth oracle path end to end."""
        model = get_model("x86")
        suite = generate_suite("x86", _SEED, "smoke")
        checked = 0
        for item in suite:
            if estimate_candidates(item.test.program) > 2_000:
                continue
            assert brute_force_observable(item.test, model) == observable(
                item.test, model
            ), item.name
            checked += 1
        assert checked > 10
