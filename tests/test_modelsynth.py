"""Tests for MemSynth-style model synthesis (paper §9 related work).

The flagship checks: the synthesizer recovers TSO's preserved program
order from classic-shape verdicts, and recovers the paper's TM axiom
story — TxnOrder alone explains the transactional corpus, reproducing
the paper's remark that TxnOrder subsumes StrongIsol.
"""

import pytest

from repro.catalog import CATALOG
from repro.models.registry import get_model
from repro.synth.diy import Cycle, classic, cycle_execution
from repro.synth.modelsynth import (
    DEP_HOLES,
    PPO_HOLES,
    TM_HOLES,
    Example,
    ModelParams,
    SketchModel,
    SynthesisOutcome,
    synthesize_model,
)


def x86_corpus() -> list[Example]:
    x86 = get_model("x86")
    corpus = []
    for name in ("sb", "mp", "lb", "iriw", "2+2w", "wrc"):
        x = classic(name)
        corpus.append(Example(x, x86.consistent(x), name))
    corpus.append(
        Example(
            cycle_execution(Cycle.of("MFencedWR", "Fre", "MFencedWR", "Fre")),
            False,
            "sb+mfence",
        )
    )
    return corpus


def txn_corpus() -> list[Example]:
    corpus = x86_corpus()
    corpus.append(
        Example(
            cycle_execution(Cycle.of("TxndWR", "Fre", "TxndWR", "Fre")),
            False,
            "sb-txn",
        )
    )
    for name in (
        "fig2",
        "fig3a",
        "fig3b",
        "fig3c",
        "fig3d",
        "rmw_split",
        "sb_txn_both",
        "sb_txn_one",
        "mp_txn_both",
        "txn_reads_own_write",
    ):
        entry = CATALOG[name]
        if "x86" in entry.expected:
            corpus.append(
                Example(entry.execution, entry.expected["x86"], name)
            )
    return corpus


class TestModelParams:
    def test_unknown_holes_rejected(self):
        with pytest.raises(ValueError, match="unknown ppo holes"):
            ModelParams(ppo=frozenset({"XX"}))
        with pytest.raises(ValueError, match="unknown tm holes"):
            ModelParams(tm=frozenset({"magic"}))

    def test_ordering(self):
        weak = ModelParams(ppo=frozenset({"WW"}))
        strong = ModelParams(ppo=frozenset({"WW", "RR"}))
        assert weak <= strong
        assert not strong <= weak

    def test_size_and_describe(self):
        params = ModelParams(
            ppo=frozenset({"WW"}), fences=frozenset({"mfence"})
        )
        assert params.size == 2
        assert "ppo={WW}" in params.describe()


class TestSketchModel:
    def test_monotone_in_parameters(self):
        """Adding holes can only forbid more executions."""
        weak = SketchModel(ModelParams())
        strong = SketchModel(
            ModelParams(
                ppo=frozenset(PPO_HOLES), deps=frozenset(DEP_HOLES)
            )
        )
        for name in ("sb", "mp", "lb", "iriw"):
            x = classic(name)
            if strong.consistent(x):
                assert weak.consistent(x)

    def test_empty_sketch_is_weak(self):
        model = SketchModel(ModelParams())
        assert model.consistent(classic("mp"))
        assert model.consistent(classic("sb"))

    def test_coherence_always_on(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        ra = t1.read("x")
        rb = t1.read("x")
        b.rf(w2, ra)
        b.rf(w1, rb)
        assert not SketchModel(ModelParams()).consistent(b.build())

    def test_tm_axiom_names(self):
        model = SketchModel(ModelParams(tm=frozenset(TM_HOLES)))
        names = [a.name for a in model.axioms()]
        assert "StrongIsol" in names and "TxnOrder" in names
        assert "TxnCancelsRMW" in names


class TestTsoRecovery:
    @pytest.fixture(scope="class")
    def outcome(self) -> SynthesisOutcome:
        return synthesize_model(x86_corpus(), include_tm=False)

    def test_satisfiable(self, outcome):
        assert outcome.satisfiable
        assert outcome.candidates_tried == 256  # 2^4 ppo × 2^3 deps × 2 fence

    def test_unique_weakest_is_tso(self, outcome):
        assert len(outcome.weakest) == 1
        params = outcome.weakest[0]
        assert params.ppo == {"WW", "RW", "RR"}  # everything but W->R
        assert params.fences == {"mfence"}
        assert params.deps == frozenset()
        assert params.tm == frozenset()

    def test_every_consistent_sketch_extends_the_weakest(self, outcome):
        weakest = outcome.weakest[0]
        for params in outcome.consistent:
            assert weakest.ppo <= params.ppo
            assert weakest.fences <= params.fences

    def test_recovered_model_agrees_with_x86_on_corpus(self, outcome):
        model = SketchModel(outcome.weakest[0])
        for example in x86_corpus():
            assert model.consistent(example.execution) == example.allowed


class TestTmRecovery:
    @pytest.fixture(scope="class")
    def outcome(self) -> SynthesisOutcome:
        return synthesize_model(txn_corpus())

    def test_satisfiable(self, outcome):
        assert outcome.satisfiable

    def test_txn_order_subsumes_strong_isol(self, outcome):
        """The weakest TM hole set is {txn_order} alone — the paper's
        'TxnOrder subsumes the StrongIsol axiom' (section 3.4)."""
        tm_sets = {params.tm for params in outcome.weakest}
        assert frozenset({"txn_order"}) in tm_sets
        # No weakest solution needs strong_isol *in addition to*
        # txn_order.
        for params in outcome.weakest:
            assert not {"txn_order", "strong_isol"} <= params.tm

    def test_base_holes_still_tso(self, outcome):
        for params in outcome.weakest:
            assert params.ppo == {"WW", "RW", "RR"}


class TestConflicts:
    def test_contradictory_corpus_unsat(self):
        x = classic("sb")
        corpus = [Example(x, True, "yes"), Example(x, False, "no")]
        outcome = synthesize_model(corpus, include_tm=False)
        assert not outcome.satisfiable

    def test_conflict_witness_for_unreachable_forbid(self):
        # MP forbidden is fine; MP allowed together with a shape that
        # needs the same ppo bits is not expressible... simplest direct
        # witness: forbid something even the strongest sketch allows.
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        trivial = b.build()
        outcome = synthesize_model([Example(trivial, False, "trivial")])
        assert not outcome.satisfiable
        assert outcome.conflict is not None
        assert outcome.conflict.name == "trivial"

    def test_conflict_witness_for_coherence_violation(self):
        from repro.core.builder import ExecutionBuilder

        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        ra = t1.read("x")
        rb = t1.read("x")
        b.rf(w2, ra)
        b.rf(w1, rb)
        outcome = synthesize_model([Example(b.build(), True, "corr")])
        assert not outcome.satisfiable
        assert outcome.conflict is not None

    def test_sketch_expressiveness_boundary(self):
        """The Fig. 10 lock-elision execution needs LOCK'd-RMW implied
        fences, which the sketch has no hole for: adding it with its
        x86 verdict makes the corpus unsatisfiable.  (MemSynth reports
        the same phenomenon: synthesis is relative to the sketch.)"""
        entry = CATALOG["armv8_lock_elision"]
        corpus = txn_corpus() + [
            Example(entry.execution, entry.expected["x86"], "lock-elision")
        ]
        assert not synthesize_model(corpus).satisfiable
