"""Axiom-level tests for the Power model (Fig. 6)."""

from repro.core.builder import ExecutionBuilder
from repro.core.events import Label
from repro.models.power import Power


def failed(x):
    return Power().failed_axioms(x)


class TestOrderAndFences:
    def test_mp_allowed_without_fences(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        assert Power().consistent(b.build())

    def test_mp_lwsync_addr_forbidden(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        t0.fence(Label.LWSYNC)
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        b.addr(ry, rx)
        # herding-cats rejects MP+lwsync+addr through Observation: the
        # lwsync puts (wx, wy) into prop, and fre(rx, wx); prop; hb*
        # becomes reflexive at rx.
        assert "Observation" in failed(b.build())

    def test_lwsync_does_not_order_w_to_r(self):
        # SB+lwsyncs stays allowed: lwsync \ (W×R).
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.fence(Label.LWSYNC)
        t0.read("y")
        t1.write("y")
        t1.fence(Label.LWSYNC)
        t1.read("x")
        assert Power().consistent(b.build())

    def test_sync_orders_w_to_r(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x")
        t0.fence(Label.SYNC)
        t0.read("y")
        t1.write("y")
        t1.fence(Label.SYNC)
        t1.read("x")
        assert not Power().consistent(b.build())


class TestPropagationObservation:
    def test_iriw_syncs_forbidden(self):
        b = ExecutionBuilder()
        t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
        wx = t0.write("x")
        r1 = t1.read("x")
        t1.fence(Label.SYNC)
        r2 = t1.read("y")
        r3 = t2.read("y")
        t2.fence(Label.SYNC)
        r4 = t2.read("x")
        wy = t3.write("y")
        b.rf(wx, r1)
        b.rf(wy, r3)
        x = b.build()
        assert not Power().consistent(x)

    def test_wrc_sync_forbidden_observation(self):
        b = ExecutionBuilder()
        t0, t1, t2 = b.thread(), b.thread(), b.thread()
        wx = t0.write("x")
        r1 = t1.read("x")
        t1.fence(Label.SYNC)
        wy = t1.write("y")
        ry = t2.read("y")
        rx = t2.read("x")
        b.rf(wx, r1)
        b.rf(wy, ry)
        b.addr(ry, rx)
        assert "Observation" in failed(b.build())

    def test_wrc_deps_only_allowed(self):
        # Non-multicopy-atomicity: without the sync, WRC is allowed.
        b = ExecutionBuilder()
        t0, t1, t2 = b.thread(), b.thread(), b.thread()
        wx = t0.write("x")
        r1 = t1.read("x")
        wy = t1.write("y")
        ry = t2.read("y")
        rx = t2.read("x")
        b.rf(wx, r1)
        b.rf(wy, ry)
        b.data(r1, wy)
        b.addr(ry, rx)
        assert Power().consistent(b.build())


class TestTxnAxioms:
    def test_tprop1_integrated_barrier(self):
        # §5.2 execution (1): a write observed by a txn propagates before
        # the txn's own writes.
        from repro.catalog import CATALOG

        verdict = Power().check(CATALOG["power_exec1"].execution)
        assert any(r.name == "Observation" for r in verdict.failures)

    def test_tprop2_multicopy_atomic_txn_writes(self):
        from repro.catalog import CATALOG

        verdict = Power().check(CATALOG["power_exec2"].execution)
        assert any(r.name == "Observation" for r in verdict.failures)

    def test_thb_serialisation(self):
        from repro.catalog import CATALOG

        verdict = Power().check(CATALOG["power_exec3"].execution)
        assert any(r.name == "Order" for r in verdict.failures)

    def test_txn_cancels_rmw_entering(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([w])  # the write half alone is transactional
        assert failed(b.build()) == ["TxnCancelsRMW"]

    def test_txn_cancels_rmw_exiting(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r])  # the read half alone is transactional
        assert failed(b.build()) == ["TxnCancelsRMW"]

    def test_rmw_inside_txn_fine(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", Label.EXCL)
        w = t0.write("x", Label.EXCL)
        b.rmw(r, w)
        b.txn([r, w])
        assert Power().consistent(b.build())

    def test_tfence_acts_as_sync(self):
        # MP with the writer's writes split around a txn boundary: the
        # tbegin barrier orders them like a sync.
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.txn([wy])  # tfence between wx and wy
        b.rf(wy, ry)
        b.addr(ry, rx)
        assert not Power().consistent(b.build())

    def test_read_only_txn_remark51_permissive(self):
        from repro.catalog import CATALOG

        assert Power().consistent(CATALOG["remark51a"].execution)
        assert Power().consistent(CATALOG["remark51b"].execution)
