"""Tests for the lock-elision variants beyond the paper's Table 2 rows:
the RISC-V mapping (the paper's §9 future-work target), and the two
fixes discussed in section 1.1 — appending a fence to ``lock()`` and
making transactional CRs write the lock variable, with the latter's
serialisation cost demonstrated.
"""

import pytest

from repro.core.events import Label
from repro.metatheory.lockelision import (
    LOCK_VAR,
    abstract_executions,
    check_lock_elision,
    cr_order_violated,
    elide,
    elision_serialisation,
)
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def riscv_result():
    return check_lock_elision("riscv")


class TestRiscvMapping:
    def test_lock_expansion_shape(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(iter(elide(abstract, "riscv")))
        kinds = [
            (e.kind.value, e.loc, sorted(e.labels))
            for e in concrete.events
            if e.loc == LOCK_VAR or e.is_fence
        ]
        # lr.w.aq (acquire+exclusive read), sc.w (exclusive write), and
        # the elided CR's plain lock read.
        assert ("R", LOCK_VAR, [Label.ACQ, Label.EXCL]) in kinds
        assert ("W", LOCK_VAR, [Label.EXCL]) in kinds

    def test_fixed_expansion_appends_fence(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(iter(elide(abstract, "riscv", fixed=True)))
        fences = [
            e.fence_kind for e in concrete.events if e.is_fence
        ]
        assert Label.FENCE_RW_RW in fences

    def test_unlock_is_release_store(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(iter(elide(abstract, "riscv")))
        rel_writes = [
            e
            for e in concrete.events
            if e.is_write and e.loc == LOCK_VAR and e.has(Label.REL)
        ]
        assert rel_writes

    def test_unknown_arch_rejected(self):
        abstract = next(iter(abstract_executions()))
        with pytest.raises(ValueError, match="no lock-elision mapping"):
            list(elide(abstract, "sparc"))


class TestRiscvUnsoundness:
    def test_elision_unsound(self, riscv_result):
        """Example 1.1 extends to RISC-V: nothing orders the
        store-conditional before the critical-region body."""
        assert not riscv_result.sound
        assert riscv_result.counterexample is not None

    def test_counterexample_shape(self, riscv_result):
        abstract, concrete = riscv_result.counterexample
        assert cr_order_violated(abstract)
        assert get_model("riscv").consistent(concrete)
        assert len(concrete.txns) == 1  # the elided CR

    def test_fence_fix_restores_soundness(self):
        result = check_lock_elision("riscv", fixed=True)
        assert result.sound
        assert result.exhausted

    def test_summary_strings(self, riscv_result):
        assert "UNSOUND" in riscv_result.summary()
        assert "riscv" in riscv_result.summary()


class TestWriteToLockFix:
    def test_armv8_write_to_lock_is_sound(self):
        result = check_lock_elision("armv8", txn_writes_lock=True)
        assert result.sound
        assert result.exhausted

    def test_riscv_write_to_lock_is_sound(self):
        result = check_lock_elision("riscv", txn_writes_lock=True)
        assert result.sound

    def test_elided_write_present(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(
            iter(elide(abstract, "armv8", txn_writes_lock=True))
        )
        txn_events = {e for txn in concrete.txns for e in txn.events}
        in_txn_lock_writes = [
            eid
            for eid in txn_events
            if concrete.events[eid].is_write
            and concrete.events[eid].loc == LOCK_VAR
        ]
        assert in_txn_lock_writes

    def test_read_only_elision_has_no_elided_write(self):
        abstract = next(iter(abstract_executions()))
        concrete = next(iter(elide(abstract, "armv8")))
        txn_events = {e for txn in concrete.txns for e in txn.events}
        assert not any(
            concrete.events[eid].is_write
            and concrete.events[eid].loc == LOCK_VAR
            for eid in txn_events
        )


class TestSerialisationCost:
    def test_read_only_elision_keeps_crs_independent(self):
        assert elision_serialisation(txn_writes_lock=False) is False

    def test_write_to_lock_serialises(self):
        """The paper's trade-off: writing the lock 'would induce
        serialisation, and thus nullify the potential speedup'."""
        assert elision_serialisation(txn_writes_lock=True) is True
