"""Property-based suite for the :class:`repro.core.relation.Relation`
algebra.

Randomized relations (seeded from ``REPRO_TEST_SEED``, printed in the
pytest header) are checked against the algebraic laws every axiomatic
model relies on: closure properties of ``plus``/``star``/``opt``,
inverse and composition laws, the boolean lattice, and the consistency
of ``is_acyclic``/``find_cycle`` with the existence of a topological
order.
"""

import random

import pytest

from repro.conformance.seeds import derive_seed, reproducible_seed
from repro.core.relation import Relation

_SEED = reproducible_seed()


def random_relation(rng: random.Random, n: int, density: float = 0.3) -> Relation:
    pairs = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if rng.random() < density
    ]
    return Relation.from_pairs(n, pairs)


def _samples(stream: str, count: int = 40, max_n: int = 7):
    rng = random.Random(derive_seed(_SEED, stream))
    out = []
    for _ in range(count):
        n = rng.randint(1, max_n)
        out.append(
            (
                random_relation(rng, n, rng.uniform(0.05, 0.6)),
                random_relation(rng, n, rng.uniform(0.05, 0.6)),
                random_relation(rng, n, rng.uniform(0.05, 0.6)),
            )
        )
    return out


SAMPLES = _samples("relation-properties")


class TestClosures:
    def test_plus_is_transitive_and_contains_r(self):
        for r, _, _ in SAMPLES:
            p = r.plus()
            assert r <= p
            assert p.is_transitive()

    def test_plus_matches_repeated_squaring(self):
        """``plus()`` (single-pass Warshall over bitmask rows) against
        an independent repeated-squaring closure: square ``r ∪ r·r``
        until the fixpoint.  The two algorithms share no code, so a
        Warshall ordering bug cannot hide."""
        for r, s, _ in SAMPLES:
            for rel in (r, s):
                closure = rel
                while True:
                    bigger = closure | (closure @ closure)
                    if bigger == closure:
                        break
                    closure = bigger
                assert rel.plus() == closure

    def test_plus_is_idempotent(self):
        for r, _, _ in SAMPLES:
            p = r.plus()
            assert p.plus() == p

    def test_plus_is_the_least_transitive_superset(self):
        """``r⁺ ⊆ t`` for any transitive ``t ⊇ r`` — checked against
        ``(r ∪ s)⁺``, a transitive superset of ``r``."""
        for r, s, _ in SAMPLES:
            t = (r | s).plus()
            assert r.plus() <= t

    def test_star_is_plus_with_diagonal(self):
        for r, _, _ in SAMPLES:
            assert r.star() == r.plus() | Relation.identity(r.n)

    def test_opt_adds_exactly_the_diagonal(self):
        for r, _, _ in SAMPLES:
            assert r.opt() == r | Relation.identity(r.n)
            assert r.opt().opt() == r.opt()


class TestInverseAndComposition:
    def test_inverse_is_involutive(self):
        for r, _, _ in SAMPLES:
            assert r.inverse().inverse() == r

    def test_inverse_antidistributes_over_composition(self):
        for r, s, _ in SAMPLES:
            assert (r @ s).inverse() == s.inverse() @ r.inverse()

    def test_composition_is_associative(self):
        for r, s, t in SAMPLES:
            assert (r @ s) @ t == r @ (s @ t)

    def test_composition_distributes_over_union(self):
        for r, s, t in SAMPLES:
            assert r @ (s | t) == (r @ s) | (r @ t)
            assert (s | t) @ r == (s @ r) | (t @ r)

    def test_identity_is_neutral(self):
        for r, _, _ in SAMPLES:
            ident = Relation.identity(r.n)
            assert r @ ident == r
            assert ident @ r == r

    def test_composition_members_are_witnessed(self):
        for r, s, _ in SAMPLES:
            comp = r @ s
            for a, c in comp.pairs():
                assert any(
                    (a, b) in r and (b, c) in s for b in range(r.n)
                ), (a, c)


class TestBooleanAlgebra:
    def test_de_morgan(self):
        for r, s, _ in SAMPLES:
            assert (r | s).complement() == r.complement() & s.complement()
            assert (r & s).complement() == r.complement() | s.complement()

    def test_difference_is_intersection_with_complement(self):
        for r, s, _ in SAMPLES:
            assert r - s == r & s.complement()

    def test_subset_is_a_partial_order(self):
        for r, s, _ in SAMPLES:
            assert r <= r
            if r <= s and s <= r:
                assert r == s
            assert (r & s) <= r <= (r | s)

    def test_len_is_inclusion_exclusion(self):
        for r, s, _ in SAMPLES:
            assert len(r | s) + len(r & s) == len(r) + len(s)


class TestAcyclicityAndTopologicalOrder:
    @staticmethod
    def _topological_order(r: Relation) -> list | None:
        """Kahn's algorithm, written independently of ``is_acyclic``."""
        indeg = [0] * r.n
        for _, b in r.pairs():
            indeg[b] += 1
        ready = [i for i in range(r.n) if indeg[i] == 0]
        order = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in r.successors(node):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        return order if len(order) == r.n else None

    def test_acyclic_iff_topological_order_exists(self):
        for r, _, _ in SAMPLES:
            order = self._topological_order(r)
            assert r.is_acyclic() == (order is not None), r

    def test_topological_order_respects_every_pair(self):
        for r, _, _ in SAMPLES:
            order = self._topological_order(r)
            if order is None:
                continue
            position = {e: i for i, e in enumerate(order)}
            for a, b in r.pairs():
                assert position[a] < position[b], (a, b, order)

    def test_find_cycle_agrees_with_is_acyclic(self):
        for r, _, _ in SAMPLES:
            cycle = r.find_cycle()
            assert (cycle is None) == r.is_acyclic()
            if cycle is not None:
                for i, a in enumerate(cycle):
                    b = cycle[(i + 1) % len(cycle)]
                    assert (a, b) in r, (cycle, (a, b))

    def test_acyclic_iff_plus_irreflexive(self):
        for r, _, _ in SAMPLES:
            assert r.is_acyclic() == r.plus().is_irreflexive()

    def test_total_order_roundtrip(self):
        rng = random.Random(derive_seed(_SEED, "relation-total-order"))
        for _ in range(25):
            n = rng.randint(1, 7)
            chain = list(range(n))
            rng.shuffle(chain)
            r = Relation.total_order(n, chain)
            assert r.is_total_order_on(range(n))
            assert r.is_acyclic()
            order = self._topological_order(r)
            assert order == chain
