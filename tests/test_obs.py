"""Tests for the telemetry subsystem: tracer, metrics, manifests,
``repro stats``, and the engine/CLI integration points."""

import json
import time

import pytest

from repro.obs import manifest as man
from repro.obs import metrics, telemetry, trace


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry uninstalled."""
    telemetry.disable()
    yield
    telemetry.disable()


def run_cli(capsys, *argv):
    from repro.cli import main

    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nested_self_time_sums_to_wall_clock(self):
        tracer = trace.Tracer()
        start = time.perf_counter()
        tracer.push("outer", None)
        time.sleep(0.02)
        tracer.push("inner", None)
        time.sleep(0.02)
        tracer.pop()
        time.sleep(0.02)
        tracer.pop()
        wall = time.perf_counter() - start
        # Self times partition the instrumented wall clock: no double
        # counting, nothing lost.
        total = sum(tracer.seconds.values())
        assert total == pytest.approx(wall, rel=0.25)
        assert tracer.seconds["outer"] < wall
        assert tracer.seconds["inner"] < tracer.seconds["outer"] + 0.03

    def test_span_records_parentage_and_attrs(self):
        tracer = trace.Tracer()
        with tracer.span("outer"):
            with tracer.span("cell", item="sb", model="x86"):
                pass
        inner, outer = tracer.spans
        assert inner["name"] == "cell"
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"item": "sb", "model": "x86"}
        assert outer["parent"] is None
        assert inner["self"] <= inner["secs"]

    def test_ring_buffer_bounds_memory(self):
        tracer = trace.Tracer(ring=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 4
        assert tracer.spans[-1]["name"] == "s9"

    def test_snapshot_merge_is_additive(self):
        worker1, worker2, parent = (
            trace.Tracer(),
            trace.Tracer(),
            trace.Tracer(),
        )
        with worker1.span("axioms"):
            pass
        worker1.count("candidates", 3)
        with worker2.span("axioms"):
            pass
        with worker2.span("expansion"):
            pass
        worker2.count("candidates", 4)
        parent.merge(worker1.snapshot())
        parent.merge(worker2.snapshot())
        assert parent.calls == {"axioms": 2, "expansion": 1}
        assert parent.counters == {"candidates": 7}
        assert parent.seconds["axioms"] == pytest.approx(
            worker1.seconds["axioms"] + worker2.seconds["axioms"]
        )
        assert len(parent.spans) == 3

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            trace.Tracer().merge({"schema": "not-a-trace"})

    def test_sidecar_is_schema_versioned_jsonl(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = trace.Tracer(sink=sink)
        with tracer.span("expansion"):
            with tracer.span("analysis"):
                pass
        tracer.close()
        lines = [
            json.loads(line) for line in sink.read_text().splitlines()
        ]
        assert lines[0] == {
            "schema": trace.TRACE_SCHEMA,
            "version": trace.TRACE_VERSION,
        }
        assert [rec["name"] for rec in lines[1:]] == [
            "analysis",
            "expansion",
        ]

    def test_report_matches_legacy_profiler_shape(self):
        tracer = trace.Tracer()
        with tracer.span("axioms"):
            pass
        tracer.count("candidates", 2)
        report = tracer.report()
        assert "stage" in report and "share" in report
        assert "axioms" in report
        assert "candidates: 2" in report

    def test_off_path_is_near_free(self):
        # The hot-site discipline is one module-attribute read; keep a
        # very generous bound so slow CI never flakes, while still
        # catching an accidentally-always-on implementation.
        assert trace.ACTIVE is None
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            if trace.ACTIVE is not None:  # pragma: no cover
                raise AssertionError
        elapsed = time.perf_counter() - start
        assert elapsed / n < 5e-6  # 5 microseconds per guarded site


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = metrics.MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.counter("hits").inc(3)
        registry.gauge("entries").set(17)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["gauges"]["entries"] == 17

    def test_histogram_percentiles_bracket_observations(self):
        h = metrics.Histogram()
        for ms in range(1, 101):
            h.observe(ms / 1000.0)
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["max"] == pytest.approx(0.1)
        # Geometric buckets: percentiles are upper bounds, within one
        # bucket width (2**(1/8) ~ 9%) of the true value.
        assert 0.045 <= summary["p50"] <= 0.06
        assert 0.09 <= summary["p95"] <= 0.105
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_histogram_merge_equals_union(self):
        a, b, u = (
            metrics.Histogram(),
            metrics.Histogram(),
            metrics.Histogram(),
        )
        for v in (0.001, 0.004, 0.2):
            a.observe(v)
            u.observe(v)
        for v in (0.002, 0.5):
            b.observe(v)
            u.observe(v)
        a.merge(b.to_dict())
        assert a.summary() == u.summary()

    def test_registry_snapshot_roundtrip_and_merge(self):
        w1, w2 = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        w1.counter("cells").inc(4)
        w1.histogram("lat").observe(0.01)
        w2.counter("cells").inc(6)
        w2.histogram("lat").observe(0.02)
        w2.gauge("entries").set(9)
        parent = metrics.MetricsRegistry.from_snapshot(w1.snapshot())
        parent.merge(w2.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["cells"] == 10
        assert snap["gauges"]["entries"] == 9
        assert (
            metrics.Histogram.from_dict(snap["histograms"]["lat"]).count
            == 2
        )


# ----------------------------------------------------------------------
# Telemetry bundle (cross-process protocol)
# ----------------------------------------------------------------------


class TestTelemetry:
    def test_enable_installs_both_guards(self):
        bundle = telemetry.enable()
        try:
            assert trace.ACTIVE is bundle.tracer
            assert metrics.ACTIVE is bundle.metrics
            assert telemetry.active() is bundle
        finally:
            telemetry.disable()
        assert trace.ACTIVE is None
        assert metrics.ACTIVE is None
        assert telemetry.active() is None

    def test_snapshot_reports_ir_work_since_enable(self):
        from repro.catalog import CATALOG
        from repro.models.registry import get_model

        model = get_model("x86")
        x = CATALOG["sb"].execution
        model.check(x)  # warm anything cached outside the window
        telemetry.enable()
        try:
            model.check(x)
            snap = telemetry.snapshot()
        finally:
            telemetry.disable()
        counters = snap["trace"]["counters"]
        # Deltas, not process totals: a fresh enable starts near zero.
        # (The repeat check is served from the IR memo, so the delta
        # shows up as memo hits; a cold check would show computes.)
        ir_work = sum(
            v for k, v in counters.items() if k.startswith("ir_")
        )
        assert 0 < ir_work < 10_000

    def test_collect_ships_worker_snapshot(self):
        # Simulates a pool worker: no telemetry active in-process.
        with telemetry.collect() as holder:
            with trace.stage("axioms"):
                pass
            trace.count("candidates", 5)
        assert holder.snapshot is not None
        assert holder.snapshot["trace"]["counters"]["candidates"] == 5
        assert trace.ACTIVE is None  # ephemeral bundle uninstalled

    def test_collect_is_noop_when_parent_active(self):
        bundle = telemetry.enable()
        try:
            with telemetry.collect() as holder:
                trace.count("candidates", 5)
            assert holder.snapshot is None  # serial path: no double count
            assert bundle.tracer.counters["candidates"] == 5
        finally:
            telemetry.disable()

    def test_merge_snapshot_folds_worker_results(self):
        with telemetry.collect() as holder:
            trace.count("cells", 3)
        bundle = telemetry.enable()
        try:
            telemetry.merge_snapshot(holder.snapshot)
            assert bundle.tracer.counters["cells"] == 3
        finally:
            telemetry.disable()


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------


def _manifest(label="unit", **kwargs):
    defaults = dict(
        kind="campaign",
        label=label,
        created=1765193000.0,
        elapsed_seconds=2.0,
        rates={"cells_per_second": 100.0},
        cache={"hits": 5, "misses": 5, "hit_rate": 0.5},
        stages={"axioms": {"seconds": 1.0, "calls": 10}},
        model_latency={"x86": {"count": 10, "p50": 0.001, "p95": 0.002,
                               "p99": 0.003}},
    )
    defaults.update(kwargs)
    return man.RunManifest(**defaults)


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = _manifest(seed=7, argv=["campaign", "--arch", "x86"])
        path = man.write_manifest(manifest, tmp_path)
        assert path.name == f"{manifest.run_id}.json"
        loaded = man.load_manifest(path)
        assert loaded == manifest

    def test_rejects_wrong_version(self, tmp_path):
        data = _manifest().to_dict()
        data["version"] = man.MANIFEST_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(man.ManifestError, match="version"):
            man.load_manifest(path)

    def test_rejects_wrong_schema(self, tmp_path):
        data = _manifest().to_dict()
        data["schema"] = "something.else"
        path = tmp_path / "other.json"
        path.write_text(json.dumps(data))
        with pytest.raises(man.ManifestError, match="schema"):
            man.load_manifest(path)

    def test_list_skips_corrupt_files(self, tmp_path):
        man.write_manifest(_manifest(), tmp_path)
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "wrong.json").write_text('{"schema": "x"}')
        manifests = man.list_manifests(tmp_path)
        assert len(manifests) == 1

    def test_resolve_last_and_prefix(self, tmp_path):
        old = _manifest("old", created=1765193000.0)
        new = _manifest("new", created=1765193100.0)
        man.write_manifest(old, tmp_path)
        man.write_manifest(new, tmp_path)
        assert man.resolve_run("last", tmp_path).label == "new"
        assert man.resolve_run("last~1", tmp_path).label == "old"
        assert man.resolve_run(old.run_id[:16], tmp_path).label == "old"
        with pytest.raises(man.ManifestError, match="ambiguous"):
            # Both run ids share the date prefix.
            man.resolve_run(old.run_id[:8], tmp_path)
        with pytest.raises(man.ManifestError):
            man.resolve_run("last~5", tmp_path)
        with pytest.raises(man.ManifestError):
            man.resolve_run("zzz-no-such-run", tmp_path)

    def test_from_campaign_builds_full_record(self, tmp_path):
        from repro.engine import ResultCache, diy_suite, run_campaign
        from repro.litmus.candidates import _expand_test, expand_program

        expand_program.cache_clear()
        _expand_test.cache_clear()
        suite = diy_suite("x86", max_length=2)
        telemetry.enable()
        try:
            with ResultCache(tmp_path) as cache:
                result = run_campaign(suite, ["x86", "sc"], cache=cache)
                manifest = man.from_campaign(
                    result, items=suite, cache=cache, argv=["campaign"]
                )
        finally:
            telemetry.disable()
        assert manifest.suite["items"] == len(suite)
        assert set(manifest.models) == {"x86", "sc"}
        assert all(manifest.models.values())  # definition tokens resolved
        assert manifest.verdicts["cells"] == len(suite) * 2
        assert len(manifest.verdicts["digest"]) == 64
        assert manifest.rates["cells_per_second"] > 0
        assert "expansion" in manifest.stages
        assert manifest.model_latency["x86"]["count"] == len(suite)
        assert manifest.cache["entries"] == len(suite) * 2
        # Identical reruns produce identical verdict digests.
        with ResultCache(tmp_path) as cache:
            rerun = run_campaign(suite, ["x86", "sc"], cache=cache)
        assert (
            man.from_campaign(rerun).verdicts["digest"]
            == manifest.verdicts["digest"]
        )


# ----------------------------------------------------------------------
# repro stats CLI
# ----------------------------------------------------------------------


class TestStatsCli:
    def test_list_empty_is_ok(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "stats", "list", "--runs-dir", str(tmp_path)
        )
        assert code == 0
        assert "no recorded runs" in out

    def test_list_and_show(self, capsys, tmp_path):
        manifest = _manifest(seed=3)
        man.write_manifest(manifest, tmp_path)
        code, out, _ = run_cli(
            capsys, "stats", "list", "--runs-dir", str(tmp_path)
        )
        assert code == 0 and manifest.run_id in out
        code, out, _ = run_cli(
            capsys, "stats", "show", "last", "--runs-dir", str(tmp_path)
        )
        assert code == 0
        assert "seed: 3" in out and "per-model cell latency" in out

    def test_show_unresolvable_exits_two(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "stats", "show", "nope", "--runs-dir", str(tmp_path)
        )
        assert code == 2 and "no run matching" in err

    def test_show_wrong_arity_exits_two(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "stats", "show", "--runs-dir", str(tmp_path)
        )
        assert code == 2 and "exactly one" in err

    def test_diff_warn_only_exits_zero(self, capsys, tmp_path):
        base = _manifest("base", created=1765193000.0)
        slow = _manifest(
            "slow",
            created=1765193100.0,
            elapsed_seconds=4.0,
            rates={"cells_per_second": 50.0},
        )
        man.write_manifest(base, tmp_path)
        man.write_manifest(slow, tmp_path)
        code, out, _ = run_cli(
            capsys, "stats", "diff", "last~1", "last",
            "--runs-dir", str(tmp_path),
        )
        assert code == 0
        assert "rate:cells_per_second" in out and "-50.0%" in out

    def test_diff_fail_over_exits_one(self, capsys, tmp_path):
        base = _manifest("base", created=1765193000.0)
        slow = _manifest(
            "slow", created=1765193100.0, elapsed_seconds=4.0
        )
        man.write_manifest(base, tmp_path)
        man.write_manifest(slow, tmp_path)
        code, _, err = run_cli(
            capsys, "stats", "diff", "last~1", "last",
            "--runs-dir", str(tmp_path), "--fail-over", "10",
        )
        assert code == 1 and "regressed" in err
        # An improvement never trips the gate, whatever the threshold.
        code, _, _ = run_cli(
            capsys, "stats", "diff", "last", "last~1",
            "--runs-dir", str(tmp_path), "--fail-over", "10",
        )
        assert code == 0

    def test_diff_wrong_arity_exits_two(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "stats", "diff", "last", "--runs-dir", str(tmp_path)
        )
        assert code == 2 and "two runs" in err


# ----------------------------------------------------------------------
# Cache durability (satellite: context-managed flush, structured stats)
# ----------------------------------------------------------------------


class TestCacheDurability:
    def test_context_manager_flushes(self, tmp_path):
        from repro.engine.cache import ResultCache

        with ResultCache(tmp_path) as cache:
            cache.put("k1", {"verdict": True})
        reopened = ResultCache(tmp_path)
        assert reopened.get("k1")["verdict"] is True

    def test_stats_dict_shape(self, tmp_path):
        from repro.engine.cache import ResultCache

        with ResultCache(tmp_path) as cache:
            cache.put("k1", {"verdict": True})
            cache.get("k1")
            cache.get("missing")
            stats = cache.stats_dict()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["bytes"] > 0

    def test_null_cache_supports_protocol(self):
        from repro.engine.cache import NullCache

        with NullCache() as cache:
            assert cache.get("k") is None
            assert cache.stats_dict()["entries"] == 0


# ----------------------------------------------------------------------
# Engine + CLI integration
# ----------------------------------------------------------------------


class TestCampaignTelemetry:
    def _fresh_expansion(self):
        from repro.litmus.candidates import _expand_test, expand_program

        expand_program.cache_clear()
        _expand_test.cache_clear()

    def test_parallel_counters_match_serial(self):
        from repro.engine import diy_suite, run_campaign

        suite = diy_suite("x86", max_length=2)
        results = {}
        for jobs in (1, 2):
            self._fresh_expansion()
            bundle = telemetry.enable()
            try:
                run_campaign(suite, ["x86", "sc"], jobs=jobs)
                results[jobs] = bundle.snapshot()
            finally:
                telemetry.disable()
        for jobs, snap in results.items():
            counters = snap["trace"]["counters"]
            # The worker-blindness fix: parallel runs must not lose
            # worker-side observations.
            assert counters["cells_computed"] == len(suite) * 2, jobs
            assert counters.get("candidates", 0) > 0, jobs
            assert snap["trace"]["seconds"].get("axioms", 0) > 0, jobs
            hist = snap["metrics"]["histograms"]["cell_seconds:x86"]
            assert metrics.Histogram.from_dict(hist).count == len(suite)

    def test_cell_spans_carry_identity(self):
        from repro.engine import diy_suite, run_campaign

        suite = diy_suite("x86", max_length=2)
        bundle = telemetry.enable()
        try:
            run_campaign(suite, ["x86"])
            spans = [
                s for s in bundle.tracer.spans if s["name"] == "cell"
            ]
        finally:
            telemetry.disable()
        assert len(spans) == len(suite)
        attrs = spans[0]["attrs"]
        assert attrs["model"] == "x86"
        assert attrs["item"] in {item.name for item in suite}
        assert attrs["token"]  # definition token, not empty

    def test_campaign_off_by_default(self):
        from repro.engine import diy_suite, run_campaign

        assert trace.ACTIVE is None
        run_campaign(diy_suite("x86", max_length=2), ["x86"])
        assert trace.ACTIVE is None


class TestCampaignCliTelemetry:
    def test_profile_no_longer_forces_serial(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out, _ = run_cli(
            capsys, "campaign", "--arch", "x86", "--length", "2",
            "--models", "x86,sc", "--jobs", "2", "--profile",
        )
        assert code == 0
        assert "forces --jobs 1" not in out
        assert "per-stage timing" in out
        assert "axioms" in out

    def test_telemetry_writes_manifest(self, capsys, tmp_path,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out, _ = run_cli(
            capsys, "campaign", "--arch", "x86", "--length", "2",
            "--models", "x86", "--telemetry",
        )
        assert code == 0
        assert "run manifest:" in out
        path = out.split("run manifest:", 1)[1].split()[0]
        manifest = man.load_manifest(path)
        assert manifest.kind == "campaign"
        assert manifest.verdicts["cells"] > 0

    def test_json_result_is_schema_versioned(self, capsys, tmp_path):
        out_path = tmp_path / "result.json"
        code, _, _ = run_cli(
            capsys, "campaign", "--arch", "x86", "--length", "2",
            "--models", "x86,sc", "--no-cache", "--json", str(out_path),
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.campaign-result"
        assert data["version"] == 1
        assert set(data["models"]) == {"x86", "sc"}
        assert data["cells"]
        row = data["cells"][0]
        assert {"item", "model", "verdict", "elapsed", "cached"} <= set(row)
        assert data["matrix"]["x86"]

    def test_trace_sidecar_written(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        sidecar = tmp_path / "spans.jsonl"
        code, _, _ = run_cli(
            capsys, "campaign", "--arch", "x86", "--length", "2",
            "--models", "x86", "--trace", str(sidecar),
        )
        assert code == 0
        lines = sidecar.read_text().splitlines()
        assert json.loads(lines[0])["schema"] == trace.TRACE_SCHEMA
        names = {json.loads(line)["name"] for line in lines[1:]}
        assert "cell" in names

    def test_env_var_enables_telemetry(self, capsys, tmp_path,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        code, out, _ = run_cli(
            capsys, "campaign", "--arch", "x86", "--length", "2",
            "--models", "x86",
        )
        assert code == 0
        assert "run manifest:" in out


class TestProfilingShim:
    def test_legacy_surface_forwards_to_tracer(self):
        from repro.core import profiling

        assert profiling.ACTIVE is None
        prof = profiling.enable()
        try:
            assert profiling.ACTIVE is prof
            assert isinstance(prof, trace.Tracer)
            with profiling.stage("axioms"):
                pass
            profiling.count("candidates", 2)
        finally:
            profiling.disable()
        assert profiling.ACTIVE is None
        assert prof.calls == {"axioms": 1}
        assert prof.counters == {"candidates": 2}
