"""Property-based tests over randomly generated executions.

The generator builds arbitrary well-formed executions (bounded size) and
the properties assert the semantic relationships the paper relies on:

* model strength: SC-consistent ⊆ x86-consistent ⊆ Power-consistent, and
  SC ⊆ ARMv8 (the architectures only *relax* SC);
* TSC-consistency implies SC-consistency and strong isolation;
* isolation: stronglift-acyclicity implies weaklift-acyclicity;
* monotonicity of x86 under transaction erasure: erasing all transactions
  from an x86-consistent execution keeps it consistent (tfence/TxnOrder
  only constrain);
* canonical keys are invariant under thread and location renaming;
* litmus round trip: the intended execution's outcome is always among the
  candidates of its generated test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind, Label
from repro.core.execution import Execution, Transaction
from repro.core.wellformed import is_wellformed
from repro.litmus.candidates import candidate_executions
from repro.litmus.from_execution import to_litmus
from repro.models.isolation import strongly_isolated, weakly_isolated
from repro.models.registry import get_model
from repro.synth.canonical import canonical_key

MAX_EVENTS = 5
LOCS = ["x", "y"]


@st.composite
def executions(draw, with_txns=True, labels=False):
    n = draw(st.integers(1, MAX_EVENTS))
    # Threads: a random ordered partition of range(n).
    n_threads = draw(st.integers(1, min(n, 3)))
    if n_threads == 1 or n == 1:
        boundaries = []
    else:
        boundaries = sorted(
            draw(
                st.lists(
                    st.integers(1, n - 1),
                    max_size=n_threads - 1,
                    unique=True,
                )
            )
        )
    threads = []
    prev = 0
    for b in boundaries + [n]:
        threads.append(list(range(prev, b)))
        prev = b

    events = []
    for i in range(n):
        kind = draw(st.sampled_from([EventKind.READ, EventKind.WRITE]))
        loc = draw(st.sampled_from(LOCS))
        labelset = frozenset()
        if labels and kind == EventKind.READ and draw(st.booleans()):
            labelset = frozenset({Label.ACQ})
        if labels and kind == EventKind.WRITE and draw(st.booleans()):
            labelset = frozenset({Label.REL})
        events.append(Event(kind, loc, labelset))

    reads = [i for i, e in enumerate(events) if e.is_read]
    writes_by_loc = {}
    for i, e in enumerate(events):
        if e.is_write:
            writes_by_loc.setdefault(e.loc, []).append(i)

    rf = {}
    for r in reads:
        choices = [None] + writes_by_loc.get(events[r].loc, [])
        w = draw(st.sampled_from(choices))
        if w is not None:
            rf[r] = w

    co = {}
    for loc, ws in writes_by_loc.items():
        co[loc] = tuple(draw(st.permutations(ws)))

    txns = []
    if with_txns and draw(st.booleans()):
        tid = draw(st.integers(0, len(threads) - 1))
        thread = threads[tid]
        start = draw(st.integers(0, len(thread) - 1))
        end = draw(st.integers(start, len(thread) - 1))
        txns.append(Transaction(tuple(thread[start:end + 1])))

    return Execution(
        events=events, threads=threads, rf=rf, co=co, txns=txns
    )


@settings(max_examples=150, deadline=None)
@given(executions())
def test_generator_produces_wellformed(x):
    assert is_wellformed(x)


# The "architectures only relax SC" implications hold for TRANSACTION-
# FREE executions only: Fig. 3 exhibits SC executions that strong
# isolation forbids, so SC does not imply any TM model once transactions
# appear.  The transactional upper bound is TSC (§3.4: the proposed
# models "all lie between these bounds"), asserted separately below.


@settings(max_examples=120, deadline=None)
@given(executions(with_txns=False))
def test_sc_implies_x86_without_txns(x):
    if get_model("sc").consistent(x):
        assert get_model("x86").consistent(x)


@settings(max_examples=120, deadline=None)
@given(executions(with_txns=False))
def test_x86_implies_power_without_txns(x):
    if get_model("x86").consistent(x):
        assert get_model("power").consistent(x)


@settings(max_examples=120, deadline=None)
@given(executions(with_txns=False, labels=True))
def test_sc_implies_armv8_without_txns(x):
    if get_model("sc").consistent(x):
        assert get_model("armv8").consistent(x)


@settings(max_examples=120, deadline=None)
@given(executions(with_txns=False, labels=True))
def test_sc_implies_riscv_without_txns(x):
    if get_model("sc").consistent(x):
        assert get_model("riscv").consistent(x)


@settings(max_examples=120, deadline=None)
@given(executions(labels=True))
def test_tsc_implies_every_tm_model(x):
    """TSC is the upper bound on TM guarantees (§3.4): anything TSC
    admits, every proposed model admits — transactions included."""
    if get_model("tsc").consistent(x):
        for arch in ("x86", "power", "armv8", "riscv"):
            assert get_model(arch).consistent(x), arch


@settings(max_examples=120, deadline=None)
@given(executions())
def test_tsc_implies_sc_and_strong_isolation(x):
    if get_model("tsc").consistent(x):
        assert get_model("sc").consistent(x)
        assert strongly_isolated(x)


@settings(max_examples=120, deadline=None)
@given(executions())
def test_strong_isolation_implies_weak(x):
    if strongly_isolated(x):
        assert weakly_isolated(x)


@settings(max_examples=120, deadline=None)
@given(executions())
def test_txn_erasure_weakens_x86(x):
    """Erasing transactions can only make more behaviour consistent —
    the flip side of §8.1 monotonicity, which does hold for x86."""
    if get_model("x86").consistent(x):
        assert get_model("x86").consistent(x.without_transactions())


@settings(max_examples=120, deadline=None)
@given(executions())
def test_canonical_key_thread_permutation(x):
    reversed_threads = list(reversed(x.threads))
    y = Execution(
        events=x.events,
        threads=reversed_threads,
        rf=x.rf,
        co=x.co,
        txns=x.txns,
    )
    assert canonical_key(x) == canonical_key(y)


@settings(max_examples=120, deadline=None)
@given(executions())
def test_canonical_key_location_renaming(x):
    renaming = {"x": "a", "y": "b"}
    events = [
        Event(e.kind, renaming.get(e.loc, e.loc), e.labels)
        if e.is_access
        else e
        for e in x.events
    ]
    y = Execution(
        events=events,
        threads=x.threads,
        rf=x.rf,
        co={renaming.get(l, l): v for l, v in x.co.items()},
        txns=x.txns,
    )
    assert canonical_key(x) == canonical_key(y)


@settings(max_examples=80, deadline=None)
@given(executions())
def test_litmus_roundtrip_candidate_exists(x):
    test = to_litmus(x, "random", "armv8")
    assert any(
        test.check(c.outcome) for c in candidate_executions(test.program)
    )


@settings(max_examples=80, deadline=None)
@given(executions())
def test_fr_definition_consistency(x):
    """fr relates each read to exactly the co-successors of its source."""
    for r in x.reads:
        loc = x.events[r].loc
        same_loc_writes = {
            w for w in x.writes if x.events[w].loc == loc
        }
        src = x.rf.get(r)
        if src is None:
            expected = same_loc_writes
        else:
            order = x.co.get(loc, tuple(same_loc_writes))
            pos = order.index(src)
            expected = set(order[pos + 1:])
        assert {b for a, b in x.fr.pairs() if a == r} == expected


@settings(max_examples=80, deadline=None)
@given(executions())
def test_com_edges_are_same_location(x):
    for a, b in x.com.pairs():
        assert x.events[a].loc == x.events[b].loc


@settings(max_examples=80, deadline=None)
@given(executions())
def test_external_internal_partition(x):
    assert x.rfe | x.rfi == x.rf_rel
    assert (x.rfe & x.rfi).is_empty()
