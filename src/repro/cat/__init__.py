"""A ``.cat`` model DSL in the style of herding cats [5].

The paper's companion material ships every proposed model "in the .cat
format"; this package reproduces that artefact.  It implements a small
interpreter for a cat dialect — lexer (:mod:`repro.cat.lexer`), parser
(:mod:`repro.cat.parser`), evaluator (:mod:`repro.cat.evaluator`) — plus
the model files themselves under :mod:`repro.cat.library` and an adapter
(:class:`repro.cat.model.CatModel`) that turns a ``.cat`` file into a
:class:`repro.models.base.MemoryModel`, interchangeable with the native
Python models.  ``tests/test_cat_models.py`` cross-validates the two
implementations of every model against each other on the paper catalog
and on exhaustively enumerated executions.

Dialect notes (where cat implementations differ, we pick one reading and
the library files stick to it):

* postfix ``^+``/``^*``/``^?``/``^-1`` for closures and converse; bare
  postfix ``+`` and ``?`` are also accepted (they are unambiguous), but
  reflexive-transitive closure must be written ``^*`` because infix ``*``
  is reserved for the Cartesian product of two event sets;
* operator precedence, loosest to tightest:
  ``|``  <  ``&``  <  ``\\``  <  ``;``  <  ``*``  <  unary ``~``  <
  postfix closures;
* ``let rec ... and ...`` computes a simultaneous least fixpoint from
  empty relations (exactly how ``ppo`` is defined for Power);
* event sets are auto-promoted to identity relations when composed with
  ``;`` (write ``[S]`` to be explicit);
* ``acyclic | irreflexive | empty expr as name`` define consistency
  axioms; ``flag <check>`` records a non-consistency diagnostic (used for
  race detection); ``show``/``unshow`` are parsed and ignored.
"""

from .errors import CatError, CatSyntaxError, CatTypeError, CatNameError
from .evaluator import EvalResult, evaluate
from .library import library_path, library_source
from .model import CatModel, load_cat_model, CAT_MODEL_FILES
from .parser import parse

__all__ = [
    "CatError",
    "CatSyntaxError",
    "CatTypeError",
    "CatNameError",
    "CatModel",
    "CAT_MODEL_FILES",
    "EvalResult",
    "evaluate",
    "library_path",
    "library_source",
    "load_cat_model",
    "parse",
]
