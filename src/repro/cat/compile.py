"""Compile parsed ``.cat`` models onto the unified relational IR.

The tree-walk evaluator (:mod:`repro.cat.evaluator`) re-interprets a
model's AST against every execution.  This module instead compiles the
AST **once** into interned :mod:`repro.ir` nodes — the same hash-consed
DAG the native models declare their axioms in — so that:

* per-candidate evaluation is a memo lookup per node instead of an AST
  walk (``let`` bindings, closure inlining, include resolution all
  happen at compile time);
* a ``.cat`` model and its native twin share every common subexpression
  per candidate (``x86tm.cat``'s ``hb`` *is* the native x86 ``hb``
  node);
* ``let rec`` lowers to an explicit simultaneous-fixpoint node instead
  of an interpreter loop.

Compilation strategy
====================

The compile environment maps names to IR nodes (sets or relations) or to
:class:`_CompiledClosure` values (user functions, inlined at every
application — the dialect has no recursion through closures).  The
stdlib's ``weaklift``/``stronglift`` inline to compositions that the
``comp`` smart constructor recognises and rewrites to the dedicated
transaction-lifting nodes, so sharing with the native models is
preserved without special-casing the function names.

``flag`` checks and negated checks compile like any other; their special
semantics live in the :class:`CompiledCheck` record.

Anything the IR cannot express raises :class:`CatCompileError`;
:class:`~repro.cat.model.CatModel` falls back to the tree-walk
evaluator in that case (none of the shipped library needs the
fallback — ``tests/test_ir.py`` asserts the whole library compiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir import nodes as N
from ..ir.nodes import Node
from .ast import (
    Apply,
    Binary,
    Check,
    EmptyRel,
    Expr,
    Include,
    Let,
    LetRec,
    Lift,
    Model,
    Name,
    Postfix,
    SetLiteral,
    Show,
    Stmt,
    Unary,
)
from .errors import CatError

__all__ = ["CatCompileError", "CompiledCheck", "CompiledModel", "compile_model"]

#: Callback that resolves ``include "name.cat"`` to a parsed model.
Loader = Callable[[str], Model]


class CatCompileError(CatError):
    """The model uses a construct the IR cannot express."""


@dataclass(frozen=True)
class _CompiledClosure:
    """A user function, applied by inlining its body."""

    name: str
    params: tuple[str, ...]
    body: Expr
    env: dict

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True)
class CompiledCheck:
    """One ``[flag] [~] acyclic|irreflexive|empty expr as name``."""

    name: str
    kind: str
    negated: bool
    flag: bool
    node: Node


@dataclass(frozen=True)
class CompiledModel:
    """A ``.cat`` model lowered onto the IR DAG."""

    title: str
    checks: tuple[CompiledCheck, ...]
    #: Name → node for every relation/set binding visible at the end of
    #: the file (used by ``repro explain`` and the differential tests).
    bindings: tuple[tuple[str, Node], ...] = field(default_factory=tuple)

    @property
    def axiom_checks(self) -> tuple[CompiledCheck, ...]:
        """The consistency checks (non-flag), in declaration order."""
        return tuple(c for c in self.checks if not c.flag)

    @property
    def flag_checks(self) -> tuple[CompiledCheck, ...]:
        return tuple(c for c in self.checks if c.flag)

    def roots(self) -> list[Node]:
        return [c.node for c in self.checks]


def _err(message: str, node) -> CatCompileError:
    return CatCompileError(message, node.line, node.col)


class _Compiler:
    def __init__(self, loader: Loader | None) -> None:
        self.loader = loader
        self.env: dict[str, object] = {}
        for name in N.BASE_SETS:
            self.env[name] = N.bset(name)
        for name in N.BASE_RELATIONS:
            if name not in ("loc", "int", "id"):
                self.env[name] = N.base(name)
        # .cat surface names that differ from the IR base tokens.
        self.env["loc"] = N.base("loc")
        self.env["int"] = N.base("int")
        self.env["id"] = N.base("id")
        self.env["domain"] = "domain"
        self.env["range"] = "range"
        self.checks: list[CompiledCheck] = []
        self.included: set[str] = set()
        self.in_letrec = False

    # -- expressions -----------------------------------------------------

    def compile(self, expr: Expr, env: dict) -> object:
        if isinstance(expr, Name):
            try:
                return env[expr.ident]
            except KeyError:
                raise _err(f"unbound name {expr.ident!r}", expr) from None
        if isinstance(expr, EmptyRel):
            return N.empty()
        if isinstance(expr, SetLiteral):
            return N.sempty()
        if isinstance(expr, Lift):
            body = self._node(self.compile(expr.body, env), expr)
            if not body.is_set:
                raise _err("[...] expects an event set", expr)
            return N.lift(body)
        if isinstance(expr, Unary):
            body = self._node(self.compile(expr.body, env), expr)
            return N.scompl(body) if body.is_set else N.compl(body)
        if isinstance(expr, Postfix):
            body = self._node(self.compile(expr.body, env), expr)
            if body.is_set:
                body = N.lift(body)
            if expr.op == "^+":
                return N.plus(body)
            if expr.op == "^*":
                return N.star(body)
            if expr.op == "^?":
                return N.opt(body)
            if expr.op == "^-1":
                return N.inverse(body)
            raise _err(f"unknown postfix {expr.op!r}", expr)
        if isinstance(expr, Binary):
            return self._binary(expr, env)
        if isinstance(expr, Apply):
            return self._apply(expr, env)
        raise _err(f"unhandled node {type(expr).__name__}", expr)

    def _node(self, value: object, where) -> Node:
        if isinstance(value, Node):
            return value
        raise _err("expected a set or relation", where)

    def _binary(self, expr: Binary, env: dict) -> Node:
        left = self._node(self.compile(expr.left, env), expr)
        right = self._node(self.compile(expr.right, env), expr)
        op = expr.op
        if op == ";":
            return N.comp(left, right)
        if op == "*":
            if left.is_set and right.is_set:
                return N.cross(left, right)
            raise _err(
                "* is the Cartesian product of two event sets "
                "(use ^* for reflexive-transitive closure)",
                expr,
            )
        if left.is_set != right.is_set:
            raise _err(
                f"{op!r} needs two sets or two relations", expr
            )
        if left.is_set:
            if op == "|":
                return N.sunion(left, right)
            if op == "&":
                return N.sinter(left, right)
            return N.sdiff(left, right)
        if op == "|":
            return N.union(left, right)
        if op == "&":
            return N.inter(left, right)
        return N.diff(left, right)

    def _apply(self, expr: Apply, env: dict) -> Node:
        try:
            func = env[expr.func]
        except KeyError:
            raise _err(f"unbound function {expr.func!r}", expr) from None
        args = [self.compile(arg, env) for arg in expr.args]
        if func == "domain" or func == "range":
            if len(args) != 1:
                raise _err(f"{func}() expects 1 argument", expr)
            rel = self._node(args[0], expr)
            if rel.is_set:
                raise _err(f"{func}() expects a relation", expr)
            return N.domain(rel) if func == "domain" else N.range_(rel)
        if not isinstance(func, _CompiledClosure):
            raise _err(f"{expr.func!r} is not a function", expr)
        if func.arity != len(args):
            raise _err(
                f"{expr.func!r} expects {func.arity} argument(s), "
                f"got {len(args)}",
                expr,
            )
        call_env = dict(func.env)
        call_env.update(zip(func.params, args))
        return self._node(self.compile(func.body, call_env), expr)

    # -- statements ------------------------------------------------------

    def _let_rec(self, stmt: LetRec) -> None:
        if self.in_letrec:
            raise _err("nested let rec is not supported by the IR", stmt)
        self.in_letrec = True
        try:
            names = [name for name, _ in stmt.bindings]
            rec_env = dict(self.env)
            for index, name in enumerate(names):
                rec_env[name] = N.var(index)
            bodies = []
            for name, body in stmt.bindings:
                node = self._node(self.compile(body, rec_env), stmt)
                if node.is_set:
                    raise _err(
                        f"let rec {name!r} must be relation-valued", stmt
                    )
                bodies.append(node)
            body_tuple = tuple(bodies)
            for index, name in enumerate(names):
                self.env[name] = N.fix(body_tuple, index)
        finally:
            self.in_letrec = False

    def _check(self, stmt: Check) -> None:
        node = self._node(self.compile(stmt.expr, self.env), stmt.expr)
        if node.is_set:
            node = N.lift(node)
        self.checks.append(
            CompiledCheck(stmt.name, stmt.kind, stmt.negated, stmt.flag, node)
        )

    def run(self, model: Model) -> None:
        for stmt in model.statements:
            self._statement(stmt)

    def _statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            if stmt.params:
                self.env[stmt.name] = _CompiledClosure(
                    stmt.name, stmt.params, stmt.body, dict(self.env)
                )
            else:
                self.env[stmt.name] = self.compile(stmt.body, self.env)
        elif isinstance(stmt, LetRec):
            self._let_rec(stmt)
        elif isinstance(stmt, Check):
            self._check(stmt)
        elif isinstance(stmt, Include):
            if self.loader is None:
                raise _err(
                    f'include "{stmt.filename}" needs a loader', stmt
                )
            if stmt.filename in self.included:
                return
            self.included.add(stmt.filename)
            self.run(self.loader(stmt.filename))
        elif isinstance(stmt, Show):
            return
        else:
            raise _err(
                f"unhandled statement {type(stmt).__name__}", stmt
            )


def compile_model(model: Model, loader: Loader | None = None) -> CompiledModel:
    """Lower a parsed ``.cat`` model onto the IR DAG.

    Raises :class:`CatCompileError` for constructs outside the IR
    (callers fall back to the tree-walk evaluator).
    """
    compiler = _Compiler(loader)
    compiler.run(model)
    bindings = tuple(
        (name, value)
        for name, value in compiler.env.items()
        if isinstance(value, Node)
    )
    return CompiledModel(model.title, tuple(compiler.checks), bindings)
