"""Recursive-descent parser for the .cat dialect.

Expression precedence, loosest to tightest (see the package docstring)::

    e  ::=  e '|' e          union
         |  e '&' e          intersection
         |  e '\\' e          difference (left associative)
         |  e ';' e          relational composition
         |  e '*' e          Cartesian product of two event sets
         |  '~' e            complement
         |  primary postfix*

    primary  ::=  name | name '(' e {',' e} ')' | '(' e ')' | '[' e ']'
               |  '0' | '{' '}'
    postfix  ::=  '^+' | '^*' | '^?' | '^-1' | '+' | '?'

Statements: ``let``/``let rec``, the three checks (optionally ``flag``-ged
or ``~``-negated), ``include``, ``show``/``unshow``.  The first token of a
file may be a string literal naming the model.
"""

from __future__ import annotations

from .ast import (
    Apply,
    Binary,
    Check,
    CHECK_KINDS,
    EmptyRel,
    Expr,
    Include,
    Let,
    LetRec,
    Lift,
    Model,
    Name,
    Postfix,
    SetLiteral,
    Show,
    Stmt,
    Unary,
)
from .errors import CatSyntaxError
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse", "parse_expression"]

_POSTFIX_OPS = {
    TokenKind.HATPLUS: "^+",
    TokenKind.HATSTAR: "^*",
    TokenKind.HATOPT: "^?",
    TokenKind.INVERSE: "^-1",
    TokenKind.PLUS: "^+",
    TokenKind.OPT: "^?",
}


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = list(tokenize(source))
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise CatSyntaxError(
                f"expected {want!r}, found {self.current.text!r}",
                self.current.line,
                self.current.col,
            )
        return token

    # -- expressions ------------------------------------------------------

    def expression(self) -> Expr:
        return self._union()

    def _union(self) -> Expr:
        left = self._inter()
        while self.check(TokenKind.UNION):
            op = self.advance()
            right = self._inter()
            left = Binary(op.line, op.col, "|", left, right)
        return left

    def _inter(self) -> Expr:
        left = self._diff()
        while self.check(TokenKind.INTER):
            op = self.advance()
            right = self._diff()
            left = Binary(op.line, op.col, "&", left, right)
        return left

    def _diff(self) -> Expr:
        left = self._seq()
        while self.check(TokenKind.DIFF):
            op = self.advance()
            right = self._seq()
            left = Binary(op.line, op.col, "\\", left, right)
        return left

    def _seq(self) -> Expr:
        left = self._cross()
        while self.check(TokenKind.SEQ):
            op = self.advance()
            right = self._cross()
            left = Binary(op.line, op.col, ";", left, right)
        return left

    def _cross(self) -> Expr:
        left = self._unary()
        while self.check(TokenKind.STAR):
            op = self.advance()
            right = self._unary()
            left = Binary(op.line, op.col, "*", left, right)
        return left

    def _unary(self) -> Expr:
        if self.check(TokenKind.COMPL):
            op = self.advance()
            return Unary(op.line, op.col, "~", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self.current.kind in _POSTFIX_OPS:
            op = self.advance()
            expr = Postfix(op.line, op.col, _POSTFIX_OPS[op.kind], expr)
        return expr

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == TokenKind.LPAREN:
            self.advance()
            inner = self.expression()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind == TokenKind.LBRACKET:
            self.advance()
            inner = self.expression()
            self.expect(TokenKind.RBRACKET)
            return Lift(token.line, token.col, inner)
        if token.kind == TokenKind.LBRACE:
            self.advance()
            self.expect(TokenKind.RBRACE)
            return SetLiteral(token.line, token.col)
        if token.kind == TokenKind.NUMBER:
            self.advance()
            if token.text != "0":
                raise CatSyntaxError(
                    f"the only numeric literal is 0, found {token.text!r}",
                    token.line,
                    token.col,
                )
            return EmptyRel(token.line, token.col)
        if token.kind == TokenKind.IDENT:
            self.advance()
            if self.check(TokenKind.LPAREN):
                self.advance()
                args = [self.expression()]
                while self.accept(TokenKind.COMMA):
                    args.append(self.expression())
                self.expect(TokenKind.RPAREN)
                return Apply(token.line, token.col, token.text, tuple(args))
            return Name(token.line, token.col, token.text)
        raise CatSyntaxError(
            f"expected an expression, found {token.text!r}",
            token.line,
            token.col,
        )

    # -- statements -------------------------------------------------------

    def _let(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "let")
        if self.accept(TokenKind.KEYWORD, "rec"):
            bindings = [self._binding()]
            while self.accept(TokenKind.KEYWORD, "and"):
                bindings.append(self._binding())
            return LetRec(start.line, start.col, tuple(bindings))
        name = self.expect(TokenKind.IDENT).text
        params: tuple[str, ...] = ()
        if self.accept(TokenKind.LPAREN):
            names = [self.expect(TokenKind.IDENT).text]
            while self.accept(TokenKind.COMMA):
                names.append(self.expect(TokenKind.IDENT).text)
            self.expect(TokenKind.RPAREN)
            params = tuple(names)
        self.expect(TokenKind.EQUALS)
        body = self.expression()
        return Let(start.line, start.col, name, params, body)

    def _binding(self) -> tuple[str, Expr]:
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.EQUALS)
        return name, self.expression()

    def _check(self, flag: bool) -> Stmt:
        negated = self.accept(TokenKind.COMPL) is not None
        token = self.current
        if token.kind != TokenKind.KEYWORD or token.text not in CHECK_KINDS:
            raise CatSyntaxError(
                f"expected one of {'/'.join(CHECK_KINDS)}, found {token.text!r}",
                token.line,
                token.col,
            )
        self.advance()
        expr = self.expression()
        if self.accept(TokenKind.KEYWORD, "as"):
            name = self.expect(TokenKind.IDENT).text
        else:
            name = f"{token.text}@{token.line}"
        return Check(token.line, token.col, token.text, expr, name, flag, negated)

    def _show(self) -> Stmt:
        start = self.advance()  # show / unshow
        names = [self.expect(TokenKind.IDENT).text]
        while self.accept(TokenKind.COMMA):
            names.append(self.expect(TokenKind.IDENT).text)
        # Optional "as alias" on the last shown expression.
        if self.accept(TokenKind.KEYWORD, "as"):
            self.expect(TokenKind.IDENT)
        return Show(start.line, start.col, tuple(names))

    def statement(self) -> Stmt:
        token = self.current
        if token.kind != TokenKind.KEYWORD:
            raise CatSyntaxError(
                f"expected a statement, found {token.text!r}",
                token.line,
                token.col,
            )
        if token.text == "let":
            return self._let()
        if token.text == "include":
            self.advance()
            filename = self.expect(TokenKind.STRING).text
            return Include(token.line, token.col, filename)
        if token.text in ("show", "unshow"):
            return self._show()
        if token.text == "flag":
            self.advance()
            return self._check(flag=True)
        if token.text in CHECK_KINDS:
            return self._check(flag=False)
        raise CatSyntaxError(
            f"unexpected keyword {token.text!r}", token.line, token.col
        )

    def model(self) -> Model:
        title = ""
        if self.check(TokenKind.STRING):
            title = self.advance().text
        statements = []
        while not self.check(TokenKind.EOF):
            statements.append(self.statement())
        return Model(title, tuple(statements))


def parse(source: str) -> Model:
    """Parse a .cat file into a :class:`Model`."""
    return _Parser(source).model()


def parse_expression(source: str) -> Expr:
    """Parse a single expression (handy for tests and the REPL)."""
    parser = _Parser(source)
    expr = parser.expression()
    parser.expect(TokenKind.EOF)
    return expr
