"""Adapter: a parsed .cat file as a :class:`repro.models.base.MemoryModel`.

:class:`CatModel` makes the .cat library interchangeable with the native
Python models — the same ``check``/``consistent`` interface, the same
``tm=False`` baseline behaviour — so the whole toolflow (synthesis,
metatheory, conformance) can run off a ``.cat`` file.  The
cross-validation tests exploit this to assert that every library model
agrees with its native counterpart on every execution they are given.

Checking routes through the unified relational IR: the source is
compiled once (:mod:`repro.cat.compile`) onto the same hash-consed DAG
the native models declare their axioms in, so ``check``/``consistent``
are per-node memo lookups shared with every other model in a campaign.
The tree-walk evaluator remains available via :meth:`CatModel.evaluate`
(it exposes the full binding environment) and serves as the fallback
for any source the IR cannot express.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from ..obs import trace
from ..core.analysis import CandidateAnalysis
from ..core.execution import Execution
from ..ir.eval import axiom_holds
from ..ir.eval import evaluate as ir_evaluate
from ..ir.model import IRAxiom, IRDefinition
from ..models.base import Axiom, AxiomResult, MemoryModel, Verdict, witness_for
from .ast import Check, Include, Model
from .compile import CatCompileError, CompiledModel, compile_model
from .errors import CatError
from .evaluator import EvalResult, evaluate
from .library import library_source
from .parser import parse

__all__ = ["CatModel", "load_cat_model", "CAT_MODEL_FILES"]

_UNSET = object()

#: Library file for each model name, mirroring ``repro.models.registry``.
CAT_MODEL_FILES: dict[str, str] = {
    "sc": "sc.cat",
    "tsc": "tsc.cat",
    "x86": "x86tm.cat",
    "power": "powertm.cat",
    "armv8": "armv8tm.cat",
    "cpp": "cpptm.cat",
    "power-dongol": "dongol.cat",
    "riscv": "riscvtm.cat",
}


@lru_cache(maxsize=None)
def _parse_library(name: str) -> Model:
    return parse(library_source(name))


def _library_loader(name: str) -> Model:
    return _parse_library(name)


class CatModel(MemoryModel):
    """A memory model defined by .cat source text.

    Args:
        source: the .cat program.
        name: model name for reports (defaults to the file's title).
        tm: as for native models — ``False`` evaluates against the
            transaction-stripped baseline execution.
    """

    def __init__(self, source: str, name: str = "", tm: bool = True) -> None:
        super().__init__(tm=tm)
        self.ast = parse(source)
        self.arch = name or self.ast.title or "cat"
        self._static_checks = tuple(self._collect_checks(self.ast, set()))
        #: The IR lowering, or ``None`` if the source uses constructs
        #: outside the IR (then everything falls back to the tree walk).
        self.compiled: CompiledModel | None
        try:
            self.compiled = compile_model(self.ast, _library_loader)
        except CatCompileError:
            self.compiled = None
        self._plan = (
            None
            if self.compiled is None
            else tuple(
                sorted(
                    self.compiled.axiom_checks,
                    key=lambda c: c.node.cost,
                )
            )
        )

    def _collect_checks(self, model: Model, seen: set[str]) -> list[Check]:
        checks: list[Check] = []
        for stmt in model.statements:
            if isinstance(stmt, Check) and not stmt.flag:
                checks.append(stmt)
            elif isinstance(stmt, Include) and stmt.filename not in seen:
                seen.add(stmt.filename)
                checks.extend(
                    self._collect_checks(_library_loader(stmt.filename), seen)
                )
        return checks

    # -- evaluation ------------------------------------------------------

    def evaluate(self, x: "Execution | CandidateAnalysis") -> EvalResult:
        """Full tree-walk evaluation (respecting the ``tm`` flag).

        Exposes the complete binding environment; checking goes through
        the compiled IR instead (see :meth:`check`/:meth:`consistent`).
        """
        a = self._analysis(x)
        if trace.ACTIVE is not None:
            with trace.stage("axioms"):
                return evaluate(self.ast, a, _library_loader)
        return evaluate(self.ast, a, _library_loader)

    def definition(self) -> IRDefinition:
        """The compiled consistency axioms as an :class:`IRDefinition`.

        Flag checks are diagnostics and excluded (matching
        :meth:`axioms`); negated non-flag checks have no axiom form.
        """
        if self.compiled is None:
            raise NotImplementedError(
                f"{self.arch}: source did not compile to IR"
            )
        axioms = []
        for check in self.compiled.axiom_checks:
            if check.negated:
                raise CatError(
                    f"negated non-flag check {check.name!r} has no Axiom form"
                )
            axioms.append(
                IRAxiom(check.name, check.kind, check.name, check.node)
            )
        return IRDefinition(tuple(axioms))

    def relations(self, x: "Execution | CandidateAnalysis") -> dict:
        if self.compiled is None:
            result = self.evaluate(x)
            return {c.name: c.relation for c in result.checks}
        from ..core.analysis import analyze

        a = analyze(x)
        return {
            c.name: ir_evaluate(c.node, a)
            for c in self.compiled.axiom_checks
        }

    def axioms(self) -> tuple[Axiom, ...]:
        out = []
        for check in self._static_checks:
            if check.negated:
                raise CatError(
                    f"negated non-flag check {check.name!r} has no Axiom form",
                    check.line,
                    check.col,
                )
            out.append(Axiom(check.name, check.kind, check.name))
        return tuple(out)

    def check(self, x: "Execution | CandidateAnalysis") -> Verdict:
        if self.compiled is None:
            result = self.evaluate(x)
            results = tuple(
                AxiomResult(c.name, c.holds, c.witness)
                for c in result.checks
            )
            return Verdict(self.name, all(r.holds for r in results), results)
        a = self._analysis(x)
        results = []
        for c in self.compiled.axiom_checks:
            rel = ir_evaluate(c.node, a)
            witness = witness_for(c.kind, rel)
            holds = witness is None
            if c.negated:
                holds = not holds
            results.append(AxiomResult(c.name, holds, witness))
        results = tuple(results)
        return Verdict(self.name, all(r.holds for r in results), results)

    def batch_definition(self):
        """Batchable iff consistency routes through the compiled IR
        (same condition as :meth:`consistent`'s fast path) and no check
        is negated (negation has no :class:`IRAxiom` form)."""
        cached = self.__dict__.get("_batch_definition", _UNSET)
        if cached is _UNSET:
            if self._plan is None or any(c.negated for c in self._plan):
                cached = None
            else:
                cached = self.definition()
            self._batch_definition = cached
        return cached

    def consistent(self, x: "Execution | CandidateAnalysis") -> bool:
        if self._plan is None:
            return self.evaluate(x).consistent
        a = self._analysis(x)
        if trace.ACTIVE is not None:
            with trace.stage("axioms"):
                return all(self._holds(c, a) for c in self._plan)
        return all(self._holds(c, a) for c in self._plan)

    @staticmethod
    def _holds(check, a) -> bool:
        holds = axiom_holds(check.kind, check.node, a)
        return not holds if check.negated else holds

    def flags_raised(self, x: "Execution | CandidateAnalysis") -> list[str]:
        """Names of raised ``flag`` diagnostics (e.g. ``DataRace``).

        Herd semantics: ``flag ~empty race`` raises when the test holds,
        i.e. when races exist.
        """
        if self.compiled is None:
            return self.evaluate(x).flagged
        a = self._analysis(x)
        return [
            c.name
            for c in self.compiled.flag_checks
            if self._holds(c, a)
        ]

    def race_free(self, x: "Execution | CandidateAnalysis") -> bool:
        """Convenience mirroring :meth:`repro.models.cpp.Cpp.race_free`."""
        return "DataRace" not in self.flags_raised(x)

    def definition_token(self) -> str:
        """Engine cache keying: the structural digest of the compiled
        checks (comment/whitespace edits no longer invalidate cached
        verdicts; semantic edits always do).  Falls back to hashing the
        AST when the source did not compile."""
        if self.compiled is None:
            text = repr(self.ast)
        else:
            text = ";".join(
                f"{c.name}:{c.kind}:{int(c.negated)}:{int(c.flag)}:"
                f"{c.node.digest}"
                for c in self.compiled.checks
            )
        digest = hashlib.sha256(text.encode()).hexdigest()[:16]
        return f"cat:{self.arch}:tm={self.tm}:{digest}"


def load_cat_model(name: str, tm: bool = True) -> CatModel:
    """Load a model from the library by registry name or by file path.

    ``name`` may be a key of :data:`CAT_MODEL_FILES` (``"x86"``), a
    library file name (``"x86tm.cat"``), or a path to a ``.cat`` file on
    disk.  Library models mirror the native models, all of which imply
    per-location coherence, so they are tagged ``enforces_coherence``
    (ad-hoc ``.cat`` files stay conservative).
    """
    if name in CAT_MODEL_FILES:
        filename = CAT_MODEL_FILES[name]
        model = CatModel(library_source(filename), name=name, tm=tm)
        model.enforces_coherence = True
        return model
    path = Path(name)
    if path.suffix == ".cat" and not path.is_file():
        # A bare library file name like "x86tm.cat".
        model = CatModel(library_source(name), name=path.stem, tm=tm)
        # Only the *model* files mirror coherence-enforcing native
        # models; library preludes (stdlib.cat, powerppo.cat) carry no
        # checks at all and must stay conservative.
        model.enforces_coherence = name in CAT_MODEL_FILES.values()
        return model
    if path.is_file():
        return CatModel(path.read_text(), name=path.stem, tm=tm)
    raise ValueError(
        f"unknown cat model {name!r}; registry names: "
        f"{', '.join(sorted(CAT_MODEL_FILES))}"
    )
