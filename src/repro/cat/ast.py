"""Abstract syntax for the .cat dialect.

Two node families: expressions (:class:`Expr` subclasses) and statements
(:class:`Stmt` subclasses).  A parsed file is a :class:`Model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Name",
    "EmptyRel",
    "SetLiteral",
    "Lift",
    "Binary",
    "Unary",
    "Postfix",
    "Apply",
    "Stmt",
    "Let",
    "LetRec",
    "Check",
    "Include",
    "Show",
    "Model",
    "CHECK_KINDS",
]

#: The three check forms of the paper (section "Axiomatic Memory Models").
CHECK_KINDS = ("acyclic", "irreflexive", "empty")


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes; carries the source position."""

    line: int
    col: int


@dataclass(frozen=True)
class Name(Expr):
    """A variable reference."""

    ident: str = ""


@dataclass(frozen=True)
class EmptyRel(Expr):
    """The literal ``0`` — the empty relation."""


@dataclass(frozen=True)
class SetLiteral(Expr):
    """``{}`` — the empty event set (the only set literal we need)."""


@dataclass(frozen=True)
class Lift(Expr):
    """``[e]`` — the identity relation restricted to the event set ``e``."""

    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    """Infix operator application: ``|  &  \\  ;  *``."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Unary(Expr):
    """Prefix complement ``~e``."""

    op: str = "~"
    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Postfix(Expr):
    """Postfix closure/converse: ``^+  ^*  ^?  ^-1`` (and bare ``+ ?``)."""

    op: str = ""
    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Apply(Expr):
    """Function application ``f(e1, ..., ek)``."""

    func: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""

    line: int
    col: int


@dataclass(frozen=True)
class Let(Stmt):
    """``let name = expr`` or ``let name(params) = expr``."""

    name: str = ""
    params: tuple[str, ...] = ()
    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class LetRec(Stmt):
    """``let rec n1 = e1 and n2 = e2 ...`` — simultaneous least fixpoint."""

    bindings: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class Check(Stmt):
    """``[flag] [~] acyclic|irreflexive|empty expr as name``.

    ``flag`` checks are diagnostics (reported, not part of consistency);
    ``negated`` inverts the test (herd's ``flag ~empty races as Race``).
    """

    kind: str = ""
    expr: Expr = None  # type: ignore[assignment]
    name: str = ""
    flag: bool = False
    negated: bool = False


@dataclass(frozen=True)
class Include(Stmt):
    """``include "file.cat"``."""

    filename: str = ""


@dataclass(frozen=True)
class Show(Stmt):
    """``show``/``unshow`` — parsed for compatibility, ignored."""

    names: tuple[str, ...] = ()


@dataclass(frozen=True)
class Model:
    """A parsed .cat file: optional title plus statement list."""

    title: str = ""
    statements: tuple[Stmt, ...] = field(default_factory=tuple)
