"""Tokeniser for the .cat dialect.

Comments are OCaml-style ``(* ... *)`` and nest.  Identifiers may contain
letters, digits, ``_``, ``.`` and ``-`` after the first letter (so fence
sets like ``DMB.LD`` are single tokens); keywords are reserved.  The only
multi-character operators are ``^+``, ``^*``, ``^?`` and ``^-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import CatSyntaxError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

#: Reserved words of the statement grammar.
KEYWORDS = frozenset(
    {
        "let",
        "rec",
        "and",
        "as",
        "in",
        "acyclic",
        "irreflexive",
        "empty",
        "include",
        "show",
        "unshow",
        "flag",
    }
)


class TokenKind:
    """Token kind tags (plain strings keep match statements readable)."""

    IDENT = "ident"
    KEYWORD = "keyword"
    STRING = "string"
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    UNION = "|"
    INTER = "&"
    DIFF = "\\"
    SEQ = ";"
    STAR = "*"
    PLUS = "+"
    OPT = "?"
    COMPL = "~"
    HATPLUS = "^+"
    HATSTAR = "^*"
    HATOPT = "^?"
    INVERSE = "^-1"
    EQUALS = "="
    COMMA = ","
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexeme with its 1-based source position."""

    kind: str
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.text!r}"


_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "|": TokenKind.UNION,
    "&": TokenKind.INTER,
    "\\": TokenKind.DIFF,
    ";": TokenKind.SEQ,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "?": TokenKind.OPT,
    "~": TokenKind.COMPL,
    "=": TokenKind.EQUALS,
    ",": TokenKind.COMMA,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_.-"


class _Scanner:
    """Character cursor with line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.source)


def _skip_comment(scanner: _Scanner) -> None:
    """Consume a (possibly nested) ``(* ... *)`` comment."""
    start_line, start_col = scanner.line, scanner.col
    scanner.advance()  # (
    scanner.advance()  # *
    depth = 1
    while depth:
        if scanner.exhausted:
            raise CatSyntaxError("unterminated comment", start_line, start_col)
        if scanner.peek() == "(" and scanner.peek(1) == "*":
            scanner.advance()
            scanner.advance()
            depth += 1
        elif scanner.peek() == "*" and scanner.peek(1) == ")":
            scanner.advance()
            scanner.advance()
            depth -= 1
        else:
            scanner.advance()


def _scan_string(scanner: _Scanner) -> Token:
    line, col = scanner.line, scanner.col
    scanner.advance()  # opening quote
    chars: list[str] = []
    while True:
        if scanner.exhausted or scanner.peek() == "\n":
            raise CatSyntaxError("unterminated string literal", line, col)
        ch = scanner.advance()
        if ch == '"':
            return Token(TokenKind.STRING, "".join(chars), line, col)
        chars.append(ch)


def _scan_ident(scanner: _Scanner) -> Token:
    line, col = scanner.line, scanner.col
    chars = [scanner.advance()]
    while not scanner.exhausted and _is_ident_char(scanner.peek()):
        chars.append(scanner.advance())
    text = "".join(chars)
    kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
    return Token(kind, text, line, col)


def _scan_number(scanner: _Scanner) -> Token:
    line, col = scanner.line, scanner.col
    chars = [scanner.advance()]
    while not scanner.exhausted and scanner.peek().isdigit():
        chars.append(scanner.advance())
    return Token(TokenKind.NUMBER, "".join(chars), line, col)


def tokenize(source: str) -> Iterator[Token]:
    """Yield the tokens of ``source``, ending with a single EOF token."""
    scanner = _Scanner(source)
    while not scanner.exhausted:
        ch = scanner.peek()
        if ch in " \t\r\n":
            scanner.advance()
            continue
        if ch == "(" and scanner.peek(1) == "*":
            _skip_comment(scanner)
            continue
        if ch == '"':
            yield _scan_string(scanner)
            continue
        if ch == "^":
            line, col = scanner.line, scanner.col
            scanner.advance()
            nxt = scanner.peek()
            if nxt == "+":
                scanner.advance()
                yield Token(TokenKind.HATPLUS, "^+", line, col)
            elif nxt == "*":
                scanner.advance()
                yield Token(TokenKind.HATSTAR, "^*", line, col)
            elif nxt == "?":
                scanner.advance()
                yield Token(TokenKind.HATOPT, "^?", line, col)
            elif nxt == "-" and scanner.peek(1) == "1":
                scanner.advance()
                scanner.advance()
                yield Token(TokenKind.INVERSE, "^-1", line, col)
            else:
                raise CatSyntaxError(f"bad operator '^{nxt}'", line, col)
            continue
        if _is_ident_start(ch):
            yield _scan_ident(scanner)
            continue
        if ch.isdigit():
            yield _scan_number(scanner)
            continue
        if ch in _SINGLE:
            line, col = scanner.line, scanner.col
            scanner.advance()
            yield Token(_SINGLE[ch], ch, line, col)
            continue
        raise CatSyntaxError(f"unexpected character {ch!r}", scanner.line, scanner.col)
    yield Token(TokenKind.EOF, "", scanner.line, scanner.col)
