"""Error types raised by the .cat front end and evaluator.

All errors carry a source position (line and column, both 1-based) so a
broken model file points at the offending token, not at the interpreter.
"""

from __future__ import annotations

__all__ = ["CatError", "CatSyntaxError", "CatTypeError", "CatNameError"]


class CatError(Exception):
    """Base class for every .cat front-end error."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        where = f" at line {line}:{col}" if line else ""
        super().__init__(f"{message}{where}")


class CatSyntaxError(CatError):
    """Lexing or parsing failure."""


class CatTypeError(CatError):
    """An operator applied to operands of the wrong kind (set vs relation)."""


class CatNameError(CatError):
    """Reference to a name that is not bound in the environment."""
