"""The .cat model library shipped with the reproduction.

One file per model of the paper (each mirrors the corresponding native
class in :mod:`repro.models` axiom for axiom), plus ``stdlib.cat`` — the
prelude of derived relations (``rfe``, ``po_loc``, ``fencerel``,
``weaklift``/``stronglift``) that every model includes.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["LIBRARY_DIR", "library_path", "library_source", "library_files"]

#: Directory containing the ``.cat`` sources.
LIBRARY_DIR = Path(__file__).resolve().parent


def library_path(name: str) -> Path:
    """Absolute path of the library file ``name`` (e.g. ``"x86tm.cat"``)."""
    path = LIBRARY_DIR / name
    if not path.is_file():
        known = ", ".join(sorted(p.name for p in LIBRARY_DIR.glob("*.cat")))
        raise FileNotFoundError(f"no library model {name!r}; known: {known}")
    return path


def library_source(name: str) -> str:
    """The text of the library file ``name``."""
    return library_path(name).read_text()


def library_files() -> list[str]:
    """All ``.cat`` files in the library, sorted by name."""
    return sorted(p.name for p in LIBRARY_DIR.glob("*.cat"))
