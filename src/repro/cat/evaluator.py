"""Evaluator for parsed .cat models.

Evaluation walks the statement list top to bottom, growing an environment
of named values (event sets, relations, functions).  Check statements are
evaluated into :class:`CheckResult` records; ``flag`` checks are recorded
separately and never affect consistency (they are diagnostics, e.g. data
races).

``let rec`` computes a simultaneous *least fixpoint*: every bound name
starts as the empty relation and the bodies are re-evaluated until
nothing changes.  All the operators of the dialect are monotone, so the
iteration converges (a step bound guards against non-monotone misuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.analysis import CandidateAnalysis, analyze
from ..core.execution import Execution
from ..core.relation import Relation
from .ast import (
    Apply,
    Binary,
    Check,
    EmptyRel,
    Expr,
    Include,
    Let,
    LetRec,
    Lift,
    Model,
    Name,
    Postfix,
    SetLiteral,
    Show,
    Unary,
)
from .env import Builtin, Closure, Value, base_env
from .errors import CatError, CatNameError, CatTypeError
from .parser import parse

__all__ = ["CheckResult", "EvalResult", "evaluate", "evaluate_expr"]

#: Callback that resolves ``include "name.cat"`` to a parsed model.
Loader = Callable[[str], Model]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one ``acyclic``/``irreflexive``/``empty`` statement.

    ``witness`` is the deterministic failure witness of the *underlying*
    (un-negated) test — a canonical cycle, sorted reflexive events, or
    sorted pairs (see :func:`repro.models.base.witness_for`) — or
    ``None`` when that test holds, so golden and fuzz reports are
    byte-stable across runs.
    """

    name: str
    kind: str
    negated: bool
    flag: bool
    relation: Relation
    holds: bool
    witness: object = None

    def describe(self) -> str:
        neg = "~" if self.negated else ""
        status = "ok" if self.holds else "VIOLATED"
        tag = "flag " if self.flag else ""
        return f"{tag}{neg}{self.kind} ... as {self.name}: {status}"


@dataclass
class EvalResult:
    """Everything the evaluator produced for one execution."""

    title: str
    checks: list[CheckResult] = field(default_factory=list)
    flags: list[CheckResult] = field(default_factory=list)
    bindings: dict[str, Value] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """True iff every non-flag check holds."""
        return all(c.holds for c in self.checks)

    @property
    def flagged(self) -> list[str]:
        """Names of *raised* flags (herd semantics: ``flag ~empty race``
        raises when the test holds, i.e. when races exist)."""
        return [c.name for c in self.flags if c.holds]

    def relation(self, name: str) -> Relation:
        """The relation bound to ``name`` (raises if not a relation)."""
        value = self.bindings[name]
        if not isinstance(value, Relation):
            raise CatTypeError(f"{name!r} is not a relation")
        return value


def _is_set(value: Value) -> bool:
    return isinstance(value, frozenset)


def _as_relation(value: Value, n: int, where: Expr) -> Relation:
    """Promote an event set to the identity on it (for ``;`` operands)."""
    if isinstance(value, Relation):
        return value
    if _is_set(value):
        return Relation.lift(n, value)
    raise CatTypeError("expected a relation", where.line, where.col)


class _Evaluator:
    def __init__(
        self, x: "Execution | CandidateAnalysis", loader: Loader | None
    ) -> None:
        self.a = analyze(x)
        self.n = self.a.n
        self.loader = loader
        self.env: dict[str, Value] = base_env(self.a)
        self.checks: list[CheckResult] = []
        self.flags: list[CheckResult] = []
        self.included: set[str] = set()
        # Environment provenance, for the per-candidate include cache:
        # the env is *pristine* while it equals the base env plus the
        # deltas of the includes in ``_trail`` — a deterministic function
        # of the analysis, so those deltas are shareable across
        # evaluations (and across models including the same prelude).
        self._pristine = True
        self._trail: tuple[str, ...] = ()

    # -- expression evaluation -------------------------------------------

    def eval(self, expr: Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, Name):
            try:
                return env[expr.ident]
            except KeyError:
                raise CatNameError(
                    f"unbound name {expr.ident!r}", expr.line, expr.col
                ) from None
        if isinstance(expr, EmptyRel):
            return Relation.empty(self.n)
        if isinstance(expr, SetLiteral):
            return frozenset()
        if isinstance(expr, Lift):
            body = self.eval(expr.body, env)
            if not _is_set(body):
                raise CatTypeError(
                    "[...] expects an event set", expr.line, expr.col
                )
            return Relation.lift(self.n, body)
        if isinstance(expr, Unary):
            return self._complement(self.eval(expr.body, env), expr)
        if isinstance(expr, Postfix):
            return self._postfix(expr, env)
        if isinstance(expr, Binary):
            return self._binary(expr, env)
        if isinstance(expr, Apply):
            return self._apply(expr, env)
        raise CatError(f"unhandled node {type(expr).__name__}", expr.line, expr.col)

    def _complement(self, value: Value, where: Expr) -> Value:
        if isinstance(value, Relation):
            return value.complement()
        if _is_set(value):
            return frozenset(range(self.n)) - value
        raise CatTypeError("~ expects a set or relation", where.line, where.col)

    def _postfix(self, expr: Postfix, env: dict[str, Value]) -> Value:
        value = self.eval(expr.body, env)
        if not isinstance(value, Relation):
            raise CatTypeError(
                f"{expr.op} expects a relation", expr.line, expr.col
            )
        if expr.op == "^+":
            return value.plus()
        if expr.op == "^*":
            return value.star()
        if expr.op == "^?":
            return value.opt()
        if expr.op == "^-1":
            return value.inverse()
        raise CatError(f"unknown postfix {expr.op!r}", expr.line, expr.col)

    def _binary(self, expr: Binary, env: dict[str, Value]) -> Value:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        op = expr.op
        if op == ";":
            return _as_relation(left, self.n, expr) @ _as_relation(
                right, self.n, expr
            )
        if op == "*":
            if _is_set(left) and _is_set(right):
                return Relation.cross(self.n, left, right)
            raise CatTypeError(
                "* is the Cartesian product of two event sets "
                "(use ^* for reflexive-transitive closure)",
                expr.line,
                expr.col,
            )
        # |, &, \ work homogeneously on sets or relations.
        if _is_set(left) and _is_set(right):
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            return left - right
        if isinstance(left, Relation) and isinstance(right, Relation):
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            return left - right
        raise CatTypeError(
            f"{op!r} needs two sets or two relations, got "
            f"{type(left).__name__} and {type(right).__name__}",
            expr.line,
            expr.col,
        )

    def _apply(self, expr: Apply, env: dict[str, Value]) -> Value:
        try:
            func = env[expr.func]
        except KeyError:
            raise CatNameError(
                f"unbound function {expr.func!r}", expr.line, expr.col
            ) from None
        if not isinstance(func, (Builtin, Closure)):
            raise CatTypeError(
                f"{expr.func!r} is not a function", expr.line, expr.col
            )
        if func.arity != len(expr.args):
            raise CatTypeError(
                f"{expr.func!r} expects {func.arity} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
                expr.col,
            )
        args = [self.eval(arg, env) for arg in expr.args]
        if isinstance(func, Builtin):
            try:
                return func(*args)
            except CatError as exc:
                raise type(exc)(exc.message, expr.line, expr.col) from None
        call_env = dict(func.env)
        call_env.update(zip(func.params, args))
        return self.eval(func.body, call_env)

    # -- statement evaluation ----------------------------------------------

    def _let_rec(self, stmt: LetRec) -> None:
        names = [name for name, _ in stmt.bindings]
        for name in names:
            self.env[name] = Relation.empty(self.n)
        # Least fixpoint; every operator is monotone so the chain is
        # increasing and bounded by the full relation.
        max_steps = self.n * self.n * len(names) + 8
        for _ in range(max_steps):
            changed = False
            for name, body in stmt.bindings:
                new = self.eval(body, self.env)
                if not isinstance(new, Relation):
                    raise CatTypeError(
                        f"let rec {name!r} must be relation-valued",
                        stmt.line,
                        stmt.col,
                    )
                if new != self.env[name]:
                    self.env[name] = new
                    changed = True
            if not changed:
                return
        raise CatError(
            f"let rec {', '.join(names)} did not converge "
            f"(non-monotone definition?)",
            stmt.line,
            stmt.col,
        )

    def _check(self, stmt: Check) -> None:
        from ..models.base import witness_for

        value = self.eval(stmt.expr, self.env)
        rel = _as_relation(value, self.n, stmt.expr)
        witness = witness_for(stmt.kind, rel)
        holds = witness is None
        if stmt.negated:
            holds = not holds
        result = CheckResult(
            stmt.name, stmt.kind, stmt.negated, stmt.flag, rel, holds, witness
        )
        if stmt.flag:
            self.flags.append(result)
        else:
            self.checks.append(result)

    def run(self, model: Model, _included: bool = False) -> None:
        for stmt in model.statements:
            if isinstance(stmt, Let):
                if not _included:
                    self._pristine = False
                if stmt.params:
                    self.env[stmt.name] = Closure(
                        stmt.name, stmt.params, stmt.body, dict(self.env)
                    )
                else:
                    self.env[stmt.name] = self.eval(stmt.body, self.env)
            elif isinstance(stmt, LetRec):
                if not _included:
                    self._pristine = False
                self._let_rec(stmt)
            elif isinstance(stmt, Check):
                self._check(stmt)
            elif isinstance(stmt, Include):
                self._include(stmt)
            elif isinstance(stmt, Show):
                continue
            else:
                raise CatError(
                    f"unhandled statement {type(stmt).__name__}",
                    stmt.line,
                    stmt.col,
                )

    def _include(self, stmt: Include) -> None:
        if self.loader is None:
            raise CatError(
                f'include "{stmt.filename}" needs a loader', stmt.line, stmt.col
            )
        if stmt.filename in self.included:
            return
        before_included = frozenset(self.included)
        self.included.add(stmt.filename)
        if self._pristine:
            trail = self._trail + (stmt.filename,)
            self._trail = trail
            # The loader is part of the key: the same filename may
            # resolve to different source under different loaders.
            key = ("cat.include", self.loader, trail)
            cached = self.a._memo.get(key)
            if cached is not None:
                delta, checks, flags, covered = cached
                self.env.update(delta)
                self.checks.extend(checks)
                self.flags.extend(flags)
                # Nested includes covered by the cached delta must be
                # marked, or a later explicit include re-applies them.
                self.included.update(covered)
                return
            before = dict(self.env)
            before_checks = len(self.checks)
            before_flags = len(self.flags)
            self.run(self.loader(stmt.filename), _included=True)
            missing = object()
            delta = {
                name: value
                for name, value in self.env.items()
                if before.get(name, missing) is not value
            }
            self.a._memo[key] = (
                delta,
                tuple(self.checks[before_checks:]),
                tuple(self.flags[before_flags:]),
                frozenset(self.included) - before_included,
            )
            return
        self.run(self.loader(stmt.filename), _included=True)


def evaluate(
    model: Model | str,
    x: "Execution | CandidateAnalysis",
    loader: Loader | None = None,
) -> EvalResult:
    """Evaluate ``model`` (parsed or source text) against ``x`` (an
    execution or its shared candidate analysis)."""
    if isinstance(model, str):
        model = parse(model)
    ev = _Evaluator(x, loader)
    ev.run(model)
    return EvalResult(model.title, ev.checks, ev.flags, ev.env)


def evaluate_expr(source: str, x: "Execution | CandidateAnalysis") -> Value:
    """Evaluate a single expression against ``x`` with the base env only."""
    from .parser import parse_expression

    ev = _Evaluator(x, None)
    return ev.eval(parse_expression(source), ev.env)
