"""The initial .cat environment: primitive sets, relations, and functions
bound from an :class:`~repro.core.execution.Execution`.

Everything else (``rfe``, ``po_loc``, ``fencerel``, ``weaklift``, ...) is
*defined in the language* by ``library/stdlib.cat``, mirroring how herd
ships a prelude.  Keeping the builtin surface small makes the
cross-validation against the native Python models meaningful: the .cat
files really do reconstruct the models from the same primitives.

Binding table
=============

Event sets
    ``_`` (all events), ``R``, ``W``, ``F``, ``M`` (= R ∪ W), ``CALL``,
    ``ACQ``, ``REL``, ``ACQREL``, ``SC``, ``RLX``, ``ATO``, ``X``
    (exclusives), the fence flavours ``MFENCE SYNC LWSYNC ISYNC DMB
    DMB.LD DMB.ST ISB``, and ``TXN``/``TXNAT`` (events in successful /
    atomic transactions).

Relations
    ``id``, ``po``, ``rf``, ``co``, ``fr``, ``loc`` (same location),
    ``int`` (same thread), ``ext`` (different threads), ``addr``,
    ``data``, ``ctrl``, ``rmw``, ``stxn``, ``stxnat``, ``tfence``.

Functions
    ``domain(r)`` and ``range(r)``, both set-valued.
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .errors import CatTypeError

__all__ = ["Value", "Builtin", "base_env", "SET_NAMES", "RELATION_NAMES"]

#: Runtime values: an event set, a relation, or a (builtin or user) function.
Value = Union[frozenset, Relation, "Builtin", "Closure"]


class Builtin:
    """A primitive function exposed to .cat code."""

    def __init__(self, name: str, arity: int, fn: Callable[..., Value]) -> None:
        self.name = name
        self.arity = arity
        self.fn = fn

    def __call__(self, *args: Value) -> Value:
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"<builtin {self.name}/{self.arity}>"


class Closure:
    """A user function ``let f(x, y) = body`` with its defining env."""

    def __init__(self, name, params, body, env) -> None:
        self.name = name
        self.params = params
        self.body = body
        self.env = env

    @property
    def arity(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return f"<fun {self.name}/{self.arity}>"


#: Names bound to event sets by :func:`base_env` (used by tests/docs).
SET_NAMES = (
    "_",
    "R",
    "W",
    "F",
    "M",
    "CALL",
    "ACQ",
    "REL",
    "ACQREL",
    "SC",
    "RLX",
    "ATO",
    "X",
    "MFENCE",
    "SYNC",
    "LWSYNC",
    "ISYNC",
    "DMB",
    "DMB.LD",
    "DMB.ST",
    "ISB",
    "FENCE.RW.RW",
    "FENCE.R.RW",
    "FENCE.RW.W",
    "FENCE.TSO",
    "TXN",
    "TXNAT",
)

#: Names bound to relations by :func:`base_env`.
RELATION_NAMES = (
    "id",
    "po",
    "rf",
    "co",
    "fr",
    "loc",
    "int",
    "ext",
    "addr",
    "data",
    "ctrl",
    "rmw",
    "stxn",
    "stxnat",
    "tfence",
)


def _domain(rel: Value) -> frozenset:
    if not isinstance(rel, Relation):
        raise CatTypeError("domain() expects a relation")
    return rel.domain()


def _range(rel: Value) -> frozenset:
    if not isinstance(rel, Relation):
        raise CatTypeError("range() expects a relation")
    return rel.codomain()


def base_env(x: Execution) -> dict[str, Value]:
    """The primitive environment for evaluating .cat code against ``x``."""
    n = x.n
    all_events = frozenset(range(n))

    def labelled(label: str) -> frozenset:
        return frozenset(i for i, e in enumerate(x.events) if e.has(label))

    atomic_txn_events = frozenset(
        e for txn in x.txns if txn.atomic for e in txn.events
    )

    env: dict[str, Value] = {
        # -- event sets ---------------------------------------------------
        "_": all_events,
        "R": x.reads,
        "W": x.writes,
        "F": x.fences,
        "M": x.reads | x.writes,
        "CALL": x.calls,
        "ACQ": labelled(Label.ACQ),
        "REL": labelled(Label.REL),
        "ACQREL": labelled(Label.ACQ_REL),
        "SC": labelled(Label.SC),
        "RLX": labelled(Label.RLX),
        "ATO": labelled(Label.ATO),
        "X": labelled(Label.EXCL),
        "MFENCE": labelled(Label.MFENCE),
        "SYNC": labelled(Label.SYNC),
        "LWSYNC": labelled(Label.LWSYNC),
        "ISYNC": labelled(Label.ISYNC),
        "DMB": labelled(Label.DMB),
        "DMB.LD": labelled(Label.DMB_LD),
        "DMB.ST": labelled(Label.DMB_ST),
        "ISB": labelled(Label.ISB),
        "FENCE.RW.RW": labelled(Label.FENCE_RW_RW),
        "FENCE.R.RW": labelled(Label.FENCE_R_RW),
        "FENCE.RW.W": labelled(Label.FENCE_RW_W),
        "FENCE.TSO": labelled(Label.FENCE_TSO),
        "TXN": x.txn_events,
        "TXNAT": atomic_txn_events,
        # -- relations ----------------------------------------------------
        "id": Relation.identity(n),
        "po": x.po,
        "rf": x.rf_rel,
        "co": x.co_rel,
        "fr": x.fr,
        "loc": x.sloc,
        "int": x.sthd,
        "ext": Relation.full(n) - x.sthd,
        "addr": x.addr_rel,
        "data": x.data_rel,
        "ctrl": x.ctrl_rel,
        "rmw": x.rmw_rel,
        "stxn": x.stxn,
        "stxnat": x.stxnat,
        "tfence": x.tfence,
        # -- functions ----------------------------------------------------
        "domain": Builtin("domain", 1, _domain),
        "range": Builtin("range", 1, _range),
    }
    return env
