"""The initial .cat environment: primitive sets, relations, and functions
bound from an :class:`~repro.core.execution.Execution`.

Everything else (``rfe``, ``po_loc``, ``fencerel``, ``weaklift``, ...) is
*defined in the language* by ``library/stdlib.cat``, mirroring how herd
ships a prelude.  Keeping the builtin surface small makes the
cross-validation against the native Python models meaningful: the .cat
files really do reconstruct the models from the same primitives.

Binding table
=============

Event sets
    ``_`` (all events), ``R``, ``W``, ``F``, ``M`` (= R ∪ W), ``CALL``,
    ``ACQ``, ``REL``, ``ACQREL``, ``SC``, ``RLX``, ``ATO``, ``X``
    (exclusives), the fence flavours ``MFENCE SYNC LWSYNC ISYNC DMB
    DMB.LD DMB.ST ISB``, and ``TXN``/``TXNAT`` (events in successful /
    atomic transactions).

Relations
    ``id``, ``po``, ``rf``, ``co``, ``fr``, ``loc`` (same location),
    ``int`` (same thread), ``ext`` (different threads), ``addr``,
    ``data``, ``ctrl``, ``rmw``, ``stxn``, ``stxnat``, ``tfence``.

Functions
    ``domain(r)`` and ``range(r)``, both set-valued.
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .errors import CatTypeError

__all__ = ["Value", "Builtin", "base_env", "SET_NAMES", "RELATION_NAMES"]

#: Runtime values: an event set, a relation, or a (builtin or user) function.
Value = Union[frozenset, Relation, "Builtin", "Closure"]


class Builtin:
    """A primitive function exposed to .cat code."""

    def __init__(self, name: str, arity: int, fn: Callable[..., Value]) -> None:
        self.name = name
        self.arity = arity
        self.fn = fn

    def __call__(self, *args: Value) -> Value:
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"<builtin {self.name}/{self.arity}>"


class Closure:
    """A user function ``let f(x, y) = body`` with its defining env."""

    def __init__(self, name, params, body, env) -> None:
        self.name = name
        self.params = params
        self.body = body
        self.env = env

    @property
    def arity(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return f"<fun {self.name}/{self.arity}>"


#: Names bound to event sets by :func:`base_env` (used by tests/docs).
SET_NAMES = (
    "_",
    "R",
    "W",
    "F",
    "M",
    "CALL",
    "ACQ",
    "REL",
    "ACQREL",
    "SC",
    "RLX",
    "ATO",
    "X",
    "MFENCE",
    "SYNC",
    "LWSYNC",
    "ISYNC",
    "DMB",
    "DMB.LD",
    "DMB.ST",
    "ISB",
    "FENCE.RW.RW",
    "FENCE.R.RW",
    "FENCE.RW.W",
    "FENCE.TSO",
    "TXN",
    "TXNAT",
)

#: Names bound to relations by :func:`base_env`.
RELATION_NAMES = (
    "id",
    "po",
    "rf",
    "co",
    "fr",
    "loc",
    "int",
    "ext",
    "addr",
    "data",
    "ctrl",
    "rmw",
    "stxn",
    "stxnat",
    "tfence",
)


def _domain(rel: Value) -> frozenset:
    if not isinstance(rel, Relation):
        raise CatTypeError("domain() expects a relation")
    return rel.domain()


def _range(rel: Value) -> frozenset:
    if not isinstance(rel, Relation):
        raise CatTypeError("range() expects a relation")
    return rel.codomain()


def base_env(x: "Execution | CandidateAnalysis") -> dict[str, Value]:
    """The primitive environment for evaluating .cat code against ``x``.

    The bindings are built off the shared
    :class:`~repro.core.analysis.CandidateAnalysis` and memoized there,
    so the many ``.cat`` models of a campaign (and repeated evaluations
    of one model) bootstrap their environment from one computation per
    candidate.  Each call returns a fresh ``dict`` — evaluators mutate
    their environment — over the shared values.
    """
    a = analyze(x)
    return dict(a.memo("cat.base_env", lambda: _build_env(a)))


def _build_env(a: CandidateAnalysis) -> dict[str, Value]:
    n = a.n

    env: dict[str, Value] = {
        # -- event sets ---------------------------------------------------
        "_": frozenset(range(n)),
        "R": a.reads,
        "W": a.writes,
        "F": a.fences,
        "M": a.accesses,
        "CALL": a.calls,
        "ACQ": a.labelled(Label.ACQ),
        "REL": a.labelled(Label.REL),
        "ACQREL": a.labelled(Label.ACQ_REL),
        "SC": a.labelled(Label.SC),
        "RLX": a.labelled(Label.RLX),
        "ATO": a.labelled(Label.ATO),
        "X": a.labelled(Label.EXCL),
        "MFENCE": a.labelled(Label.MFENCE),
        "SYNC": a.labelled(Label.SYNC),
        "LWSYNC": a.labelled(Label.LWSYNC),
        "ISYNC": a.labelled(Label.ISYNC),
        "DMB": a.labelled(Label.DMB),
        "DMB.LD": a.labelled(Label.DMB_LD),
        "DMB.ST": a.labelled(Label.DMB_ST),
        "ISB": a.labelled(Label.ISB),
        "FENCE.RW.RW": a.labelled(Label.FENCE_RW_RW),
        "FENCE.R.RW": a.labelled(Label.FENCE_R_RW),
        "FENCE.RW.W": a.labelled(Label.FENCE_RW_W),
        "FENCE.TSO": a.labelled(Label.FENCE_TSO),
        "TXN": a.txn_events,
        "TXNAT": a.atomic_txn_events,
        # -- relations ----------------------------------------------------
        "id": Relation.identity(n),
        "po": a.po,
        "rf": a.rf_rel,
        "co": a.co_rel,
        "fr": a.fr,
        "loc": a.sloc,
        "int": a.sthd,
        "ext": a.ext,
        "addr": a.addr_rel,
        "data": a.data_rel,
        "ctrl": a.ctrl_rel,
        "rmw": a.rmw_rel,
        "stxn": a.stxn,
        "stxnat": a.stxnat,
        "tfence": a.tfence,
        # -- functions ----------------------------------------------------
        "domain": Builtin("domain", 1, _domain),
        "range": Builtin("range", 1, _range),
    }
    return env
