"""Canonical forms for executions (symmetry breaking in the enumerator).

Two executions are *symmetric* when they differ only by renaming threads
or locations; synthesizing both would double-count every litmus test.  The
canonical key computed here is invariant under both renamings: we take the
lexicographically least structural signature over all thread permutations,
with locations renamed in first-occurrence order for each permutation.
"""

from __future__ import annotations

import itertools

from ..core.execution import Execution

__all__ = ["canonical_key"]


def _signature_under(x: Execution, order: tuple[int, ...]) -> tuple:
    """The structural signature of ``x`` with threads permuted by ``order``
    and locations renamed by first occurrence in that reading."""
    rename: dict[str, int] = {}
    event_sig: dict[int, tuple] = {}
    new_id: dict[int, int] = {}
    counter = 0
    for tid in order:
        for eid in x.threads[tid]:
            event = x.events[eid]
            loc = event.loc
            if loc is not None and loc not in rename:
                rename[loc] = len(rename)
            event_sig[eid] = (
                event.kind.value,
                rename.get(loc, -1),
                tuple(sorted(event.labels)),
            )
            new_id[eid] = counter
            counter += 1

    def pairs(edges) -> tuple:
        return tuple(sorted((new_id[a], new_id[b]) for a, b in edges))

    threads_sig = tuple(
        tuple(event_sig[eid] for eid in x.threads[tid]) for tid in order
    )
    co_sig = tuple(
        sorted(
            tuple(new_id[w] for w in ws)
            for ws in x.co.values()
            if len(ws) > 1
        )
    )
    txn_sig = tuple(
        sorted(
            (tuple(new_id[e] for e in txn.events), txn.atomic)
            for txn in x.txns
        )
    )
    return (
        threads_sig,
        pairs(x.rf.items()),  # (read, write) pairs
        co_sig,
        pairs(x.addr),
        pairs(x.data),
        pairs(x.ctrl),
        pairs(x.rmw),
        txn_sig,
    )


def canonical_key(x: Execution) -> tuple:
    """A key equal for exactly the thread/location-renamings of ``x``."""
    n_threads = len(x.threads)
    if n_threads <= 1:
        return _signature_under(x, tuple(range(n_threads)))
    # Only permute threads of equal length (others cannot be symmetric),
    # which keeps the permutation count tiny in practice.
    by_len: dict[int, list[int]] = {}
    for tid, thread in enumerate(x.threads):
        by_len.setdefault(len(thread), []).append(tid)
    groups = [by_len[length] for length in sorted(by_len, reverse=True)]
    best: tuple | None = None
    for perm_parts in itertools.product(
        *(itertools.permutations(group) for group in groups)
    ):
        order = tuple(tid for part in perm_parts for tid in part)
        sig = _signature_under(x, order)
        if best is None or sig < best:
            best = sig
    return best
