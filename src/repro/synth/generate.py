"""Exhaustive bounded enumeration of candidate executions.

This is the search space of the paper's Memalloy runs, generated directly:
every well-formed execution over an architecture's vocabulary up to a
bounded event count, with threads/locations canonicalised so symmetric
variants appear once (section 4.2: "we exhaustively generate all litmus
tests (up to a bounded size)").

The space is a nested product:

1. thread-size partitions of the event count;
2. event kinds and label variants per slot (fences never first/last in a
   thread — a boundary fence orders nothing and can never appear in a
   minimal test);
3. locations as restricted-growth strings over the access slots;
4. coherence orders (permutations of each location's writes);
5. reads-from choices (any same-location write, or the initial value);
6. dependency edges (up to ``max_deps``, kinds per the vocabulary);
7. RMW pairs (up to ``max_rmws``);
8. successful transactions (disjoint contiguous po-intervals, up to
   ``max_txns``).

Symmetric duplicates are suppressed with
:func:`repro.synth.canonical.canonical_key`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..core.events import Event, EventKind, Label
from ..core.execution import Execution, Transaction
from .canonical import canonical_key
from .vocab import ArchVocab, get_vocab

__all__ = ["EnumerationSpace", "enumerate_executions", "thread_partitions"]


@dataclass(frozen=True)
class EnumerationSpace:
    """Bounds for one enumeration run."""

    vocab: ArchVocab
    n_events: int
    max_threads: int = 4
    max_locations: int = 3
    max_deps: int = 2
    max_rmws: int = 1
    max_txns: int = 3
    require_txn: bool = False
    include_fences: bool = True
    txn_atomic_variants: tuple[bool, ...] = (False,)

    @classmethod
    def for_arch(cls, arch: str, n_events: int, **overrides) -> "EnumerationSpace":
        return cls(vocab=get_vocab(arch), n_events=n_events, **overrides)


def thread_partitions(n: int, max_threads: int) -> Iterator[tuple[int, ...]]:
    """Partitions of ``n`` into at most ``max_threads`` non-increasing parts."""

    def rec(remaining: int, cap: int, parts: tuple[int, ...]) -> Iterator:
        if remaining == 0:
            yield parts
            return
        if len(parts) == max_threads:
            return
        for part in range(min(cap, remaining), 0, -1):
            yield from rec(remaining - part, part, parts + (part,))

    yield from rec(n, n, ())


def _event_variants(vocab: ArchVocab, include_fences: bool) -> list[Event]:
    variants: list[Event] = []
    for labels in vocab.read_labels:
        variants.append(Event(EventKind.READ, "?", labels))
    for labels in vocab.write_labels:
        variants.append(Event(EventKind.WRITE, "?", labels))
    if include_fences:
        for kind in vocab.fence_kinds:
            variants.append(Event(EventKind.FENCE, None, frozenset({kind})))
    return variants


def _location_assignments(
    n_accesses: int, max_locations: int
) -> Iterator[tuple[int, ...]]:
    """Restricted-growth strings: canonical location assignments (the
    first access uses location 0, each later access any already-used
    location or the next fresh one)."""

    def gen(prefix: tuple[int, ...], used: int) -> Iterator[tuple[int, ...]]:
        if len(prefix) == n_accesses:
            yield prefix
            return
        for loc in range(min(used + 1, max_locations)):
            yield from gen(prefix + (loc,), max(used, loc + 1))

    yield from gen((), 0)


def _interval_sets(
    length: int, forbidden_singletons: frozenset[int]
) -> list[tuple[tuple[int, int], ...]]:
    """All sets of disjoint, non-adjacent-ok contiguous intervals over
    ``range(length)``; intervals covering only forbidden positions (pure
    fence runs) are omitted."""
    intervals = [
        (a, b)
        for a in range(length)
        for b in range(a, length)
        if not all(p in forbidden_singletons for p in range(a, b + 1))
    ]

    out: list[tuple[tuple[int, int], ...]] = []

    def rec(start: int, chosen: tuple[tuple[int, int], ...]) -> None:
        out.append(chosen)
        for a, b in intervals:
            if a >= start:
                rec(b + 1, chosen + ((a, b),))

    rec(0, ())
    return out


def enumerate_executions(space: EnumerationSpace) -> Iterator[Execution]:
    """Yield every canonical well-formed execution in ``space``."""
    seen: set = set()
    for execution in _raw_executions(space):
        key = canonical_key(execution)
        if key in seen:
            continue
        seen.add(key)
        yield execution


def _raw_executions(space: EnumerationSpace) -> Iterator[Execution]:
    vocab = space.vocab
    variants = _event_variants(vocab, space.include_fences)
    loc_names = [f"x{i}" for i in range(space.max_locations)]

    for partition in thread_partitions(space.n_events, space.max_threads):
        threads: list[list[int]] = []
        next_id = 0
        for size in partition:
            threads.append(list(range(next_id, next_id + size)))
            next_id += size
        boundary = {t[0] for t in threads} | {t[-1] for t in threads}

        for kinds in itertools.product(variants, repeat=space.n_events):
            if any(
                kinds[e].is_fence and e in boundary
                for e in range(space.n_events)
            ):
                continue
            accesses = [e for e in range(space.n_events) if kinds[e].is_access]
            if space.require_txn and not accesses:
                continue

            for loc_assign in _location_assignments(
                len(accesses), space.max_locations
            ):
                events: list[Event] = []
                for e in range(space.n_events):
                    proto = kinds[e]
                    if proto.is_access:
                        loc = loc_names[loc_assign[accesses.index(e)]]
                        events.append(Event(proto.kind, loc, proto.labels))
                    else:
                        events.append(proto)

                yield from _expand_memory_and_structure(
                    space, events, threads
                )


def _expand_memory_and_structure(
    space: EnumerationSpace, events: list[Event], threads: list[list[int]]
) -> Iterator[Execution]:
    n = len(events)
    writes_by_loc: dict[str, list[int]] = {}
    reads = []
    for e, event in enumerate(events):
        if event.is_write:
            writes_by_loc.setdefault(event.loc, []).append(e)
        elif event.is_read:
            reads.append(e)

    tid_of = {}
    pos_of = {}
    for tid, thread in enumerate(threads):
        for pos, e in enumerate(thread):
            tid_of[e] = tid
            pos_of[e] = pos

    # Dependency candidates: read -> po-later event in the same thread.
    dep_choices: list[tuple[tuple[int, int], str]] = []
    for r in reads:
        thread = threads[tid_of[r]]
        for t in thread[pos_of[r] + 1:]:
            target = events[t]
            for kind in space.vocab.dep_kinds:
                if kind == "data" and not target.is_write:
                    continue
                if kind == "addr" and not target.is_access:
                    continue
                if kind == "ctrl" and not target.is_write:
                    continue
                dep_choices.append(((r, t), kind))

    # RMW candidates: same-location read-before-write in one thread.
    rmw_choices: list[tuple[int, int]] = []
    if space.vocab.rmw:
        for r in reads:
            thread = threads[tid_of[r]]
            for w in thread[pos_of[r] + 1:]:
                if events[w].is_write and events[w].loc == events[r].loc:
                    rmw_choices.append((r, w))

    # Transaction candidates per thread.
    fence_positions = [
        frozenset(
            pos for pos, e in enumerate(thread) if events[e].is_fence
        )
        for thread in threads
    ]
    txn_spaces = [
        _interval_sets(len(thread), fence_positions[tid])
        for tid, thread in enumerate(threads)
    ]

    co_spaces = [
        list(itertools.permutations(ws)) if len(ws) > 1 else [tuple(ws)]
        for ws in writes_by_loc.values()
    ]
    co_locs = list(writes_by_loc)
    rf_spaces = [
        [None] + writes_by_loc.get(events[r].loc, []) for r in reads
    ]

    dep_sets = _dependency_sets(dep_choices, space.max_deps)
    rmw_sets = _rmw_sets(rmw_choices, space.max_rmws)

    for co_choice in itertools.product(*co_spaces):
        co = dict(zip(co_locs, co_choice))
        for rf_choice in itertools.product(*rf_spaces):
            rf = {
                r: w for r, w in zip(reads, rf_choice) if w is not None
            }
            for deps in dep_sets:
                for rmw in rmw_sets:
                    yield from _expand_txns(
                        space, events, threads, rf, co, deps, rmw, txn_spaces
                    )


def _dependency_sets(
    choices: list[tuple[tuple[int, int], str]], max_deps: int
) -> list[dict[str, tuple[tuple[int, int], ...]]]:
    """All ways to place at most ``max_deps`` dependency edges, one kind
    per (source, target) pair."""
    pairs = sorted({pair for pair, _ in choices})
    kinds_of: dict[tuple[int, int], list[str]] = {}
    for pair, kind in choices:
        kinds_of.setdefault(pair, []).append(kind)

    out: list[dict[str, tuple[tuple[int, int], ...]]] = []
    for count in range(min(max_deps, len(pairs)) + 1):
        for subset in itertools.combinations(pairs, count):
            for kind_choice in itertools.product(
                *(kinds_of[p] for p in subset)
            ):
                grouped: dict[str, list[tuple[int, int]]] = {}
                for pair, kind in zip(subset, kind_choice):
                    grouped.setdefault(kind, []).append(pair)
                out.append(
                    {k: tuple(v) for k, v in grouped.items()}
                )
    return out


def _rmw_sets(
    choices: list[tuple[int, int]], max_rmws: int
) -> list[tuple[tuple[int, int], ...]]:
    """All ways to place at most ``max_rmws`` non-overlapping RMW pairs."""
    out: list[tuple[tuple[int, int], ...]] = [()]
    for count in range(1, min(max_rmws, len(choices)) + 1):
        for subset in itertools.combinations(choices, count):
            used: set[int] = set()
            ok = True
            for r, w in subset:
                if r in used or w in used:
                    ok = False
                    break
                used.update((r, w))
            if ok:
                out.append(subset)
    return out


def _expand_txns(
    space: EnumerationSpace,
    events: list[Event],
    threads: list[list[int]],
    rf: dict[int, int],
    co: dict[str, tuple[int, ...]],
    deps: dict[str, tuple[tuple[int, int], ...]],
    rmw: tuple[tuple[int, int], ...],
    txn_spaces: list[list[tuple[tuple[int, int], ...]]],
) -> Iterator[Execution]:
    # Exclusive labels on RMW halves (hardware flavour; harmless for SC).
    if rmw:
        events = list(events)
        for r, w in rmw:
            events[r] = events[r].add_labels(Label.EXCL)
            events[w] = events[w].add_labels(Label.EXCL)

    for txn_choice in itertools.product(*txn_spaces):
        total = sum(len(intervals) for intervals in txn_choice)
        if total > space.max_txns:
            continue
        if space.require_txn and total == 0:
            continue
        interval_lists = [
            [
                tuple(threads[tid][p] for p in range(a, b + 1))
                for a, b in intervals
            ]
            for tid, intervals in enumerate(txn_choice)
        ]
        flat = [ivl for lst in interval_lists for ivl in lst]
        for flags in itertools.product(
            space.txn_atomic_variants, repeat=len(flat)
        ):
            txns = [
                Transaction(events_ids, atomic)
                for events_ids, atomic in zip(flat, flags)
            ]
            yield Execution(
                events=events,
                threads=threads,
                rf=rf,
                co=co,
                addr=deps.get("addr", ()),
                data=deps.get("data", ()),
                ctrl=deps.get("ctrl", ()),
                rmw=rmw,
                txns=txns,
            )
