"""Forbid/Allow conformance-suite synthesis (paper sections 4.2, 5.3).

``synthesize_forbid`` computes the executions that are *minimally
forbidden* by a transactional model yet allowed by its non-transactional
baseline: exactly the tests Table 1 counts.  ``synthesize_allow`` derives
the *maximally allowed* suite as the consistent one-step weakenings of the
Forbid suite.

Per-test discovery timestamps are recorded so the Figure 7 distribution
("% of tests found vs synthesis time") can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.execution import Execution
from ..models.base import MemoryModel
from ..models.registry import get_model
from .canonical import canonical_key
from .generate import EnumerationSpace, enumerate_executions
from .minimality import is_minimal_inconsistent, weakenings
from .vocab import get_vocab

__all__ = ["SynthesisResult", "synthesize_forbid", "synthesize_allow", "synthesize"]


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    arch: str
    n_events: int
    forbid: list[Execution] = field(default_factory=list)
    allow: list[Execution] = field(default_factory=list)
    candidates_examined: int = 0
    inconsistent_seen: int = 0
    elapsed: float = 0.0
    #: seconds-from-start at which each Forbid test was discovered (Fig. 7).
    discovery_times: list[float] = field(default_factory=list)
    exhausted: bool = True

    @property
    def txn_histogram(self) -> dict[int, int]:
        """Forbid tests by transaction count (the 29%/44%/27% split of §5.3)."""
        hist: dict[int, int] = {}
        for x in self.forbid:
            hist[len(x.txns)] = hist.get(len(x.txns), 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> str:
        hist = ", ".join(f"{k} txn: {v}" for k, v in self.txn_histogram.items())
        return (
            f"{self.arch} |E|={self.n_events}: "
            f"{len(self.forbid)} forbid, {len(self.allow)} allow "
            f"({self.candidates_examined} candidates, {self.elapsed:.1f}s"
            f"{'' if self.exhausted else ', TIMED OUT'})"
            + (f" [{hist}]" if hist else "")
        )


def synthesize_forbid(
    arch: str,
    n_events: int,
    space: EnumerationSpace | None = None,
    model: MemoryModel | None = None,
    baseline: MemoryModel | None = None,
    time_budget: float | None = None,
) -> SynthesisResult:
    """Compute the Forbid suite for ``arch`` at the given event bound.

    A Forbid test is an execution that (1) contains at least one
    transaction, (2) is minimally inconsistent under the transactional
    model, and (3) is consistent under the non-transactional baseline
    (so the transaction is what makes it forbidden).
    """
    model = model or get_model(arch)
    baseline = baseline or get_model(arch, tm=False)
    vocab = get_vocab(arch)
    space = space or EnumerationSpace.for_arch(arch, n_events, require_txn=True)

    result = SynthesisResult(arch=arch, n_events=n_events)
    start = time.perf_counter()
    for x in enumerate_executions(space):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            result.exhausted = False
            break
        result.candidates_examined += 1
        if model.consistent(x):
            continue
        result.inconsistent_seen += 1
        if not baseline.consistent(x):
            continue
        if not all(model.consistent(w) for w in weakenings(x, vocab)):
            continue
        result.forbid.append(x)
        result.discovery_times.append(time.perf_counter() - start)
    result.elapsed = time.perf_counter() - start
    return result


def synthesize_allow(
    result: SynthesisResult, model: MemoryModel | None = None
) -> SynthesisResult:
    """Extend ``result`` with the Allow suite: consistent one-step
    weakenings of its Forbid tests (``max-consistent``, section 4.2)."""
    model = model or get_model(result.arch)
    vocab = get_vocab(result.arch)
    seen: set = set()
    allow: list[Execution] = []
    for x in result.forbid:
        for w in weakenings(x, vocab):
            if w.n == 0 or not model.consistent(w):
                continue
            key = canonical_key(w)
            if key in seen:
                continue
            seen.add(key)
            allow.append(w)
    result.allow = allow
    return result


def synthesize(
    arch: str,
    n_events: int,
    time_budget: float | None = None,
    space: EnumerationSpace | None = None,
    model: MemoryModel | None = None,
    baseline: MemoryModel | None = None,
) -> SynthesisResult:
    """Forbid + Allow in one call (the full Table 1 cell).

    ``model``/``baseline`` may be any :class:`MemoryModel`, including an
    :class:`~repro.engine.memo.MemoModel` wrapper — the campaign engine's
    hook for memoized / persistently cached consistency checks.
    """
    result = synthesize_forbid(
        arch,
        n_events,
        space=space,
        time_budget=time_budget,
        model=model,
        baseline=baseline,
    )
    return synthesize_allow(result, model=model)
