"""Test synthesis: the bounded-exhaustive Memalloy replacement, the
Diy-style critical-cycle generator, and MemSynth-style model synthesis."""

from .canonical import canonical_key
from .diy import (
    CLASSIC_CYCLES,
    Cycle,
    Edge,
    cycle_execution,
    enumerate_cycles,
    interesting_cycles,
)
from .generate import EnumerationSpace, enumerate_executions, thread_partitions
from .minimality import is_minimal_inconsistent, weakenings
from .modelsynth import (
    Example,
    ModelParams,
    SketchModel,
    SynthesisOutcome,
    synthesize_model,
)
from .synthesis import SynthesisResult, synthesize, synthesize_allow, synthesize_forbid
from .vocab import VOCABS, ArchVocab, get_vocab

__all__ = [
    "ArchVocab",
    "CLASSIC_CYCLES",
    "Cycle",
    "Edge",
    "Example",
    "ModelParams",
    "SketchModel",
    "SynthesisOutcome",
    "cycle_execution",
    "enumerate_cycles",
    "interesting_cycles",
    "synthesize_model",
    "EnumerationSpace",
    "SynthesisResult",
    "VOCABS",
    "canonical_key",
    "enumerate_executions",
    "get_vocab",
    "is_minimal_inconsistent",
    "synthesize",
    "synthesize_allow",
    "synthesize_forbid",
    "thread_partitions",
    "weakenings",
]
