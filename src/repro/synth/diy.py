"""A Diy-style critical-cycle litmus-test generator.

The paper's related-work section describes Diy [3] — "which generates
litmus tests by enumerating relaxations of SC" — as the classic
alternative to Memalloy-style synthesis.  This module implements that
approach over this repository's execution framework, both because it is
a useful generator in its own right (it scales to shapes the bounded
enumerator cannot reach) and because it provides an independent source
of tests for cross-checking the models and the catalog.

A *candidate relaxation* is an edge kind in the style of diy7 notation:

=================  =========================================================
``Rfe``            inter-thread reads-from
``Fre``            inter-thread from-read
``Wse``            inter-thread coherence (diy calls coe "Ws")
``PodWR`` …        program order between two accesses of *d*\\ ifferent
                   locations, by source/target kind (``WR``, ``WW``,
                   ``RR``, ``RW``)
``PosWR`` …        program order, *s*\\ ame location
``DpAddrdR`` …     address dependency to a different-location read/write
                   (``DpDatadW``, ``DpCtrldW`` analogous)
``FencedWR`` …     program order through a full fence (``LwSyncdWW`` etc.
                   via :data:`FENCE_EDGES`)
``TxndWR`` …       program order inside one transaction (both endpoints
                   in the same successful transaction)
=================  =========================================================

A *cycle* is a sequence of edges; walking it builds exactly one
execution whose event graph contains those edges and wraps around
(section 2 of the diy tool's documentation calls these critical cycles).
The classic shapes fall out immediately::

    SB   = Cycle([PodWR, Fre, PodWR, Fre])
    MP   = Cycle([PodWW, Rfe, PodRR, Fre])
    LB   = Cycle([PodRW, Rfe, PodRW, Rfe])
    2+2W = Cycle([PodWW, Wse, PodWW, Wse])

:func:`cycle_execution` converts a cycle into an
:class:`~repro.core.execution.Execution`; :func:`enumerate_cycles`
enumerates canonical cycles (up to rotation) from a relaxation
vocabulary; and :func:`interesting_cycles` keeps those the target model
*forbids* — the diy notion of a test worth running.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.events import Label
from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel

__all__ = [
    "Edge",
    "Cycle",
    "COM_EDGES",
    "PO_EDGES",
    "DEP_EDGES",
    "FENCE_EDGES",
    "TXN_EDGES",
    "edge",
    "cycle_execution",
    "enumerate_cycles",
    "interesting_cycles",
    "classic",
    "CLASSIC_CYCLES",
]


@dataclass(frozen=True)
class Edge:
    """One candidate relaxation.

    Attributes:
        name: the diy-style name (``"PodWR"``, ``"Rfe"``, ...).
        kind: ``"com"`` for communication edges (they change thread and
            keep the location) or ``"po"`` for program-order edges (they
            stay in the thread and, for *d* edges, change location).
        src: kind of the source event, ``"R"`` or ``"W"``.
        dst: kind of the target event.
        same_loc: for po edges, whether the two accesses share the
            location.
        fence: fence flavour placed between the two accesses (po only).
        dep: dependency kind placed between them (po only).
        txn: both endpoints belong to one successful transaction.
        com: for com edges, which communication relation the edge is
            (``"rf"``, ``"fr"``, ``"ws"``).
    """

    name: str
    kind: str
    src: str
    dst: str
    same_loc: bool = False
    fence: str | None = None
    dep: str | None = None
    txn: bool = False
    com: str | None = None

    def __str__(self) -> str:
        return self.name


def _com_edge(name: str, com: str, src: str, dst: str) -> Edge:
    return Edge(name=name, kind="com", src=src, dst=dst, com=com)


#: The three inter-thread communication edges.
COM_EDGES: dict[str, Edge] = {
    "Rfe": _com_edge("Rfe", "rf", "W", "R"),
    "Fre": _com_edge("Fre", "fr", "R", "W"),
    "Wse": _com_edge("Wse", "ws", "W", "W"),
}

#: Plain program-order edges (d = different location, s = same).
PO_EDGES: dict[str, Edge] = {}
for _s, _d in itertools.product("WR", repeat=2):
    PO_EDGES[f"Pod{_s}{_d}"] = Edge(
        name=f"Pod{_s}{_d}", kind="po", src=_s, dst=_d
    )
    PO_EDGES[f"Pos{_s}{_d}"] = Edge(
        name=f"Pos{_s}{_d}", kind="po", src=_s, dst=_d, same_loc=True
    )

#: Dependency edges: source must be a read.
DEP_EDGES: dict[str, Edge] = {
    "DpAddrdR": Edge("DpAddrdR", "po", "R", "R", dep="addr"),
    "DpAddrdW": Edge("DpAddrdW", "po", "R", "W", dep="addr"),
    "DpDatadW": Edge("DpDatadW", "po", "R", "W", dep="data"),
    "DpCtrldW": Edge("DpCtrldW", "po", "R", "W", dep="ctrl"),
    "DpCtrldR": Edge("DpCtrldR", "po", "R", "R", dep="ctrl"),
}

#: Fenced program-order edges, per fence flavour.
FENCE_EDGES: dict[str, Edge] = {}
for _flavour, _tag in [
    (Label.MFENCE, "MFence"),
    (Label.SYNC, "Sync"),
    (Label.LWSYNC, "LwSync"),
    (Label.DMB, "Dmb"),
    (Label.FENCE_RW_RW, "FenceRwRw"),
]:
    for _s, _d in itertools.product("WR", repeat=2):
        name = f"{_tag}d{_s}{_d}"
        FENCE_EDGES[name] = Edge(
            name=name, kind="po", src=_s, dst=_d, fence=_flavour
        )

#: Program-order edges inside one successful transaction.
TXN_EDGES: dict[str, Edge] = {}
for _s, _d in itertools.product("WR", repeat=2):
    TXN_EDGES[f"Txnd{_s}{_d}"] = Edge(
        name=f"Txnd{_s}{_d}", kind="po", src=_s, dst=_d, txn=True
    )

_ALL_EDGES: dict[str, Edge] = {
    **COM_EDGES,
    **PO_EDGES,
    **DEP_EDGES,
    **FENCE_EDGES,
    **TXN_EDGES,
}


def edge(name: str) -> Edge:
    """Look an edge up by its diy-style name."""
    try:
        return _ALL_EDGES[name]
    except KeyError:
        raise ValueError(
            f"unknown edge {name!r}; known: {', '.join(sorted(_ALL_EDGES))}"
        ) from None


@dataclass(frozen=True)
class Cycle:
    """A critical cycle: a non-empty sequence of edges.

    Valid cycles alternate consistently: each edge's target kind must
    equal the next edge's source kind (wrapping around), communication
    edges keep the location while changing thread, and po edges keep the
    thread.  A cycle needs at least one com edge (otherwise it never
    leaves the thread) and must return to its starting location.
    """

    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle needs at least one edge")

    @classmethod
    def of(cls, *names: str) -> "Cycle":
        """Build a cycle from edge names: ``Cycle.of("PodWR", "Fre", ...)``."""
        return cls(tuple(edge(n) for n in names))

    def __str__(self) -> str:
        return " ".join(e.name for e in self.edges)

    # -- validity ---------------------------------------------------------

    def problems(self) -> list[str]:
        """Why this cycle cannot be realised (empty list = valid)."""
        out = []
        n = len(self.edges)
        if all(e.kind == "po" for e in self.edges):
            out.append("cycle never leaves the thread (no com edge)")
        for i, e in enumerate(self.edges):
            nxt = self.edges[(i + 1) % n]
            if e.dst != nxt.src:
                out.append(
                    f"edge {i} ({e.name}) ends at {e.dst} but edge "
                    f"{(i + 1) % n} ({nxt.name}) starts at {nxt.src}"
                )
        # Location balance: com and Pos edges preserve the location, Pod
        # edges change it; the walk must return to the start location.
        # With fresh locations per Pod edge this only fails if there are
        # no Pod edges but the events cannot all share one location
        # consistently — which is always realisable, so nothing to check.
        # Thread balance: consecutive po edges stay in one thread; each
        # com edge switches. The walk returns to the starting thread iff
        # it is a cycle in the graph sense, which the construction
        # guarantees by folding the last thread into the first.
        return out

    def is_valid(self) -> bool:
        return not self.problems()

    def canonical(self) -> "Cycle":
        """The lexicographically-least rotation (for deduplication)."""
        rotations = [
            self.edges[i:] + self.edges[:i] for i in range(len(self.edges))
        ]
        return Cycle(min(rotations, key=lambda es: [e.name for e in es]))


def cycle_execution(cycle: Cycle) -> Execution:
    """Realise a valid cycle as an execution.

    The walk starts a new thread at every com edge and a new location at
    every non-same-loc po edge; rf/ws/fr edges are oriented so that the
    cycle is exactly the execution's ``com ∪ po`` critical cycle: for
    ``Rfe`` the source write feeds the target read, for ``Wse`` the
    source write is co-earlier, and for ``Fre`` the source read observes
    the co-predecessor of the target write.
    """
    problems = cycle.problems()
    if problems:
        raise ValueError("; ".join(problems))

    from ..core.builder import ExecutionBuilder

    builder = ExecutionBuilder()
    edges = cycle.edges

    # Rotate so the cycle starts right after a com edge: per-thread runs
    # are then maximal and the final edge is the inter-thread wrap.
    first_com = next(i for i, e in enumerate(edges) if e.kind == "com")
    edges = edges[first_com + 1:] + edges[: first_com + 1]

    # Locations form their own cycle: every non-same-loc po edge steps to
    # the next location, and the walk must return to the starting
    # location when it wraps (com edges preserve the location).
    n_locs = sum(
        1 for e in edges if e.kind == "po" and not e.same_loc
    ) or 1
    loc_step = 0
    current_loc = "x0"

    threads = [builder.thread()]
    events: list[int] = []  # event ids, one per edge source

    def add_event(kind: str, loc: str, thread) -> int:
        if kind == "W":
            return thread.write(loc)
        return thread.read(loc)

    # First event of the walk (target of the rotated-away com edge).
    events.append(add_event(edges[-1].dst, current_loc, threads[-1]))

    txn_runs: list[tuple[int, int]] = []  # (first, last) walk indices

    for i, e in enumerate(edges[:-1]):
        if e.kind == "com":
            threads.append(builder.thread())
            # com edges preserve the location.
        elif not e.same_loc:
            loc_step += 1
            current_loc = f"x{loc_step % n_locs}"
        events.append(add_event(e.dst, current_loc, threads[-1]))
        walk_src, walk_dst = len(events) - 2, len(events) - 1
        if e.kind == "po":
            if e.dep == "addr":
                builder.addr(events[walk_src], events[walk_dst])
            elif e.dep == "data":
                builder.data(events[walk_src], events[walk_dst])
            elif e.dep == "ctrl":
                builder.ctrl(events[walk_src], events[walk_dst])
            if e.txn:
                txn_runs.append((walk_src, walk_dst))

    # Communication constraints: rf and ws first, then fr (an fr source
    # that reads from some write via an rf edge needs a coherence edge
    # from that write to the fr target).
    n = len(events)
    rf_map: dict[int, int] = {}
    for i, e in enumerate(edges):
        src, dst = events[i], events[(i + 1) % n]
        if e.kind != "com":
            continue
        if e.com == "rf":
            builder.rf(src, dst)
            rf_map[dst] = src
        elif e.com == "ws":
            builder.co(src, dst)
    for i, e in enumerate(edges):
        src, dst = events[i], events[(i + 1) % n]
        if e.kind == "com" and e.com == "fr":
            if src in rf_map:
                builder.co(rf_map[src], dst)
            # Otherwise the read observes the initial value and is
            # fr-before every write to the location automatically.

    # Coalesce overlapping transactional runs into intervals.
    merged: list[list[int]] = []
    for a, b in sorted(txn_runs):
        if merged and a <= merged[-1][-1]:
            merged[-1][-1] = max(merged[-1][-1], b)
        else:
            merged.append([a, b])
    x = builder.build()
    if merged or any(e.fence for e in edges):
        x = _decorate(x, cycle, edges, events, merged)
    return x


def _decorate(
    x: Execution,
    cycle: Cycle,
    edges: Sequence[Edge],
    events: Sequence[int],
    txn_intervals: Sequence[Sequence[int]],
) -> Execution:
    """Insert fence events and transaction spans into the built execution.

    The builder cannot insert fences between already-appended events, so
    fenced cycles are rebuilt event list in hand.
    """
    from ..core.events import Event, EventKind

    new_events: list[Event] = []
    new_threads: list[list[int]] = []
    remap: dict[int, int] = {}

    fence_after: dict[int, str] = {}
    for i, e in enumerate(edges[:-1]):
        if e.kind == "po" and e.fence:
            fence_after[events[i]] = e.fence
    # The rotated last edge is always a com edge, so no fence there.

    for thread in x.threads:
        ids: list[int] = []
        for eid in thread:
            remap[eid] = len(new_events)
            new_events.append(x.events[eid])
            ids.append(remap[eid])
            if eid in fence_after:
                fid = len(new_events)
                new_events.append(
                    Event(EventKind.FENCE, None, frozenset({fence_after[eid]}))
                )
                ids.append(fid)
        new_threads.append(ids)

    def map_pairs(pairs):
        return [(remap[a], remap[b]) for a, b in pairs]

    txns = [
        Transaction(
            tuple(
                remap[events[w]]
                for w in range(interval[0], interval[-1] + 1)
            )
        )
        for interval in txn_intervals
    ]
    # Transactions must cover contiguous runs including interleaved
    # fences: expand each span to the contiguous po range.
    expanded: list[Transaction] = []
    for txn in txns:
        lo, hi = min(txn.events), max(txn.events)
        thread = next(t for t in new_threads if lo in t)
        span = [eid for eid in thread if lo <= eid <= hi]
        expanded.append(Transaction(tuple(span)))

    return Execution(
        events=new_events,
        threads=new_threads,
        rf={remap[r]: remap[w] for r, w in x.rf.items()},
        co={
            loc: tuple(remap[w] for w in order) for loc, order in x.co.items()
        },
        addr=map_pairs(x.addr),
        data=map_pairs(x.data),
        ctrl=map_pairs(x.ctrl),
        rmw=map_pairs(x.rmw),
        txns=expanded,
    )


#: The classic six, as critical cycles.
CLASSIC_CYCLES: dict[str, Cycle] = {
    "sb": Cycle.of("PodWR", "Fre", "PodWR", "Fre"),
    "mp": Cycle.of("PodWW", "Rfe", "PodRR", "Fre"),
    "lb": Cycle.of("PodRW", "Rfe", "PodRW", "Rfe"),
    "wrc": Cycle.of("Rfe", "PodRW", "Rfe", "PodRR", "Fre"),
    "iriw": Cycle.of("Rfe", "PodRR", "Fre", "Rfe", "PodRR", "Fre"),
    "2+2w": Cycle.of("PodWW", "Wse", "PodWW", "Wse"),
}


def classic(name: str) -> Execution:
    """The execution of one of the classic shapes, from its cycle."""
    return cycle_execution(CLASSIC_CYCLES[name])


def enumerate_cycles(
    vocabulary: Sequence[Edge] | Sequence[str],
    max_length: int,
    min_length: int = 2,
) -> Iterator[Cycle]:
    """All valid canonical cycles over ``vocabulary`` up to ``max_length``.

    Cycles are deduplicated up to rotation; reflections are kept (they
    correspond to genuinely different tests for non-symmetric models).
    """
    vocab = [e if isinstance(e, Edge) else edge(e) for e in vocabulary]
    seen: set[tuple[str, ...]] = set()
    for length in range(min_length, max_length + 1):
        for combo in itertools.product(vocab, repeat=length):
            cycle = Cycle(tuple(combo))
            if not cycle.is_valid():
                continue
            key = tuple(e.name for e in cycle.canonical().edges)
            if key in seen:
                continue
            seen.add(key)
            yield cycle.canonical()


def interesting_cycles(
    vocabulary: Sequence[Edge] | Sequence[str],
    max_length: int,
    model: MemoryModel,
) -> Iterator[tuple[Cycle, Execution]]:
    """Cycles whose realisations the ``model`` forbids — diy's notion of
    a test worth running on hardware."""
    for cycle in enumerate_cycles(vocabulary, max_length):
        execution = cycle_execution(cycle)
        if not model.consistent(execution):
            yield cycle, execution
