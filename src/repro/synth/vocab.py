"""Per-architecture event vocabularies for the synthesizer.

The enumerator of :mod:`repro.synth.generate` builds candidate executions
from an architecture's vocabulary: which read/write label variants exist,
which fence flavours, whether dependencies and RMWs are expressible, and
how events *downgrade* (weakening (iii) of the paper's ⊏ order:
"downgrading an event (e.g. reducing an acquire-read to a plain read in
ARMv8)").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import Event, EventKind, Label

__all__ = ["ArchVocab", "VOCABS", "get_vocab"]

_EMPTY = frozenset()


@dataclass(frozen=True)
class ArchVocab:
    """The event/edge vocabulary of one architecture.

    Attributes:
        name: architecture tag, matching the model registry.
        read_labels: admissible label sets for read events.
        write_labels: admissible label sets for write events.
        fence_kinds: fence flavours (each becomes a fence event).
        dep_kinds: dependency kinds the enumerator may place
            (subset of ``{"addr", "data", "ctrl"}``).
        rmw: whether RMW pairs may be placed.
        downgrades: label set → strictly weaker label sets (one step).
    """

    name: str
    read_labels: tuple[frozenset[str], ...] = (_EMPTY,)
    write_labels: tuple[frozenset[str], ...] = (_EMPTY,)
    fence_kinds: tuple[str, ...] = ()
    dep_kinds: tuple[str, ...] = ()
    rmw: bool = True
    downgrades: dict[frozenset[str], tuple[frozenset[str], ...]] = field(
        default_factory=dict
    )

    def downgrade_event(self, event: Event) -> list[Event]:
        """One-step weaker variants of ``event`` (may be empty).

        Polarity is respected: a read never downgrades to a release
        variant, nor a write to an acquire variant.
        """
        weaker = self.downgrades.get(event.labels - {Label.EXCL}, ())
        keep = event.labels & {Label.EXCL}
        out = []
        for labels in weaker:
            if event.is_read and Label.REL in labels:
                continue
            if event.is_write and Label.ACQ in labels:
                continue
            out.append(event.with_labels(labels | keep))
        return out


def _fs(*labels: str) -> frozenset[str]:
    return frozenset(labels)


VOCABS: dict[str, ArchVocab] = {
    "sc": ArchVocab(name="sc", rmw=False),
    "tsc": ArchVocab(name="tsc", rmw=False),
    "x86": ArchVocab(
        name="x86",
        fence_kinds=(Label.MFENCE,),
        rmw=True,
    ),
    "power": ArchVocab(
        name="power",
        fence_kinds=(Label.SYNC, Label.LWSYNC),
        dep_kinds=("addr", "data", "ctrl"),
        rmw=True,
        downgrades={},
    ),
    "armv8": ArchVocab(
        name="armv8",
        read_labels=(_EMPTY, _fs(Label.ACQ)),
        write_labels=(_EMPTY, _fs(Label.REL)),
        fence_kinds=(Label.DMB, Label.DMB_LD, Label.DMB_ST),
        dep_kinds=("addr", "data", "ctrl"),
        rmw=True,
        downgrades={
            _fs(Label.ACQ): (_EMPTY,),
            _fs(Label.REL): (_EMPTY,),
        },
    ),
    "riscv": ArchVocab(
        name="riscv",
        read_labels=(_EMPTY, _fs(Label.ACQ)),
        write_labels=(_EMPTY, _fs(Label.REL)),
        fence_kinds=(Label.FENCE_RW_RW, Label.FENCE_R_RW, Label.FENCE_RW_W),
        dep_kinds=("addr", "data", "ctrl"),
        rmw=True,
        downgrades={
            _fs(Label.ACQ): (_EMPTY,),
            _fs(Label.REL): (_EMPTY,),
        },
    ),
    "cpp": ArchVocab(
        name="cpp",
        read_labels=(
            _EMPTY,
            _fs(Label.ATO, Label.RLX),
            _fs(Label.ATO, Label.ACQ),
            _fs(Label.ATO, Label.SC),
        ),
        write_labels=(
            _EMPTY,
            _fs(Label.ATO, Label.RLX),
            _fs(Label.ATO, Label.REL),
            _fs(Label.ATO, Label.SC),
        ),
        fence_kinds=(),
        dep_kinds=(),
        rmw=False,
        downgrades={
            _fs(Label.ATO, Label.SC): (
                _fs(Label.ATO, Label.ACQ),
                _fs(Label.ATO, Label.REL),
            ),
            _fs(Label.ATO, Label.ACQ): (_fs(Label.ATO, Label.RLX),),
            _fs(Label.ATO, Label.REL): (_fs(Label.ATO, Label.RLX),),
            _fs(Label.ATO, Label.RLX): (_EMPTY,),
        },
    ),
}

# C++ downgrade targets must respect read/write polarity: filter at use.
_CPP = VOCABS["cpp"]


def get_vocab(name: str) -> ArchVocab:
    """Look up an architecture vocabulary."""
    try:
        return VOCABS[name]
    except KeyError:
        raise ValueError(f"no vocabulary for architecture {name!r}") from None
