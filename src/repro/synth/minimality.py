"""The ⊏ weakening order between executions (paper section 4.2).

``X ⊏ Y`` holds when ``X`` is obtained from ``Y`` by one of:

  (i)  removing an event (plus any incident edges);
  (ii) removing a dependency edge (addr, ctrl, data, rmw);
  (iii) downgrading an event (e.g. acquire-read → plain read);
  (v)  making the first or last event of a transaction non-transactional
       (never the middle, which would split the transaction).

`weakenings` enumerates every one-step-weaker execution; a forbidden
execution is *minimally forbidden* when all of its weakenings are allowed,
and the *maximally allowed* tests are the consistent one-step weakenings
of minimally forbidden ones (section 4.2's ``max-consistent``).
"""

from __future__ import annotations

from typing import Iterator

from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from .vocab import ArchVocab

__all__ = ["weakenings", "is_minimal_inconsistent"]


def weakenings(x: Execution, vocab: ArchVocab) -> Iterator[Execution]:
    """Yield every execution one ⊏-step below ``x``."""
    # (i) remove an event.
    for eid in range(x.n):
        yield x.without_event(eid)
    # (ii) remove one dependency edge.
    for kind in ("addr", "data", "ctrl", "rmw"):
        for pair in sorted(getattr(x, kind)):
            yield x.without_dep(kind, pair)
    # (iii) downgrade one event.
    for eid, event in enumerate(x.events):
        for weaker in vocab.downgrade_event(event):
            yield x.with_event(eid, weaker)
    # (v) shrink one transaction at either end.
    for idx, txn in enumerate(x.txns):
        shrunk: list[tuple[int, ...]] = []
        if len(txn.events) == 1:
            shrunk.append(())
        else:
            shrunk.append(txn.events[1:])
            shrunk.append(txn.events[:-1])
        for events in shrunk:
            txns = list(x.txns)
            if events:
                txns[idx] = Transaction(events, txn.atomic)
            else:
                del txns[idx]
            yield x.with_txns(txns)


def is_minimal_inconsistent(
    x: Execution, model: MemoryModel, vocab: ArchVocab
) -> bool:
    """True iff ``x`` is inconsistent but all one-step weakenings are
    consistent (``min-inconsistent`` in section 4.2)."""
    if model.consistent(x):
        return False
    return all(model.consistent(w) for w in weakenings(x, vocab))
