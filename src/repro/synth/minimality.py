"""The ⊏ weakening order between executions (paper section 4.2).

``X ⊏ Y`` holds when ``X`` is obtained from ``Y`` by one of:

  (i)  removing an event (plus any incident edges);
  (ii) removing a dependency edge (addr, ctrl, data, rmw);
  (iii) downgrading an event (e.g. acquire-read → plain read);
  (v)  making the first or last event of a transaction non-transactional
       (never the middle, which would split the transaction).

`weakenings` enumerates every one-step-weaker execution; a forbidden
execution is *minimally forbidden* when all of its weakenings are allowed,
and the *maximally allowed* tests are the consistent one-step weakenings
of minimally forbidden ones (section 4.2's ``max-consistent``).

:func:`shrink` runs the same order in reverse as a delta debugger: given
any predicate over executions (the differential fuzzer's "these two
checkers still disagree"), it descends ⊏ greedily until no one-step
weakening preserves the predicate — the result is a ⊏-minimal
reproducer.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from .vocab import ArchVocab

__all__ = ["weakenings", "is_minimal_inconsistent", "shrink"]


def weakenings(x: Execution, vocab: ArchVocab) -> Iterator[Execution]:
    """Yield every execution one ⊏-step below ``x``."""
    # (i) remove an event.
    for eid in range(x.n):
        yield x.without_event(eid)
    # (ii) remove one dependency edge.
    for kind in ("addr", "data", "ctrl", "rmw"):
        for pair in sorted(getattr(x, kind)):
            yield x.without_dep(kind, pair)
    # (iii) downgrade one event.
    for eid, event in enumerate(x.events):
        for weaker in vocab.downgrade_event(event):
            yield x.with_event(eid, weaker)
    # (v) shrink one transaction at either end.
    for idx, txn in enumerate(x.txns):
        shrunk: list[tuple[int, ...]] = []
        if len(txn.events) == 1:
            shrunk.append(())
        else:
            shrunk.append(txn.events[1:])
            shrunk.append(txn.events[:-1])
        for events in shrunk:
            txns = list(x.txns)
            if events:
                txns[idx] = Transaction(events, txn.atomic)
            else:
                del txns[idx]
            yield x.with_txns(txns)


def shrink(
    x: Execution,
    predicate: Callable[[Execution], bool],
    vocab: ArchVocab,
    max_steps: int = 10_000,
) -> Execution:
    """Delta-debug ``x`` down the ⊏ order while ``predicate`` holds.

    Greedy descent: take the first one-step weakening on which the
    predicate still holds, repeat until none does (or ``max_steps``
    weakenings have been applied).  Every ⊏ step strictly shrinks a
    finite measure of the execution (events, edges, label strength,
    transaction spans), so the loop terminates; the result is a
    ⊏-minimal execution satisfying the predicate.  A predicate that
    raises on some weakening treats it as "does not hold" — shrinking
    never propagates checker crashes.

    ``predicate(x)`` itself is assumed to hold; it is not re-checked.
    """
    steps = 0
    progressed = True
    while progressed and steps < max_steps:
        progressed = False
        for weaker in weakenings(x, vocab):
            try:
                still = predicate(weaker)
            except Exception:
                still = False
            if still:
                x = weaker
                steps += 1
                progressed = True
                break
    return x


def is_minimal_inconsistent(
    x: Execution, model: MemoryModel, vocab: ArchVocab
) -> bool:
    """True iff ``x`` is inconsistent but all one-step weakenings are
    consistent (``min-inconsistent`` in section 4.2)."""
    if model.consistent(x):
        return False
    return all(model.consistent(w) for w in weakenings(x, vocab))
