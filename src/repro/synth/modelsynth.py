"""MemSynth-style model synthesis from a litmus corpus.

The paper's related work describes MemSynth [14], which "can synthesise
memory models from a corpus of litmus tests and their expected
outcomes".  This module implements that idea over our framework: given
executions labelled *allowed* / *forbidden*, search a structured space
of candidate models for the assignments that agree with every label,
and return the weakest ones.

The hypothesis space is a *sketch* in MemSynth's sense — a parametric
multicopy-atomic model with four groups of holes:

* ``ppo`` — which plain program-order pairs are preserved, by access
  kinds (``WW``, ``WR``, ``RW``, ``RR``);
* ``deps`` — which dependency kinds order their endpoints (``addr``,
  ``data``, ``ctrl``);
* ``fences`` — which fence flavours act as full barriers;
* ``tm`` — which of the paper's transactional axioms are present
  (``tfence``, ``strong_isol``, ``txn_order``, ``txn_cancels_rmw``).

Every hole is *monotone*: adding it only forbids more executions.  The
search exploits this — forbidden examples give lower bounds, allowed
examples upper bounds — but the space is small enough (2¹⁵ for the full
sketch) that exhaustive scanning with early pruning is also exact.

The flagship demonstrations (see ``tests/test_modelsynth.py`` and
``examples/model_synthesis.py``):

* recovering TSO's preserved program order (everything but W→R) from
  the classic shapes' x86 verdicts; and
* recovering the paper's TM axiom set from the x86 Forbid suite of
  section 5.3.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..core.relation import Relation
from ..models.base import Axiom, DerivedRelations, MemoryModel

__all__ = [
    "PPO_HOLES",
    "DEP_HOLES",
    "TM_HOLES",
    "ModelParams",
    "SketchModel",
    "Example",
    "SynthesisOutcome",
    "synthesize_model",
]

PPO_HOLES = ("WW", "WR", "RW", "RR")
DEP_HOLES = ("addr", "data", "ctrl")
TM_HOLES = ("tfence", "strong_isol", "txn_order", "txn_cancels_rmw")


@dataclass(frozen=True)
class ModelParams:
    """One point in the sketch space."""

    ppo: frozenset[str] = frozenset()
    deps: frozenset[str] = frozenset()
    fences: frozenset[str] = frozenset()
    tm: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        for name, universe in (
            ("ppo", PPO_HOLES),
            ("deps", DEP_HOLES),
            ("tm", TM_HOLES),
        ):
            extra = getattr(self, name) - set(universe)
            if extra:
                raise ValueError(f"unknown {name} holes: {sorted(extra)}")

    def __le__(self, other: "ModelParams") -> bool:
        """Pointwise inclusion: ``self`` is at most as strong as ``other``."""
        return (
            self.ppo <= other.ppo
            and self.deps <= other.deps
            and self.fences <= other.fences
            and self.tm <= other.tm
        )

    @property
    def size(self) -> int:
        return len(self.ppo) + len(self.deps) + len(self.fences) + len(self.tm)

    def describe(self) -> str:
        def fmt(s: frozenset[str]) -> str:
            return "{" + ",".join(sorted(s)) + "}"

        return (
            f"ppo={fmt(self.ppo)} deps={fmt(self.deps)} "
            f"fences={fmt(self.fences)} tm={fmt(self.tm)}"
        )


class SketchModel(MemoryModel):
    """The parametric MCA model induced by a :class:`ModelParams`.

    Fixed skeleton: Coherence and RMWIsol always hold; the Order axiom
    requires ``acyclic(hb)`` with ::

        hb = ppo⟨holes⟩ ∪ deps⟨holes⟩ ∪ fences⟨holes⟩
           ∪ rfe ∪ coe ∪ fre [∪ tfence]

    and the TM holes switch the paper's transactional axioms on.
    """

    def __init__(self, params: ModelParams, tm: bool = True) -> None:
        super().__init__(tm=tm)
        self.params = params
        self.arch = f"sketch({params.describe()})"

    def relations(self, x: Execution) -> DerivedRelations:
        n = x.n
        p = self.params
        kind_sets = {"W": x.writes, "R": x.reads}

        hb = x.rfe | x.coe | x.fre
        for pair in p.ppo:
            hb = hb | (
                Relation.cross(n, kind_sets[pair[0]], kind_sets[pair[1]])
                & x.po
            )
        if "addr" in p.deps:
            hb = hb | x.addr_rel
        if "data" in p.deps:
            hb = hb | x.data_rel
        if "ctrl" in p.deps:
            hb = hb | x.ctrl_rel
        for kind in p.fences:
            hb = hb | x.fence_rel(kind)
        if "tfence" in p.tm:
            hb = hb | x.tfence

        relations = {
            "coherence": x.po_loc | x.com,
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "hb": hb,
        }
        if "strong_isol" in p.tm:
            relations["strong_isol"] = stronglift(x.com, x.stxn)
        if "txn_order" in p.tm:
            relations["txn_order"] = stronglift(hb.plus(), x.stxn)
        if "txn_cancels_rmw" in p.tm:
            relations["txn_cancels_rmw"] = x.rmw_rel & x.tfence
        return relations

    def axioms(self) -> tuple[Axiom, ...]:
        out = [
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
        ]
        if "strong_isol" in self.params.tm:
            out.append(Axiom("StrongIsol", "acyclic", "strong_isol"))
        if "txn_order" in self.params.tm:
            out.append(Axiom("TxnOrder", "acyclic", "txn_order"))
        if "txn_cancels_rmw" in self.params.tm:
            out.append(Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"))
        return tuple(out)


@dataclass(frozen=True)
class Example:
    """A labelled corpus entry."""

    execution: Execution
    allowed: bool
    name: str = ""


@dataclass
class SynthesisOutcome:
    """Everything the synthesizer found."""

    consistent: list[ModelParams] = field(default_factory=list)
    weakest: list[ModelParams] = field(default_factory=list)
    candidates_tried: int = 0
    elapsed: float = 0.0
    #: For an unsatisfiable corpus: one allowed example that even the
    #: empty sketch forbids, or one forbidden example that even the full
    #: sketch allows (whichever witnesses the conflict).
    conflict: Example | None = None

    @property
    def satisfiable(self) -> bool:
        return bool(self.consistent)


def _fence_kinds(corpus: Sequence[Example]) -> tuple[str, ...]:
    kinds: dict[str, None] = {}
    for example in corpus:
        x = example.execution
        for eid in x.fences:
            kind = x.events[eid].fence_kind
            if kind is not None and kind not in kinds:
                kinds[kind] = None
    return tuple(kinds)


def _fits(params: ModelParams, corpus: Sequence[Example]) -> Example | None:
    """The first example the parameters misclassify, or None."""
    model = SketchModel(params)
    for example in corpus:
        if model.consistent(example.execution) != example.allowed:
            return example
    return None


def _minimal(frontier: Iterable[ModelParams]) -> list[ModelParams]:
    """The ≤-minimal elements (the weakest consistent sketches)."""
    candidates = sorted(frontier, key=lambda p: p.size)
    out: list[ModelParams] = []
    for params in candidates:
        if not any(lower <= params for lower in out):
            out.append(params)
    return out


def synthesize_model(
    corpus: Sequence[Example],
    include_tm: bool = True,
    extra_fences: Sequence[str] = (),
) -> SynthesisOutcome:
    """Exhaustively search the sketch space for corpus-consistent models.

    ``include_tm=False`` pins the TM holes empty (faster when the corpus
    has no transactions).  Fence holes are derived from the fence kinds
    the corpus actually uses, plus ``extra_fences``.
    """
    start = time.perf_counter()
    fence_kinds = tuple(
        dict.fromkeys(_fence_kinds(corpus) + tuple(extra_fences))
    )
    tm_holes = TM_HOLES if include_tm else ()

    # Quick unsatisfiability witnesses: the sketch lattice is monotone,
    # so the weakest point must admit every allowed example and the
    # strongest point must reject every forbidden one.
    weakest_point = ModelParams()
    strongest_point = ModelParams(
        ppo=frozenset(PPO_HOLES),
        deps=frozenset(DEP_HOLES),
        fences=frozenset(fence_kinds),
        tm=frozenset(tm_holes),
    )
    weakest_model = SketchModel(weakest_point)
    strongest_model = SketchModel(strongest_point)
    for example in corpus:
        if example.allowed and not weakest_model.consistent(example.execution):
            return SynthesisOutcome(
                conflict=example, elapsed=time.perf_counter() - start
            )
        if not example.allowed and strongest_model.consistent(
            example.execution
        ):
            return SynthesisOutcome(
                conflict=example, elapsed=time.perf_counter() - start
            )

    consistent: list[ModelParams] = []
    tried = 0
    for ppo_bits in _powerset(PPO_HOLES):
        for dep_bits in _powerset(DEP_HOLES):
            for fence_bits in _powerset(fence_kinds):
                for tm_bits in _powerset(tm_holes):
                    params = ModelParams(
                        ppo=frozenset(ppo_bits),
                        deps=frozenset(dep_bits),
                        fences=frozenset(fence_bits),
                        tm=frozenset(tm_bits),
                    )
                    tried += 1
                    if _fits(params, corpus) is None:
                        consistent.append(params)
    return SynthesisOutcome(
        consistent=consistent,
        weakest=_minimal(consistent),
        candidates_tried=tried,
        elapsed=time.perf_counter() - start,
    )


def _powerset(items: Sequence[str]) -> Iterable[tuple[str, ...]]:
    return itertools.chain.from_iterable(
        itertools.combinations(items, r) for r in range(len(items) + 1)
    )
