"""Bounded checks of the paper's C++ theorems (section 7).

The paper proves these in Isabelle; we verify them over *every* C++
execution up to a bound (the same style of evidence Memalloy provides for
Table 2), plus randomised hypothesis tests in the test suite:

* **WeakIsol lemma** — relaxed transactions are weakly isolated in every
  C++-consistent execution (§7.2: "the WeakIsol axiom follows from the
  other C++ consistency axioms").
* **Theorem 7.2** — race-free executions whose atomic transactions
  contain no atomic operations have *strongly isolated* atomic
  transactions: ``acyclic(stronglift(com, stxnat))``.
* **Theorem 7.3 (transactional SC-DRF)** — consistent executions with no
  relaxed transactions, no non-SC atomics, and no races are TSC-consistent.
* **Baseline conservativity** — transaction-free executions have the same
  verdict under every TM model and its baseline (the "same semantics to
  transaction-free programs" remark opening section 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..models.cpp import Cpp, atomic_events, sc_events
from ..models.registry import get_model
from ..models.sc import TSC
from ..synth.generate import EnumerationSpace, enumerate_executions

__all__ = [
    "TheoremReport",
    "check_weak_isolation_lemma",
    "check_theorem_72",
    "check_theorem_73",
    "check_conservativity",
]


@dataclass
class TheoremReport:
    """Outcome of one bounded theorem check."""

    name: str
    n_events: int
    holds: bool
    counterexample: Execution | None
    executions_checked: int
    elapsed: float

    def summary(self) -> str:
        verdict = "holds" if self.holds else "REFUTED"
        return (
            f"{self.name} |E|<={self.n_events}: {verdict} "
            f"({self.executions_checked} executions, {self.elapsed:.1f}s)"
        )


def _cpp_space(n_events: int, atomic_txns: bool) -> EnumerationSpace:
    base = EnumerationSpace.for_arch("cpp", n_events, require_txn=False)
    variants = (False, True) if atomic_txns else (False,)
    return EnumerationSpace(
        vocab=base.vocab,
        n_events=n_events,
        max_threads=base.max_threads,
        max_locations=base.max_locations,
        max_deps=base.max_deps,
        max_rmws=base.max_rmws,
        max_txns=2,
        require_txn=True,
        include_fences=False,
        txn_atomic_variants=variants,
    )


def check_weak_isolation_lemma(n_events: int) -> TheoremReport:
    """Every C++-consistent execution satisfies WeakIsol."""
    model = Cpp()
    start = time.perf_counter()
    checked = 0
    for x in enumerate_executions(_cpp_space(n_events, atomic_txns=False)):
        if not model.consistent(x):
            continue
        checked += 1
        from ..models.isolation import weakly_isolated

        if not weakly_isolated(x):
            return TheoremReport(
                "WeakIsol lemma", n_events, False, x, checked,
                time.perf_counter() - start,
            )
    return TheoremReport(
        "WeakIsol lemma", n_events, True, None, checked,
        time.perf_counter() - start,
    )


def check_theorem_72(n_events: int) -> TheoremReport:
    """Strong isolation for atomic transactions (Theorem 7.2)."""
    model = Cpp()
    start = time.perf_counter()
    checked = 0
    for x in enumerate_executions(_cpp_space(n_events, atomic_txns=True)):
        if not any(txn.atomic for txn in x.txns):
            continue
        # Premise: atomic transactions contain no atomic operations.
        if any(
            x.events[e].has(Label.ATO)
            for txn in x.txns
            if txn.atomic
            for e in txn.events
        ):
            continue
        if not model.consistent(x) or not model.race_free(x):
            continue
        checked += 1
        if not stronglift(x.com, x.stxnat).is_acyclic():
            return TheoremReport(
                "Theorem 7.2 (strong isolation)", n_events, False, x,
                checked, time.perf_counter() - start,
            )
    return TheoremReport(
        "Theorem 7.2 (strong isolation)", n_events, True, None, checked,
        time.perf_counter() - start,
    )


def check_theorem_73(n_events: int) -> TheoremReport:
    """Transactional SC-DRF (Theorem 7.3)."""
    model = Cpp()
    tsc = TSC()
    start = time.perf_counter()
    checked = 0
    for x in enumerate_executions(_cpp_space(n_events, atomic_txns=True)):
        # Premise 1: no relaxed transactions.
        if any(not txn.atomic for txn in x.txns):
            continue
        # Premise 1b (well-formedness of atomic txns): no atomics inside.
        if any(
            x.events[e].has(Label.ATO)
            for txn in x.txns
            for e in txn.events
        ):
            continue
        # Premise 2: no non-SC atomics.
        if atomic_events(x) - sc_events(x):
            continue
        if not model.consistent(x) or not model.race_free(x):
            continue
        checked += 1
        if not tsc.consistent(x):
            return TheoremReport(
                "Theorem 7.3 (TSC-DRF)", n_events, False, x, checked,
                time.perf_counter() - start,
            )
    return TheoremReport(
        "Theorem 7.3 (TSC-DRF)", n_events, True, None, checked,
        time.perf_counter() - start,
    )


def check_conservativity(arch: str, n_events: int) -> TheoremReport:
    """TM models agree with their baselines on transaction-free executions."""
    model = get_model(arch)
    baseline = get_model(arch, tm=False)
    space = EnumerationSpace.for_arch(arch, n_events, require_txn=False)
    space = EnumerationSpace(
        vocab=space.vocab,
        n_events=n_events,
        max_threads=space.max_threads,
        max_locations=space.max_locations,
        max_deps=space.max_deps,
        max_rmws=space.max_rmws,
        max_txns=0,
    )
    start = time.perf_counter()
    checked = 0
    for x in enumerate_executions(space):
        checked += 1
        if model.consistent(x) != baseline.consistent(x):
            return TheoremReport(
                f"conservativity ({arch})", n_events, False, x, checked,
                time.perf_counter() - start,
            )
    return TheoremReport(
        f"conservativity ({arch})", n_events, True, None, checked,
        time.perf_counter() - start,
    )
