"""Transactional monotonicity (paper section 8.1).

A model is *monotonic* when adding ``stxn`` edges can never make an
inconsistent execution consistent; this justifies introducing, enlarging,
and coalescing transactions as program transformations.

The bounded check enumerates base executions, overlays every transaction
structure, and compares every pair ``(X, Y)`` where ``stxn(X) ⊂ stxn(Y)``:
a counterexample is an inconsistent ``X`` whose strengthening ``Y`` is
consistent.  The paper's finding is reproduced exactly: x86 and C++ are
monotonic up to the bound, while Power and ARMv8 have a two-event
counterexample — an RMW whose halves sit in two adjacent transactions
(inconsistent via TxnCancelsRMW) that becomes consistent when the
transactions are coalesced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from ..models.registry import get_model
from ..synth.generate import EnumerationSpace, _interval_sets, enumerate_executions
from ..synth.vocab import get_vocab

__all__ = ["MonotonicityResult", "check_monotonicity", "txn_structures"]


@dataclass
class MonotonicityResult:
    """Outcome of a bounded monotonicity check."""

    arch: str
    n_events: int
    counterexample: tuple[Execution, Execution] | None
    pairs_checked: int
    elapsed: float
    exhausted: bool = True

    @property
    def holds(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        verdict = (
            "no counterexample"
            if self.holds
            else "COUNTEREXAMPLE (coalescing unsound)"
        )
        return (
            f"monotonicity {self.arch} |E|<={self.n_events}: {verdict} "
            f"({self.pairs_checked} pairs, {self.elapsed:.1f}s)"
        )


def txn_structures(
    base: Execution, atomic_variants: tuple[bool, ...] = (False,)
) -> list[tuple[Transaction, ...]]:
    """All transaction overlays for a (transaction-free) execution."""
    fence_positions = [
        frozenset(
            pos
            for pos, e in enumerate(thread)
            if base.events[e].is_fence
        )
        for thread in base.threads
    ]
    per_thread = [
        _interval_sets(len(thread), fence_positions[tid])
        for tid, thread in enumerate(base.threads)
    ]
    out: list[tuple[Transaction, ...]] = []

    def rec(tid: int, chosen: list[Transaction]) -> None:
        if tid == len(base.threads):
            out.append(tuple(chosen))
            return
        for intervals in per_thread[tid]:
            txns = [
                tuple(base.threads[tid][p] for p in range(a, b + 1))
                for a, b in intervals
            ]
            for flags in _flag_choices(len(txns), atomic_variants):
                rec(
                    tid + 1,
                    chosen
                    + [Transaction(t, f) for t, f in zip(txns, flags)],
                )

    rec(0, [])
    return out


def _flag_choices(count: int, variants: tuple[bool, ...]):
    if count == 0:
        yield ()
        return
    import itertools

    yield from itertools.product(variants, repeat=count)


def _stxn_pairs(txns: tuple[Transaction, ...]) -> frozenset[tuple[int, int]]:
    pairs = set()
    for txn in txns:
        for a in txn.events:
            for b in txn.events:
                pairs.add((a, b))
    return frozenset(pairs)


def check_monotonicity(
    arch: str,
    n_events: int,
    time_budget: float | None = None,
    model: MemoryModel | None = None,
) -> MonotonicityResult:
    """Search for a monotonicity counterexample up to ``n_events``."""
    model = model or get_model(arch)
    space = EnumerationSpace.for_arch(arch, n_events, require_txn=False)
    # Enumerate *base* executions without transactions; overlay after.
    space = EnumerationSpace(
        vocab=space.vocab,
        n_events=n_events,
        max_threads=space.max_threads,
        max_locations=space.max_locations,
        max_deps=space.max_deps,
        max_rmws=space.max_rmws,
        max_txns=0,
        require_txn=False,
        include_fences=space.include_fences,
    )
    atomic_variants = (False, True) if arch == "cpp" else (False,)

    start = time.perf_counter()
    pairs_checked = 0
    for base in enumerate_executions(space):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            return MonotonicityResult(
                arch, n_events, None, pairs_checked,
                time.perf_counter() - start, exhausted=False,
            )
        structures = txn_structures(base, atomic_variants)
        verdicts = []
        for txns in structures:
            x = base.with_txns(txns)
            verdicts.append((txns, _stxn_pairs(txns), model.consistent(x)))
        for txns_x, stxn_x, ok_x in verdicts:
            if ok_x:
                continue
            for txns_y, stxn_y, ok_y in verdicts:
                if not ok_y or stxn_y == stxn_x:
                    continue
                if stxn_x < stxn_y:
                    pairs_checked += 1
                    return MonotonicityResult(
                        arch,
                        n_events,
                        (base.with_txns(txns_x), base.with_txns(txns_y)),
                        pairs_checked,
                        time.perf_counter() - start,
                    )
        pairs_checked += len(verdicts)
    return MonotonicityResult(
        arch, n_events, None, pairs_checked, time.perf_counter() - start
    )
