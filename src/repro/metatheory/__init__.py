"""Metatheory: monotonicity, theorems, Appendix C lemmas, compilation,
lock elision (§7–8 and Appendix C)."""

from .compilation import CompilationResult, check_compilation, compile_execution
from .lemmas import check_all_lemmas
from .lockelision import (
    LockElisionResult,
    abstract_executions,
    check_lock_elision,
    cr_order_violated,
    elide,
    elision_serialisation,
    scr_relation,
)
from .monotonicity import MonotonicityResult, check_monotonicity, txn_structures
from .theorems import (
    TheoremReport,
    check_conservativity,
    check_theorem_72,
    check_theorem_73,
    check_weak_isolation_lemma,
)

__all__ = [
    "CompilationResult",
    "LockElisionResult",
    "MonotonicityResult",
    "TheoremReport",
    "abstract_executions",
    "check_all_lemmas",
    "check_compilation",
    "check_conservativity",
    "check_lock_elision",
    "check_monotonicity",
    "check_theorem_72",
    "check_theorem_73",
    "check_weak_isolation_lemma",
    "compile_execution",
    "cr_order_violated",
    "elide",
    "elision_serialisation",
    "scr_relation",
    "txn_structures",
]
