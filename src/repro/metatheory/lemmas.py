"""Bounded checks of the paper's Appendix C lemmas.

Appendix C proves Theorem 7.3 through a chain of lemmas; the paper marks
several supporting identities with the Isabelle symbol.  Checking each
lemma *separately* (rather than only the end-to-end theorem, which
:mod:`repro.metatheory.theorems` already covers) localises any future
model change that breaks the proof: the failing lemma names the step.

Each check enumerates every canonical C++ execution up to a bound,
filters by the lemma's premises, and verifies its conclusion:

=====================  ====================================================
Lemma C.1              race-free ⟹ ``com \\ SC² ⊆ hb``
Lemma C.2              no non-SC atomics ⟹ ``hb = (po ∪ rf_SC ∪ tsw)⁺``
Lemma C.3              segments lie in ``hb ∪ co ∪ fr``
Lemma C.6              ``stxn* ; (hb \\ stxn) ; stxn* ⊆ hb \\ stxn``
cnf identity (§7.2)    ``cnf = ecom ∪ ecom⁻¹``
com⁺ expansion (§7.2)  ``com⁺ = ecom ∪ (fr ; rf)``
psc inclusion (6)      ``[SC] ; po_{≠loc} ; hb ; po_{≠loc} ; [SC] ⊆ psc``
psc inclusion (7)      ``[SC] ; pocom ; [SC] ⊆ psc``
=====================  ====================================================
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import weaklift
from ..core.relation import Relation
from ..models.cpp import Cpp, atomic_events, sc_events
from ..synth.generate import EnumerationSpace, enumerate_executions
from .theorems import TheoremReport

__all__ = [
    "check_lemma_c1",
    "check_lemma_c2",
    "check_lemma_c3",
    "check_lemma_c6",
    "check_cnf_identity",
    "check_com_plus_expansion",
    "check_psc_inclusions",
    "check_all_lemmas",
]

_MODEL = Cpp()


def _space(n_events: int) -> EnumerationSpace:
    base = EnumerationSpace.for_arch("cpp", n_events)
    return EnumerationSpace(
        vocab=base.vocab,
        n_events=n_events,
        max_threads=base.max_threads,
        max_locations=base.max_locations,
        max_deps=0,
        max_rmws=0,
        max_txns=2,
        include_fences=False,
        txn_atomic_variants=(False, True),
    )


def _executions(n_events: int) -> Iterator[Execution]:
    for n in range(2, n_events + 1):
        yield from enumerate_executions(_space(n))


def _hb(x: Execution) -> Relation:
    return _MODEL.relations(x)["hb"]


def _ecom(x: Execution) -> Relation:
    return x.com | (x.co_rel @ x.rf_rel)


def _premises_73(x: Execution) -> bool:
    """No relaxed transactions, no atomics inside them, Ato = SC."""
    if any(not txn.atomic for txn in x.txns):
        return False
    if any(
        x.events[e].has(Label.ATO) for txn in x.txns for e in txn.events
    ):
        return False
    return not (atomic_events(x) - sc_events(x))


def _run(
    name: str,
    n_events: int,
    premise: Callable[[Execution], bool],
    conclusion: Callable[[Execution], bool],
    limit: int | None = None,
) -> TheoremReport:
    start = time.perf_counter()
    checked = 0
    scanned = 0
    for x in _executions(n_events):
        scanned += 1
        if limit is not None and scanned > limit:
            break
        if not premise(x):
            continue
        checked += 1
        if not conclusion(x):
            return TheoremReport(
                name, n_events, False, x, checked,
                time.perf_counter() - start,
            )
    return TheoremReport(
        name, n_events, True, None, checked, time.perf_counter() - start
    )


def check_lemma_c1(n_events: int, limit: int | None = None) -> TheoremReport:
    """Race-free communication (outside SC pairs) induces happens-before.

    Appendix C's lemmas all live under the standing premises of
    Theorem 7.3 ("let us assume the three conditions that the theorem
    assumes"); C.1's proof needs *no non-SC atomics* in particular — a
    pair of relaxed atomics communicates race-freely without inducing
    hb, which the premise rules out.
    """

    def premise(x: Execution) -> bool:
        if atomic_events(x) - sc_events(x):
            return False
        return _MODEL.consistent(x) and _MODEL.race_free(x)

    def conclusion(x: Execution) -> bool:
        sc_sq = Relation.cross(x.n, sc_events(x), sc_events(x))
        return (x.com - sc_sq) <= _hb(x)

    return _run("Lemma C.1", n_events, premise, conclusion, limit)


def check_lemma_c2(n_events: int, limit: int | None = None) -> TheoremReport:
    """Without non-SC atomics, ``hb = (po ∪ rf_SC ∪ tsw)⁺``."""

    def premise(x: Execution) -> bool:
        return not (atomic_events(x) - sc_events(x))

    def conclusion(x: Execution) -> bool:
        sc_sq = Relation.cross(x.n, sc_events(x), sc_events(x))
        rf_sc = x.rf_rel & sc_sq
        tsw = weaklift(_ecom(x), x.stxn)
        return _hb(x) == (x.po | rf_sc | tsw).plus()

    return _run("Lemma C.2", n_events, premise, conclusion, limit)


def check_lemma_c3(n_events: int, limit: int | None = None) -> TheoremReport:
    """Each cycle segment lies in ``hb ∪ co ∪ fr`` (under the Theorem 7.3
    premises and consistency)."""

    def premise(x: Execution) -> bool:
        return (
            _premises_73(x)
            and _MODEL.consistent(x)
            and _MODEL.race_free(x)
        )

    def conclusion(x: Execution) -> bool:
        n = x.n
        sc = Relation.lift(n, sc_events(x))
        non_sc = Relation.lift(n, frozenset(range(n)) - sc_events(x))
        pocom = x.po | x.com
        seg = sc @ pocom @ (non_sc @ pocom).star() @ sc
        return seg <= (_hb(x) | x.co_rel | x.fr)

    return _run("Lemma C.3", n_events, premise, conclusion, limit)


def check_lemma_c6(n_events: int, limit: int | None = None) -> TheoremReport:
    """Happens-before lifts through transactions:
    ``stxn* ; (hb \\ stxn) ; stxn* ⊆ hb \\ stxn``."""

    def premise(x: Execution) -> bool:
        return bool(x.txns) and _premises_73(x) and _MODEL.consistent(x)

    def conclusion(x: Execution) -> bool:
        hb = _hb(x)
        lifted = x.stxn.star() @ (hb - x.stxn) @ x.stxn.star()
        return lifted <= (hb - x.stxn)

    return _run("Lemma C.6", n_events, premise, conclusion, limit)


def check_cnf_identity(n_events: int, limit: int | None = None) -> TheoremReport:
    """§7.2's marked identity: ``cnf = ecom ∪ ecom⁻¹`` in every
    well-formed execution (conflicting events are always communication-
    connected one way or the other)."""

    def conclusion(x: Execution) -> bool:
        ecom = _ecom(x)
        return _MODEL.conflicts(x) == (ecom | ecom.inverse()).remove_diagonal()

    return _run("cnf identity", n_events, lambda x: True, conclusion, limit)


def check_com_plus_expansion(n_events: int, limit: int | None = None) -> TheoremReport:
    """The Theorem 7.2 proof's expansion: ``com⁺ = ecom ∪ (fr ; rf)``."""

    def conclusion(x: Execution) -> bool:
        return x.com.plus() == (_ecom(x) | (x.fr @ x.rf_rel))

    return _run("com+ expansion", n_events, lambda x: True, conclusion, limit)


def check_psc_inclusions(n_events: int, limit: int | None = None) -> TheoremReport:
    """Appendix C's (6) and (7): the two psc inclusions the proof of
    Theorem 7.3 relies on."""

    def conclusion(x: Execution) -> bool:
        n = x.n
        relations = _MODEL.relations(x)
        hb, psc = relations["hb"], relations["psc"]
        sc = Relation.lift(n, sc_events(x))
        po_neq_loc = x.po - x.sloc
        incl6 = sc @ po_neq_loc @ hb @ po_neq_loc @ sc
        incl7 = sc @ (x.po | x.com) @ sc
        return incl6 <= psc and incl7 <= psc

    return _run("psc inclusions (6)/(7)", n_events, lambda x: True, conclusion, limit)


def check_all_lemmas(
    n_events: int, limit: int | None = None
) -> list[TheoremReport]:
    """Run every Appendix C lemma check at the given bound."""
    return [
        check_lemma_c1(n_events, limit),
        check_lemma_c2(n_events, limit),
        check_lemma_c3(n_events, limit),
        check_lemma_c6(n_events, limit),
        check_cnf_identity(n_events, limit),
        check_com_plus_expansion(n_events, limit),
        check_psc_inclusions(n_events, limit),
    ]
