"""Compiling C++ transactions to hardware (paper section 8.2).

The compiler mappings are the standard ones (Wickerson et al. [55],
extended with transactions by requiring π to preserve all stxn edges):

=================  ==========================  =======================
C++ event          Power                       ARMv8
=================  ==========================  =======================
load (na/rlx)      ``lwz``                     ``LDR``
load acquire       ``lwz; ctrl-isync``         ``LDAR``
load seq_cst       ``sync; lwz; ctrl-isync``   ``LDAR``
store (na/rlx)     ``stw``                     ``STR``
store release      ``lwsync; stw``             ``STLR``
store seq_cst      ``sync; stw``               ``STLR``
transaction        ``tbegin. … tend.``         ``TXBEGIN … TXEND``
=================  ==========================  =======================

x86 maps every load to ``MOV`` and every store to ``MOV`` with a trailing
``MFENCE`` for seq_cst stores.

The bounded check searches for a C++ execution ``X`` that is
*inconsistent* whose compiled image ``Y`` is *consistent* on the target —
a witness that the mapping is unsound.  The paper (and this
reproduction) finds none up to the bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.events import Event, EventKind, Label
from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from ..models.registry import get_model
from ..synth.generate import EnumerationSpace, enumerate_executions

__all__ = ["CompilationResult", "compile_execution", "check_compilation"]


@dataclass
class CompilationResult:
    """Outcome of a bounded compilation-soundness check."""

    target: str
    n_events: int
    counterexample: tuple[Execution, Execution] | None
    executions_checked: int
    elapsed: float
    exhausted: bool = True

    @property
    def sound(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        verdict = "sound" if self.sound else "UNSOUND"
        return (
            f"compilation C++ -> {self.target} |E|<={self.n_events}: {verdict} "
            f"({self.executions_checked} inconsistent sources, {self.elapsed:.1f}s)"
        )


def _map_event(event: Event, target: str) -> list[Event]:
    """The per-event instruction mapping; the *last* access event is the
    image of the source access (leading fences attach before)."""
    mode = event.mode
    if event.is_read:
        if target == "x86":
            return [Event(EventKind.READ, event.loc)]
        if target == "power":
            out = []
            if mode == Label.SC:
                out.append(Event(EventKind.FENCE, None, frozenset({Label.SYNC})))
            out.append(Event(EventKind.READ, event.loc))
            if mode in (Label.ACQ, Label.SC):
                out.append(Event(EventKind.FENCE, None, frozenset({Label.ISYNC})))
            return out
        if target == "armv8":
            labels = frozenset({Label.ACQ}) if mode in (Label.ACQ, Label.SC) else frozenset()
            return [Event(EventKind.READ, event.loc, labels)]
    if event.is_write:
        if target == "x86":
            out = [Event(EventKind.WRITE, event.loc)]
            if mode == Label.SC:
                out.append(Event(EventKind.FENCE, None, frozenset({Label.MFENCE})))
            return out
        if target == "power":
            out = []
            if mode == Label.SC:
                out.append(Event(EventKind.FENCE, None, frozenset({Label.SYNC})))
            elif mode == Label.REL:
                out.append(Event(EventKind.FENCE, None, frozenset({Label.LWSYNC})))
            out.append(Event(EventKind.WRITE, event.loc))
            return out
        if target == "armv8":
            labels = frozenset({Label.REL}) if mode in (Label.REL, Label.SC) else frozenset()
            return [Event(EventKind.WRITE, event.loc, labels)]
    raise ValueError(f"cannot compile event {event} to {target}")


def compile_execution(x: Execution, target: str) -> Execution:
    """Apply the compiler mapping to a C++ execution.

    The image preserves program order, maps rf/co through the main image
    of each access, adds the mapping's fences (and ctrl edges into
    ``isync`` for Power acquire loads), and preserves all stxn edges
    (the paper's ``stxnY = π⁻¹; stxnX; π`` requirement).
    """
    events: list[Event] = []
    threads: list[list[int]] = []
    image: dict[int, int] = {}  # source access -> its image access
    span: dict[int, list[int]] = {}  # source event -> all its image events
    ctrl: list[tuple[int, int]] = []

    for thread in x.threads:
        new_thread: list[int] = []
        for eid in thread:
            seq = _map_event(x.events[eid], target)
            ids = []
            for ev in seq:
                ids.append(len(events))
                events.append(ev)
                new_thread.append(ids[-1])
            span[eid] = ids
            image[eid] = next(i for i, ev in zip(ids, seq) if ev.is_access)
            # Power acquire/SC loads: ctrl edge into the trailing isync.
            if (
                target == "power"
                and x.events[eid].is_read
                and x.events[eid].mode in (Label.ACQ, Label.SC)
            ):
                ctrl.append((image[eid], ids[-1]))
        threads.append(new_thread)

    rf = {image[r]: image[w] for r, w in x.rf.items()}
    co = {
        loc: tuple(image[w] for w in order) for loc, order in x.co.items()
    }
    txns = [
        Transaction(
            tuple(sorted(i for eid in txn.events for i in span[eid])),
            txn.atomic,
        )
        for txn in x.txns
    ]
    return Execution(
        events=events,
        threads=threads,
        rf=rf,
        co=co,
        ctrl=ctrl,
        txns=txns,
    )


def check_compilation(
    target: str,
    n_events: int,
    time_budget: float | None = None,
    source_model: MemoryModel | None = None,
    target_model: MemoryModel | None = None,
) -> CompilationResult:
    """Search for an inconsistent C++ execution with a consistent image."""
    source_model = source_model or get_model("cpp")
    target_model = target_model or get_model(target)
    base = EnumerationSpace.for_arch("cpp", n_events)
    space = EnumerationSpace(
        vocab=base.vocab,
        n_events=n_events,
        max_threads=base.max_threads,
        max_locations=base.max_locations,
        max_deps=0,
        max_rmws=0,
        max_txns=2,
        require_txn=False,
        include_fences=False,
        txn_atomic_variants=(False,),
    )
    start = time.perf_counter()
    checked = 0
    for x in enumerate_executions(space):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            return CompilationResult(
                target, n_events, None, checked,
                time.perf_counter() - start, exhausted=False,
            )
        if source_model.consistent(x):
            continue
        checked += 1
        y = compile_execution(x, target)
        if target_model.consistent(y):
            return CompilationResult(
                target, n_events, (x, y), checked,
                time.perf_counter() - start,
            )
    return CompilationResult(
        target, n_events, None, checked, time.perf_counter() - start
    )
