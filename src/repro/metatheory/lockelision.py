"""Checking lock elision against hardware TM models (paper section 8.3).

Abstract executions contain ``lock()``/``unlock()`` call events — ``L``/
``U`` for critical regions (CRs) that take the lock, ``Lt``/``Ut`` for
CRs that will be *elided* into transactions — plus the CR bodies' data
accesses.  The abstract consistency predicate is the architecture's own
axioms extended with CR serialisability::

    acyclic(weaklift(po ∪ com, scr))                       (CROrder)

The π mapping (Table 3) replaces each call with its implementation:

=====  ===========================  =========================
event  x86                          ARMv8 [fixed: + DMB]
=====  ===========================  =========================
L      R; R-W (rmw)  (TATAS)        R(acq,excl); W(excl) rmw, ctrl
U      W                            W(rel)
Lt     R  (of the lock, in-txn)     R (in-txn)
Ut     —                            —
=====  ===========================  =========================

Power maps ``L`` to ``R(excl); W(excl) rmw; ctrl-isync`` and ``U`` to
``sync; W``.  ``TxnReadsLockFree`` forbids the elided CR's lock read from
observing an ``L`` write (it must see the lock free), and ``TxnIntro``
makes the elided CR one transaction.

*Unsoundness witness*: an abstract execution forbidden by CROrder whose
concrete image is consistent under the architecture's TM model.  The
search below rediscovers Example 1.1 / Fig. 10 on ARMv8 within seconds,
and finds nothing for x86 or for ARMv8 with the DMB fix, matching
Table 2.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from ..core.events import Event, EventKind, Label
from ..core.execution import Execution, Transaction
from ..core.lifting import weaklift
from ..core.relation import Relation
from ..models.base import MemoryModel
from ..models.registry import get_model

__all__ = [
    "LOCK_VAR",
    "LockElisionResult",
    "abstract_executions",
    "check_lock_elision",
    "cr_order_violated",
    "elide",
    "scr_relation",
]

#: The lock variable introduced by the mapping (LockVar: fresh location).
LOCK_VAR = "m"


# ----------------------------------------------------------------------
# Abstract side
# ----------------------------------------------------------------------


def scr_relation(x: Execution) -> Relation:
    """Same-critical-region equivalence (reflexive on CR events)."""
    rel = Relation.empty(x.n)
    for thread in x.threads:
        current: list[int] | None = None
        for eid in thread:
            event = x.events[eid]
            if event.is_call and event.call_kind in (Label.LOCK, Label.LOCK_T):
                current = [eid]
            elif event.is_call:
                if current is not None:
                    current.append(eid)
                    rel = rel | Relation.cross(x.n, current, current)
                current = None
            elif current is not None:
                current.append(eid)
    return rel


def cr_order_violated(x: Execution) -> bool:
    """True iff the execution violates CR serialisability (CROrder)."""
    return not weaklift(x.po | x.com, scr_relation(x)).is_acyclic()


_BODIES: tuple[tuple[str, ...], ...] = (
    ("R",),
    ("W",),
    ("R", "W"),  # read-then-update (Example 1.1's x += 2, with data dep)
    ("W", "R"),
    ("W", "W"),  # double store (Appendix B)
)


def abstract_executions(data_loc: str = "x"):
    """All two-thread abstract executions: one locked CR against one
    elided CR, bodies drawn from the five shapes above, with every rf/co
    arrangement on the data location."""
    for body0, body1 in itertools.product(_BODIES, repeat=2):
        yield from _abstract_with_bodies(body0, body1, data_loc)


def _abstract_with_bodies(body0, body1, data_loc: str):
    events: list[Event] = []
    threads: list[list[int]] = []
    reads: list[int] = []
    writes: list[int] = []
    data: list[tuple[int, int]] = []

    def add_thread(body: tuple[str, ...], elided: bool) -> None:
        tid_events = []

        def push(ev: Event) -> int:
            events.append(ev)
            tid_events.append(len(events) - 1)
            return len(events) - 1

        push(Event(EventKind.CALL, None, frozenset({Label.LOCK_T if elided else Label.LOCK})))
        body_ids = []
        for kind in body:
            if kind == "R":
                eid = push(Event(EventKind.READ, data_loc))
                reads.append(eid)
            else:
                eid = push(Event(EventKind.WRITE, data_loc))
                writes.append(eid)
            body_ids.append(eid)
        if body == ("R", "W"):
            data.append((body_ids[0], body_ids[1]))
        push(Event(EventKind.CALL, None, frozenset({Label.UNLOCK_T if elided else Label.UNLOCK})))
        threads.append(tid_events)

    add_thread(body0, elided=False)
    add_thread(body1, elided=True)

    rf_spaces = [[None] + writes for _ in reads]
    co_spaces = (
        [list(itertools.permutations(writes))] if len(writes) > 1 else [[tuple(writes)]]
    )
    for rf_choice in itertools.product(*rf_spaces):
        rf = {r: w for r, w in zip(reads, rf_choice) if w is not None}
        for (co_order,) in itertools.product(*co_spaces):
            co = {data_loc: tuple(co_order)} if co_order else {}
            yield Execution(
                events=list(events),
                threads=[list(t) for t in threads],
                rf=rf,
                co=co,
                data=data,
            )


# ----------------------------------------------------------------------
# Concrete side: the π expansion of Table 3
# ----------------------------------------------------------------------


def _expand_lock(arch: str, fixed: bool):
    """The instruction sequence for an L event.

    Returns (events, rmw pair indices, ctrl pairs, fence-tail), with
    indices local to the returned list.
    """
    if arch == "x86":
        # test-and-test-and-set: a plain read, then a LOCK'd RMW.
        events = [
            Event(EventKind.READ, LOCK_VAR),
            Event(EventKind.READ, LOCK_VAR, frozenset({Label.EXCL})),
            Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.EXCL})),
        ]
        return events, [(1, 2)], [], []
    if arch == "power":
        events = [
            Event(EventKind.READ, LOCK_VAR, frozenset({Label.EXCL})),
            Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.EXCL})),
            Event(EventKind.FENCE, None, frozenset({Label.ISYNC})),
        ]
        return events, [(0, 1)], [(0, 2)], []
    if arch == "armv8":
        events = [
            Event(EventKind.READ, LOCK_VAR, frozenset({Label.ACQ, Label.EXCL})),
            Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.EXCL})),
        ]
        ctrl = [(0, 1)]
        tail = (
            [Event(EventKind.FENCE, None, frozenset({Label.DMB}))]
            if fixed
            else []
        )
        return events + tail, [(0, 1)], ctrl, []
    if arch == "riscv":
        # lr.w.aq / bnez / sc.w spinlock: same shape as the ARMv8 one,
        # with a FENCE rw,rw appended for the fixed variant.
        events = [
            Event(EventKind.READ, LOCK_VAR, frozenset({Label.ACQ, Label.EXCL})),
            Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.EXCL})),
        ]
        ctrl = [(0, 1)]
        tail = (
            [Event(EventKind.FENCE, None, frozenset({Label.FENCE_RW_RW}))]
            if fixed
            else []
        )
        return events + tail, [(0, 1)], ctrl, []
    raise ValueError(f"no lock-elision mapping for {arch!r}")


def _expand_unlock(arch: str):
    if arch == "x86":
        return [Event(EventKind.WRITE, LOCK_VAR)]
    if arch == "power":
        return [
            Event(EventKind.FENCE, None, frozenset({Label.SYNC})),
            Event(EventKind.WRITE, LOCK_VAR),
        ]
    if arch == "armv8":
        return [Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.REL}))]
    if arch == "riscv":
        # sw.rl (store with release annotation).
        return [Event(EventKind.WRITE, LOCK_VAR, frozenset({Label.REL}))]
    raise ValueError(f"no lock-elision mapping for {arch!r}")


def elide(
    abstract: Execution,
    arch: str,
    fixed: bool = False,
    txn_writes_lock: bool = False,
):
    """All concrete images of an abstract execution under π.

    The data structure (accesses, rf, co, deps) is copied through; the
    lock variable's rf/co are enumerated subject to TxnReadsLockFree
    (the elided CR's lock read never observes an L write).

    ``txn_writes_lock`` selects the *serialising fix* of section 1.1:
    each elided CR also **writes** the lock variable inside its
    transaction ("transactional CRs could be made to write to the lock
    variable (rather than just read it), but this would induce
    serialisation").  :func:`elision_serialisation` demonstrates the
    induced serialisation.
    """
    events: list[Event] = []
    threads: list[list[int]] = []
    image: dict[int, int] = {}
    rmw: list[tuple[int, int]] = []
    ctrl: list[tuple[int, int]] = []
    txns: list[Transaction] = []
    lock_reads: list[int] = []  # L-expansion reads (may read unlock writes)
    elided_reads: list[int] = []  # Lt reads (TxnReadsLockFree applies)
    lock_writes: list[int] = []  # L-expansion (acquire) writes
    unlock_writes: list[int] = []
    elided_writes: list[int] = []  # Lt writes under the serialising fix

    for thread in abstract.threads:
        tid_events: list[int] = []
        txn_span: list[int] | None = None

        def push(ev: Event) -> int:
            events.append(ev)
            tid_events.append(len(events) - 1)
            return len(events) - 1

        for eid in thread:
            event = abstract.events[eid]
            if event.is_call:
                kind = event.call_kind
                if kind == Label.LOCK:
                    seq, rmws, ctrls, _tail = _expand_lock(arch, fixed)
                    base = len(events)
                    for ev in seq:
                        pushed = push(ev)
                        if ev.is_read and ev.loc == LOCK_VAR:
                            lock_reads.append(pushed)
                        if ev.is_write and ev.loc == LOCK_VAR:
                            lock_writes.append(pushed)
                    rmw.extend((base + a, base + b) for a, b in rmws)
                    ctrl.extend((base + a, base + b) for a, b in ctrls)
                elif kind == Label.UNLOCK:
                    for ev in _expand_unlock(arch):
                        pushed = push(ev)
                        if ev.is_write:
                            unlock_writes.append(pushed)
                elif kind == Label.LOCK_T:
                    pushed = push(Event(EventKind.READ, LOCK_VAR))
                    elided_reads.append(pushed)
                    txn_span = [pushed]
                    if txn_writes_lock:
                        wrote = push(Event(EventKind.WRITE, LOCK_VAR))
                        elided_writes.append(wrote)
                        txn_span.append(wrote)
                elif kind == Label.UNLOCK_T:
                    if txn_span:
                        txns.append(Transaction(tuple(txn_span)))
                    txn_span = None
            else:
                pushed = push(event)
                image[eid] = pushed
                if txn_span is not None:
                    txn_span.append(pushed)
        threads.append(tid_events)

    data_rf = {image[r]: image[w] for r, w in abstract.rf.items()}
    data_co = {
        loc: tuple(image[w] for w in order)
        for loc, order in abstract.co.items()
    }
    deps = {
        name: [(image[a], image[b]) for a, b in getattr(abstract, name)]
        for name in ("addr", "data", "ctrl")
    }
    deps["ctrl"] = deps["ctrl"] + ctrl

    # Lock-variable memory: enumerate rf and co choices.  Elided writes
    # (the serialising fix) are observable like unlock writes; only L
    # writes are barred from the elided reads (TxnReadsLockFree).
    m_writes = lock_writes + unlock_writes + elided_writes
    observable_free = unlock_writes + elided_writes
    rf_options = []
    for r in lock_reads:
        rf_options.append([None] + observable_free)
    for r in elided_reads:
        rf_options.append([None] + observable_free)  # TxnReadsLockFree
    m_reads = lock_reads + elided_reads

    co_options = (
        list(itertools.permutations(m_writes))
        if len(m_writes) > 1
        else [tuple(m_writes)]
    )

    for rf_choice in itertools.product(*rf_options):
        rf = dict(data_rf)
        rf.update(
            {r: w for r, w in zip(m_reads, rf_choice) if w is not None}
        )
        for co_order in co_options:
            co = dict(data_co)
            if co_order:
                co[LOCK_VAR] = tuple(co_order)
            yield Execution(
                events=list(events),
                threads=[list(t) for t in threads],
                rf=rf,
                co=co,
                addr=deps["addr"],
                data=deps["data"],
                ctrl=deps["ctrl"],
                rmw=rmw,
                txns=txns,
            )


# ----------------------------------------------------------------------
# The soundness check
# ----------------------------------------------------------------------


@dataclass
class LockElisionResult:
    """Outcome of a lock-elision soundness search."""

    arch: str
    fixed: bool
    counterexample: tuple[Execution, Execution] | None
    abstract_checked: int
    concrete_checked: int
    elapsed: float
    exhausted: bool = True

    @property
    def sound(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        label = f"{self.arch}{' (fixed)' if self.fixed else ''}"
        verdict = (
            "no counterexample"
            if self.sound
            else "UNSOUND (mutual exclusion violated)"
        )
        return (
            f"lock elision {label}: {verdict} "
            f"({self.abstract_checked} abstract / {self.concrete_checked} "
            f"concrete, {self.elapsed:.1f}s)"
        )


def check_lock_elision(
    arch: str,
    fixed: bool = False,
    model: MemoryModel | None = None,
    time_budget: float | None = None,
    txn_writes_lock: bool = False,
) -> LockElisionResult:
    """Search for a CROrder-forbidden abstract execution whose concrete
    image is consistent under the architecture's TM model.

    ``txn_writes_lock=True`` checks the section 1.1 serialising fix
    instead of read-only elision.
    """
    model = model or get_model(arch)
    start = time.perf_counter()
    abstract_checked = 0
    concrete_checked = 0
    for abstract in abstract_executions():
        if time_budget is not None and time.perf_counter() - start > time_budget:
            return LockElisionResult(
                arch, fixed, None, abstract_checked, concrete_checked,
                time.perf_counter() - start, exhausted=False,
            )
        if not cr_order_violated(abstract):
            continue
        abstract_checked += 1
        for concrete in elide(abstract, arch, fixed, txn_writes_lock):
            concrete_checked += 1
            if model.consistent(concrete):
                return LockElisionResult(
                    arch, fixed, (abstract, concrete),
                    abstract_checked, concrete_checked,
                    time.perf_counter() - start,
                )
    return LockElisionResult(
        arch, fixed, None, abstract_checked, concrete_checked,
        time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# The serialisation cost of the write-to-lock fix (section 1.1)
# ----------------------------------------------------------------------


def _two_elided_crs(txn_writes_lock: bool) -> list[Execution]:
    """Concrete images of two *elided* CRs touching disjoint data.

    The CRs cannot conflict on data, so read-only elision lets them run
    fully independently; with the write-to-lock fix both transactions
    write ``m``, so every image in which both commit has them
    communicating — the conflict a real TM turns into an abort.
    """
    events: list[Event] = []
    threads: list[list[int]] = []

    def add_cr(data_loc: str) -> None:
        tid_events: list[int] = []

        def push(ev: Event) -> int:
            events.append(ev)
            tid_events.append(len(events) - 1)
            return len(events) - 1

        push(Event(EventKind.CALL, None, frozenset({Label.LOCK_T})))
        push(Event(EventKind.WRITE, data_loc))
        push(Event(EventKind.CALL, None, frozenset({Label.UNLOCK_T})))
        threads.append(tid_events)

    add_cr("x")
    add_cr("y")
    abstract = Execution(events=events, threads=threads)
    return list(elide(abstract, "armv8", txn_writes_lock=txn_writes_lock))


def elision_serialisation(
    arch: str = "armv8", txn_writes_lock: bool = False
) -> bool:
    """Do two data-disjoint elided CRs necessarily communicate?

    Returns ``True`` iff every model-consistent image has a
    communication edge between the two transactions — i.e. the fix has
    induced serialisation and "nullif[ied] the potential speedup from
    lock elision" (section 1.1).  Read-only elision returns ``False``.
    """
    model = get_model(arch)
    found_consistent = False
    for concrete in _two_elided_crs(txn_writes_lock):
        if not model.consistent(concrete):
            continue
        found_consistent = True
        if weaklift(concrete.com, concrete.stxn).is_empty():
            return False  # an independent (conflict-free) run exists
    return found_consistent
