"""Axiomatic models as IR data: :class:`IRDefinition` and :class:`IRModel`.

An :class:`IRModel` declares its semantics once, as a tuple of
:class:`IRAxiom` records (name, check kind, operand *node*) plus optional
extra named relations, instead of imperatively recomputing a relation
dictionary per execution.  Everything else — ``check``, ``consistent``,
``relations``, the ``tm=False`` baseline behaviour — is inherited
machinery driven by the shared IR evaluator:

* ``consistent()`` evaluates axioms **cheapest-IR-cost-first** (the
  planner), lazily, so the short-circuit hot path of the synthesizer
  never materialises operands it does not need;
* ``check()`` evaluates in declaration order and reports deterministic
  witnesses;
* ``definition_token()`` is derived from the interned structural digest
  of the axioms, so the campaign cache invalidates exactly when a
  model's *semantics* change (reformatting a file no longer does it,
  editing an axiom always does).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..obs import trace
from ..models.base import Axiom, MemoryModel
from .eval import axiom_holds, evaluate
from .nodes import Node, dag_stats

__all__ = ["IRAxiom", "IRDefinition", "IRModel"]

_CHECKS = {
    "acyclic": lambda rel: rel.is_acyclic(),
    "irreflexive": lambda rel: rel.is_irreflexive(),
    "empty": lambda rel: rel.is_empty(),
}


@dataclass(frozen=True)
class IRAxiom:
    """One axiom: ``kind(node)`` must hold; ``key`` names the operand in
    the ``relations()`` dictionary (kept distinct from ``name`` so the
    existing model APIs are unchanged)."""

    name: str
    kind: str
    key: str
    node: Node

    def __post_init__(self) -> None:
        if self.kind not in _CHECKS:
            raise ValueError(f"unknown axiom kind {self.kind!r}")
        if self.node.is_set or self.node.free_vars:
            raise ValueError(
                f"axiom {self.name!r} operand must be a closed relation node"
            )

    def holds_on(self, a) -> bool:
        return axiom_holds(self.kind, self.node, a)


@dataclass(frozen=True)
class IRDefinition:
    """A model's complete semantics as IR data."""

    axioms: tuple[IRAxiom, ...]
    #: Extra named relations exposed via ``relations()`` but not checked
    #: (e.g. cpp's ``hb``, consumed by the race predicate).
    extras: tuple[tuple[str, Node], ...] = ()

    def __post_init__(self) -> None:
        keys = [ax.key for ax in self.axioms] + [k for k, _ in self.extras]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate relation keys in {keys}")

    @cached_property
    def digest(self) -> str:
        """Stable structural digest of the whole definition."""
        import hashlib

        hasher = hashlib.sha256()
        for ax in self.axioms:
            hasher.update(
                f"{ax.name}:{ax.kind}:{ax.node.digest};".encode()
            )
        return hasher.hexdigest()[:16]

    @cached_property
    def plan(self) -> tuple[IRAxiom, ...]:
        """Axioms ordered cheapest-first for the short-circuit path."""
        order = sorted(
            range(len(self.axioms)),
            key=lambda i: (self.axioms[i].node.cost, i),
        )
        return tuple(self.axioms[i] for i in order)

    def roots(self) -> list[Node]:
        return [ax.node for ax in self.axioms] + [n for _, n in self.extras]

    def stats(self) -> dict[str, float]:
        """DAG sharing statistics (see :func:`repro.ir.nodes.dag_stats`)."""
        return dag_stats(self.roots())

    def drop(self, axiom_name: str) -> "IRDefinition":
        """The definition with one axiom removed (the uniform mutant
        constructor used by the conformance fuzzer)."""
        if axiom_name not in [ax.name for ax in self.axioms]:
            raise ValueError(f"no axiom named {axiom_name!r}")
        return IRDefinition(
            tuple(ax for ax in self.axioms if ax.name != axiom_name),
            self.extras,
        )


class IRModel(MemoryModel):
    """A :class:`~repro.models.base.MemoryModel` whose semantics is an
    :class:`IRDefinition`.

    Subclasses implement :meth:`define` (called once per class; the
    result is interned IR, execution-independent).  The public surface —
    ``relations``/``axioms``/``check``/``consistent``/``failed_axioms``
    — is identical to every other model's.
    """

    @classmethod
    def define(cls) -> IRDefinition:
        raise NotImplementedError

    def definition(self) -> IRDefinition:
        """This model's (cached) IR definition."""
        cls = type(self)
        cached = cls.__dict__.get("_ir_definition")
        if cached is None:
            cached = cls.define()
            cls._ir_definition = cached
        return cached

    # -- the MemoryModel surface, driven by the definition ---------------

    def relations(self, x):
        definition = self.definition()
        a = self._relations_analysis(x)
        out = {ax.key: evaluate(ax.node, a) for ax in definition.axioms}
        for key, node in definition.extras:
            out[key] = evaluate(node, a)
        return out

    def _relations_analysis(self, x):
        """``relations()`` historically receives the already-selected
        analysis from ``check``; coerce without re-applying ``tm``."""
        from ..core.analysis import analyze

        return analyze(x)

    def axioms(self) -> tuple[Axiom, ...]:
        return tuple(
            Axiom(ax.name, ax.kind, ax.key)
            for ax in self.definition().axioms
        )

    def consistent(self, x) -> bool:
        """Planner-ordered, lazily evaluated short-circuit consistency."""
        a = self._analysis(x)
        plan = self._checks_plan()
        if trace.ACTIVE is not None:
            with trace.stage("axioms"):
                return all(
                    axiom_holds(kind, node, a) for kind, node in plan
                )
        return all(axiom_holds(kind, node, a) for kind, node in plan)

    def _checks_plan(self):
        """Cached ``(kind, node)`` pairs in planner order (the per-call
        hot path avoids re-touching the definition)."""
        plan = getattr(self, "_plan_cache", None)
        if plan is None:
            plan = tuple(
                (ax.kind, ax.node) for ax in self.definition().plan
            )
            self._plan_cache = plan
        return plan

    def definition_token(self) -> str:
        """Names this model's semantics for engine cache keying: the
        structural IR digest (plus the ``tm`` flag), so persistent
        cached verdicts are invalidated precisely when an axiom's
        meaning changes."""
        return f"ir:{self.arch}:tm={self.tm}:{self.definition().digest}"

    def batch_definition(self):
        """Native IR models are always batchable."""
        return self.definition()
