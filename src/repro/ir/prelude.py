"""Shared derived-relation IR nodes, mirroring ``library/stdlib.cat``.

The native models build their axioms from these constants/helpers and the
``.cat`` compiler produces the *same interned nodes* by inlining the
stdlib definitions — that identity is what makes cross-family sharing
(native x86 and ``x86tm.cat`` in one campaign) free.

Most constants are also registered as evaluator *shortcuts* onto the
corresponding cached property of the candidate analysis, so evaluating
e.g. ``rfe`` reads ``Execution.rfe`` instead of recomputing ``rf & ext``
(the two are extensionally equal; ``tests/test_ir.py`` asserts it).
"""

from __future__ import annotations

from . import nodes as N
from .eval import register_shortcut
from .nodes import Node

__all__ = [
    "po",
    "rf",
    "co",
    "fr",
    "loc",
    "int_",
    "ext",
    "addr",
    "data",
    "ctrl",
    "rmw",
    "stxn",
    "stxnat",
    "tfence",
    "id_",
    "R",
    "W",
    "F",
    "M",
    "rfe",
    "rfi",
    "coe",
    "coi",
    "fre",
    "fri",
    "com",
    "come",
    "comi",
    "po_loc",
    "coherence",
    "rmw_isol",
    "fencerel",
    "weaklift",
    "stronglift",
]

# -- primitives ---------------------------------------------------------

po = N.base("po")
rf = N.base("rf")
co = N.base("co")
fr = N.base("fr")
loc = N.base("loc")
int_ = N.base("int")
ext = N.base("ext")
addr = N.base("addr")
data = N.base("data")
ctrl = N.base("ctrl")
rmw = N.base("rmw")
stxn = N.base("stxn")
stxnat = N.base("stxnat")
tfence = N.base("tfence")
id_ = N.base("id")

R = N.bset("R")
W = N.bset("W")
F = N.bset("F")
M = N.bset("M")

# -- external/internal restrictions (r^e and r^i in the paper) ----------

rfe = register_shortcut(rf & ext, lambda a: a.rfe)
rfi = register_shortcut(rf & int_, lambda a: a.rfi)
coe = register_shortcut(co & ext, lambda a: a.coe)
coi = register_shortcut(co & int_, lambda a: a.coi)
fre = register_shortcut(fr & ext, lambda a: a.fre)
fri = register_shortcut(fr & int_, lambda a: a.fri)

# -- communication (section 2.1) ----------------------------------------

com = register_shortcut(rf | co | fr, lambda a: a.com)
come = register_shortcut(com & ext, lambda a: a.come)
comi = com & int_

# -- same-location program order and the shared axiom operands ----------

po_loc = register_shortcut(po & loc, lambda a: a.po_loc)
coherence = register_shortcut(po_loc | com, lambda a: a.coherence)
rmw_isol = register_shortcut(rmw & (fre @ coe), lambda a: a.rmw_isol)


def fencerel(set_name: str) -> Node:
    """``po ; [f ∩ F] ; po`` (footnote 1), shortcut onto the analysis's
    memoized fence relation."""
    from .eval import _LABEL_FOR_SET

    node = N.comp(po, N.lift(N.sinter(N.bset(set_name), F)), po)
    label = _LABEL_FOR_SET[set_name]
    return register_shortcut(node, lambda a: a.fence_rel(label))


def weaklift(rel: Node) -> Node:
    """``weaklift(rel, stxn)`` — the dedicated transaction-lifting node."""
    return N.weaklift(rel)


def stronglift(rel: Node) -> Node:
    """``stronglift(rel, stxn)`` — the dedicated transaction-lifting node."""
    return N.stronglift(rel)
