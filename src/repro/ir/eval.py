"""The one evaluation engine behind every model.

:func:`evaluate` maps an interned IR :class:`~repro.ir.nodes.Node` plus a
shared :class:`~repro.core.analysis.CandidateAnalysis` to a concrete
:class:`~repro.core.relation.Relation` (or ``frozenset`` for set-valued
nodes).  Results are memoized **per (analysis, node)** through the
analysis's generic :meth:`~repro.core.analysis.CandidateAnalysis.memo`
hook, with the node's ``txn_free`` flag routed into the memo's
transaction-independence split — so:

* when a campaign sweeps eight models over one candidate, every node the
  models share (and hash-consing makes them share aggressively) is
  computed exactly once;
* a ``tm=False`` baseline sweep shares every transaction-independent
  value with the ``tm=True`` sweep of the same candidate.

Fixpoint nodes (the lowering of ``.cat``'s ``let rec``) are evaluated by
simultaneous Kleene iteration from the empty relations; all components
over the same body tuple share one iteration.  Free fixpoint variables
are resolved against an explicit environment and never memoized.

A small *shortcut table* maps a handful of prelude nodes (``rfe``,
``po_loc``, ``com``, the fence relations, ...) straight onto the cached
properties of the analysis/execution, so the IR path reuses the values
every other subsystem already computed rather than re-deriving them.
"""

from __future__ import annotations

from typing import Callable

from ..core.analysis import CandidateAnalysis
from ..core.events import Label
from ..core.relation import Relation
from .nodes import Node

__all__ = [
    "axiom_holds",
    "evaluate",
    "register_shortcut",
    "EvalStats",
    "STATS",
]


class EvalStats:
    """Process-wide counters (cheap; used by bench_ir, ``explain``, and
    the telemetry snapshot, which reports them as deltas-since-enable)."""

    __slots__ = (
        "computes",
        "fix_iterations",
        "memo_hits",
        "batch_computes",
        "batch_candidates",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.computes = 0
        self.fix_iterations = 0
        self.memo_hits = 0
        #: Batched node-kernel computations (one per (node, chunk)).
        self.batch_computes = 0
        #: Candidates whose consistency ran through the batched plans.
        self.batch_candidates = 0


STATS = EvalStats()

#: node id -> analysis getter, bypassing the structural computation.
_SHORTCUTS: dict[int, Callable[[CandidateAnalysis], object]] = {}


def register_shortcut(
    node: Node, getter: Callable[[CandidateAnalysis], object]
) -> Node:
    """Route ``node`` to a cached analysis value instead of recomputing.

    The getter must be extensionally equal to the structural evaluation
    of the node; ``tests/test_ir.py`` cross-checks every registered
    shortcut against the structural value.
    """
    _SHORTCUTS[node.id] = getter
    return node


_LABEL_FOR_SET = {
    "ACQ": Label.ACQ,
    "REL": Label.REL,
    "ACQREL": Label.ACQ_REL,
    "SC": Label.SC,
    "RLX": Label.RLX,
    "ATO": Label.ATO,
    "X": Label.EXCL,
    "MFENCE": Label.MFENCE,
    "SYNC": Label.SYNC,
    "LWSYNC": Label.LWSYNC,
    "ISYNC": Label.ISYNC,
    "DMB": Label.DMB,
    "DMB.LD": Label.DMB_LD,
    "DMB.ST": Label.DMB_ST,
    "ISB": Label.ISB,
    "FENCE.RW.RW": Label.FENCE_RW_RW,
    "FENCE.R.RW": Label.FENCE_R_RW,
    "FENCE.RW.W": Label.FENCE_RW_W,
    "FENCE.TSO": Label.FENCE_TSO,
}

_BASE_RELATION = {
    "po": lambda a: a.po,
    "rf": lambda a: a.rf_rel,
    "co": lambda a: a.co_rel,
    "fr": lambda a: a.fr,
    "loc": lambda a: a.sloc,
    "int": lambda a: a.sthd,
    "ext": lambda a: a.ext,
    "addr": lambda a: a.addr_rel,
    "data": lambda a: a.data_rel,
    "ctrl": lambda a: a.ctrl_rel,
    "rmw": lambda a: a.rmw_rel,
    "stxn": lambda a: a.stxn,
    "stxnat": lambda a: a.stxnat,
    "tfence": lambda a: a.tfence,
    "id": lambda a: Relation.identity(a.n),
}

_BASE_SET = {
    "_": lambda a: frozenset(range(a.n)),
    "R": lambda a: a.reads,
    "W": lambda a: a.writes,
    "F": lambda a: a.fences,
    "M": lambda a: a.accesses,
    "CALL": lambda a: a.calls,
    "TXN": lambda a: a.txn_events,
    "TXNAT": lambda a: a.atomic_txn_events,
}


def evaluate(
    node: Node,
    x: "CandidateAnalysis | object",
    env: tuple[Relation, ...] | None = None,
):
    """The value of ``node`` over the candidate analysed by ``x``.

    ``x`` may be an execution or its analysis (as everywhere else in the
    codebase).  ``env`` binds fixpoint variables during iteration; nodes
    containing free variables are computed directly, closed nodes go
    through the per-candidate memo.
    """
    if not isinstance(x, CandidateAnalysis):
        x = CandidateAnalysis.of(x)
    return _eval(node, x, env)


def _eval(node: Node, a: CandidateAnalysis, env):
    """The memoized recursion (``a`` is already an analysis).

    Closed nodes are memoized in the analysis's dedicated
    ``_ir_memo`` dict, keyed by node id; txn-free nodes evaluated on a
    baseline view store on the *parent* analysis, so the ``tm=True``
    and ``tm=False`` sweeps of one candidate share them (the same split
    :meth:`CandidateAnalysis.memo` implements, without its generic-key
    overhead — this is the hottest loop in a campaign).
    """
    if node.free_vars:
        if env is None:
            raise ValueError(f"node {node!r} has free fixpoint variables")
        return _compute(node, a, env)
    target = a
    if node.txn_free and a._parent is not None:
        target = a._parent
    memo = target._ir_memo
    node_id = node.id
    hit = memo.get(node_id, _MISSING)
    if hit is _MISSING:
        hit = _compute(node, target, env)
        memo[node_id] = hit
    else:
        STATS.memo_hits += 1
    return hit


_MISSING = object()


def _eval_args(node: Node, a: CandidateAnalysis, env):
    return [_eval(arg, a, env) for arg in node.args]


def _compute(node: Node, a: CandidateAnalysis, env):
    STATS.computes += 1
    shortcut = _SHORTCUTS.get(node.id)
    if shortcut is not None:
        return shortcut(a)
    return _DISPATCH[node.kind](node, a, env)


def _c_base(node, a, env):
    return _BASE_RELATION[node.token](a)


def _c_set(node, a, env):
    getter = _BASE_SET.get(node.token)
    if getter is not None:
        return getter(a)
    return a.labelled(_LABEL_FOR_SET[node.token])


def _c_union(node, a, env):
    args = node.args
    out = _eval(args[0], a, env)
    for item in args[1:]:
        out = out | _eval(item, a, env)
    return out


def _c_inter(node, a, env):
    args = node.args
    out = _eval(args[0], a, env)
    for item in args[1:]:
        out = out & _eval(item, a, env)
    return out


def _c_diff(node, a, env):
    left, right = node.args
    return _eval(left, a, env) - _eval(right, a, env)


def _c_comp(node, a, env):
    args = node.args
    out = _eval(args[0], a, env)
    for item in args[1:]:
        out = out @ _eval(item, a, env)
    return out


_DISPATCH = {
    "base": _c_base,
    "set": _c_set,
    "empty": lambda node, a, env: Relation.empty(a.n),
    "sempty": lambda node, a, env: frozenset(),
    "var": lambda node, a, env: env[node.token],
    "fix": lambda node, a, env: _eval_fix(node, a)[node.token],
    "union": _c_union,
    "sunion": _c_union,
    "inter": _c_inter,
    "sinter": _c_inter,
    "diff": _c_diff,
    "sdiff": _c_diff,
    "compl": lambda node, a, env: _eval(node.args[0], a, env).complement(),
    "scompl": lambda node, a, env: (
        frozenset(range(a.n)) - _eval(node.args[0], a, env)
    ),
    "comp": _c_comp,
    "inverse": lambda node, a, env: _eval(node.args[0], a, env).inverse(),
    "opt": lambda node, a, env: _eval(node.args[0], a, env).opt(),
    "plus": lambda node, a, env: _eval(node.args[0], a, env).plus(),
    "star": lambda node, a, env: _eval(node.args[0], a, env).star(),
    "lift": lambda node, a, env: a.lift(_eval(node.args[0], a, env)),
    "cross": lambda node, a, env: a.cross(
        _eval(node.args[0], a, env), _eval(node.args[1], a, env)
    ),
    "domain": lambda node, a, env: _eval(node.args[0], a, env).domain(),
    "range": lambda node, a, env: _eval(node.args[0], a, env).codomain(),
    "stronglift": lambda node, a, env: a.stronglift(
        _eval(node.args[0], a, env)
    ),
    "weaklift": lambda node, a, env: a.weaklift(
        _eval(node.args[0], a, env)
    ),
}

#: Axiom-predicate memo keys: negative ints derived from (node, kind),
#: disjoint from the non-negative node-id keys of ``_ir_memo``.
_KIND_CODE = {"acyclic": 1, "irreflexive": 2, "empty": 3}


def axiom_holds(kind: str, node: Node, x) -> bool:
    """Memoized ``kind(node)`` predicate over one candidate.

    Many models share axiom operands verbatim (``Coherence``,
    ``RMWIsol``, ``stronglift(com)`` appear in most architecture
    models); memoizing the *predicate* result means a campaign checks
    each shared axiom once per candidate, not once per model.
    """
    if not isinstance(x, CandidateAnalysis):
        x = CandidateAnalysis.of(x)
    a = x
    if node.txn_free and a._parent is not None:
        a = a._parent
    memo = a._ir_memo
    key = -(node.id * 4 + _KIND_CODE[kind])
    hit = memo.get(key)
    if hit is None:
        rel = _eval(node, a, None)
        if kind == "acyclic":
            hit = rel.is_acyclic()
        elif kind == "irreflexive":
            hit = rel.is_irreflexive()
        else:
            hit = rel.is_empty()
        memo[key] = hit
    return hit


def _eval_fix(node: Node, a: CandidateAnalysis) -> tuple[Relation, ...]:
    """The simultaneous least fixpoint of ``node.args``, memoized once
    per candidate for all components (every ``fix(bodies, i)`` shares
    the tuple computed for its body list)."""
    bodies = node.args
    key = ("fix",) + tuple(b.id for b in bodies)
    memo = a._ir_memo
    hit = memo.get(key)
    if hit is not None:
        return hit
    rels = tuple(Relation.empty(a.n) for _ in bodies)
    # Every operator is monotone, so the chain is increasing and
    # bounded by the full relation; the step bound guards against
    # non-monotone misuse (mirrors the tree-walk evaluator).
    max_steps = a.n * a.n * len(bodies) + 8
    for _ in range(max_steps):
        STATS.fix_iterations += 1
        new = tuple(_eval(b, a, rels) for b in bodies)
        if new == rels:
            memo[key] = rels
            return rels
        rels = new
    raise RuntimeError(
        f"IR fixpoint over {len(bodies)} bindings did not converge"
    )
