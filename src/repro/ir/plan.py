"""Compiled batch-evaluation plans: one kernel sequence per model.

A campaign re-checks the same model over thousands of chunks; walking
the IR DAG (dict dispatch, recursion, memo probes) per chunk is pure
overhead once the shape is known.  :class:`BatchPlan` compiles a
:class:`~repro.ir.model.IRDefinition` once per ``(definition_token,
universe size)`` into a flat, topologically ordered, dead-node-pruned
sequence of kernel closures:

* axioms keep their planner (cheapest-first) order; each axiom owns the
  *segment* of node steps not already produced by an earlier axiom
  (dead nodes — anything not reachable from a checked axiom — are never
  scheduled);
* each step is a closure bound at compile time to its batched kernel
  (:mod:`repro.core.relbatch` ops, shortcut packing, or the batched
  fixpoint), so executing a chunk does no per-node dispatch;
* verdicts short-circuit at batch granularity: after each axiom the
  surviving-candidate mask is intersected, and evaluation stops once
  every candidate in the chunk is already inconsistent;
* per-candidate axiom verdicts are read from and written to the same
  scalar predicate memo :func:`repro.ir.eval.axiom_holds` uses, so
  chunks whose shared axioms were already decided (by another model or
  a scalar sweep) skip their kernel segments entirely — the segment's
  steps are *deferred*, not dropped, in case a later axiom needs their
  nodes.

:func:`consistent_batch` is the engine-facing entry: verdicts for a
stack of same-universe executions under one model, with the scalar
path's ``tm`` baseline handling and telemetry stages.
"""

from __future__ import annotations

import os
import time
from functools import reduce

from ..core import relbatch as _relbatch
from ..core.events import EventKind
from ..core.relbatch import RelationBatch, SetBatch
from ..obs import metrics as obs_metrics
from ..obs import trace
from .eval import (
    _BASE_RELATION,
    _BASE_SET,
    _KIND_CODE,
    _LABEL_FOR_SET,
    STATS,
)
from .batch import BatchContext, _check, _eval_fix, _predicate_memo, _stxn
from . import nodes as _nodes
from .nodes import Node

__all__ = [
    "BatchPlan",
    "consistent_batch",
    "consistent_on",
    "kernel_floor",
    "plan_for",
]

#: Below this stack size the per-call overhead of the batched kernels
#: exceeds the scalar evaluator's cost (packed-int ops on small
#: universes are fast; array construction is not), so ``consistent_on``
#: falls back to per-candidate :meth:`MemoryModel.consistent` — which
#: shares the same predicate memos, so verdicts are identical either
#: way.  Tests pin this to 0 to force the kernels onto tiny stacks.
MIN_KERNEL_BATCH = 8

#: The floor once a *generated* kernel is warm for the plan: building
#: the straight-line function already happened, so all that remains per
#: chunk is cheap array ops — worth it from two candidates up.  A batch
#: of one still walks the scalar path (it shares the predicate memos).
CODEGEN_KERNEL_BATCH = 2


def kernel_floor(token: str | None = None, n: int | None = None) -> int:
    """The effective minimum stack size for the batched kernels.

    ``REPRO_MIN_KERNEL_BATCH`` overrides everything; otherwise the
    module default applies, except that a plan whose *generated* kernel
    (:mod:`repro.ir.codegen`) is already compiled for ``(token, n)`` on
    the active backend drops to :data:`CODEGEN_KERNEL_BATCH` — warm
    small stacks were falling back to the scalar walk even though the
    expensive part (compilation) was already paid.  Tests that pin
    ``MIN_KERNEL_BATCH`` below the codegen floor keep their pin: the
    warm-plan rule only ever lowers the floor.
    """
    raw = os.environ.get("REPRO_MIN_KERNEL_BATCH")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    floor = MIN_KERNEL_BATCH
    if floor > CODEGEN_KERNEL_BATCH and token is not None and n is not None:
        from . import codegen

        if codegen.enabled() and codegen.is_warm(token, n):
            return CODEGEN_KERNEL_BATCH
    return floor


def _fetch(ctx: BatchContext, node: Node):
    """The node's value from the memo it routes to (txn-free values of a
    baseline context live on the parent)."""
    if node.txn_free and ctx._parent is not None:
        return ctx._parent._memo[node.id]
    return ctx._memo[node.id]


#: Memo key of the per-context dense event profile (numpy backend).
_PROFILE_KEY = "_event_profile"

_READ = EventKind.READ
_WRITE = EventKind.WRITE
_FENCE = EventKind.FENCE
_CALL = EventKind.CALL

#: Base relations a profile turns into a couple of vectorized
#: comparisons instead of a per-candidate pack.
_STRUCTURAL_RELATIONS = frozenset(("po", "int", "loc"))

#: Base sets read straight off the profile's kind flags.
_FLAG_SETS = frozenset(("_", "R", "W", "F", "M", "CALL"))


def _profile(tctx: BatchContext):
    """Dense per-event attributes of the stack (numpy backend only).

    One Python pass over the events collects thread ids, program-order
    positions, location ids, kind flags and label flags as small
    ``[batch, n]`` arrays; every structural base relation or set
    afterwards is a broadcasted comparison over them — no per-candidate
    scalar :class:`Relation` construction at all.  Transaction
    structure is deliberately absent: everything here is txn-free, and
    the txn-free routing means a baseline context never builds its own
    profile.
    """
    prof = tctx._memo.get(_PROFILE_KEY)
    if prof is None:
        np = _relbatch._np
        batch, n = tctx.batch, tctx.n
        tid = np.zeros((batch, n), np.int16)
        pos = np.zeros((batch, n), np.int16)
        locid = np.full((batch, n), -1, np.int16)
        kinds = {
            k: np.zeros((batch, n), np.uint8) for k in ("R", "W", "F", "CALL")
        }
        labels: dict[str, object] = {}
        for b, a in enumerate(tctx.analyses):
            x = a.execution
            for t, thread in enumerate(x.threads):
                for p, e in enumerate(thread):
                    tid[b, e] = t
                    pos[b, e] = p
            locs: dict = {}
            for e, event in enumerate(x.events):
                kind = event.kind  # kinds are disjoint; skip 4 properties
                if kind is _READ or kind is _WRITE:
                    kinds["R" if kind is _READ else "W"][b, e] = 1
                    locid[b, e] = locs.setdefault(event.loc, len(locs))
                elif kind is _FENCE:
                    kinds["F"][b, e] = 1
                elif kind is _CALL:
                    kinds["CALL"][b, e] = 1
                for lab in event.labels:
                    flag = labels.get(lab)
                    if flag is None:
                        labels[lab] = flag = np.zeros((batch, n), np.uint8)
                    flag[b, e] = 1
        prof = (tid, pos, locid, kinds, labels)
        tctx._memo[_PROFILE_KEY] = prof
    return prof


def _structural_relation(tctx: BatchContext, token: str) -> RelationBatch:
    """``po`` / ``int`` / ``loc`` as broadcasted profile comparisons,
    matching the scalar definitions bit for bit: ``po`` is same-thread
    strict program order, ``int`` (= ``sthd``) is reflexive same-thread,
    ``loc`` (= ``sloc``) is reflexive same-location over accesses."""
    np = _relbatch._np
    tid, pos, locid, _, _ = _profile(tctx)
    if token == "po":
        data = (tid[:, :, None] == tid[:, None, :]) & (
            pos[:, :, None] < pos[:, None, :]
        )
    elif token == "int":
        data = tid[:, :, None] == tid[:, None, :]
    else:  # "loc"
        data = (locid[:, :, None] == locid[:, None, :]) & (
            locid[:, :, None] >= 0
        )
    return RelationBatch.from_dense(data.view(np.uint8))


def _leaf_relation(tctx: BatchContext, token: str):
    """Build-or-fetch the interned base-relation node for ``token``.

    Stored under the node's id in ``tctx``'s memo, so a later scheduled
    step (or another model's plan on the same context) reuses it.  Only
    called for transaction-independent tokens, whose txn-free routing
    matches the caller's (already-routed) ``tctx``.
    """
    node = _nodes.base(token)
    memo = tctx._memo
    val = memo.get(node.id)
    if val is None:
        STATS.batch_computes += 1
        if (
            token in _STRUCTURAL_RELATIONS
            and _relbatch.active_backend() == "numpy"
        ):
            val = _structural_relation(tctx, token)
        else:
            val = tctx.pack_relations(_BASE_RELATION[token])
        memo[node.id] = val
    return val


def _leaf_set(tctx: BatchContext, token: str):
    """Build-or-fetch the interned base-set node for ``token``."""
    node = _nodes.bset(token)
    memo = tctx._memo
    val = memo.get(node.id)
    if val is None:
        STATS.batch_computes += 1
        if token in _FLAG_SETS and _relbatch.active_backend() == "numpy":
            np = _relbatch._np
            kinds = _profile(tctx)[3]
            if token == "_":
                data = np.ones((tctx.batch, tctx.n), np.uint8)
            elif token == "M":
                data = kinds["R"] | kinds["W"]
            else:
                data = kinds[token]
            val = SetBatch.from_dense(data)
        else:
            val = tctx.pack_sets(_BASE_SET[token])
        memo[node.id] = val
    return val


def _labelled_set(tctx: BatchContext, node: Node, label: str):
    """Build-or-fetch a label-defined set (fence flavours, modes, ...)
    — a profile lookup on the numpy backend, a pack otherwise."""
    memo = tctx._memo
    val = memo.get(node.id)
    if val is None:
        STATS.batch_computes += 1
        if _relbatch.active_backend() == "numpy":
            flag = _profile(tctx)[4].get(label)
            if flag is None:
                val = SetBatch.empty(tctx.batch, tctx.n)
            else:
                val = SetBatch.from_dense(flag)
        else:
            val = tctx.pack_sets(lambda a: a.labelled(label))
        memo[node.id] = val
    return val


def _fr_kernel(tctx: BatchContext):
    """Batched from-read, mirroring :attr:`Execution.fr` exactly:
    ``([R]; sloc; [W]) \\ (rf⁻¹; (co⁻¹)*)`` — the lifts are domain/range
    masks, so this is a handful of batch kernels instead of that scalar
    expression per candidate."""
    rf = _leaf_relation(tctx, "rf")
    co = _leaf_relation(tctx, "co")
    sloc = _leaf_relation(tctx, "loc")
    reads = _leaf_set(tctx, "R")
    writes = _leaf_set(tctx, "W")
    # ``co`` is built transitively closed (per-location total orders),
    # so ``(co⁻¹)*`` is just ``(co⁻¹)?``.
    return sloc.restrict(reads, writes) - (rf.inverse() @ co.inverse().opt())


def _compile_kernel(node: Node):
    """A closure computing ``node`` from already-stored argument values.

    ``tctx`` is the context the node computes against (after the
    txn-free routing done by the segment runner), matching
    :func:`repro.ir.batch.evaluate_batch`.

    Unlike the scalar evaluator (and the ad-hoc batch evaluator), plans
    do *not* take shortcuts (:data:`repro.ir.eval._SHORTCUTS`): a
    shortcut packs the analysis's scalar cached property per candidate
    — O(batch) scalar relation algebra — whereas descending into the
    shortcut node's own DAG costs a handful of batched kernels shared
    by the whole stack (and, via the node memo, by every model swept
    over the same context).
    """
    kind = node.kind
    args = node.args
    if kind == "base":
        token = node.token
        if token == "id":
            return lambda tctx: RelationBatch.identity(tctx.batch, tctx.n)
        if token == "fr":
            return _fr_kernel
        if token == "ext":
            # ``full \ sthd`` per candidate == batched complement of int.
            return lambda tctx: _leaf_relation(tctx, "int").complement()
        if token in _STRUCTURAL_RELATIONS:
            return lambda tctx: _leaf_relation(tctx, token)
        getter = _BASE_RELATION[token]
        return lambda tctx: tctx.pack_relations(getter)
    if kind == "set":
        token = node.token
        if token in _FLAG_SETS:
            return lambda tctx: _leaf_set(tctx, token)
        getter = _BASE_SET.get(token)
        if getter is not None:
            return lambda tctx: tctx.pack_sets(getter)
        label = _LABEL_FOR_SET[token]
        return lambda tctx: _labelled_set(tctx, node, label)
    if kind == "empty":
        return lambda tctx: RelationBatch.empty(tctx.batch, tctx.n)
    if kind == "sempty":
        return lambda tctx: SetBatch.empty(tctx.batch, tctx.n)
    if kind == "fix":
        index = node.token
        return lambda tctx: _eval_fix(node, tctx)[index]
    if kind in ("union", "sunion"):
        return lambda tctx: reduce(
            lambda x, y: x | y, (_fetch(tctx, a) for a in args)
        )
    if kind in ("inter", "sinter"):
        return lambda tctx: reduce(
            lambda x, y: x & y, (_fetch(tctx, a) for a in args)
        )
    if kind in ("diff", "sdiff"):
        left, right = args
        return lambda tctx: _fetch(tctx, left) - _fetch(tctx, right)
    if kind in ("compl", "scompl"):
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).complement()
    if kind == "comp":
        # Peephole: a ``lift`` factor ``[S]`` is a domain/range mask on
        # its neighbour, not a matmul — ``r;[S];q == (r & cols S) ; q``.
        parts = [
            ("mask", a.args[0]) if a.kind == "lift" else ("rel", a)
            for a in args
        ]
        if all(tag == "rel" for tag, _ in parts):
            return lambda tctx: reduce(
                lambda x, y: x @ y, (_fetch(tctx, a) for a in args)
            )

        def comp(tctx):
            out = None
            masks = []  # leading [S] factors: domain masks for the
            for tag, sub in parts:  # first real relation
                if tag == "mask":
                    s = _fetch(tctx, sub)
                    if out is None:
                        masks.append(s)
                    else:
                        out = out.restrict_range(s)
                else:
                    val = _fetch(tctx, sub)
                    for s in masks:
                        val = val.restrict_domain(s)
                    masks = []
                    out = val if out is None else out @ val
            if out is None:  # every factor was a lift: [A];[B] = [A∩B]
                out = masks[0]
                for s in masks[1:]:
                    out = out & s
                return RelationBatch.lift_set(out)
            return out

        return comp
    if kind == "inverse":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).inverse()
    if kind == "opt":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).opt()
    if kind == "plus":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).plus()
    if kind == "star":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).star()
    if kind == "lift":
        (arg,) = args
        return lambda tctx: RelationBatch.lift_set(_fetch(tctx, arg))
    if kind == "cross":
        left, right = args
        return lambda tctx: RelationBatch.cross_sets(
            _fetch(tctx, left), _fetch(tctx, right)
        )
    if kind == "domain":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).domain()
    if kind == "range":
        (arg,) = args
        return lambda tctx: _fetch(tctx, arg).codomain()
    if kind == "stronglift":
        (arg,) = args

        def stronglift(tctx):
            txn = _stxn(tctx)
            topt = txn.opt()
            return topt @ (_fetch(tctx, arg) - txn) @ topt

        return stronglift
    if kind == "weaklift":
        (arg,) = args

        def weaklift(tctx):
            txn = _stxn(tctx)
            return txn @ (_fetch(tctx, arg) - txn) @ txn

        return weaklift
    raise NotImplementedError(f"no batch kernel for node kind {kind!r}")


def _schedule(node: Node, seen: set[int], steps: list) -> None:
    """Post-order DFS over the closed sub-DAG: arguments before uses.

    Fixpoint nodes are atomic steps (the batched Kleene iteration owns
    their bodies); shortcut nodes are descended into — see
    :func:`_compile_kernel`; free-variable nodes are reached only
    inside fixpoint bodies.
    """
    if node.id in seen or node.free_vars:
        return
    seen.add(node.id)
    if node.kind != "fix":
        for arg in node.args:
            if node.kind == "comp" and arg.kind == "lift":
                # The comp kernel's lift peephole consumes the *set*;
                # the lift node itself is only scheduled if some other
                # parent needs its relation value.
                _schedule(arg.args[0], seen, steps)
            else:
                _schedule(arg, seen, steps)
    steps.append((node, _compile_kernel(node)))


def _memo_row(ctx: BatchContext, txn_free: bool) -> list:
    """The per-candidate predicate memos an axiom's verdicts route to
    (:func:`repro.ir.batch._predicate_memo`), cached per context — every
    model swept over the same context probes the same two rows."""
    key = "_pred_memos_tf" if txn_free else "_pred_memos"
    row = ctx._memo.get(key)
    if row is None:
        if txn_free:
            row = [
                (a._parent if a._parent is not None else a)._ir_memo
                for a in ctx.analyses
            ]
        else:
            row = [a._ir_memo for a in ctx.analyses]
        ctx._memo[key] = row
    return row


def _run_steps(steps, ctx: BatchContext) -> None:
    parent = ctx._parent
    for node, kernel in steps:
        tctx = parent if (node.txn_free and parent is not None) else ctx
        memo = tctx._memo
        if node.id in memo:
            continue
        STATS.batch_computes += 1
        memo[node.id] = kernel(tctx)


class BatchPlan:
    """The compiled kernel sequence for one definition at one universe
    size (see the module docstring)."""

    __slots__ = ("n", "segments")

    def __init__(self, definition, n: int) -> None:
        self.n = n
        seen: set[int] = set()
        segments = []
        for ax in definition.plan:
            steps: list = []
            _schedule(ax.node, seen, steps)
            key = -(ax.node.id * 4 + _KIND_CODE[ax.kind])
            segments.append((tuple(steps), ax.kind, ax.node, key))
        self.segments = tuple(segments)

    def consistent(self, ctx: BatchContext) -> list[bool]:
        """One consistency verdict per candidate of ``ctx``."""
        alive = [True] * ctx.batch
        deferred: list = []
        for steps, kind, node, key in self.segments:
            memos = _memo_row(ctx, node.txn_free)
            flags = [memo.get(key) for memo in memos]
            if None in flags:
                for pending in deferred:
                    _run_steps(pending, ctx)
                deferred.clear()
                _run_steps(steps, ctx)
                flags = [bool(f) for f in _check(kind, _fetch(ctx, node))]
                for memo, flag in zip(memos, flags):
                    memo[key] = flag
            else:
                STATS.memo_hits += len(flags)
                deferred.append(steps)
            alive = [a and f for a, f in zip(alive, flags)]
            if not any(alive):
                break
        return alive


#: ``(definition_token, n) -> BatchPlan`` — compiled once per process.
_PLANS: dict[tuple[str, int], BatchPlan] = {}


def plan_for(token: str, definition, n: int) -> BatchPlan:
    """The cached plan for ``definition`` at universe size ``n``."""
    key = (token, n)
    plan = _PLANS.get(key)
    if plan is None:
        plan = BatchPlan(definition, n)
        _PLANS[key] = plan
    return plan


def consistent_batch(model, definition, executions) -> list[bool]:
    """Batched :meth:`MemoryModel.consistent` over same-universe
    executions: the compiled plan, against the baseline stack when the
    model runs with ``tm=False``."""
    if not executions:
        return []
    floor = kernel_floor(model.definition_token(), executions[0].n)
    if len(executions) < floor:
        return [bool(model.consistent(x)) for x in executions]
    return consistent_on(model, definition, BatchContext.of(executions))


def consistent_on(model, definition, ctx: BatchContext) -> list[bool]:
    """:func:`consistent_batch` over an already-built context.

    The campaign prefill (:mod:`repro.engine.batchsweep`) builds one
    :class:`BatchContext` per universe-size bucket and sweeps *every*
    model's plan over it, so base-relation packing and hash-consed node
    values are shared across models, not just across candidates.
    ``ctx`` must be the unstripped stack — the ``tm`` baseline split is
    applied here, as in the scalar :meth:`MemoryModel._analysis`.

    The actual kernels come from the fastest available tier: the
    generated straight-line function (:mod:`repro.ir.codegen`) when
    enabled and buildable for this plan, else the interpreted
    :class:`BatchPlan` — identical verdicts either way.
    """
    token = model.definition_token()
    if ctx.batch < kernel_floor(token, ctx.n):
        return [bool(model.consistent(a)) for a in ctx.analyses]
    target = ctx if model.tm else ctx.baseline
    runner = plan_for(token, definition, ctx.n)
    from . import codegen

    if codegen.enabled():
        compiled = codegen.compiled_for(token, definition, ctx.n)
        if compiled is not None:
            runner = compiled
    STATS.batch_candidates += ctx.batch
    registry = obs_metrics.ACTIVE
    if trace.ACTIVE is None and registry is None:
        return runner.consistent(target)
    start = time.perf_counter()
    if trace.ACTIVE is not None:
        with trace.stage("axioms"):
            flags = runner.consistent(target)
        trace.count("batched_candidates", ctx.batch)
    else:
        flags = runner.consistent(target)
    if registry is not None:
        registry.histogram("batch_size").observe(ctx.batch)
        registry.histogram("batch_kernel_seconds").observe(
            time.perf_counter() - start
        )
    return flags
