"""Hash-consed relational expression nodes.

Every model in this repository — the eight native Python models and every
``.cat`` file in the library — is a predicate over the same derived-relation
algebra (paper section 2.1).  This module gives that algebra a first-class
*intermediate representation*: immutable expression nodes, structurally
interned, so that identical subexpressions built anywhere in the process —
by two different native models, by a native model and the ``.cat`` compiler,
by two mutants of the same model — are the **same object**.

Node kinds
==========

Relation-valued
    ``base`` (a primitive relation of the candidate analysis: ``po``,
    ``rf``, ``co``, ``fr``, ``loc``, ``int``, ``ext``, ``addr``, ``data``,
    ``ctrl``, ``rmw``, ``stxn``, ``stxnat``, ``tfence``, ``id``),
    ``empty``, ``union``, ``inter``, ``diff``, ``compl``, ``comp`` (``;``),
    ``inverse``, ``opt``, ``plus``, ``star``, ``lift`` (``[s]``), ``cross``
    (``s1 × s2``), ``stronglift``/``weaklift`` (the section 3.3 transaction
    liftings w.r.t. ``stxn``), ``fix`` (simultaneous least fixpoint, the
    lowering of ``let rec``) and ``var`` (a fixpoint-bound variable).

Set-valued
    ``set`` (a primitive event set: ``R``, ``W``, ``F``, ``M``, label
    sets, ``TXN``, ``TXNAT``, ``_``), ``sempty``, ``sunion``, ``sinter``,
    ``sdiff``, ``scompl``, ``domain``, ``range``.

Interning and normalisation
===========================

Construction goes through the smart constructors below, which normalise
before interning:

* ``union``/``inter`` (and their set forms) are flattened to n-ary,
  deduplicated, and sorted by structural digest — ``(a | b) | c``,
  ``c | (b | a)`` and ``a | b | c | b`` are all the same node;
* ``comp`` is flattened to n-ary (composition is associative) and drops
  ``id`` operands;
* identity elements are eliminated (``r | 0 = r``, ``r ; 0 = 0``,
  ``r \\ 0 = r``, ``r \\ r = 0``) and closure towers collapse
  (``(r?)? = r?``, ``(r⁺)* = r*``, ``(r?)⁺ = r*``, ``(r⁻¹)⁻¹ = r``);
* a composition matching a transaction-lifting pattern is rewritten to
  the dedicated node: ``stxn ; (r \\ stxn) ; stxn`` becomes
  ``weaklift(r)`` and ``stxn? ; (r \\ stxn) ; stxn?`` becomes
  ``stronglift(r)`` — so ``.cat`` code inlining the stdlib's
  ``weaklift(r, stxn)`` closure and native code calling
  :func:`weaklift` intern to the same node.

Every node carries:

``digest``
    a structural SHA-256 prefix, *stable across processes* (child order
    in commutative nodes is digest-sorted, never intern-order-sorted),
    from which model ``definition_token()``\\ s — and hence the campaign
    cache keys — are derived;
``txn_free``
    True iff the node's value is independent of the transactional
    structure (no ``stxn``/``stxnat``/``tfence``/``TXN``/``TXNAT`` or
    lifting underneath) — the evaluator's memo uses this to share values
    between the ``tm=True`` analysis and its ``tm=False`` baseline view;
``cost``
    a static evaluation-cost heuristic used by the axiom planner to
    order a model's axioms cheapest-first on the ``consistent()``
    short-circuit hot path;
``size``
    the as-if-tree node count, whose ratio against the DAG node count is
    the sharing statistic reported by ``repro explain`` and
    ``benchmarks/bench_ir.py``.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterable

__all__ = [
    "Node",
    "BASE_RELATIONS",
    "BASE_SETS",
    "TXN_BASES",
    "base",
    "bset",
    "empty",
    "sempty",
    "union",
    "inter",
    "diff",
    "compl",
    "comp",
    "inverse",
    "opt",
    "plus",
    "star",
    "lift",
    "cross",
    "sunion",
    "sinter",
    "sdiff",
    "scompl",
    "domain",
    "range_",
    "stronglift",
    "weaklift",
    "fix",
    "var",
    "reachable",
    "dag_stats",
    "cross_model_stats",
]

#: Primitive relation names resolvable against a candidate analysis.
BASE_RELATIONS = frozenset(
    {
        "id",
        "po",
        "rf",
        "co",
        "fr",
        "loc",
        "int",
        "ext",
        "addr",
        "data",
        "ctrl",
        "rmw",
        "stxn",
        "stxnat",
        "tfence",
    }
)

#: Primitive event-set names (the .cat base environment's sets).
BASE_SETS = frozenset(
    {
        "_",
        "R",
        "W",
        "F",
        "M",
        "CALL",
        "ACQ",
        "REL",
        "ACQREL",
        "SC",
        "RLX",
        "ATO",
        "X",
        "MFENCE",
        "SYNC",
        "LWSYNC",
        "ISYNC",
        "DMB",
        "DMB.LD",
        "DMB.ST",
        "ISB",
        "FENCE.RW.RW",
        "FENCE.R.RW",
        "FENCE.RW.W",
        "FENCE.TSO",
        "TXN",
        "TXNAT",
    }
)

#: Primitive names whose value depends on the transactional structure.
TXN_BASES = frozenset({"stxn", "stxnat", "tfence", "TXN", "TXNAT"})

#: Node kinds that are set-valued.
_SET_KINDS = frozenset(
    {"set", "sempty", "sunion", "sinter", "sdiff", "scompl", "domain", "range"}
)


class Node:
    """One interned IR node.  Never construct directly — use the smart
    constructors, which normalise and intern."""

    __slots__ = (
        "id",
        "kind",
        "token",
        "args",
        "is_set",
        "txn_free",
        "free_vars",
        "digest",
        "cost",
        "size",
    )

    id: int
    kind: str
    token: object
    args: "tuple[Node, ...]"
    is_set: bool
    txn_free: bool
    free_vars: bool
    digest: str
    cost: int
    size: int

    # -- operator sugar mirroring repro.core.relation.Relation ----------

    def __or__(self, other: "Node") -> "Node":
        return sunion(self, other) if self.is_set else union(self, other)

    def __and__(self, other: "Node") -> "Node":
        return sinter(self, other) if self.is_set else inter(self, other)

    def __sub__(self, other: "Node") -> "Node":
        return sdiff(self, other) if self.is_set else diff(self, other)

    def __matmul__(self, other: "Node") -> "Node":
        return comp(self, other)

    def opt(self) -> "Node":
        return opt(self)

    def plus(self) -> "Node":
        return plus(self)

    def star(self) -> "Node":
        return star(self)

    def inverse(self) -> "Node":
        return inverse(self)

    def complement(self) -> "Node":
        return scompl(self) if self.is_set else compl(self)

    def __repr__(self) -> str:
        return f"<ir #{self.id} {describe(self)}>"


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------

_INTERN: dict[tuple, Node] = {}
_LOCK = threading.Lock()
_NEXT_ID = 0

#: Kinds whose value is NOT txn-free even when their children are.
_TXN_KINDS = frozenset({"stronglift", "weaklift"})

_COST = {
    "base": 1,
    "set": 1,
    "empty": 0,
    "sempty": 0,
    "id": 1,
    "lift": 2,
    "cross": 2,
    "domain": 2,
    "range": 2,
    "inverse": 3,
    "opt": 2,
    "compl": 3,
    "scompl": 2,
    "stronglift": 6,
    "weaklift": 6,
    "plus": 12,
    "star": 14,
    "var": 0,
}


def _make(kind: str, token: object, args: tuple[Node, ...]) -> Node:
    """Intern (kind, token, args) into a node, computing the metadata."""
    key = (kind, token, tuple(a.id for a in args))
    with _LOCK:
        found = _INTERN.get(key)
        if found is not None:
            return found
        global _NEXT_ID
        node = Node.__new__(Node)
        node.id = _NEXT_ID
        _NEXT_ID += 1
        node.kind = kind
        node.token = token
        node.args = args
        node.is_set = kind in _SET_KINDS
        if kind in ("base", "set"):
            node.txn_free = token not in TXN_BASES
        elif kind in _TXN_KINDS:
            node.txn_free = False
        else:
            node.txn_free = all(a.txn_free for a in args)
        if kind == "fix":
            # A fixpoint binds every variable its bodies reference
            # (nested ``let rec`` is rejected at compile time).
            node.free_vars = False
        else:
            node.free_vars = kind == "var" or any(a.free_vars for a in args)
        hasher = hashlib.sha256()
        hasher.update(kind.encode())
        hasher.update(b"\x00")
        hasher.update(str(token).encode())
        for a in args:
            hasher.update(b"\x00")
            hasher.update(a.digest.encode())
        node.digest = hasher.hexdigest()[:16]
        child_cost = sum(a.cost for a in args)
        if kind in ("union", "inter", "diff", "sunion", "sinter", "sdiff"):
            node.cost = child_cost + len(args)
        elif kind == "comp":
            node.cost = child_cost + 3 * len(args)
        elif kind == "fix":
            node.cost = child_cost * 8 + 16
        else:
            node.cost = child_cost + _COST.get(kind, 2)
        node.size = 1 + sum(a.size for a in args)
        _INTERN[key] = node
        return node


def intern_count() -> int:
    """Number of live interned nodes (for stats/tests)."""
    return len(_INTERN)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------


def base(name: str) -> Node:
    """A primitive relation of the candidate analysis."""
    if name not in BASE_RELATIONS:
        raise ValueError(f"unknown base relation {name!r}")
    return _make("base", name, ())


def bset(name: str) -> Node:
    """A primitive event set (cat base-environment name)."""
    if name not in BASE_SETS:
        raise ValueError(f"unknown base set {name!r}")
    return _make("set", name, ())


def empty() -> Node:
    """The empty relation."""
    return _make("empty", None, ())


def sempty() -> Node:
    """The empty event set."""
    return _make("sempty", None, ())


def var(index: int) -> Node:
    """A fixpoint-bound variable (see :func:`fix`)."""
    return _make("var", index, ())


# ----------------------------------------------------------------------
# Boolean structure (relations)
# ----------------------------------------------------------------------


def _flatten(kind: str, items: Iterable[Node]) -> list[Node]:
    out: list[Node] = []
    for item in items:
        if item.kind == kind:
            out.extend(item.args)
        else:
            out.append(item)
    return out


def _assoc_comm(kind: str, empty_node: Node, items: tuple[Node, ...]) -> Node:
    """Shared normalisation for union-like operators."""
    flat = _flatten(kind, items)
    seen: dict[int, Node] = {}
    for item in flat:
        if item.kind in ("empty", "sempty"):
            continue
        seen.setdefault(item.id, item)
    if not seen:
        return empty_node
    ordered = sorted(seen.values(), key=lambda n: n.digest)
    if len(ordered) == 1:
        return ordered[0]
    return _make(kind, None, tuple(ordered))


def union(*items: Node) -> Node:
    """``r1 ∪ r2 ∪ ...`` — n-ary, deduplicated, digest-sorted."""
    for item in items:
        if item.is_set:
            raise TypeError("union() expects relations (use sunion for sets)")
    return _assoc_comm("union", empty(), items)


def inter(*items: Node) -> Node:
    """``r1 ∩ r2 ∩ ...`` — n-ary, deduplicated, digest-sorted."""
    flat = _flatten("inter", items)
    for item in flat:
        if item.is_set:
            raise TypeError("inter() expects relations (use sinter for sets)")
        if item.kind == "empty":
            return empty()
    seen: dict[int, Node] = {}
    for item in flat:
        seen.setdefault(item.id, item)
    ordered = sorted(seen.values(), key=lambda n: n.digest)
    if len(ordered) == 1:
        return ordered[0]
    return _make("inter", None, tuple(ordered))


def diff(left: Node, right: Node) -> Node:
    """``r1 \\ r2``."""
    if left.is_set or right.is_set:
        raise TypeError("diff() expects relations (use sdiff for sets)")
    if right.kind == "empty" :
        return left
    if left.kind == "empty" or left.id == right.id:
        return empty()
    return _make("diff", None, (left, right))


def compl(body: Node) -> Node:
    """``¬r``."""
    if body.is_set:
        raise TypeError("compl() expects a relation")
    return _make("compl", None, (body,))


# ----------------------------------------------------------------------
# Relational operators
# ----------------------------------------------------------------------


def comp(*items: Node) -> Node:
    """``r1 ; r2 ; ...`` — n-ary (associative), with ``id`` and lifting
    normalisation (see module docstring)."""
    coerced = tuple(lift(i) if i.is_set else i for i in items)
    flat: list[Node] = []
    for item in _flatten("comp", coerced):
        if item.kind == "empty":
            return empty()
        if item.kind == "base" and item.token == "id":
            continue
        flat.append(item)
    if not flat:
        return base("id")
    if len(flat) == 1:
        return flat[0]
    node = _recognise_lifting(tuple(flat))
    if node is not None:
        return node
    return _make("comp", None, tuple(flat))


def _recognise_lifting(args: tuple[Node, ...]) -> Node | None:
    """Rewrite lifting-shaped compositions to the dedicated nodes."""
    if len(args) != 3:
        return None
    stxn = base("stxn")
    first, mid, last = args
    if mid.kind != "diff" or mid.args[1].id != stxn.id:
        return None
    body = mid.args[0]
    if first.id == stxn.id and last.id == stxn.id:
        return _make("weaklift", None, (body,))
    stxn_opt_id = _make("opt", None, (stxn,)).id
    if first.id == stxn_opt_id and last.id == stxn_opt_id:
        return _make("stronglift", None, (body,))
    return None


def inverse(body: Node) -> Node:
    """``r⁻¹``; ``(r⁻¹)⁻¹`` collapses."""
    if body.is_set:
        raise TypeError("inverse() expects a relation")
    if body.kind == "inverse":
        return body.args[0]
    return _make("inverse", None, (body,))


def opt(body: Node) -> Node:
    """``r?``; closure towers collapse."""
    if body.is_set:
        body = lift(body)
    if body.kind in ("opt", "star"):
        return body
    if body.kind == "plus":
        return _make("star", None, body.args)
    return _make("opt", None, (body,))


def plus(body: Node) -> Node:
    """``r⁺``."""
    if body.is_set:
        body = lift(body)
    if body.kind in ("plus", "star"):
        return body
    if body.kind == "opt":
        return _make("star", None, body.args)
    return _make("plus", None, (body,))


def star(body: Node) -> Node:
    """``r*``."""
    if body.is_set:
        body = lift(body)
    if body.kind == "star":
        return body
    if body.kind in ("plus", "opt"):
        return _make("star", None, body.args)
    return _make("star", None, (body,))


def stronglift(body: Node) -> Node:
    """``stronglift(r, stxn)`` (section 3.3) as a dedicated node."""
    if body.is_set:
        raise TypeError("stronglift() expects a relation")
    return _make("stronglift", None, (body,))


def weaklift(body: Node) -> Node:
    """``weaklift(r, stxn)`` (section 3.3) as a dedicated node."""
    if body.is_set:
        raise TypeError("weaklift() expects a relation")
    return _make("weaklift", None, (body,))


# ----------------------------------------------------------------------
# Set structure and set/relation bridges
# ----------------------------------------------------------------------


def sunion(*items: Node) -> Node:
    for item in items:
        if not item.is_set:
            raise TypeError("sunion() expects sets")
    return _assoc_comm("sunion", sempty(), items)


def sinter(*items: Node) -> Node:
    flat = _flatten("sinter", items)
    for item in flat:
        if not item.is_set:
            raise TypeError("sinter() expects sets")
        if item.kind == "sempty":
            return sempty()
    seen: dict[int, Node] = {}
    for item in flat:
        seen.setdefault(item.id, item)
    ordered = sorted(seen.values(), key=lambda n: n.digest)
    if len(ordered) == 1:
        return ordered[0]
    return _make("sinter", None, tuple(ordered))


def sdiff(left: Node, right: Node) -> Node:
    if not (left.is_set and right.is_set):
        raise TypeError("sdiff() expects sets")
    if right.kind == "sempty":
        return left
    if left.kind == "sempty" or left.id == right.id:
        return sempty()
    return _make("sdiff", None, (left, right))


def scompl(body: Node) -> Node:
    if not body.is_set:
        raise TypeError("scompl() expects a set")
    if body.kind == "scompl":
        return body.args[0]
    return _make("scompl", None, (body,))


def lift(body: Node) -> Node:
    """``[s]`` — the identity restricted to the event set ``s``."""
    if not body.is_set:
        raise TypeError("lift() expects an event set")
    if body.kind == "sempty":
        return empty()
    return _make("lift", None, (body,))


def cross(sources: Node, targets: Node) -> Node:
    """``s1 × s2`` as a relation."""
    if not (sources.is_set and targets.is_set):
        raise TypeError("cross() expects event sets")
    if sources.kind == "sempty" or targets.kind == "sempty":
        return empty()
    return _make("cross", None, (sources, targets))


def domain(body: Node) -> Node:
    """``domain(r)`` — set of events with an outgoing edge."""
    if body.is_set:
        raise TypeError("domain() expects a relation")
    return _make("domain", None, (body,))


def range_(body: Node) -> Node:
    """``range(r)`` — set of events with an incoming edge."""
    if body.is_set:
        raise TypeError("range() expects a relation")
    return _make("range", None, (body,))


# ----------------------------------------------------------------------
# Fixpoints (the lowering of .cat ``let rec``)
# ----------------------------------------------------------------------


def fix(bodies: tuple[Node, ...], index: int) -> Node:
    """Component ``index`` of the simultaneous least fixpoint of
    ``bodies``, where :func:`var`\\ ``(i)`` inside any body refers to the
    ``i``-th component.  All components over the same bodies share one
    fixpoint computation in the evaluator."""
    if not 0 <= index < len(bodies):
        raise ValueError(f"fixpoint index {index} out of range")
    for body in bodies:
        if body.is_set:
            raise TypeError("fix() bodies must be relation-valued")
    return _make("fix", index, tuple(bodies))


# ----------------------------------------------------------------------
# DAG inspection
# ----------------------------------------------------------------------


def reachable(roots: Iterable[Node]) -> dict[int, Node]:
    """All nodes reachable from ``roots``, keyed by node id."""
    out: dict[int, Node] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in out:
            continue
        out[node.id] = node
        stack.extend(node.args)
    return out


def cross_model_stats(root_lists: "list[list[Node]]") -> dict[str, float]:
    """Sharing across several models' DAGs (the headline IR metric).

    ``sum_of_models`` counts each model's distinct reachable nodes as if
    compiled alone; ``union_nodes`` counts the distinct nodes of the
    combined DAG; ``sharing`` is their ratio (≥ 1).  Used by both
    ``repro explain`` and ``benchmarks/bench_ir.py`` (whose CI artifact
    asserts it stays > 1.5× over the full model roster).
    """
    individual = sum(len(reachable(roots)) for roots in root_lists)
    union_nodes = len(reachable(n for roots in root_lists for n in roots))
    return {
        "models": len(root_lists),
        "union_nodes": union_nodes,
        "sum_of_models": individual,
        "sharing": (individual / union_nodes) if union_nodes else 1.0,
    }


def dag_stats(roots: Iterable[Node]) -> dict[str, float]:
    """Sharing statistics for the DAG spanned by ``roots``.

    ``tree_size`` counts nodes as if every subexpression were duplicated
    (the cost of the old per-model interpreters); ``dag_nodes`` counts
    distinct interned nodes; ``sharing`` is their ratio (≥ 1).
    """
    roots = list(roots)
    nodes = reachable(roots)
    tree = sum(r.size for r in roots)
    dag = len(nodes)
    return {
        "roots": len(roots),
        "dag_nodes": dag,
        "tree_size": tree,
        "sharing": (tree / dag) if dag else 1.0,
    }


def describe(node: Node, maxdepth: int = 4) -> str:
    """A compact human-readable rendering (for ``repro explain``)."""
    if node.kind in ("base", "set"):
        return str(node.token)
    if node.kind == "empty":
        return "0"
    if node.kind == "sempty":
        return "{}"
    if node.kind == "var":
        return f"${node.token}"
    if maxdepth == 0:
        return f"#{node.id}"
    parts = [describe(a, maxdepth - 1) for a in node.args]
    infix = {
        "union": " | ",
        "inter": " & ",
        "sunion": " | ",
        "sinter": " & ",
        "comp": "; ",
    }
    if node.kind in infix:
        return "(" + infix[node.kind].join(parts) + ")"
    if node.kind in ("diff", "sdiff"):
        return f"({parts[0]} \\ {parts[1]})"
    if node.kind in ("compl", "scompl"):
        return f"~{parts[0]}"
    if node.kind == "inverse":
        return f"{parts[0]}^-1"
    if node.kind == "opt":
        return f"{parts[0]}?"
    if node.kind == "plus":
        return f"{parts[0]}^+"
    if node.kind == "star":
        return f"{parts[0]}^*"
    if node.kind == "lift":
        return f"[{parts[0]}]"
    if node.kind == "cross":
        return f"({parts[0]} * {parts[1]})"
    if node.kind == "fix":
        return f"fix.{node.token}({', '.join(parts)})"
    return f"{node.kind}({', '.join(parts)})"
