"""Generated straight-line kernels: one Python function per plan.

The interpreted :class:`~repro.ir.plan.BatchPlan` already collapses the
IR walk into a flat step list, but still pays per-step Python overhead
on every chunk: a loop iteration, txn-free routing, a memo probe, a
memo store, and a kernel-closure call per node — measurable when the
universe is small and the numpy kernels themselves are microseconds.
This module lowers a plan once per ``(definition_token, universe size,
backend)`` into *generated Python source*:

* every hash-consed node value is bound to a local variable exactly
  once — no memo dicts, no ``_fetch`` probes, no closure dispatch;
* on the numpy backend the ops are emitted over the raw ``uint8``
  arrays (``a | b``, ``a & (b ^ 1)``, a float32 BLAS matmul helper, an
  axis swap for inverse, broadcast masks for the comp-lift peephole),
  so interior nodes skip the :class:`RelationBatch` wrappers entirely;
  the packed-int fallback emits the same schedule over the batch
  objects;
* fixpoints (``let rec``) are emitted as an *inline* Kleene loop: the
  closed sub-DAG of the bodies is hoisted into ordinary pre-loop steps
  and only the genuinely recursive part re-evaluates per iteration —
  the interpreted tier instead re-enters the generic batch evaluator,
  which re-derives closed subexpressions (some through per-candidate
  scalar shortcuts) the plan steps had already produced.  Results are
  probed from and stored to the same context memo key
  :func:`repro.ir.batch._eval_fix` uses, so fixpoints stay shared with
  the interpreter and across models;
* axiom segments keep the plan's cheapest-first order, the shared
  per-candidate predicate memos, the *deferred*-segment semantics for
  memo-hit axioms, and the alive-mask early exit — verdicts are
  bit-identical to the interpreted plan by construction;
* leaves (base relations, base/labelled sets, ``stxn``) go through
  tiny memoizing helpers against the context memo, so cross-model and
  cross-sweep leaf sharing survives codegen.

Sources are ``compile()``d once per process (keyed by token) and
persisted under ``.repro-cache/codegen/`` keyed by ``(definition
digest, n, backend, CODEGEN_VERSION)`` — a warm process skips
generation, a version bump changes the filename so stale entries are
never loaded.  ``REPRO_CODEGEN=0`` disables the tier; the interpreted
plan stays behind it as the differential reference, exactly like
:mod:`repro.ir.batch` is the reference for plans.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

from ..core import relbatch as _relbatch
from ..core.relbatch import RelationBatch, SetBatch
from . import nodes as _nodes
from . import plan as _plan
from .batch import _check, _stxn
from .eval import STATS

__all__ = [
    "CODEGEN_VERSION",
    "CompiledPlan",
    "cache_path",
    "compiled_for",
    "enabled",
    "generate_source",
    "is_warm",
    "reset",
    "set_enabled",
]

#: Bumped whenever the emitted source shape (or anything it depends on
#: for correctness) changes; part of the on-disk cache filename, so a
#: bump regenerates and stale entries are unreachable by name.
CODEGEN_VERSION = 1

#: Explicit override (True/False) or None to follow ``REPRO_CODEGEN``.
_FORCED: bool | None = None

_DISABLED_VALUES = ("0", "false", "off", "no")


def set_enabled(flag: bool | None) -> None:
    """Force codegen on/off (``None`` restores the env-var default)."""
    global _FORCED
    _FORCED = flag


def enabled() -> bool:
    """Whether generated kernels are used (default: on)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_CODEGEN", "1").lower() not in _DISABLED_VALUES


# ----------------------------------------------------------------------
# Runtime helpers injected into every generated module
# ----------------------------------------------------------------------

#: node id -> compiled leaf kernel closure (process-wide; leaf kernels
#: are context-free and safe to share across plans and models).
_LEAF_KERNELS: dict[int, object] = {}


def _leaf_kernel(node):
    kern = _LEAF_KERNELS.get(node.id)
    if kern is None:
        kern = _LEAF_KERNELS[node.id] = _plan._compile_kernel(node)
    return kern


#: ``(kind, token) -> Node`` — skips the interning constructor on the
#: per-call leaf lookups generated code makes.
_TOKEN_NODES: dict[tuple[str, str], object] = {}


def _token_node(kind: str, token: str):
    node = _TOKEN_NODES.get((kind, token))
    if node is None:
        maker = _nodes.base if kind == "base" else _nodes.bset
        node = _TOKEN_NODES[(kind, token)] = maker(token)
    return node


def _base_value(tctx, token: str):
    """Build-or-fetch a base relation against ``tctx``'s node memo —
    the same storage the interpreted plan and the ad-hoc batch
    evaluator use, so leaf values stay shared across models, sweeps,
    and evaluation tiers."""
    node = _token_node("base", token)
    memo = tctx._memo
    val = memo.get(node.id)
    if val is None:
        STATS.batch_computes += 1
        val = _leaf_kernel(node)(tctx)
        memo[node.id] = val
    return val


def _set_value(tctx, token: str):
    """Build-or-fetch a base or labelled set (same sharing as above)."""
    node = _token_node("set", token)
    memo = tctx._memo
    val = memo.get(node.id)
    if val is None:
        STATS.batch_computes += 1
        val = _leaf_kernel(node)(tctx)
        memo[node.id] = val
    return val


def _fix_key(node) -> tuple:
    """The context-memo key :func:`repro.ir.batch._eval_fix` uses for
    this fixpoint's component tuple (live node ids — process-specific,
    which is why generated code takes the fix nodes as an argument)."""
    return ("fix",) + tuple(b.id for b in node.args)


def _cgdict(tctx) -> dict:
    """The per-context float32 value store generated kernels share:
    hash-consed node ids -> float32 stacks.  Separate from the uint8
    batch values the interpreter memoizes under the same ids, so the
    two tiers never see each other's representation."""
    d = tctx._memo.get("cgf32")
    if d is None:
        d = tctx._memo["cgf32"] = {}
    return d


def _make_array_helpers(n: int):
    """numpy-mode runtime: generated kernels hold every value as a
    float32 0/1 stack.  The batch objects are uint8-packed, which costs
    two ``astype`` conversions, a comparison, and a view around *every*
    BLAS matmul; in float32 the matmul runs natively and a single
    ``minimum(·, 1)`` reclamps, so the 0/1 invariant (and therefore
    bit-identical verdicts) is preserved with exact arithmetic (counts
    are bounded by n, far under 2**24).  Leaves are converted once per
    context and cached in the context memo, shared across every model
    swept over it."""
    np = _relbatch._np
    f32 = np.float32
    u8 = np.uint8
    wrap = _relbatch._NumpyRelationBatch

    eye = _relbatch._eye(n).astype(f32)
    # (r | I) ** m covers all paths of length <= m, and transitive
    # closure only needs simple paths (length <= n-1): squaring
    # ceil(log2(n-1)) times reaches it with a fixed op count — no
    # convergence test, no branches.
    squarings = max(0, (n - 2).bit_length())

    def _mm(a, b):
        x = a @ b
        np.minimum(x, 1.0, out=x)
        return x

    def _tstar(a):
        cur = np.maximum(a, eye)
        for _ in range(squarings):
            nxt = cur @ cur
            np.minimum(nxt, 1.0, out=nxt)
            # Monotone under squaring, and 0.0/1.0 have canonical bit
            # patterns: a raw-bytes compare is an exact fixed-point
            # test far cheaper than another matmul.
            if nxt.tobytes() == cur.tobytes():
                return cur
            cur = nxt
        return cur

    def _tplus(a):
        # r+ == r ; r*
        return _mm(a, _tstar(a))

    def _basef(tctx, token):
        node = _token_node("base", token)
        d = _cgdict(tctx)
        val = d.get(node.id)
        if val is None:
            val = d[node.id] = _base_value(tctx, token).data.astype(f32)
        return val

    def _setf(tctx, token):
        node = _token_node("set", token)
        d = _cgdict(tctx)
        val = d.get(node.id)
        if val is None:
            val = d[node.id] = _set_value(tctx, token).data.astype(f32)
        return val

    def _stxnf(tctx):
        memo = tctx._memo
        val = memo.get("stxn_f32")
        if val is None:
            val = memo["stxn_f32"] = _stxn(tctx).data.astype(f32)
        return val

    def _fxprobe(tctx, key):
        d = _cgdict(tctx)
        hit = d.get(key)
        if hit is not None:
            return hit
        raw = tctx._memo.get(key)
        if raw is None:
            return None
        conv = tuple(r.data.astype(f32) for r in raw)
        d[key] = conv
        return conv

    def _fxstore(tctx, key, comps):
        # Stored both ways: float32 for other generated kernels, batch
        # objects so the interpreter and the scalar-shared batch
        # evaluator can reuse the result.
        comps = tuple(comps)
        _cgdict(tctx)[key] = comps
        tctx._memo[key] = tuple(wrap(c.astype(u8), n) for c in comps)

    return _mm, _tstar, _tplus, _basef, _setf, _stxnf, _fxprobe, _fxstore


def _py_fxprobe(tctx, key):
    return tctx._memo.get(key)


def _py_fxstore(tctx, key, comps):
    tctx._memo[key] = tuple(comps)


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------

#: Step kinds whose values come from a memoizing runtime helper (and
#: therefore count their own STATS on a miss).
_HELPER_KINDS = frozenset(("base", "set"))

#: Step kinds whose float32 values numpy-mode kernels share across
#: models through the per-context store: the leaves plus everything
#: carrying a matmul.  Elementwise interiors are cheaper to recompute
#: than to probe-and-store.
_ARRAY_MEMO_KINDS = frozenset(
    ("base", "set", "comp", "plus", "star", "stronglift", "weaklift")
)


def _header(digest: str, n: int, backend: str) -> str:
    return (
        f"# repro-codegen v{CODEGEN_VERSION} digest={digest} n={n} "
        f"backend={backend}"
    )


def _chunked(prefix: str, items: list[str], per_line: int = 10) -> list[str]:
    return [
        prefix + ", ".join(items[i : i + per_line])
        for i in range(0, len(items), per_line)
    ]


def _closed_schedule(node, seen: set[int], out: list) -> None:
    """Post-order schedule of the *closed* sub-DAG under ``node`` —
    the hoistable part of a fixpoint body.  Free-variable nodes are
    descended through (their closed children are hoisted) but never
    emitted; they re-evaluate inside the Kleene loop."""
    if node.free_vars:
        for a in node.args:
            if node.kind == "comp" and a.kind == "lift":
                _closed_schedule(a.args[0], seen, out)
            else:
                _closed_schedule(a, seen, out)
        return
    if node.id in seen:
        return
    seen.add(node.id)
    if node.kind != "fix":
        for a in node.args:
            if node.kind == "comp" and a.kind == "lift":
                _closed_schedule(a.args[0], seen, out)
            else:
                _closed_schedule(a, seen, out)
    out.append(node)


def _iter_schedule(node, seen: set[int], out: list) -> None:
    """Post-order schedule of the free-variable nodes of a fixpoint
    body: the part that genuinely re-evaluates per Kleene iteration."""
    if not node.free_vars or node.kind == "var":
        return
    if node.id in seen:
        return
    seen.add(node.id)
    for a in node.args:
        if node.kind == "comp" and a.kind == "lift":
            _iter_schedule(a.args[0], seen, out)
        else:
            _iter_schedule(a, seen, out)
    out.append(node)


class _Emitter:
    """Stateful source emitter for one plan (see the module docstring
    for the emission strategy)."""

    def __init__(self, plan, n: int, backend: str) -> None:
        self.plan = plan
        self.n = n
        self.array = backend == "numpy"
        #: node id -> local variable name (hash-consed: bound once).
        self.names: dict[int, str] = {}
        #: fix nodes in emission order; runtime gets the same tuple.
        self.fixes: list = []
        #: nodes shared through the per-context float32 store, in
        #: emission order; runtime binds their live ids as ``mids``.
        self.memo_ids: list = []

    # -- references -----------------------------------------------------

    def _name(self, node) -> str:
        name = f"v{len(self.names)}"
        self.names[node.id] = name
        return name

    def ref(self, node) -> str:
        return self.names[node.id]

    # -- expressions ----------------------------------------------------

    def _comp_expr(self, node, ref) -> str:
        """The comp kernel's lift peephole, unrolled at generation
        time: ``[S]`` factors become domain/range masks."""
        array = self.array
        parts = [
            ("mask", a.args[0]) if a.kind == "lift" else ("rel", a)
            for a in node.args
        ]
        out = None
        masks: list[str] = []
        for tag, sub in parts:
            r = ref(sub)
            if tag == "mask":
                if out is None:
                    masks.append(r)
                elif array:
                    out = f"({out}) * {r}[:, None, :]"
                else:
                    out = f"({out}).restrict_range({r})"
            else:
                val = r
                for m in masks:
                    if array:
                        val = f"({val}) * {m}[:, :, None]"
                    else:
                        val = f"({val}).restrict_domain({m})"
                masks = []
                if out is None:
                    out = val
                elif array:
                    out = f"_mm({out}, {val})"
                else:
                    out = f"({out}) @ ({val})"
        if out is None:  # every factor was a lift: [A];[B] = [A & B]
            m = masks[0]
            for s in masks[1:]:
                m = f"({m}) * {s}"
            if array:
                return f"_EYE * ({m})[:, :, None]"
            return f"_RB.lift_set({m})"
        return out

    def emit_node(self, node, name, ref, body, indent) -> None:
        """Append the line(s) computing ``node`` into local ``name``,
        resolving argument references through ``ref``."""
        kind = node.kind
        array = self.array
        n = self.n
        c = "p" if node.txn_free else "ctx"

        def put(expr: str) -> None:
            body.append(f"{indent}{name} = {expr}")

        if kind == "base":
            put(f"_basef({c}, {node.token!r})" if array else f"_base({c}, {node.token!r})")
            return
        if kind == "set":
            put(f"_setf({c}, {node.token!r})" if array else f"_bset({c}, {node.token!r})")
            return
        if kind == "fix":
            self._emit_fix(node, name, body, indent)
            return
        if kind == "comp":
            # Lift factors are domain/range masks (only their set child
            # is scheduled), so comp resolves its own references.
            put(self._comp_expr(node, ref))
            return
        args = node.args
        a = [ref(arg) for arg in args]
        if kind == "empty":
            put(
                f"_np.zeros((batch, {n}, {n}), _f32)"
                if array
                else f"_RB.empty(batch, {n})"
            )
            return
        if kind == "sempty":
            put(
                f"_np.zeros((batch, {n}), _f32)"
                if array
                else f"_SB.empty(batch, {n})"
            )
            return
        if kind in ("union", "sunion"):
            if array:
                out = a[0]
                for r in a[1:]:
                    out = f"_np.maximum({out}, {r})"
                put(out)
            else:
                put(" | ".join(a))
            return
        if kind in ("inter", "sinter"):
            put(" * ".join(a) if array else " & ".join(a))
            return
        if kind in ("diff", "sdiff"):
            put(f"{a[0]} * (1.0 - {a[1]})" if array else f"{a[0]} - {a[1]}")
            return
        if kind in ("compl", "scompl"):
            put(f"1.0 - {a[0]}" if array else f"({a[0]}).complement()")
            return
        if kind == "inverse":
            put(f"{a[0]}.swapaxes(1, 2)" if array else f"({a[0]}).inverse()")
            return
        if kind == "opt":
            put(f"_np.maximum({a[0]}, _EYE)" if array else f"({a[0]}).opt()")
            return
        if kind == "plus":
            put(f"_tplus({a[0]})" if array else f"({a[0]}).plus()")
            return
        if kind == "star":
            put(f"_tstar({a[0]})" if array else f"({a[0]}).star()")
            return
        if kind == "lift":
            put(
                f"_EYE * {a[0]}[:, :, None]"
                if array
                else f"_RB.lift_set({a[0]})"
            )
            return
        if kind == "cross":
            put(
                f"{a[0]}[:, :, None] * {a[1]}[:, None, :]"
                if array
                else f"_RB.cross_sets({a[0]}, {a[1]})"
            )
            return
        if kind == "domain":
            put(
                f"{a[0]}.any(2).astype(_f32)"
                if array
                else f"({a[0]}).domain()"
            )
            return
        if kind == "range":
            put(
                f"{a[0]}.any(1).astype(_f32)"
                if array
                else f"({a[0]}).codomain()"
            )
            return
        if kind in ("stronglift", "weaklift"):
            # §3.3 liftings; the transaction order is context-memoized.
            t, to = f"_t_{name}", f"_to_{name}"
            if array:
                body.append(f"{indent}{t} = _stxnf({c})")
                inner = f"{a[0]} * (1.0 - {t})"
                if kind == "stronglift":
                    body.append(f"{indent}{to} = _np.maximum({t}, _EYE)")
                    put(f"_mm(_mm({to}, {inner}), {to})")
                else:
                    put(f"_mm(_mm({t}, {inner}), {t})")
            else:
                body.append(f"{indent}{t} = _stxn({c})")
                if kind == "stronglift":
                    body.append(f"{indent}{to} = {t}.opt()")
                    put(f"{to} @ (({a[0]}) - {t}) @ {to}")
                else:
                    put(f"{t} @ (({a[0]}) - {t}) @ {t}")
            return
        raise NotImplementedError(f"no codegen emission for kind {kind!r}")

    # -- steps ----------------------------------------------------------

    def emit_step(self, node, name, body) -> int:
        """Emit one top-level step; returns how many computes the
        *segment-level* STATS line should attribute to it (memoized and
        helper-backed steps count themselves on a miss instead)."""
        indent = "        "
        if self.array and node.kind in _ARRAY_MEMO_KINDS:
            mi = len(self.memo_ids)
            self.memo_ids.append(node)
            d = "_mp" if node.txn_free else "_mc"
            body.append(f"{indent}{name} = {d}.get(mids[{mi}])")
            body.append(f"{indent}if {name} is None:")
            if node.kind in _HELPER_KINDS:
                self.emit_node(node, name, self.ref, body, indent + "    ")
            else:
                body.append(f"{indent}    _STATS.batch_computes += 1")
                self.emit_node(node, name, self.ref, body, indent + "    ")
                body.append(f"{indent}    {d}[mids[{mi}]] = {name}")
            return 0
        self.emit_node(node, name, self.ref, body, indent)
        return 0 if node.kind in _HELPER_KINDS or node.kind == "fix" else 1

    # -- fixpoints ------------------------------------------------------

    def _emit_fix(self, node, name, body, indent) -> None:
        """An inline batched Kleene iteration (see the module
        docstring).  Closed body subexpressions were hoisted into
        ordinary steps by :meth:`segment_steps`; only the recursive
        part re-emits per iteration."""
        j = len(self.fixes)
        self.fixes.append(node)
        array = self.array
        n = self.n
        c = "p" if node.txn_free else "ctx"
        bodies = node.args
        comps = [f"_f{j}_{k}" for k in range(len(bodies))]
        fresh = [f"_g{j}_{k}" for k in range(len(bodies))]
        max_steps = n * n * len(bodies) + 8

        def iter_ref(sub) -> str:
            if sub.kind == "var":
                return comps[sub.token]
            if sub.free_vars:
                return iter_names[sub.id]
            return self.names[sub.id]

        if node.free_vars:
            # A fixpoint referencing an enclosing fixpoint's variables
            # has no closed memo key; leave it to the interpreter.
            raise NotImplementedError("codegen: free-variable fixpoint")
        body.append(f"{indent}_k{j} = _fxkey(fixes[{j}])")
        body.append(f"{indent}_h{j} = _fxprobe({c}, _k{j})")
        body.append(f"{indent}if _h{j} is None:")
        inner = indent + "    "
        body.append(f"{inner}_STATS.batch_computes += 1")
        empty = (
            f"_np.zeros((batch, {n}, {n}), _f32)"
            if array
            else f"_RB.empty(batch, {n})"
        )
        for comp in comps:
            body.append(f"{inner}{comp} = {empty}")
        body.append(f"{inner}for _ in range({max_steps}):")
        loop = inner + "    "
        body.append(f"{loop}_STATS.fix_iterations += 1")
        # Per-iteration temps: shared free-variable subexpressions are
        # still computed once per iteration (hash-consed like the rest).
        iter_names: dict[int, str] = {}
        scheduled: list = []
        seen: set[int] = set()
        for b in bodies:
            _iter_schedule(b, seen, scheduled)
        for k, sub in enumerate(scheduled):
            iter_names[sub.id] = tname = f"_t{j}_{k}"
            self.emit_node(sub, tname, iter_ref, body, loop)
        for k, b in enumerate(bodies):
            body.append(f"{loop}{fresh[k]} = {iter_ref(b)}")
        same = (
            "{a}.tobytes() == {b}.tobytes()"
            if array
            else "({a}).same_as({b})"
        )
        cond = " and ".join(
            same.format(a=g, b=f) for g, f in zip(fresh, comps)
        )
        body.append(f"{loop}if {cond}:")
        body.append(f"{loop}    break")
        for comp, g in zip(comps, fresh):
            body.append(f"{loop}{comp} = {g}")
        body.append(f"{inner}else:")
        body.append(
            f"{inner}    raise RuntimeError("
            f"'batched IR fixpoint over {len(bodies)} bindings "
            f"did not converge')"
        )
        body.append(
            f"{inner}_fxstore({c}, _k{j}, ({', '.join(comps)},))"
        )
        body.append(f"{indent}else:")
        body.append(
            f"{indent}    ({', '.join(comps)},) = _h{j}"
        )
        body.append(f"{indent}{name} = {comps[node.token]}")

    # -- segments -------------------------------------------------------

    def predicate(self, kind: str, node) -> str:
        var = self.names[node.id]
        if not self.array:
            return f"[bool(_f) for _f in _check({kind!r}, {var})]"
        if kind == "acyclic":
            # A cycle through i exists iff some edge i->k meets a
            # closure path k->i: r & transpose(r*) — one elementwise
            # product instead of the extra matmul diag(r @ r*) costs.
            return (
                f"(~({var} * _tstar({var}).swapaxes(1, 2))"
                ".any((1, 2))).tolist()"
            )
        if kind == "irreflexive":
            return f"(~{var}[:, _IDX, _IDX].any(1)).tolist()"
        return f"(~{var}.any((1, 2))).tolist()"


def _ordered_segment_steps(plan) -> list[list]:
    """Per-segment node lists in emission order: the plan's schedule
    with each fixpoint's closed body sub-DAG hoisted in front of it
    (recursively, so a closed inner fixpoint is hoisted before the
    outer one), each node appearing exactly once across all segments.
    Both source generation and the runtime ``fixes`` binding derive
    from this single traversal, so a module loaded from disk binds the
    same fixpoint tuple generation would have produced."""
    named: set[int] = set()
    ordered: list[list] = []
    for steps, _kind, _node, _key in plan.segments:
        seg: list = []

        def place(node) -> None:
            if node.id in named:
                return
            if node.kind == "fix":
                hoisted: list = []
                for b in node.args:
                    _closed_schedule(b, set(named), hoisted)
                for h in hoisted:
                    place(h)
            named.add(node.id)
            seg.append(node)

        for node, _kernel in steps:
            place(node)
        ordered.append(seg)
    return ordered


def plan_fixes(plan) -> tuple:
    """The closed fixpoint nodes of a plan in emission order."""
    return tuple(
        node
        for seg in _ordered_segment_steps(plan)
        for node in seg
        if node.kind == "fix" and not node.free_vars
    )


def plan_memo_ids(plan) -> tuple:
    """Live ids of the float32-store-shared nodes in emission order —
    the ``mids`` binding for a numpy-mode kernel (and, like the fixes,
    derived from the traversal so a disk-loaded source binds the ids
    its index literals were generated against)."""
    return tuple(
        node.id
        for seg in _ordered_segment_steps(plan)
        for node in seg
        if node.kind in _ARRAY_MEMO_KINDS
    )


def generate_source(plan, n: int, backend: str, token: str, digest: str) -> str:
    """The generated module source for one plan (deterministic: names
    follow the plan's structural schedule order, so the same definition
    generates byte-identical source in every process)."""
    em = _Emitter(plan, n, backend)
    seg_blocks: list[list[str]] = []
    ordered = _ordered_segment_steps(plan)
    for si, (steps, kind, node, _key) in enumerate(plan.segments):
        body: list[str] = []
        assigned: list[str] = []
        interior = 0
        for step_node in ordered[si]:
            name = em._name(step_node)
            assigned.append(name)
            interior += em.emit_step(step_node, name, body)
        block = [f"    def _seg{si}():"]
        block.extend(_chunked("        nonlocal ", assigned))
        if interior:
            block.append(f"        _STATS.batch_computes += {interior}")
        block.extend(body if body else ["        pass"])
        block.append(f"    memos = _memo_row(ctx, {node.txn_free!r})")
        block.append(f"    k = keys[{si}]")
        block.append("    flags = [m.get(k) for m in memos]")
        block.append("    if None in flags:")
        block.append("        for _s in deferred:")
        block.append("            _s()")
        block.append("        del deferred[:]")
        block.append(f"        _seg{si}()")
        block.append(f"        flags = {em.predicate(kind, node)}")
        block.append("        for m, _f in zip(memos, flags):")
        block.append("            m[k] = _f")
        block.append("    else:")
        block.append("        _STATS.memo_hits += len(flags)")
        block.append(f"        deferred.append(_seg{si})")
        block.append("    alive = [a and f for a, f in zip(alive, flags)]")
        block.append("    if not any(alive):")
        block.append("        return alive")
        seg_blocks.append(block)

    lines = [
        _header(digest, n, backend),
        f"# token: {token}",
        "# Generated by repro.ir.codegen — do not edit; regenerated on",
        "# any CODEGEN_VERSION bump (the filename carries the version).",
        "",
        "def _consistent(ctx, keys, fixes, mids):",
        "    p = ctx._parent or ctx",
        "    batch = ctx.batch",
    ]
    if em.array:
        lines.append("    _mp = _cg(p)")
        lines.append("    _mc = _cg(ctx) if p is not ctx else _mp")
    all_names = sorted(set(em.names.values()), key=lambda s: int(s[1:]))
    for i in range(0, len(all_names), 10):
        lines.append("    " + " = ".join(all_names[i : i + 10]) + " = None")
    lines.append("    alive = [True] * batch")
    lines.append("    deferred = []")
    for block in seg_blocks:
        lines.extend(block)
    lines.append("    return alive")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------


def _cache_root() -> pathlib.Path:
    root = os.environ.get("REPRO_CODEGEN_DIR")
    if root:
        return pathlib.Path(root)
    # Mirrors repro.engine.cache.default_cache_dir without importing the
    # engine layer from the IR layer.
    base = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return pathlib.Path(base) / "codegen"


def cache_path(digest: str, n: int, backend: str) -> pathlib.Path:
    """Where one generated module persists (version in the name: a
    CODEGEN_VERSION bump can never load a stale entry)."""
    return _cache_root() / f"{digest}-n{n}-{backend}-v{CODEGEN_VERSION}.py"


def _load_source(path: pathlib.Path, digest: str, n: int, backend: str):
    """The persisted source, or None when absent/corrupt/mismatched."""
    try:
        source = path.read_text()
    except OSError:
        return None
    head, _, _ = source.partition("\n")
    if head != _header(digest, n, backend):
        return None  # corrupt or written by a different emitter
    return source


def _store_source(path: pathlib.Path, source: str) -> None:
    """Atomic best-effort persist: a read-only cache dir or a crashed
    writer must never leave a half-written module to load later."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


class CompiledPlan:
    """A generated kernel plus its per-run bindings: the predicate-memo
    keys, the fixpoint nodes, and the shared-store node ids — all live
    (process-specific) values the source references by index."""

    __slots__ = ("fn", "keys", "fixes", "mids")

    def __init__(self, fn, keys: tuple, fixes: tuple, mids: tuple) -> None:
        self.fn = fn
        self.keys = keys
        self.fixes = fixes
        self.mids = mids

    def consistent(self, ctx) -> list[bool]:
        return self.fn(ctx, self.keys, self.fixes, self.mids)


#: ``(definition_token, n, backend) -> CompiledPlan | None`` — None
#: records a permanent build failure (fall back to the interpreter).
_COMPILED: dict[tuple[str, int, str], "CompiledPlan | None"] = {}

_MISSING = object()


def _namespace(n: int, backend: str) -> dict:
    ns = {
        "_STATS": STATS,
        "_memo_row": _plan._memo_row,
        "_base": _base_value,
        "_bset": _set_value,
        "_stxn": _stxn,
        "_fxkey": _fix_key,
    }
    if backend == "numpy":
        np = _relbatch._np
        mm, tstar, tplus, basef, setf, stxnf, fxprobe, fxstore = (
            _make_array_helpers(n)
        )
        ns.update(
            _np=np,
            _f32=np.float32,
            _EYE=_relbatch._eye(n).astype(np.float32),
            _IDX=np.arange(n),
            _cg=_cgdict,
            _mm=mm,
            _tstar=tstar,
            _tplus=tplus,
            _basef=basef,
            _setf=setf,
            _stxnf=stxnf,
            _fxprobe=fxprobe,
            _fxstore=fxstore,
        )
    else:
        ns.update(
            _RB=RelationBatch,
            _SB=SetBatch,
            _check=_check,
            _fxprobe=_py_fxprobe,
            _fxstore=_py_fxstore,
        )
    return ns


def compiled_for(token: str, definition, n: int) -> "CompiledPlan | None":
    """The generated kernel for ``definition`` at universe size ``n``
    on the active backend, building (or loading) it on first use.

    Returns None when generation failed for this plan — the caller
    falls back to the interpreted :class:`BatchPlan`, and the failure
    is remembered so it is not retried per chunk.
    """
    backend = _relbatch.active_backend()
    key = (token, n, backend)
    hit = _COMPILED.get(key, _MISSING)
    if hit is not _MISSING:
        return hit
    compiled = None
    try:
        plan = _plan.plan_for(token, definition, n)
        digest = definition.digest
        path = cache_path(digest, n, backend)
        source = _load_source(path, digest, n, backend)
        if source is None:
            source = generate_source(plan, n, backend, token, digest)
            _store_source(path, source)
        ns = _namespace(n, backend)
        exec(compile(source, str(path), "exec"), ns)
        compiled = CompiledPlan(
            ns["_consistent"],
            keys=tuple(seg[3] for seg in plan.segments),
            fixes=plan_fixes(plan),
            mids=plan_memo_ids(plan) if backend == "numpy" else (),
        )
    except Exception:
        compiled = None
    _COMPILED[key] = compiled
    return compiled


def is_warm(token: str, n: int) -> bool:
    """Whether a generated kernel is already compiled for this plan on
    the active backend — the signal :func:`repro.ir.plan.kernel_floor`
    uses to drop the batch floor for warm plans."""
    return bool(_COMPILED.get((token, n, _relbatch.active_backend())))


def reset() -> None:
    """Drop per-process compile state (tests)."""
    _COMPILED.clear()
    _LEAF_KERNELS.clear()
