"""Unified relational IR: one hash-consed expression DAG for all models.

This package is the single semantic substrate behind both checker
families: the native Python models (:mod:`repro.models`) declare their
axioms as IR expressions, and the ``.cat`` evaluator compiles parsed
models onto the same DAG (:mod:`repro.cat.compile`).  Structural
interning makes identical subexpressions — across models, across
families — the *same node*, and the evaluation engine memoizes per
``(CandidateAnalysis, node)``, so a campaign sweeping many models over
one candidate computes every shared relation exactly once.

See ``src/repro/ir/README.md`` for the design document.
"""

from . import prelude
from .eval import STATS, evaluate, register_shortcut
from .model import IRAxiom, IRDefinition, IRModel
from .nodes import (
    Node,
    base,
    bset,
    comp,
    cross,
    dag_stats,
    diff,
    domain,
    empty,
    fix,
    inter,
    lift,
    opt,
    plus,
    range_,
    reachable,
    sdiff,
    sempty,
    sinter,
    star,
    sunion,
    union,
    var,
)

__all__ = [
    "Node",
    "IRAxiom",
    "IRDefinition",
    "IRModel",
    "STATS",
    "base",
    "bset",
    "comp",
    "cross",
    "dag_stats",
    "diff",
    "domain",
    "empty",
    "evaluate",
    "fix",
    "inter",
    "ir_definition",
    "lift",
    "opt",
    "plus",
    "prelude",
    "range_",
    "reachable",
    "register_shortcut",
    "sdiff",
    "sempty",
    "sinter",
    "star",
    "sunion",
    "union",
    "var",
]


def ir_definition(model) -> "IRDefinition | None":
    """The :class:`IRDefinition` behind ``model``, if it has one.

    Works for native :class:`IRModel` subclasses and for
    :class:`~repro.cat.model.CatModel` instances whose source compiled;
    returns ``None`` for models outside the IR (ad-hoc subclasses,
    oracles).
    """
    getter = getattr(model, "definition", None)
    if callable(getter):
        try:
            definition = getter()
        except NotImplementedError:
            return None
        if isinstance(definition, IRDefinition):
            return definition
    return None
