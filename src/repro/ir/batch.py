"""Batch evaluation: one IR node over a *stack* of candidate executions.

Mirrors :mod:`repro.ir.eval` kernel-for-kernel, but each value is a
:class:`~repro.core.relbatch.RelationBatch` /
:class:`~repro.core.relbatch.SetBatch` covering every candidate in a
:class:`BatchContext` at once:

* results are memoized per ``(node, batch)`` in the context's memo,
  with the scalar path's ``txn_free`` split — a txn-free node evaluated
  on a baseline context stores on (and is computed against) the
  *parent* context, so one chunk's ``tm=True`` and ``tm=False`` sweeps
  share it;
* the scalar shortcut table (:data:`repro.ir.eval._SHORTCUTS`) is
  honoured by applying the registered getter per candidate and packing
  the results — reusing whatever each analysis already cached — so the
  two paths cannot drift on shortcut semantics;
* fixpoints (``let rec``) run the same simultaneous Kleene iteration,
  batch-wide: one iteration count for the whole stack, converging when
  every candidate's components are stable;
* :func:`axiom_holds_batch` returns one bool per candidate and
  cross-fills the scalar per-candidate predicate memo (same negative
  keys as :func:`repro.ir.eval.axiom_holds`), so scalar and batched
  sweeps of the same candidates share verdicts in both directions.

Base relations and sets are packed from the per-candidate analysis
properties (``po``, ``rf``, labelled sets, ...), which the rest of the
toolflow has usually already computed and cached.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.relation import Relation
from ..core.relbatch import RelationBatch, SetBatch
from .eval import (
    _BASE_RELATION,
    _BASE_SET,
    _KIND_CODE,
    _LABEL_FOR_SET,
    _SHORTCUTS,
    STATS,
)
from .nodes import Node

__all__ = ["BatchContext", "evaluate_batch", "axiom_holds_batch"]


class BatchContext:
    """A stack of candidate analyses sharing one universe size.

    The batched analogue of one :class:`CandidateAnalysis`: it carries
    the per-(node, batch) memo and the baseline link for the
    ``txn_free`` sharing split.
    """

    __slots__ = ("analyses", "n", "batch", "_memo", "_parent", "_baseline")

    def __init__(
        self,
        analyses: list[CandidateAnalysis],
        _parent: "BatchContext | None" = None,
    ) -> None:
        if not analyses:
            raise ValueError("empty batch")
        n = analyses[0].n
        for a in analyses:
            if a.n != n:
                raise ValueError("mixed universe sizes in one batch")
        self.analyses = analyses
        self.n = n
        self.batch = len(analyses)
        self._memo: dict = {}
        self._parent = _parent
        self._baseline: BatchContext | None = None

    @classmethod
    def of(cls, executions) -> "BatchContext":
        """A context over the candidates' shared analyses."""
        return cls([analyze(x) for x in executions])

    @property
    def baseline(self) -> "BatchContext":
        """The transaction-stripped view (per-candidate ``a.baseline``),
        linked back here so txn-free values are shared."""
        if self._parent is not None:
            return self
        if self._baseline is None:
            self._baseline = BatchContext(
                [a.baseline for a in self.analyses], _parent=self
            )
        return self._baseline

    def pack_relations(self, getter) -> RelationBatch:
        """Pack ``getter(analysis)`` (a scalar Relation) per candidate."""
        return RelationBatch.from_relations(
            [getter(a) for a in self.analyses]
        )

    def pack_sets(self, getter) -> SetBatch:
        """Pack ``getter(analysis)`` (an event set) per candidate."""
        return SetBatch.from_sets(
            [getter(a) for a in self.analyses], self.n
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " baseline" if self._parent is not None else ""
        return f"<BatchContext{tag} of {self.batch}x n={self.n}>"


_MISSING = object()


def evaluate_batch(node: Node, ctx: BatchContext, env=None):
    """The batched value of ``node`` over every candidate in ``ctx``.

    The exact shape of :func:`repro.ir.eval._eval`: closed nodes are
    memoized by node id, txn-free nodes computed on a baseline context
    store on (and compute against) the parent context, free fixpoint
    variables resolve through ``env`` and are never memoized.
    """
    if node.free_vars:
        if env is None:
            raise ValueError(f"node {node!r} has free fixpoint variables")
        return _compute(node, ctx, env)
    target = ctx
    if node.txn_free and ctx._parent is not None:
        target = ctx._parent
    memo = target._memo
    node_id = node.id
    hit = memo.get(node_id, _MISSING)
    if hit is _MISSING:
        hit = _compute(node, target, env)
        memo[node_id] = hit
    return hit


def _compute(node: Node, ctx: BatchContext, env):
    STATS.batch_computes += 1
    shortcut = _SHORTCUTS.get(node.id)
    if shortcut is not None:
        if node.is_set:
            return ctx.pack_sets(shortcut)
        return ctx.pack_relations(shortcut)
    return _DISPATCH[node.kind](node, ctx, env)


def _c_base(node, ctx, env):
    if node.token == "id":
        return RelationBatch.identity(ctx.batch, ctx.n)
    return ctx.pack_relations(_BASE_RELATION[node.token])


def _c_set(node, ctx, env):
    getter = _BASE_SET.get(node.token)
    if getter is not None:
        return ctx.pack_sets(getter)
    label = _LABEL_FOR_SET[node.token]
    return ctx.pack_sets(lambda a: a.labelled(label))


def _c_union(node, ctx, env):
    args = node.args
    out = evaluate_batch(args[0], ctx, env)
    for item in args[1:]:
        out = out | evaluate_batch(item, ctx, env)
    return out


def _c_inter(node, ctx, env):
    args = node.args
    out = evaluate_batch(args[0], ctx, env)
    for item in args[1:]:
        out = out & evaluate_batch(item, ctx, env)
    return out


def _c_diff(node, ctx, env):
    left, right = node.args
    return evaluate_batch(left, ctx, env) - evaluate_batch(right, ctx, env)


def _c_comp(node, ctx, env):
    args = node.args
    out = evaluate_batch(args[0], ctx, env)
    for item in args[1:]:
        out = out @ evaluate_batch(item, ctx, env)
    return out


def _stxn(ctx: BatchContext) -> RelationBatch:
    """The packed ``stxn`` stack (memoized; used by the §3.3 liftings)."""
    hit = ctx._memo.get("stxn")
    if hit is None:
        hit = ctx.pack_relations(lambda a: a.stxn)
        ctx._memo["stxn"] = hit
    return hit


def _c_stronglift(node, ctx, env):
    """``t? ; (r \\ t) ; t?`` (see :mod:`repro.core.lifting`)."""
    rel = evaluate_batch(node.args[0], ctx, env)
    txn = _stxn(ctx)
    topt = txn.opt()
    return topt @ (rel - txn) @ topt


def _c_weaklift(node, ctx, env):
    """``t ; (r \\ t) ; t``."""
    rel = evaluate_batch(node.args[0], ctx, env)
    txn = _stxn(ctx)
    return txn @ (rel - txn) @ txn


_DISPATCH = {
    "base": _c_base,
    "set": _c_set,
    "empty": lambda node, ctx, env: RelationBatch.empty(ctx.batch, ctx.n),
    "sempty": lambda node, ctx, env: SetBatch.empty(ctx.batch, ctx.n),
    "var": lambda node, ctx, env: env[node.token],
    "fix": lambda node, ctx, env: _eval_fix(node, ctx)[node.token],
    "union": _c_union,
    "sunion": _c_union,
    "inter": _c_inter,
    "sinter": _c_inter,
    "diff": _c_diff,
    "sdiff": _c_diff,
    "compl": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).complement(),
    "scompl": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).complement(),
    "comp": _c_comp,
    "inverse": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).inverse(),
    "opt": lambda node, ctx, env: evaluate_batch(node.args[0], ctx, env).opt(),
    "plus": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).plus(),
    "star": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).star(),
    "lift": lambda node, ctx, env: RelationBatch.lift_set(
        evaluate_batch(node.args[0], ctx, env)
    ),
    "cross": lambda node, ctx, env: RelationBatch.cross_sets(
        evaluate_batch(node.args[0], ctx, env),
        evaluate_batch(node.args[1], ctx, env),
    ),
    "domain": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).domain(),
    "range": lambda node, ctx, env: evaluate_batch(
        node.args[0], ctx, env
    ).codomain(),
    "stronglift": _c_stronglift,
    "weaklift": _c_weaklift,
}


def _eval_fix(node: Node, ctx: BatchContext):
    """Simultaneous Kleene iteration over the whole stack, memoized once
    per (bodies, batch) — the batched :func:`repro.ir.eval._eval_fix`."""
    bodies = node.args
    key = ("fix",) + tuple(b.id for b in bodies)
    memo = ctx._memo
    hit = memo.get(key)
    if hit is not None:
        return hit
    rels = tuple(
        RelationBatch.empty(ctx.batch, ctx.n) for _ in bodies
    )
    max_steps = ctx.n * ctx.n * len(bodies) + 8
    for _ in range(max_steps):
        STATS.fix_iterations += 1
        new = tuple(evaluate_batch(b, ctx, rels) for b in bodies)
        if all(a.same_as(b) for a, b in zip(new, rels)):
            memo[key] = rels
            return rels
        rels = new
    raise RuntimeError(
        f"batched IR fixpoint over {len(bodies)} bindings did not converge"
    )


def _check(kind: str, value) -> list:
    """``kind`` applied batch-wide: one bool-ish flag per candidate."""
    if kind == "acyclic":
        return value.is_acyclic()
    if kind == "irreflexive":
        return value.is_irreflexive()
    return value.is_empty()


def _predicate_memo(node: Node, a: CandidateAnalysis):
    """The scalar analysis whose ``_ir_memo`` owns this node's verdicts
    (the same routing as :func:`repro.ir.eval.axiom_holds`)."""
    if node.txn_free and a._parent is not None:
        a = a._parent
    return a._ir_memo


def axiom_holds_batch(kind: str, node: Node, ctx: BatchContext) -> list[bool]:
    """Memoized ``kind(node)`` over every candidate of ``ctx``.

    Reads and writes the *scalar* per-candidate predicate memo: a chunk
    whose verdicts were already decided (by another model sharing the
    axiom, or by a scalar sweep) costs one dict lookup per candidate;
    fresh chunks run the batched kernels once and leave per-candidate
    verdicts behind for everyone else.
    """
    key = -(node.id * 4 + _KIND_CODE[kind])
    memos = [_predicate_memo(node, a) for a in ctx.analyses]
    cached = [memo.get(key) for memo in memos]
    if all(hit is not None for hit in cached):
        STATS.memo_hits += len(cached)
        return cached
    value = evaluate_batch(node, ctx, None)
    flags = [bool(v) for v in _check(kind, value)]
    for memo, flag in zip(memos, flags):
        memo[key] = flag
    return flags
