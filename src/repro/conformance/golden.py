"""Golden conformance snapshots: the catalog verdict matrix, pinned.

The catalog is the repository's curated set of paper executions; the
native models' verdicts over it are the ground truth every refactor
must preserve.  :func:`verdict_matrix` computes the full catalog ×
model consistency matrix; ``tests/golden_verdicts.json`` pins it, and
``tests/test_golden_verdicts.py`` fails loudly on any flip.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/regen_golden_verdicts.py
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["verdict_matrix", "write_snapshot", "load_snapshot"]


def verdict_matrix() -> dict[str, dict[str, bool]]:
    """``matrix[entry][model] -> consistent`` over the whole catalog
    and every native registry model."""
    from ..catalog import CATALOG
    from ..models.registry import MODELS, get_model

    models = {name: get_model(name) for name in sorted(MODELS)}
    matrix: dict[str, dict[str, bool]] = {}
    for entry_name, entry in sorted(CATALOG.items()):
        row = {}
        for model_name, model in models.items():
            row[model_name] = bool(model.consistent(entry.execution))
        matrix[entry_name] = row
    return matrix


def write_snapshot(path: "str | Path") -> dict[str, dict[str, bool]]:
    """Compute the matrix and write it as sorted, diff-friendly JSON."""
    matrix = verdict_matrix()
    Path(path).write_text(
        json.dumps(matrix, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return matrix


def load_snapshot(path: "str | Path") -> dict[str, dict[str, bool]]:
    """Load a previously written snapshot."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
