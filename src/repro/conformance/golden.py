"""Golden conformance snapshots: the catalog verdict matrix, pinned.

The catalog is the repository's curated set of paper executions; the
native models' verdicts over it are the ground truth every refactor
must preserve.  :func:`verdict_matrix` computes the full catalog ×
model consistency matrix; ``tests/golden_verdicts.json`` pins it, and
``tests/test_golden_verdicts.py`` fails loudly on any flip.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/regen_golden_verdicts.py
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

__all__ = [
    "verdict_matrix",
    "litmus_matrix",
    "litmus_key",
    "litmus_entries",
    "write_snapshot",
    "load_snapshot",
]

#: Architectures with a herd dialect frontend; the golden snapshot pins
#: the litmus-observability row of every classic catalog entry that the
#: corpus imports through those dialects.
LITMUS_ARCHES = ("x86", "power", "armv8", "riscv")


def litmus_key(entry: str, arch: str) -> str:
    """Snapshot key of one catalog entry's litmus rendering."""
    return f"litmus:{entry}@{arch}"


def verdict_matrix() -> dict[str, dict[str, bool]]:
    """``matrix[entry][model] -> consistent`` over the whole catalog
    and every native registry model."""
    from ..catalog import CATALOG
    from ..models.registry import MODELS, get_model

    models = {name: get_model(name) for name in sorted(MODELS)}
    matrix: dict[str, dict[str, bool]] = {}
    for entry_name, entry in sorted(CATALOG.items()):
        row = {}
        for model_name, model in models.items():
            row[model_name] = bool(model.consistent(entry.execution))
        matrix[entry_name] = row
    return matrix


@lru_cache(maxsize=None)
def _litmus_imports(arch: str) -> tuple:
    """``(entry name, litmus test)`` pairs the ``arch`` corpus imports.

    An entry qualifies when it is tagged ``classic``, has no call
    events, its events/dependencies/RMWs are expressible in the
    architecture's vocabulary, and its litmus rendering survives the
    dialect round-trip (which the corpus test then re-asserts on the
    committed files).  Memoized: the snapshot writer and both golden
    test modules walk the same catalog-wide render/reparse sweep.
    """
    from ..catalog import CATALOG
    from ..litmus.from_execution import to_litmus
    from ..litmus.frontend import dump_dialect, load_dialect
    from ..synth.vocab import get_vocab
    from .generators import vocab_compatible

    vocab = get_vocab(arch)
    out = []
    for name, entry in sorted(CATALOG.items()):
        if "classic" not in entry.tags or entry.execution.calls:
            continue
        if not vocab_compatible(entry.execution, vocab):
            continue
        try:
            test = to_litmus(entry.execution, f"cat-{name}", arch)
            if load_dialect(dump_dialect(test)) != test:
                continue
        except (ValueError, TypeError):
            continue
        out.append((name, test))
    return tuple(out)


def litmus_entries(arch: str) -> list[str]:
    """Classic catalog entries the ``arch`` dialect corpus imports."""
    return [name for name, _ in _litmus_imports(arch)]


def litmus_matrix() -> dict[str, dict[str, bool]]:
    """Observability rows for the corpus-imported classic entries.

    ``matrix[litmus_key(entry, arch)][model] -> observable`` for every
    classic catalog entry each dialect imports: the litmus rendering of
    the entry's execution, judged by :func:`repro.litmus.candidates.
    observable` under every native model.  The corpus conformance test
    asserts the committed ``cat-*.litmus`` files reproduce these exact
    rows after a trip through the frontend.
    """
    from ..litmus.candidates import observable
    from ..models.registry import MODELS, get_model

    models = {name: get_model(name) for name in sorted(MODELS)}
    matrix: dict[str, dict[str, bool]] = {}
    for arch in LITMUS_ARCHES:
        for entry_name, test in _litmus_imports(arch):
            matrix[litmus_key(entry_name, arch)] = {
                model_name: bool(observable(test, model))
                for model_name, model in models.items()
            }
    return matrix


def write_snapshot(path: "str | Path") -> dict[str, dict[str, bool]]:
    """Compute both matrices and write sorted, diff-friendly JSON."""
    matrix = verdict_matrix()
    matrix.update(litmus_matrix())
    Path(path).write_text(
        json.dumps(matrix, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return matrix


def load_snapshot(path: "str | Path") -> dict[str, dict[str, bool]]:
    """Load a previously written snapshot."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
