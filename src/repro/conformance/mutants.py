"""Injected weakenings: mutant models the fuzzer must catch.

A differential fuzzer that never fires is indistinguishable from one
that cannot fire.  This module gives the harness teeth to test itself
on: :func:`drop_axiom` builds, for any registry model, the weakened
variant with one named axiom removed — exactly the shape of the §6.2
RTL bug, where the ARM prototype accidentally failed to enforce
TxnOrder (``BuggyRtlArm`` in :mod:`repro.sim.oracle` is literally
``drop_axiom("armv8", "TxnOrder")`` by another name).

Since every model's semantics is IR data (an
:class:`~repro.ir.model.IRDefinition`), a mutant is a *uniform data
transformation* — :meth:`IRDefinition.drop` filters the axiom tuple —
instead of a dynamically created subclass per family.  The mutant
shares every surviving axiom node with the stock model by interning, so
sweeping stock + mutants over a candidate re-evaluates nothing.

Dropping an axiom only ever *weakens* a model, so a mutant disagreement
always has the shape "mutant observes what stock forbids" — the same
direction as a real conformance escape.  :data:`KNOWN_MUTANTS` lists,
per architecture, the axioms whose loss the small fuzzing budgets are
expected to detect and shrink to a ≤6-event witness
(``tests/test_conformance.py`` asserts exactly that).
"""

from __future__ import annotations

from functools import lru_cache

from ..ir.model import IRDefinition, IRModel
from ..models.base import MemoryModel
from ..models.registry import MODELS, get_model

__all__ = ["KNOWN_MUTANTS", "MutantModel", "drop_axiom", "known_mutant_specs"]


#: Axioms per architecture whose removal the fuzzer must detect even at
#: the smallest budgets.  armv8/TxnOrder is the paper's §6.2 RTL bug.
#:
#: Only *extensionally visible* drops qualify: several axioms overlap
#: (``TxnOrder = acyclic(stronglift(hb))`` subsumes ``Order`` on every
#: transaction-free execution, and on x86/armv8/riscv any
#: ``stronglift(com)`` cycle is also a ``stronglift(hb)`` cycle, masking
#: a lone StrongIsol drop), so removing one of those axioms produces a
#: model with identical verdicts — nothing any fuzzer could detect.
KNOWN_MUTANTS: dict[str, tuple[str, ...]] = {
    "x86": ("Coherence", "RMWIsol", "TxnOrder"),
    "power": ("Coherence", "Propagation", "Observation", "StrongIsol"),
    "armv8": ("Coherence", "RMWIsol", "TxnOrder", "TxnCancelsRMW"),
    "riscv": ("Coherence", "RMWIsol", "TxnOrder", "TxnCancelsRMW"),
    "cpp": ("HbCom", "NoThinAir", "SeqCst"),
}


def known_mutant_specs(arch: str) -> list[str]:
    """Checker specs (``mut:<arch>:<axiom>``) for an arch's known mutants."""
    return [f"mut:{arch}:{axiom}" for axiom in KNOWN_MUTANTS.get(arch, ())]


@lru_cache(maxsize=None)
def _mutant_definition(arch: str, axiom_name: str) -> IRDefinition:
    try:
        cls = MODELS[arch]
    except KeyError:
        raise ValueError(
            f"unknown model {arch!r}; known: {', '.join(sorted(MODELS))}"
        ) from None
    stock = get_model(arch)
    if not isinstance(stock, IRModel):
        raise ValueError(
            f"model {arch!r} is not IR-defined; cannot derive mutants"
        )
    known = [a.name for a in stock.axioms()]
    if axiom_name not in known:
        raise ValueError(
            f"model {arch!r} has no axiom {axiom_name!r}; "
            f"its axioms are {', '.join(known)}"
        )
    del cls
    return stock.definition().drop(axiom_name)


class MutantModel(IRModel):
    """The registry model for ``arch`` with one axiom removed."""

    def __init__(self, arch: str, axiom_name: str, tm: bool = True) -> None:
        definition = _mutant_definition(arch, axiom_name)
        super().__init__(tm=tm)
        self._definition = definition
        self._arch = arch
        self._dropped = axiom_name
        self.arch = arch
        # Dropping the coherence axiom must also stop the candidate
        # enumerator from pruning incoherent candidates on the mutant's
        # behalf, or the weakening would be invisible to `observable`.
        stock_cls = MODELS[arch]
        self.enforces_coherence = (
            stock_cls.enforces_coherence and axiom_name != "Coherence"
        )

    def definition(self) -> IRDefinition:
        return self._definition

    def definition_token(self) -> str:
        # Name the mutation explicitly so engine cache keys never
        # collide between different mutants (or with the stock model),
        # and derive from the surviving axioms' structural digest so
        # editing the stock model invalidates its mutants too.
        return (
            f"mut:{self._arch}:{self._dropped}:tm={self.tm}:"
            f"{self._definition.digest}"
        )

    def __repr__(self) -> str:
        return (
            f"<MutantModel {self._arch}-{self._dropped} tm={self.tm}>"
        )


def drop_axiom(arch: str, axiom_name: str, tm: bool = True) -> MemoryModel:
    """The registry model for ``arch`` with ``axiom_name`` removed."""
    return MutantModel(arch, axiom_name, tm=tm)
