"""Injected weakenings: mutant models the fuzzer must catch.

A differential fuzzer that never fires is indistinguishable from one
that cannot fire.  This module gives the harness teeth to test itself
on: :func:`drop_axiom` builds, for any registry model, the weakened
variant with one named axiom removed — exactly the shape of the §6.2
RTL bug, where the ARM prototype accidentally failed to enforce
TxnOrder (``BuggyRtlArm`` in :mod:`repro.sim.oracle` is literally
``drop_axiom("armv8", "TxnOrder")`` by another name).

Dropping an axiom only ever *weakens* a model, so a mutant disagreement
always has the shape "mutant observes what stock forbids" — the same
direction as a real conformance escape.  :data:`KNOWN_MUTANTS` lists,
per architecture, the axioms whose loss the small fuzzing budgets are
expected to detect and shrink to a ≤6-event witness
(``tests/test_conformance.py`` asserts exactly that).
"""

from __future__ import annotations

from functools import lru_cache

from ..models.base import MemoryModel
from ..models.registry import MODELS, get_model

__all__ = ["KNOWN_MUTANTS", "drop_axiom", "known_mutant_specs"]


#: Axioms per architecture whose removal the fuzzer must detect even at
#: the smallest budgets.  armv8/TxnOrder is the paper's §6.2 RTL bug.
#:
#: Only *extensionally visible* drops qualify: several axioms overlap
#: (``TxnOrder = acyclic(stronglift(hb))`` subsumes ``Order`` on every
#: transaction-free execution, and on x86/armv8/riscv any
#: ``stronglift(com)`` cycle is also a ``stronglift(hb)`` cycle, masking
#: a lone StrongIsol drop), so removing one of those axioms produces a
#: model with identical verdicts — nothing any fuzzer could detect.
KNOWN_MUTANTS: dict[str, tuple[str, ...]] = {
    "x86": ("Coherence", "RMWIsol", "TxnOrder"),
    "power": ("Coherence", "Propagation", "Observation", "StrongIsol"),
    "armv8": ("Coherence", "RMWIsol", "TxnOrder", "TxnCancelsRMW"),
    "riscv": ("Coherence", "RMWIsol", "TxnOrder", "TxnCancelsRMW"),
    "cpp": ("HbCom", "NoThinAir", "SeqCst"),
}


def known_mutant_specs(arch: str) -> list[str]:
    """Checker specs (``mut:<arch>:<axiom>``) for an arch's known mutants."""
    return [f"mut:{arch}:{axiom}" for axiom in KNOWN_MUTANTS.get(arch, ())]


@lru_cache(maxsize=None)
def _mutant_class(arch: str, axiom_name: str) -> type:
    try:
        base_cls = MODELS[arch]
    except KeyError:
        raise ValueError(
            f"unknown model {arch!r}; known: {', '.join(sorted(MODELS))}"
        ) from None
    known = [a.name for a in get_model(arch).axioms()]
    if axiom_name not in known:
        raise ValueError(
            f"model {arch!r} has no axiom {axiom_name!r}; "
            f"its axioms are {', '.join(known)}"
        )

    class Mutant(base_cls):
        _dropped_axiom = axiom_name

        # Dropping the coherence axiom must also stop the candidate
        # enumerator from pruning incoherent candidates on the mutant's
        # behalf, or the weakening would be invisible to `observable`.
        enforces_coherence = (
            base_cls.enforces_coherence and axiom_name != "Coherence"
        )

        def axioms(self):
            return tuple(
                a for a in super().axioms() if a.name != self._dropped_axiom
            )

        def definition_token(self) -> str:
            # Dynamic classes have no retrievable source; name the
            # mutation explicitly so engine cache keys never collide
            # between different mutants (or with the stock model).
            return f"mut:{arch}:{axiom_name}:tm={self.tm}"

    Mutant.__name__ = f"{base_cls.__name__}Minus{axiom_name}"
    Mutant.__qualname__ = Mutant.__name__
    return Mutant


def drop_axiom(arch: str, axiom_name: str, tm: bool = True) -> MemoryModel:
    """The registry model for ``arch`` with ``axiom_name`` removed."""
    return _mutant_class(arch, axiom_name)(tm=tm)
