"""Shrinking disagreements to minimal reproducers.

The fuzzer reports nothing it cannot shrink: every disagreement is
delta-debugged down the paper's §4.2 ⊏ weakening order
(:func:`repro.synth.minimality.shrink`) until no one-step-weaker
execution still reproduces it.  Two predicate shapes cover every
disagreement kind:

* **execution-level** — when both checkers are axiomatic models
  (model-mismatch, mutant-disagreement, and enumeration splits whose
  verdicts differ on a specific candidate), the witness execution the
  "observable" side accepted *is* the disagreement:
  ``left.consistent(w) != right.consistent(w)``.  Shrinking works on
  the execution directly; the result is re-rendered as a litmus test.
* **test-level** — machines have no ``consistent``; their disagreements
  are shrunk through :func:`~repro.litmus.from_execution.to_litmus`:
  weaken the test's origin execution, re-render, re-ask both checkers.
  Machine escapes keep their *direction* while shrinking (machine
  observes ∧ model forbids), so the descent cannot drift into the
  benign unseen-Allow case.

Random-program disagreements with no execution witness (possible only
for machine escapes, where the machine is the sole "observable" side)
fall back to instruction-level delta debugging on the program itself.
"""

from __future__ import annotations

from typing import Callable

from ..core.execution import Execution
from ..engine.checkers import Checker
from ..litmus.candidates import expand_test
from ..litmus.from_execution import to_litmus
from ..litmus.program import Program
from ..litmus.test import LitmusTest
from ..models.base import MemoryModel
from ..synth.minimality import shrink
from ..synth.vocab import get_vocab
from .classify import Disagreement

__all__ = [
    "witness_execution",
    "shrink_disagreement",
    "shrink_litmus",
]


def witness_execution(test: LitmusTest, model: MemoryModel) -> Execution | None:
    """The first consistent, postcondition-satisfying candidate of
    ``test`` under ``model`` — the execution witnessing observability."""
    coherent_only = bool(getattr(model, "enforces_coherence", False))
    for candidate in expand_test(test, coherent_only):
        if coherent_only and not candidate.coherent:
            continue
        if model.consistent(candidate.execution):
            return candidate.execution
    return None


def _model_of(checker: Checker) -> MemoryModel | None:
    model = getattr(checker, "model", None)
    return model if isinstance(model, MemoryModel) else None


def shrink_disagreement(
    d: Disagreement,
    left: Checker,
    right: Checker,
    max_steps: int = 10_000,
) -> None:
    """Shrink ``d`` in place (fills ``shrunk`` and/or ``shrunk_test``)."""
    vocab = get_vocab(d.test.arch)
    left_model = _model_of(left)
    right_model = _model_of(right)

    # Execution-level descent for model-vs-model disagreements.
    if left_model is not None and right_model is not None:
        observer = left_model if d.left_verdict else right_model
        witness = witness_execution(d.test, observer)
        if witness is not None and (
            left_model.consistent(witness) != right_model.consistent(witness)
        ):
            d.shrunk = shrink(
                witness,
                lambda x: left_model.consistent(x) != right_model.consistent(x),
                vocab,
                max_steps=max_steps,
            )
            try:
                d.shrunk_test = to_litmus(d.shrunk, f"{d.item}-min", d.test.arch)
            except ValueError:
                d.shrunk_test = None
            return

    # Test-level descent from the item's origin execution.
    def test_predicate(x: Execution) -> bool:
        test = to_litmus(x, d.item, d.test.arch)
        lv = left.verdict(test)
        rv = right.verdict(test)
        if d.kind == "machine-escape":
            # Keep the ⊆-violation direction: the machine (right)
            # observes what the model (left) forbids.
            return rv and not lv
        return lv != rv

    if d.origin is not None:
        try:
            holds = test_predicate(d.origin)
        except Exception:
            holds = False
        if holds:
            d.shrunk = shrink(
                d.origin, test_predicate, vocab, max_steps=max_steps
            )
            d.shrunk_test = to_litmus(d.shrunk, f"{d.item}-min", d.test.arch)
            return

    # Last resort: instruction-level delta debugging on the program.
    def litmus_predicate(test: LitmusTest) -> bool:
        lv = left.verdict(test)
        rv = right.verdict(test)
        if d.kind == "machine-escape":
            return rv and not lv
        return lv != rv

    d.shrunk_test = shrink_litmus(d.test, litmus_predicate)


def shrink_litmus(
    test: LitmusTest,
    predicate: Callable[[LitmusTest], bool],
    max_steps: int = 1_000,
) -> LitmusTest:
    """Greedy one-at-a-time reduction of a litmus test.

    Tries removing single instructions (variants that fail program
    validation — dangling registers, unbalanced transaction brackets —
    are skipped) and single postcondition atoms while ``predicate``
    stays true.  Coarser than the ⊏ shrinker but total: it needs no
    origin execution.
    """
    steps = 0
    progressed = True
    while progressed and steps < max_steps:
        progressed = False
        for variant in _litmus_reductions(test):
            try:
                still = predicate(variant)
            except Exception:
                still = False
            if still:
                test = variant
                steps += 1
                progressed = True
                break
    return test


def _litmus_reductions(test: LitmusTest):
    """Yield every one-instruction / one-atom reduction of ``test``."""
    threads = test.program.threads
    for tid, thread in enumerate(threads):
        for idx in range(len(thread)):
            new_thread = thread[:idx] + thread[idx + 1 :]
            # Empty threads are kept: postcondition atoms address
            # threads by index, so removal must not shift tids.
            new_threads = tuple(
                new_thread if t == tid else threads[t]
                for t in range(len(threads))
            )
            try:
                program = Program(new_threads)
            except ValueError:
                continue
            yield LitmusTest(
                test.name, test.arch, program, test.postcondition,
                test.init, test.quantifier,
            )
    for idx in range(len(test.postcondition)):
        post = test.postcondition[:idx] + test.postcondition[idx + 1 :]
        yield LitmusTest(
            test.name, test.arch, test.program, post,
            test.init, test.quantifier,
        )
