"""Litmus-test streams for the differential fuzzer.

Three independent sources, so no single generator's blind spot hides a
model bug:

* **diy** — critical-cycle enumeration (:mod:`repro.synth.diy`) over a
  per-architecture relaxation vocabulary extended with transactional
  (``TxndXX``) edges, rendered to litmus tests;
* **catalog / mutation** — every arch-compatible catalog entry as-is
  (deterministic, seed-independent — mutant detection must never hinge
  on random luck), plus seeded random walks down the §4.2 ⊏ weakening
  order from those entries;
* **random** — seeded random programs over the architecture's event
  vocabulary (:mod:`repro.synth.vocab`): labelled accesses, fences,
  dependencies, exclusives, and committed/aborted transactions;
* **herd** — seeded random programs rendered to the architecture's
  herd dialect text and reparsed before checking, putting the litmus
  frontend (:mod:`repro.litmus.frontend`) inside the differential loop.

Every stream is deterministic in ``(arch, seed, budget)``; item names
are unique within a suite, so a failing test is addressable from the
report alone.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

from ..core.events import Label
from ..core.execution import Execution
from ..engine.campaign import CampaignItem
from ..litmus.from_execution import to_litmus
from ..litmus.program import (
    CtrlBranch,
    Fence,
    Instruction,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from ..litmus.test import CoSeq, LitmusTest, MemEq, RegEq, TxnOk
from ..obs import trace
from ..synth.diy import cycle_execution, enumerate_cycles
from ..synth.minimality import weakenings
from ..synth.vocab import ArchVocab, get_vocab
from .budget import FuzzBudget, get_budget
from .seeds import derive_seed

__all__ = [
    "DEFAULT_SOURCES",
    "FuzzItem",
    "random_postcondition",
    "FUZZ_ARCHES",
    "generate_suite",
    "random_litmus",
    "estimate_candidates",
    "vocab_compatible",
]

#: Architectures the fuzzer knows how to build checker trios for.
FUZZ_ARCHES = ("x86", "power", "armv8", "riscv", "cpp")

#: Every generator stream, in suite order — the single default for
#: :func:`generate_suite` and :func:`repro.conformance.fuzzer.run_fuzz`.
DEFAULT_SOURCES = ("diy", "directed", "catalog", "mutation", "random", "herd")


@dataclass
class FuzzItem:
    """One generated test plus its provenance.

    ``origin`` is the execution whose witness the test pins (diy cycles
    and catalog mutations have one; random programs do not) — the
    shrinker prefers it as the starting point of the ⊏ descent.
    """

    name: str
    test: LitmusTest
    source: str  # "diy" | "catalog" | "mutation" | "random"
    origin: Execution | None = None

    def campaign_item(self) -> CampaignItem:
        return CampaignItem(self.name, self.test)


# ----------------------------------------------------------------------
# diy stream
# ----------------------------------------------------------------------

_POD = ("PodWR", "PodWW", "PodRR", "PodRW")
_COM = ("Rfe", "Fre", "Wse")
_TXN = ("TxndWR", "TxndWW", "TxndRR", "TxndRW")
_DEPS = ("DpAddrdR", "DpDatadW", "DpCtrldW")


def _fenced(tag: str) -> tuple[str, ...]:
    return tuple(f"{tag}d{s}{d}" for s, d in itertools.product("WR", repeat=2))


#: Per-arch diy relaxation vocabularies (cycles are enumerated in this
#: deterministic order; budgets cap the prefix).
DIY_VOCABS: dict[str, tuple[str, ...]] = {
    "x86": _POD + _COM + _fenced("MFence") + _TXN,
    "power": _POD + _COM + _fenced("Sync") + _fenced("LwSync") + _DEPS + _TXN,
    "armv8": _POD + _COM + _fenced("Dmb") + _DEPS + _TXN,
    "riscv": _POD + _COM + _fenced("FenceRwRw") + _DEPS + _TXN,
    "cpp": _POD + _COM + _TXN,
}


def _diy_stream(arch: str, budget: FuzzBudget) -> list[FuzzItem]:
    out = []
    cycles = enumerate_cycles(DIY_VOCABS[arch], budget.diy_length)
    for cycle in itertools.islice(cycles, budget.diy_tests):
        name = "diy-" + "+".join(e.name for e in cycle.edges)
        execution = cycle_execution(cycle)
        test = to_litmus(execution, name, arch)
        out.append(FuzzItem(name, test, "diy", execution))
    return out


# ----------------------------------------------------------------------
# directed stream: seed-independent witnesses for the TM axioms
# ----------------------------------------------------------------------

_TXN_FENCES = {"x86": "mfence", "armv8": "dmb", "riscv": Label.FENCE_RW_RW}


def _directed_stream(arch: str) -> list[FuzzItem]:
    """Hand-picked conformance witnesses the random generators only find
    at larger budgets.

    Currently one shape: the TxnOrder-only violation (a transaction
    observed out-of-order through a fenced non-transactional thread —
    the §6.2 RTL-bug family).  Its ``hb`` is acyclic and its
    ``stronglift(com)`` is acyclic, so *only* the TxnOrder axiom forbids
    it: dropping TxnOrder is invisible on every classic shape (the SB/MP
    transactional variants violate StrongIsol too) but fires here.
    """
    fence = _TXN_FENCES.get(arch)
    if fence is None:
        return []
    program = Program(
        (
            (TxBegin(), Store("x", 1), Load("r0", "y"), TxEnd()),
            (Store("y", 1), Fence(fence), Load("r0", "x")),
        )
    )
    test = LitmusTest(
        name="dir-txnorder",
        arch=arch,
        program=program,
        postcondition=(TxnOk(0, 0, ok=True), RegEq(0, "r0", 0), RegEq(1, "r0", 0)),
    )
    return [FuzzItem("dir-txnorder", test, "directed")]


# ----------------------------------------------------------------------
# catalog + mutation stream
# ----------------------------------------------------------------------


def vocab_compatible(x: Execution, vocab: ArchVocab) -> bool:
    """True iff every event, dependency, and RMW of ``x`` is expressible
    in the architecture's vocabulary."""
    reads = set(vocab.read_labels)
    writes = set(vocab.write_labels)
    for event in x.events:
        labels = event.labels - {Label.EXCL}
        if event.is_fence:
            if event.fence_kind not in vocab.fence_kinds:
                return False
        elif event.is_read:
            if labels not in reads:
                return False
        elif event.is_write:
            if labels not in writes:
                return False
        else:
            return False  # call events have no litmus rendering
    for kind in ("addr", "data", "ctrl"):
        if getattr(x, kind) and kind not in vocab.dep_kinds:
            return False
    if x.rmw and not vocab.rmw:
        return False
    return True


def _catalog_executions(arch: str, budget: FuzzBudget) -> list[tuple[str, Execution]]:
    from ..catalog import CATALOG

    vocab = get_vocab(arch)
    return [
        (name, entry.execution)
        for name, entry in sorted(CATALOG.items())
        if entry.execution.n <= budget.max_events + 2
        and vocab_compatible(entry.execution, vocab)
    ]


def _catalog_stream(arch: str, budget: FuzzBudget) -> list[FuzzItem]:
    out = []
    for name, execution in _catalog_executions(arch, budget):
        test = to_litmus(execution, f"cat-{name}", arch)
        out.append(FuzzItem(f"cat-{name}", test, "catalog", execution))
    return out


def _mutation_stream(
    arch: str, rng: random.Random, budget: FuzzBudget
) -> list[FuzzItem]:
    vocab = get_vocab(arch)
    pool = _catalog_executions(arch, budget)
    out: list[FuzzItem] = []
    if not pool:
        return out
    attempts = 0
    while len(out) < budget.mutation_tests and attempts < 20 * budget.mutation_tests:
        attempts += 1
        name, x = pool[rng.randrange(len(pool))]
        for _ in range(rng.randint(1, 2)):
            steps = [w for w in weakenings(x, vocab) if w.n >= 2]
            if not steps:
                break
            x = steps[rng.randrange(len(steps))]
        try:
            item_name = f"mut{len(out)}-{name}"
            test = to_litmus(x, item_name, arch)
        except ValueError:
            continue
        out.append(FuzzItem(item_name, test, "mutation", x))
    return out


# ----------------------------------------------------------------------
# random-program stream
# ----------------------------------------------------------------------


def random_litmus(
    arch: str, rng: random.Random, budget: "FuzzBudget | str", name: str = "rand"
) -> LitmusTest:
    """One seeded random litmus test over the architecture's vocabulary."""
    budget = get_budget(budget)
    vocab = get_vocab(arch)
    locs = ["x", "y", "z"][: rng.randint(1, 3)]
    n_threads = rng.randint(1, budget.max_threads)
    next_value = {loc: 0 for loc in locs}
    txns_left = budget.max_txns
    instr_budget = rng.randint(n_threads, budget.max_events)

    threads: list[tuple[Instruction, ...]] = []
    for tid in range(n_threads):
        remaining_threads = n_threads - tid - 1
        size = (
            instr_budget - remaining_threads
            if remaining_threads == 0 or instr_budget - remaining_threads <= 1
            else rng.randint(1, instr_budget - remaining_threads)
        )
        size = max(1, size)
        instr_budget -= size
        instrs: list[Instruction] = []
        defined: list[str] = []
        in_txn = False
        reg_counter = 0
        open_excl: str | None = None
        for _ in range(size):
            roll = rng.random()
            loc = locs[rng.randrange(len(locs))]
            if roll < 0.35:
                labels = vocab.write_labels[rng.randrange(len(vocab.write_labels))]
                next_value[loc] += 1
                deps: dict = {}
                if defined and "data" in vocab.dep_kinds and rng.random() < 0.3:
                    deps["data_dep"] = (rng.choice(defined),)
                if defined and "addr" in vocab.dep_kinds and rng.random() < 0.15:
                    deps["addr_dep"] = (rng.choice(defined),)
                excl = vocab.rmw and open_excl == loc and rng.random() < 0.7
                if excl:
                    open_excl = None
                instrs.append(
                    Store(loc, next_value[loc], labels=labels, excl=excl, **deps)
                )
            elif roll < 0.68:
                labels = vocab.read_labels[rng.randrange(len(vocab.read_labels))]
                reg = f"r{reg_counter}"
                reg_counter += 1
                deps = {}
                if defined and "addr" in vocab.dep_kinds and rng.random() < 0.15:
                    deps["addr_dep"] = (rng.choice(defined),)
                excl = vocab.rmw and rng.random() < 0.15
                if excl:
                    open_excl = loc
                instrs.append(Load(reg, loc, labels=labels, excl=excl, **deps))
                defined.append(reg)
            elif roll < 0.76 and vocab.fence_kinds:
                kind = vocab.fence_kinds[rng.randrange(len(vocab.fence_kinds))]
                instrs.append(Fence(kind))
            elif roll < 0.82 and defined and "ctrl" in vocab.dep_kinds:
                instrs.append(CtrlBranch((rng.choice(defined),)))
            elif roll < 0.92 and not in_txn and txns_left > 0:
                atomic = arch == "cpp" and rng.random() < 0.5
                instrs.append(TxBegin(atomic=atomic))
                in_txn = True
                txns_left -= 1
            elif in_txn:
                if defined and rng.random() < 0.25:
                    instrs.append(TxAbort(rng.choice(defined)))
                instrs.append(TxEnd())
                in_txn = False
        if in_txn:
            instrs.append(TxEnd())
        threads.append(tuple(instrs))

    program = Program(tuple(threads))
    return LitmusTest(
        name=name,
        arch=arch,
        program=program,
        postcondition=random_postcondition(rng, program),
    )


def random_postcondition(rng: random.Random, program: Program) -> tuple:
    """0–3 atoms over the program's registers, locations, and txns."""
    atoms = []
    loads = list(program.loads())
    values_by_loc: dict[str, list[int]] = {}
    for _, _, store in program.stores():
        values_by_loc.setdefault(store.loc, []).append(store.value)
    txns = [
        (tid, idx)
        for tid, thread in enumerate(program.threads)
        for idx in range(sum(isinstance(i, TxBegin) for i in thread))
    ]
    for _ in range(rng.randint(0, 3)):
        roll = rng.random()
        if roll < 0.5 and loads:
            tid, _, load = loads[rng.randrange(len(loads))]
            choices = [0] + values_by_loc.get(load.loc, [])
            atoms.append(RegEq(tid, load.dst, rng.choice(choices)))
        elif roll < 0.75 and values_by_loc:
            loc = rng.choice(sorted(values_by_loc))
            atoms.append(MemEq(loc, rng.choice([0] + values_by_loc[loc])))
        elif roll < 0.9 and txns:
            tid, idx = txns[rng.randrange(len(txns))]
            atoms.append(TxnOk(tid, idx, ok=rng.random() < 0.6))
        elif values_by_loc:
            loc = rng.choice(sorted(values_by_loc))
            values = values_by_loc[loc][:]
            rng.shuffle(values)
            atoms.append(CoSeq(loc, tuple(values)))
    return tuple(atoms)


def _random_stream(
    arch: str, rng: random.Random, budget: FuzzBudget
) -> list[FuzzItem]:
    out = []
    for i in range(budget.random_tests):
        name = f"rand-{i}"
        out.append(FuzzItem(name, random_litmus(arch, rng, budget, name), "random"))
    return out


# ----------------------------------------------------------------------
# herd-dialect stream
# ----------------------------------------------------------------------


def _herd_stream(
    arch: str, rng: random.Random, budget: FuzzBudget
) -> list[FuzzItem]:
    """Seeded random programs emitted *as herd-dialect text* and
    reparsed before checking.

    This puts the litmus frontend inside the differential loop: the
    checkers judge the reparsed test, and the stream asserts the
    round-trip is exact — a renderer/parser divergence either fails the
    equality check here or shows up as a cross-checker disagreement.
    """
    from ..litmus.frontend import DIALECTS, dump_dialect, load_dialect

    if arch not in DIALECTS:
        return []
    out = []
    for i in range(budget.herd_tests):
        name = f"herd-{i}"
        test = random_litmus(arch, rng, budget, name)
        reparsed = load_dialect(dump_dialect(test))
        if reparsed != test:
            raise AssertionError(
                f"herd {arch} dialect round-trip diverged on {name}:\n"
                f"{dump_dialect(test)}"
            )
        out.append(FuzzItem(name, reparsed, "herd"))
    return out


# ----------------------------------------------------------------------
# Suite assembly and sizing
# ----------------------------------------------------------------------


def generate_suite(
    arch: str,
    seed: int,
    budget: "FuzzBudget | str",
    sources: tuple[str, ...] = DEFAULT_SOURCES,
) -> list[FuzzItem]:
    """The full fuzzing suite for one (arch, seed, budget) triple."""
    if arch not in FUZZ_ARCHES:
        raise ValueError(
            f"cannot fuzz {arch!r}; supported: {', '.join(FUZZ_ARCHES)}"
        )
    budget = get_budget(budget)
    streams: list[tuple[str, object]] = []
    if "diy" in sources:
        streams.append(("diy", lambda: _diy_stream(arch, budget)))
    if "directed" in sources:
        streams.append(("directed", lambda: _directed_stream(arch)))
    if "catalog" in sources:
        streams.append(("catalog", lambda: _catalog_stream(arch, budget)))
    if "mutation" in sources:
        streams.append(
            (
                "mutation",
                lambda: _mutation_stream(
                    arch,
                    random.Random(derive_seed(seed, f"fuzz-mutation-{arch}")),
                    budget,
                ),
            )
        )
    if "random" in sources:
        streams.append(
            (
                "random",
                lambda: _random_stream(
                    arch,
                    random.Random(derive_seed(seed, f"fuzz-random-{arch}")),
                    budget,
                ),
            )
        )
    if "herd" in sources:
        streams.append(
            (
                "herd",
                lambda: _herd_stream(
                    arch,
                    random.Random(derive_seed(seed, f"fuzz-herd-{arch}")),
                    budget,
                ),
            )
        )
    items: list[FuzzItem] = []
    for source, produce in streams:
        if trace.ACTIVE is not None:
            with trace.stage(f"generate:{source}", arch=arch):
                batch = produce()
            trace.count(f"generated:{source}", len(batch))
        else:
            batch = produce()
        items.extend(batch)
    return items


def estimate_candidates(program: Program) -> int:
    """A cheap upper bound on the brute-force candidate count.

    Counts the full cross-product as if every transaction committed and
    every read could observe every same-location write — an
    overestimate, which is what a cost gate wants.  Saturates at 10^9.
    """
    cap = 1_000_000_000
    txns = sum(
        sum(isinstance(i, TxBegin) for i in thread) for thread in program.threads
    )
    est = 2**txns if txns < 30 else cap
    writes_by_loc: dict[str, int] = {}
    for _, _, store in program.stores():
        writes_by_loc[store.loc] = writes_by_loc.get(store.loc, 0) + 1
    for count in writes_by_loc.values():
        est *= math.factorial(count)
        if est > cap:
            return cap
    for _, _, load in program.loads():
        est *= writes_by_loc.get(load.loc, 0) + 1
        if est > cap:
            return cap
    return est
