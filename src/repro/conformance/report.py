"""Rendering fuzz reports: reproducible JSONL and human markdown.

The JSONL stream is the machine artifact CI archives: a ``header``
record carrying everything needed to reproduce the run (arch, seed,
budget, checkers), then one record per disagreement / mutant /
checker error, each with its minimal reproducer serialised in the
neutral litmus format (:func:`repro.litmus.parse.dumps`) so it can be
re-run directly with ``repro run``.
"""

from __future__ import annotations

import json

from ..litmus.parse import dumps
from .classify import Disagreement
from .fuzzer import FuzzReport

__all__ = ["to_json_lines", "to_markdown"]


def _herd_text(test) -> str | None:
    """The reproducer in its architecture's herd dialect, if it has one
    and every construct is dialect-expressible."""
    from ..litmus.frontend import DIALECTS, dump_dialect

    if test.arch not in DIALECTS:
        return None
    try:
        return dump_dialect(test)
    except ValueError:
        return None


def _reproducer(d: Disagreement) -> dict:
    out: dict = {}
    if d.shrunk is not None:
        out["shrunk_events"] = d.shrunk.n
        out["shrunk_execution"] = d.shrunk.describe()
    if d.shrunk_test is not None:
        out["shrunk_litmus"] = dumps(d.shrunk_test)
        herd = _herd_text(d.shrunk_test)
        if herd is not None:
            out["shrunk_herd"] = herd
    return out


def _disagreement_record(d: Disagreement, record_kind: str) -> dict:
    return {
        "record": record_kind,
        "item": d.item,
        "class": d.kind,
        "source": d.source,
        "left": d.left,
        "right": d.right,
        "left_verdict": d.left_verdict,
        "right_verdict": d.right_verdict,
        "litmus": dumps(d.test),
        **_reproducer(d),
    }


def to_json_lines(report: FuzzReport) -> str:
    """The report as newline-delimited JSON (header first)."""
    records: list[dict] = [
        {
            "record": "header",
            "arch": report.arch,
            "seed": report.seed,
            "budget": report.budget,
            "checkers": report.checkers,
            "n_items": report.n_items,
            "by_source": report.by_source,
            "n_cells": report.n_cells,
            "cache_hits": report.cache_hits,
            "disagreements": len(report.disagreements),
            "errors": len(report.errors),
            "unseen_allows": report.unseen_allows,
            "elapsed": round(report.elapsed, 3),
            "ok": report.ok,
            "reproduce": (
                f"repro fuzz --arch {report.arch} --seed {report.seed} "
                f"--budget {report.budget}"
            ),
        }
    ]
    records.extend(
        _disagreement_record(d, "disagreement") for d in report.disagreements
    )
    for m in report.mutants:
        records.append(
            {
                "record": "mutant",
                "spec": m.spec,
                "axiom": m.axiom,
                "detected": m.detected,
                "witnesses": m.witnesses,
                "first_witness": m.first_witness,
                "min_events": m.min_events,
            }
        )
    records.extend(
        {
            "record": "error",
            "item": e.item,
            "checker": e.checker,
            "message": e.message,
        }
        for e in report.errors
    )
    return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"


def to_markdown(report: FuzzReport) -> str:
    """The report as a human-readable markdown document."""
    status = "✅ clean" if report.ok else "❌ FAILED"
    lines = [
        f"# Differential fuzz report: {report.arch}",
        "",
        f"**Status:** {status}",
        "",
        f"- seed: `{report.seed}` (rerun: `repro fuzz --arch {report.arch} "
        f"--seed {report.seed} --budget {report.budget}`)",
        f"- budget: `{report.budget}`",
        f"- suite: {report.n_items} tests — "
        + ", ".join(f"{n} {s}" for s, n in sorted(report.by_source.items())),
        f"- checkers: {', '.join(f'`{c}`' for c in report.checkers)}",
        f"- cells: {report.n_cells} ({report.cache_hits} cached), "
        f"{report.elapsed:.2f}s",
        f"- machine unseen-allows (informational): {report.unseen_allows}",
        "",
    ]

    lines.append(f"## Disagreements ({len(report.disagreements)})")
    lines.append("")
    if not report.disagreements:
        lines.append("None — every checker pair agreed on every test.")
        lines.append("")
    for d in report.disagreements:
        lines.append(f"### `{d.item}` — {d.kind}")
        lines.append("")
        lines.append(
            f"`{d.left}` says **{d.left_verdict}**, "
            f"`{d.right}` says **{d.right_verdict}** "
            f"(source: {d.source})"
        )
        lines.append("")
        repro = d.shrunk_test or d.test
        size = f" ({d.shrunk_events} events)" if d.shrunk is not None else ""
        lines.append(f"Minimal reproducer{size}:")
        lines.append("")
        lines.append("```")
        lines.append(dumps(repro).rstrip())
        lines.append("```")
        lines.append("")
        herd = _herd_text(repro)
        if herd is not None:
            lines.append(f"In {repro.arch} dialect syntax:")
            lines.append("")
            lines.append("```")
            lines.append(herd.rstrip())
            lines.append("```")
            lines.append("")

    if report.mutants:
        lines.append(f"## Injected mutants ({len(report.mutants)})")
        lines.append("")
        lines.append("| mutant | detected | witnesses | minimal witness |")
        lines.append("|---|---|---|---|")
        for m in report.mutants:
            detected = "yes" if m.detected else "**NO**"
            size = f"{m.min_events} events" if m.min_events else "—"
            lines.append(
                f"| `{m.spec}` | {detected} | {m.witnesses} | {size} |"
            )
        lines.append("")

    if report.errors:
        lines.append(f"## Checker errors ({len(report.errors)})")
        lines.append("")
        for e in report.errors:
            lines.append(f"- `{e.item}` under `{e.checker}`: {e.message}")
        lines.append("")

    return "\n".join(lines)
