"""One seed to reproduce them all.

Every randomized suite in this repository — the equivalence corpus, the
relation-algebra property tests, the differential fuzzer — draws its
randomness from a single integer, ``REPRO_TEST_SEED``.  The default is
fixed, so runs are deterministic out of the box; CI prints the value in
the pytest header, so any failure is reproducible from the log line
alone::

    REPRO_TEST_SEED=20260728 python -m pytest tests/test_equivalence.py

Independent random streams are derived per consumer with
:func:`derive_seed`, so adding a stream never perturbs the others.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["DEFAULT_SEED", "ENV_VAR", "reproducible_seed", "derive_seed"]

#: The fixed default seed (the repository's birthday).
DEFAULT_SEED = 20260728

#: Environment variable consulted by :func:`reproducible_seed`.
ENV_VAR = "REPRO_TEST_SEED"


def reproducible_seed(default: int = DEFAULT_SEED) -> int:
    """The session seed: ``$REPRO_TEST_SEED`` if set, else ``default``."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return default
    try:
        return int(raw, 0)
    except ValueError:
        raise ValueError(
            f"{ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def derive_seed(seed: int, stream: str) -> int:
    """A stable sub-seed for one named random stream.

    Hash-derived (not ``seed + k``), so two consumers can never collide
    by picking adjacent offsets, and renaming a stream is the only way
    to change its randomness.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
