"""Disagreement classification for differential campaigns.

The fuzzer's checkers play different roles, so "the verdicts differ" is
not one condition:

* **model-mismatch** — the native Python model and the ``.cat`` library
  model are two renderings of the *same* definition; any difference, in
  either direction, is a bug in one of them.
* **machine-escape** — an operational machine (or hardware stand-in) is
  an *implementation*: it may show fewer behaviours than its model
  allows (the paper's never-observed Allow tests), but observing what
  the model forbids is a ⊆-violation — the §6.2 RTL-bug shape.
* **enumeration-split** — the constraint-pruned incremental candidate
  search and the brute-force cross-product drive the *same* model; a
  different verdict means an enumeration bug.
* **mutant-disagreement** — an injected weakening fired.  For mutants
  this is the *desired* outcome (detection); the fuzzer tracks them
  separately and fails when a mutant is **not** detected.

Checker roles are inferred from specs: ``cat:``/bare-``.cat`` → cat,
``hw:`` → machine, ``brute:`` → brute, ``mut:`` → mutant; the plain
registry-name spec is the native reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.execution import Execution
from ..litmus.test import LitmusTest
from .generators import FuzzItem

__all__ = [
    "CheckerError",
    "Disagreement",
    "checker_role",
    "classify_matrix",
]


@dataclass
class Disagreement:
    """One classified divergence between two checkers on one test.

    ``shrunk``/``shrunk_test`` are filled in by the shrinker: the
    ⊏-minimal reproducing execution (when one exists) and its litmus
    rendering.
    """

    item: str
    kind: str  # "model-mismatch" | "machine-escape" | "enumeration-split"
    #           | "mutant-disagreement"
    left: str  # checker spec (the native reference)
    right: str  # checker spec (the disagreeing checker)
    left_verdict: bool
    right_verdict: bool
    test: LitmusTest
    source: str = "?"
    origin: Execution | None = None
    shrunk: Execution | None = None
    shrunk_test: LitmusTest | None = None

    @property
    def shrunk_events(self) -> int | None:
        return self.shrunk.n if self.shrunk is not None else None

    def describe(self) -> str:
        tail = ""
        if self.shrunk is not None:
            tail = f" (shrunk to {self.shrunk_events} events)"
        return (
            f"[{self.kind}] {self.item}: {self.left}={self.left_verdict} "
            f"vs {self.right}={self.right_verdict}{tail}"
        )


@dataclass(frozen=True)
class CheckerError:
    """A checker that raised instead of producing a verdict."""

    item: str
    checker: str
    message: str


def checker_role(spec: str) -> str:
    """The differential role a checker spec plays."""
    if spec.startswith("hw:"):
        return "machine"
    if spec.startswith("brute:"):
        return "brute"
    if spec.startswith("mut:"):
        return "mutant"
    from ..models.registry import MODELS

    if spec in MODELS:
        return "native"
    return "cat"


_ROLE_KINDS = {
    "cat": "model-mismatch",
    "machine": "machine-escape",
    "brute": "enumeration-split",
    "mutant": "mutant-disagreement",
}


@dataclass
class _Verdicts:
    """All verdicts collected for one item across campaigns."""

    native: bool | None = None
    by_spec: dict[str, bool] = field(default_factory=dict)


def classify_matrix(
    items: dict[str, FuzzItem],
    cells: dict[tuple[str, str], "object"],
    native_spec: str,
) -> tuple[list[Disagreement], list[CheckerError], int]:
    """Classify every cell of a (merged) campaign verdict matrix.

    Args:
        items: suite items by name.
        cells: ``(item, spec) -> CellResult`` (merged across the
            fuzzer's campaigns).
        native_spec: the reference checker's spec.

    Returns:
        ``(disagreements, errors, unseen_allows)`` where
        ``unseen_allows`` counts machine cells that showed *fewer*
        behaviours than the model allows (informational, not a bug).
    """
    errors: list[CheckerError] = []
    per_item: dict[str, _Verdicts] = {}
    for (name, spec), cell in cells.items():
        if name not in items:
            continue
        if cell.error is not None:
            errors.append(CheckerError(name, spec, cell.error))
            continue
        verdicts = per_item.setdefault(name, _Verdicts())
        if spec == native_spec:
            verdicts.native = cell.verdict
        else:
            verdicts.by_spec[spec] = cell.verdict

    disagreements: list[Disagreement] = []
    unseen_allows = 0
    for name in sorted(per_item):
        verdicts = per_item[name]
        if verdicts.native is None:
            continue  # native errored; already reported
        item = items[name]
        for spec, verdict in sorted(verdicts.by_spec.items()):
            role = checker_role(spec)
            if role == "machine":
                if verdict and not verdicts.native:
                    pass  # ⊆-violation: fall through to record
                else:
                    if verdicts.native and not verdict:
                        unseen_allows += 1
                    continue
            elif verdict == verdicts.native:
                continue
            disagreements.append(
                Disagreement(
                    item=name,
                    kind=_ROLE_KINDS.get(role, "model-mismatch"),
                    left=native_spec,
                    right=spec,
                    left_verdict=verdicts.native,
                    right_verdict=verdict,
                    test=item.test,
                    source=item.source,
                    origin=item.origin,
                )
            )
    return disagreements, errors, unseen_allows
