"""The differential fuzzing loop: generate → campaign → classify → shrink.

:func:`run_fuzz` is the subsystem's entry point (the ``repro fuzz`` CLI
wraps it).  One run:

1. generates the (arch, seed, budget) suite — diy cycles, catalog
   entries and their ⊏-mutations, seeded random programs;
2. sweeps it through the architecture's checkers via the campaign
   engine (so verdicts are cached, parallel, and profiled): the native
   model and the ``.cat`` model over the *whole* suite, the operational
   machine / hardware stand-in over machine-eligible tests, and the
   brute-force ground-truth enumerator over tests small enough to
   cross-product;
3. classifies every divergence (:mod:`~repro.conformance.classify`)
   and delta-debugs each one down the §4.2 weakening order
   (:mod:`~repro.conformance.shrink`);
4. optionally injects mutant models (``mut:<arch>:<axiom>``) and
   verifies each injected weakening is *detected* — the harness's own
   conformance test.

The result is a :class:`FuzzReport`; :mod:`~repro.conformance.report`
renders it as JSONL and markdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.campaign import CampaignResult, run_campaign
from ..engine.checkers import resolve_checker
from ..obs import trace
from ..litmus.program import Fence, Load, Store
from ..litmus.test import LitmusTest
from ..sim.tso import runnable_on_tso
from ..sim.weakmachine import runnable_on
from .budget import FuzzBudget, get_budget
from .classify import CheckerError, Disagreement, classify_matrix
from .generators import (
    DEFAULT_SOURCES,
    FuzzItem,
    estimate_candidates,
    generate_suite,
)
from .mutants import KNOWN_MUTANTS
from .seeds import reproducible_seed
from .shrink import shrink_disagreement

__all__ = ["FuzzReport", "MutantResult", "run_fuzz", "hw_specs_for"]


#: Hardware / operational-machine checker specs per architecture.
HW_SPECS: dict[str, tuple[str, ...]] = {
    "x86": ("hw:x86",),  # exhaustive TSO+HTM machine
    "power": ("hw:power:machine",),  # non-MCA propagation machine
    "armv8": ("hw:armv8:machine",),  # MCA operational machine
    "riscv": ("hw:riscv",),  # MCA operational machine
    "cpp": (),  # no machine: C++ is a language model
}


def hw_specs_for(arch: str) -> tuple[str, ...]:
    """The operational checkers the fuzzer runs for one architecture."""
    return HW_SPECS.get(arch, ())


@dataclass
class MutantResult:
    """Did the fuzzer catch one injected weakening?"""

    spec: str  # "mut:armv8:TxnOrder"
    axiom: str
    detected: bool
    witnesses: int = 0
    first_witness: str | None = None
    min_events: int | None = None  # smallest shrunk reproducer

    def describe(self) -> str:
        if not self.detected:
            return f"{self.spec}: NOT DETECTED"
        tail = (
            f", minimal witness {self.min_events} events"
            if self.min_events is not None
            else ""
        )
        return (
            f"{self.spec}: detected ({self.witnesses} witnesses, "
            f"first {self.first_witness}{tail})"
        )


@dataclass
class FuzzReport:
    """Everything one differential fuzzing run produced."""

    arch: str
    seed: int
    budget: str
    checkers: list[str]
    n_items: int
    by_source: dict[str, int]
    n_cells: int
    cache_hits: int
    disagreements: list[Disagreement]
    errors: list[CheckerError]
    mutants: list[MutantResult]
    unseen_allows: int
    elapsed: float
    campaigns: list[CampaignResult] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        """Clean run: no disagreements, no errors, every mutant caught."""
        return (
            not self.disagreements
            and not self.errors
            and all(m.detected for m in self.mutants)
        )

    def summary(self) -> str:
        lines = [
            f"fuzz {self.arch} seed={self.seed} budget={self.budget}: "
            f"{self.n_items} tests "
            f"({', '.join(f'{n} {s}' for s, n in sorted(self.by_source.items()))}) "
            f"x {len(self.checkers)} checkers = {self.n_cells} cells "
            f"({self.cache_hits} cached) in {self.elapsed:.2f}s",
            f"disagreements: {len(self.disagreements)}, "
            f"checker errors: {len(self.errors)}, "
            f"machine unseen-allows: {self.unseen_allows} (informational)",
        ]
        for d in self.disagreements:
            lines.append("  " + d.describe())
        for e in self.errors:
            lines.append(f"  [error] {e.item} under {e.checker}: {e.message}")
        for m in self.mutants:
            lines.append("  " + m.describe())
        verdict = "CLEAN" if self.ok else "FAILED"
        lines.append(f"=> {verdict}")
        return "\n".join(lines)


def _machine_eligible(test: LitmusTest, arch: str, budget: FuzzBudget) -> bool:
    events = sum(
        isinstance(i, (Load, Store, Fence))
        for thread in test.program.threads
        for i in thread
    )
    if events > budget.machine_events:
        return False
    if arch == "x86":
        return runnable_on_tso(test.program)
    return runnable_on(test.program, arch)


def run_fuzz(
    arch: str,
    seed: int | None = None,
    budget: "str | FuzzBudget" = "small",
    shrink: bool = True,
    mutants: "bool | tuple[str, ...] | list[str]" = (),
    jobs: int = 1,
    cache=None,
    sources: tuple[str, ...] = DEFAULT_SOURCES,
    machine: bool = True,
    brute: bool = True,
) -> FuzzReport:
    """One differential fuzzing run (see the module docstring).

    Args:
        arch: architecture to fuzz (``x86``/``power``/``armv8``/
            ``riscv``/``cpp``).
        seed: randomness seed; ``None`` = ``$REPRO_TEST_SEED``.
        budget: tier name or explicit :class:`FuzzBudget`.
        shrink: delta-debug each disagreement to a minimal reproducer.
        mutants: axiom names to inject as weakened models; ``True`` =
            the architecture's :data:`~repro.conformance.mutants.
            KNOWN_MUTANTS`.
        jobs: campaign worker processes (``1`` = serial).
        cache: a :class:`~repro.engine.cache.ResultCache` (``None``
            disables persistence).
        sources: generator streams to draw from.
        machine: include the operational/hardware checkers.
        brute: include the brute-force ground-truth checker.
    """
    start = time.perf_counter()
    seed = reproducible_seed() if seed is None else seed
    budget = get_budget(budget)
    if mutants is True:
        mutant_axioms = KNOWN_MUTANTS.get(arch, ())
    elif not mutants:
        mutant_axioms = ()
    else:
        mutant_axioms = tuple(mutants)
    mutant_specs = [f"mut:{arch}:{axiom}" for axiom in mutant_axioms]

    items = generate_suite(arch, seed, budget, sources)
    by_name = {item.name: item for item in items}

    native_spec = arch
    main_specs = [native_spec]
    from ..cat.model import CAT_MODEL_FILES

    if arch in CAT_MODEL_FILES:
        main_specs.append(f"cat:{arch}")
    main_specs.extend(mutant_specs)

    campaigns: list[CampaignResult] = []
    cells: dict[tuple[str, str], object] = {}

    main = run_campaign(
        [item.campaign_item() for item in items],
        main_specs,
        jobs=jobs,
        cache=cache,
    )
    campaigns.append(main)
    cells.update(main.cells)

    hw_specs = hw_specs_for(arch) if machine else ()
    if hw_specs:
        eligible = [
            item
            for item in items
            if _machine_eligible(item.test, arch, budget)
        ]
        if eligible:
            hw = run_campaign(
                [item.campaign_item() for item in eligible],
                list(hw_specs),
                jobs=jobs,
                cache=cache,
            )
            campaigns.append(hw)
            cells.update(hw.cells)

    if brute:
        eligible = [
            item
            for item in items
            if estimate_candidates(item.test.program) <= budget.brute_candidates
        ]
        if eligible:
            bf = run_campaign(
                [item.campaign_item() for item in eligible],
                [f"brute:{arch}"],
                jobs=jobs,
                cache=cache,
            )
            campaigns.append(bf)
            cells.update(bf.cells)

    disagreements, errors, unseen_allows = classify_matrix(
        by_name, cells, native_spec
    )

    # Mutant firings are the harness testing itself, not model bugs:
    # split them out of the failure list and summarise per mutant.
    mutant_hits = [d for d in disagreements if d.kind == "mutant-disagreement"]
    disagreements = [
        d for d in disagreements if d.kind != "mutant-disagreement"
    ]

    if shrink:
        for d in disagreements + mutant_hits:
            if trace.ACTIVE is not None:
                with trace.stage("shrink", item=d.item, kind=d.kind):
                    shrink_disagreement(
                        d, resolve_checker(d.left), resolve_checker(d.right)
                    )
            else:
                shrink_disagreement(
                    d, resolve_checker(d.left), resolve_checker(d.right)
                )

    mutant_results = []
    for spec, axiom in zip(mutant_specs, mutant_axioms):
        hits = [d for d in mutant_hits if d.right == spec]
        sizes = [d.shrunk_events for d in hits if d.shrunk_events is not None]
        mutant_results.append(
            MutantResult(
                spec=spec,
                axiom=axiom,
                detected=bool(hits),
                witnesses=len(hits),
                first_witness=hits[0].item if hits else None,
                min_events=min(sizes) if sizes else None,
            )
        )

    return FuzzReport(
        arch=arch,
        seed=seed,
        budget=budget.name,
        checkers=main_specs + list(hw_specs) + ([f"brute:{arch}"] if brute else []),
        n_items=len(items),
        by_source={
            source: sum(1 for item in items if item.source == source)
            for source in {item.source for item in items}
        },
        n_cells=len(cells),
        cache_hits=sum(c.cache_hits for c in campaigns),
        disagreements=disagreements,
        errors=errors,
        mutants=mutant_results,
        unseen_allows=unseen_allows,
        elapsed=time.perf_counter() - start,
        campaigns=campaigns,
    )
