"""Differential conformance fuzzing: cross-checking every oracle.

The repository carries three independent implementations of each
architecture's semantics — the native Python axiomatic models
(:mod:`repro.models`), the ``.cat`` library models evaluated by
:mod:`repro.cat`, and the operational machines of :mod:`repro.sim` —
plus a brute-force candidate enumerator kept as ground truth.  The
paper's central empirical claim is that these agree across thousands of
generated litmus tests; this package checks that claim *continuously*:

* :mod:`~repro.conformance.generators` streams litmus tests from three
  sources — diy critical-cycle enumeration, seeded random program
  generation over the per-architecture vocabularies, and ⊏-mutation of
  catalog entries;
* :mod:`~repro.conformance.fuzzer` runs every test through the
  architecture's checker trio via the campaign engine (cached,
  parallel, profiled) and classifies any disagreement;
* :mod:`~repro.conformance.shrink` delta-debugs each disagreement down
  the paper's §4.2 weakening order to a minimal reproducer;
* :mod:`~repro.conformance.mutants` injects known weakenings (dropped
  axioms, e.g. ARMv8 without TxnOrder — the §6.2 RTL bug) to prove the
  harness detects and shrinks real conformance bugs;
* :mod:`~repro.conformance.golden` pins the catalog verdict matrix as a
  checked-in snapshot.

Entry points: :func:`~repro.conformance.fuzzer.run_fuzz` and the
``repro fuzz`` CLI subcommand.
"""

from .budget import BUDGETS, FuzzBudget, get_budget
from .classify import CheckerError, Disagreement
from .fuzzer import FuzzReport, MutantResult, run_fuzz
from .generators import FuzzItem, generate_suite, random_litmus
from .mutants import KNOWN_MUTANTS, drop_axiom, known_mutant_specs
from .seeds import DEFAULT_SEED, derive_seed, reproducible_seed
from .shrink import shrink_disagreement, witness_execution

__all__ = [
    "BUDGETS",
    "CheckerError",
    "DEFAULT_SEED",
    "Disagreement",
    "FuzzBudget",
    "FuzzItem",
    "FuzzReport",
    "KNOWN_MUTANTS",
    "MutantResult",
    "derive_seed",
    "drop_axiom",
    "generate_suite",
    "get_budget",
    "known_mutant_specs",
    "random_litmus",
    "reproducible_seed",
    "run_fuzz",
    "shrink_disagreement",
    "witness_execution",
]
