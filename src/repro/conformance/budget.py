"""Fuzzing budgets: how much of the test-space one run explores.

A budget bounds every generator and gates the expensive oracles: the
operational machines explore an exponential interleaving space and the
brute-force enumerator a materialised cross-product, so both run only on
tests below their per-budget size caps (larger tests are still
cross-checked native-vs-``.cat``, which scale much further).

``smoke`` is the CI tier — seconds per architecture; ``small`` is the
default interactive tier; ``medium``/``large`` are overnight sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FuzzBudget", "BUDGETS", "get_budget"]


@dataclass(frozen=True)
class FuzzBudget:
    """Bounds for one fuzzing run.

    Attributes:
        name: budget tier name.
        random_tests: number of seeded random programs.
        herd_tests: number of seeded random programs pushed through the
            herd dialect frontend round-trip (render → reparse) before
            checking, so the frontend sits inside the differential
            loop; zero for architectures without a dialect.
        mutation_tests: number of ⊏-mutated catalog tests (the
            unmutated arch-compatible catalog entries are always
            included on top, so mutant detection never depends on the
            seed).
        diy_length: max diy critical-cycle length.
        diy_tests: cap on the (deterministic) diy cycle prefix.
        max_events: instruction budget per random program (all threads).
        max_threads: thread budget per random program.
        max_txns: transaction budget per random program.
        machine_events: operational-machine eligibility — tests with
            more events than this skip the ``hw:`` checkers.
        brute_candidates: brute-force eligibility — tests whose
            *estimated* candidate count exceeds this skip the
            ``brute:`` checker.
    """

    name: str
    diy_tests: int
    random_tests: int
    herd_tests: int
    mutation_tests: int
    diy_length: int
    max_events: int
    max_threads: int
    max_txns: int
    machine_events: int
    brute_candidates: int


BUDGETS: dict[str, FuzzBudget] = {
    budget.name: budget
    for budget in (
        FuzzBudget(
            name="smoke",
            herd_tests=8,
            diy_tests=25,
            random_tests=12,
            mutation_tests=8,
            diy_length=2,
            max_events=5,
            max_threads=2,
            max_txns=1,
            machine_events=5,
            brute_candidates=4_000,
        ),
        FuzzBudget(
            name="small",
            herd_tests=25,
            diy_tests=80,
            random_tests=40,
            mutation_tests=25,
            diy_length=3,
            max_events=6,
            max_threads=3,
            max_txns=2,
            machine_events=6,
            brute_candidates=10_000,
        ),
        FuzzBudget(
            name="medium",
            herd_tests=100,
            diy_tests=300,
            random_tests=200,
            mutation_tests=120,
            diy_length=4,
            max_events=7,
            max_threads=3,
            max_txns=2,
            machine_events=7,
            brute_candidates=40_000,
        ),
        FuzzBudget(
            name="large",
            herd_tests=400,
            diy_tests=1200,
            random_tests=1_000,
            mutation_tests=500,
            diy_length=4,
            max_events=8,
            max_threads=4,
            max_txns=3,
            machine_events=8,
            brute_candidates=100_000,
        ),
    )
}


def get_budget(name: "str | FuzzBudget") -> FuzzBudget:
    """Look a budget tier up by name (instances pass through)."""
    if isinstance(name, FuzzBudget):
        return name
    try:
        return BUDGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown budget {name!r}; known: {', '.join(BUDGETS)}"
        ) from None
