"""The C++ memory model with transactions (paper Fig. 9, section 7).

The baseline is RC11 (Lahav et al. [38]), which the paper builds on
because its fixed SC semantics is what makes compilation to Power sound.
The TM additions implement the paper's own *simplification* of the C++ TM
specification (section 7.2): instead of quantifying over a total order on
transactions, conflicting transactions synchronise in *extended
communication* order::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (po ∪ sw ∪ tsw)⁺

Atomic transactions (``atomic{}``) are tracked via ``stxnat``; they are
strongly isolated *by construction* for race-free programs (Theorem 7.2,
checked in :mod:`repro.metatheory.theorems`).

Race freedom (NoRace) is deliberately *not* part of the consistency
axioms: it is a predicate on whole programs.  Use :meth:`Cpp.race_free`.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["Cpp", "acquire_events", "release_events", "sc_events", "atomic_events"]

_ACQ_MODES = frozenset({Label.ACQ, Label.ACQ_REL, Label.SC})
_REL_MODES = frozenset({Label.REL, Label.ACQ_REL, Label.SC})


def atomic_events(x: "Execution | CandidateAnalysis") -> frozenset[int]:
    """``Ato``: accesses from atomic operations."""
    a = analyze(x)
    return a.memo(
        "cpp.ato",
        lambda: a.labelled(Label.ATO) & a.accesses,
        txn_free=True,
    )


def acquire_events(x: "Execution | CandidateAnalysis") -> frozenset[int]:
    """Events with acquire semantics: acq/acq_rel/sc reads and fences."""
    a = analyze(x)

    def compute() -> frozenset[int]:
        return frozenset(
            i
            for i, e in enumerate(a.events)
            if e.mode in _ACQ_MODES and (e.is_read or e.is_fence)
        )

    return a.memo("cpp.acq", compute, txn_free=True)


def release_events(x: "Execution | CandidateAnalysis") -> frozenset[int]:
    """Events with release semantics: rel/acq_rel/sc writes and fences."""
    a = analyze(x)

    def compute() -> frozenset[int]:
        return frozenset(
            i
            for i, e in enumerate(a.events)
            if e.mode in _REL_MODES and (e.is_write or e.is_fence)
        )

    return a.memo("cpp.rel", compute, txn_free=True)


def sc_events(x: "Execution | CandidateAnalysis") -> frozenset[int]:
    """``SC``: events with memory order seq_cst."""
    a = analyze(x)
    return a.memo(
        "cpp.sc",
        lambda: frozenset(
            i for i, e in enumerate(a.events) if e.mode == Label.SC
        ),
        txn_free=True,
    )


class Cpp(MemoryModel):
    """RC11 plus the transactional extensions of section 7."""

    arch = "cpp"
    #: RC11's HbCom axiom (irreflexive(hb ; eco?)) subsumes SC-per-location
    #: [Lahav et al. 2017], so incoherent candidates are never consistent.
    enforces_coherence = True

    def _sw(self, a: CandidateAnalysis) -> Relation:
        """Synchronises-with, including release sequences and fences
        (transaction-independent, memoized per candidate)."""

        def compute() -> Relation:
            w = a.lift(a.writes)
            w_ato = a.lift(atomic_events(a) & a.writes)
            r_ato = a.lift(atomic_events(a) & a.reads)
            f = a.lift(a.fences)
            rel = a.lift(release_events(a))
            acq = a.lift(acquire_events(a))

            rs = w @ a.po_loc.opt() @ w_ato @ (a.rf_rel @ a.rmw_rel).star()
            return (
                rel
                @ (f @ a.po).opt()
                @ rs
                @ a.rf_rel
                @ r_ato
                @ (a.po @ f).opt()
                @ acq
            )

        return a.memo("cpp.sw", compute, txn_free=True)

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        ecom = a.memo(
            "cpp.ecom",
            lambda: a.com | (a.co_rel @ a.rf_rel),
            txn_free=True,
        )
        tsw = a.weaklift(ecom)
        hb = a.memo(
            "cpp.hb", lambda: (a.po | self._sw(a) | tsw).plus()
        )

        # RC11 psc.
        sc_all = a.lift(sc_events(a))
        sc_fence = a.lift(sc_events(a) & a.fences)
        sb_neq_loc = a.po - a.sloc
        eco = a.com.plus()
        scb = (
            a.po
            | (sb_neq_loc @ hb @ sb_neq_loc)
            | (hb & a.sloc)
            | a.co_rel
            | a.fr
        )
        psc_base = (
            (sc_all | (sc_fence @ hb.opt()))
            @ scb
            @ (sc_all | (hb.opt() @ sc_fence))
        )
        psc_fence = sc_fence @ (hb | (hb @ eco @ hb)) @ sc_fence

        return {
            "hb": hb,
            "hb_com": hb @ a.com.star(),
            "rmw_isol": a.rmw_isol,
            "thin_air": a.po | a.rf_rel,
            "psc": psc_base | psc_fence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("HbCom", "irreflexive", "hb_com"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("NoThinAir", "acyclic", "thin_air"),
            Axiom("SeqCst", "acyclic", "psc"),
        )

    # ------------------------------------------------------------------
    # Race freedom (the NoRace predicate at the bottom of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x: "Execution | CandidateAnalysis") -> Relation:
        """``cnf``: same-location pairs, at least one a write, not both the
        same event."""
        a = analyze(x)
        ww = a.cross(a.writes, a.writes)
        rw = a.cross(a.reads, a.writes)
        wr = a.cross(a.writes, a.reads)
        return ((ww | rw | wr) & a.sloc).remove_diagonal()

    def races(self, x: "Execution | CandidateAnalysis") -> Relation:
        """Conflicting pairs that are neither both atomic nor hb-ordered."""
        a = self._analysis(x)
        ato = atomic_events(a)
        ato_sq = a.cross(ato, ato)
        hb = self.relations(a)["hb"]
        return self.conflicts(a) - ato_sq - (hb | hb.inverse())

    def race_free(self, x: "Execution | CandidateAnalysis") -> bool:
        """The NoRace predicate: no race in this execution."""
        return self.races(x).is_empty()
