"""The C++ memory model with transactions (paper Fig. 9, section 7).

The baseline is RC11 (Lahav et al. [38]), which the paper builds on
because its fixed SC semantics is what makes compilation to Power sound.
The TM additions implement the paper's own *simplification* of the C++ TM
specification (section 7.2): instead of quantifying over a total order on
transactions, conflicting transactions synchronise in *extended
communication* order::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (po ∪ sw ∪ tsw)⁺

Atomic transactions (``atomic{}``) are tracked via ``stxnat``; they are
strongly isolated *by construction* for race-free programs (Theorem 7.2,
checked in :mod:`repro.metatheory.theorems`).

Race freedom (NoRace) is deliberately *not* part of the consistency
axioms: it is a predicate on whole programs.  Use :meth:`Cpp.race_free`.

Declared as IR expressions; the event-set helpers (``atomic_events``
etc.) keep their analysis-memoized Python forms for the metatheory.
"""

from __future__ import annotations

from ..core.analysis import analyze
from ..core.events import Label
from ..core.relation import Relation
from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.eval import evaluate
from ..ir.model import IRAxiom, IRDefinition, IRModel
from ..ir.nodes import Node

__all__ = ["Cpp", "acquire_events", "release_events", "sc_events", "atomic_events"]

_ACQ_MODES = frozenset({Label.ACQ, Label.ACQ_REL, Label.SC})
_REL_MODES = frozenset({Label.REL, Label.ACQ_REL, Label.SC})


def atomic_events(x) -> frozenset[int]:
    """``Ato``: accesses from atomic operations."""
    a = analyze(x)
    return a.memo(
        "cpp.ato",
        lambda: a.labelled(Label.ATO) & a.accesses,
        txn_free=True,
    )


def acquire_events(x) -> frozenset[int]:
    """Events with acquire semantics: acq/acq_rel/sc reads and fences."""
    a = analyze(x)

    def compute() -> frozenset[int]:
        return frozenset(
            i
            for i, e in enumerate(a.events)
            if e.mode in _ACQ_MODES and (e.is_read or e.is_fence)
        )

    return a.memo("cpp.acq", compute, txn_free=True)


def release_events(x) -> frozenset[int]:
    """Events with release semantics: rel/acq_rel/sc writes and fences."""
    a = analyze(x)

    def compute() -> frozenset[int]:
        return frozenset(
            i
            for i, e in enumerate(a.events)
            if e.mode in _REL_MODES and (e.is_write or e.is_fence)
        )

    return a.memo("cpp.rel", compute, txn_free=True)


def sc_events(x) -> frozenset[int]:
    """``SC``: events with memory order seq_cst."""
    a = analyze(x)
    return a.memo(
        "cpp.sc",
        lambda: frozenset(
            i for i, e in enumerate(a.events) if e.mode == Label.SC
        ),
        txn_free=True,
    )


def _build() -> tuple[IRDefinition, Node, Node]:
    """The RC11+TM definition plus the ``cnf``/``race`` nodes."""
    ato = N.sinter(N.bset("ATO"), P.M)
    acq_evts = N.sinter(
        N.sunion(N.bset("ACQ"), N.bset("ACQREL"), N.bset("SC")),
        N.sunion(P.R, P.F),
    )
    rel_evts = N.sinter(
        N.sunion(N.bset("REL"), N.bset("ACQREL"), N.bset("SC")),
        N.sunion(P.W, P.F),
    )
    sc_all = N.bset("SC")
    sc_fence = N.sinter(sc_all, P.F)

    # Release sequences and synchronises-with.
    rs = (
        N.lift(P.W)
        @ P.po_loc.opt()
        @ N.lift(N.sinter(P.W, ato))
        @ (P.rf @ P.rmw).star()
    )
    sw = (
        N.lift(rel_evts)
        @ (N.lift(P.F) @ P.po).opt()
        @ rs
        @ P.rf
        @ N.lift(N.sinter(P.R, ato))
        @ (P.po @ N.lift(P.F)).opt()
        @ N.lift(acq_evts)
    )

    # Extended communication and the transactional synchronises-with.
    ecom = P.com | (P.co @ P.rf)
    tsw = P.weaklift(ecom)
    hb = (P.po | sw | tsw).plus()

    # RC11 psc.
    sb_neq_loc = P.po - P.loc
    eco = P.com.plus()
    scb = (
        P.po
        | (sb_neq_loc @ hb @ sb_neq_loc)
        | (hb & P.loc)
        | P.co
        | P.fr
    )
    psc_base = (
        (N.lift(sc_all) | (N.lift(sc_fence) @ hb.opt()))
        @ scb
        @ (N.lift(sc_all) | (hb.opt() @ N.lift(sc_fence)))
    )
    psc_fence = N.lift(sc_fence) @ (hb | (hb @ eco @ hb)) @ N.lift(sc_fence)

    definition = IRDefinition(
        (
            IRAxiom("HbCom", "irreflexive", "hb_com", hb @ P.com.star()),
            IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
            IRAxiom("NoThinAir", "acyclic", "thin_air", P.po | P.rf),
            IRAxiom("SeqCst", "acyclic", "psc", psc_base | psc_fence),
        ),
        extras=(("hb", hb),),
    )

    # The NoRace predicate at the bottom of Fig. 9: conflicting pairs
    # that are neither both atomic nor hb-ordered.
    cnf = N.diff(
        N.inter(
            N.union(
                N.cross(P.W, P.W), N.cross(P.R, P.W), N.cross(P.W, P.R)
            ),
            P.loc,
        ),
        P.id_,
    )
    race = N.diff(N.diff(cnf, N.cross(ato, ato)), hb | hb.inverse())
    return definition, cnf, race


_DEFINITION, _CNF, _RACE = _build()


class Cpp(IRModel):
    """RC11 plus the transactional extensions of section 7."""

    arch = "cpp"
    #: RC11's HbCom axiom (irreflexive(hb ; eco?)) subsumes SC-per-location
    #: [Lahav et al. 2017], so incoherent candidates are never consistent.
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return _DEFINITION

    # ------------------------------------------------------------------
    # Race freedom (the NoRace predicate at the bottom of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x) -> Relation:
        """``cnf``: same-location pairs, at least one a write, not both the
        same event."""
        return evaluate(_CNF, analyze(x))

    def races(self, x) -> Relation:
        """Conflicting pairs that are neither both atomic nor hb-ordered."""
        return evaluate(_RACE, self._analysis(x))

    def race_free(self, x) -> bool:
        """The NoRace predicate: no race in this execution."""
        return self.races(x).is_empty()
