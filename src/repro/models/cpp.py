"""The C++ memory model with transactions (paper Fig. 9, section 7).

The baseline is RC11 (Lahav et al. [38]), which the paper builds on
because its fixed SC semantics is what makes compilation to Power sound.
The TM additions implement the paper's own *simplification* of the C++ TM
specification (section 7.2): instead of quantifying over a total order on
transactions, conflicting transactions synchronise in *extended
communication* order::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (po ∪ sw ∪ tsw)⁺

Atomic transactions (``atomic{}``) are tracked via ``stxnat``; they are
strongly isolated *by construction* for race-free programs (Theorem 7.2,
checked in :mod:`repro.metatheory.theorems`).

Race freedom (NoRace) is deliberately *not* part of the consistency
axioms: it is a predicate on whole programs.  Use :meth:`Cpp.race_free`.
"""

from __future__ import annotations

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import weaklift
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["Cpp", "acquire_events", "release_events", "sc_events", "atomic_events"]

_ACQ_MODES = frozenset({Label.ACQ, Label.ACQ_REL, Label.SC})
_REL_MODES = frozenset({Label.REL, Label.ACQ_REL, Label.SC})


def atomic_events(x: Execution) -> frozenset[int]:
    """``Ato``: accesses from atomic operations."""
    return frozenset(
        i for i in x.accesses if x.events[i].has(Label.ATO)
    )


def acquire_events(x: Execution) -> frozenset[int]:
    """Events with acquire semantics: acq/acq_rel/sc reads and fences."""
    out = set()
    for i, e in enumerate(x.events):
        if e.mode in _ACQ_MODES and (e.is_read or e.is_fence):
            out.add(i)
    return frozenset(out)


def release_events(x: Execution) -> frozenset[int]:
    """Events with release semantics: rel/acq_rel/sc writes and fences."""
    out = set()
    for i, e in enumerate(x.events):
        if e.mode in _REL_MODES and (e.is_write or e.is_fence):
            out.add(i)
    return frozenset(out)


def sc_events(x: Execution) -> frozenset[int]:
    """``SC``: events with memory order seq_cst."""
    return frozenset(i for i, e in enumerate(x.events) if e.mode == Label.SC)


class Cpp(MemoryModel):
    """RC11 plus the transactional extensions of section 7."""

    arch = "cpp"

    def _sw(self, x: Execution) -> Relation:
        """Synchronises-with, including release sequences and fences."""
        n = x.n
        w = Relation.lift(n, x.writes)
        w_ato = Relation.lift(n, atomic_events(x) & x.writes)
        r_ato = Relation.lift(n, atomic_events(x) & x.reads)
        f = Relation.lift(n, x.fences)
        rel = Relation.lift(n, release_events(x))
        acq = Relation.lift(n, acquire_events(x))

        rs = w @ x.po_loc.opt() @ w_ato @ (x.rf_rel @ x.rmw_rel).star()
        return (
            rel
            @ (f @ x.po).opt()
            @ rs
            @ x.rf_rel
            @ r_ato
            @ (x.po @ f).opt()
            @ acq
        )

    def relations(self, x: Execution) -> DerivedRelations:
        n = x.n
        ecom = x.com | (x.co_rel @ x.rf_rel)
        tsw = weaklift(ecom, x.stxn)
        hb = (x.po | self._sw(x) | tsw).plus()

        # RC11 psc.
        sc_all = Relation.lift(n, sc_events(x))
        sc_fence = Relation.lift(n, sc_events(x) & x.fences)
        sb_neq_loc = x.po - x.sloc
        eco = x.com.plus()
        scb = (
            x.po
            | (sb_neq_loc @ hb @ sb_neq_loc)
            | (hb & x.sloc)
            | x.co_rel
            | x.fr
        )
        psc_base = (
            (sc_all | (sc_fence @ hb.opt()))
            @ scb
            @ (sc_all | (hb.opt() @ sc_fence))
        )
        psc_fence = sc_fence @ (hb | (hb @ eco @ hb)) @ sc_fence

        return {
            "hb": hb,
            "hb_com": hb @ x.com.star(),
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "thin_air": x.po | x.rf_rel,
            "psc": psc_base | psc_fence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("HbCom", "irreflexive", "hb_com"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("NoThinAir", "acyclic", "thin_air"),
            Axiom("SeqCst", "acyclic", "psc"),
        )

    # ------------------------------------------------------------------
    # Race freedom (the NoRace predicate at the bottom of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x: Execution) -> Relation:
        """``cnf``: same-location pairs, at least one a write, not both the
        same event."""
        n = x.n
        ww = Relation.cross(n, x.writes, x.writes)
        rw = Relation.cross(n, x.reads, x.writes)
        wr = Relation.cross(n, x.writes, x.reads)
        return ((ww | rw | wr) & x.sloc).remove_diagonal()

    def races(self, x: Execution) -> Relation:
        """Conflicting pairs that are neither both atomic nor hb-ordered."""
        x = self._effective(x)
        ato = atomic_events(x)
        ato_sq = Relation.cross(x.n, ato, ato)
        hb = self.relations(x)["hb"]
        return self.conflicts(x) - ato_sq - (hb | hb.inverse())

    def race_free(self, x: Execution) -> bool:
        """The NoRace predicate: no race in this execution."""
        return self.races(x).is_empty()
