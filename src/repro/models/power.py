"""The Power memory model with HTM (paper Fig. 6, section 5).

The baseline follows the herding-cats Power model of Alglave et al. [5]:
``ppo`` is their mutually-recursive ii/ic/ci/cc fixpoint (the paper elides
it, Fig. 6 says "(preserved program order, elided)"), the ``fence``
relation combines ``sync``/``lwsync``, and the Propagation/Observation
axioms govern write propagation in a non-multicopy-atomic machine.

The highlighted TM additions (all implemented below):

* StrongIsol — transactions "appear atomic with respect to both
  transactional and non-transactional accesses" (Power ISA 5.1);
* ``tfence`` — cumulative barriers created by successful ``tbegin``/
  ``tend`` (Power ISA 1.8), added alongside ``sync``;
* TxnOrder — ``hb`` must not cycle through transactions;
* ``tprop1`` — the "integrated memory barrier": writes observed by a
  transaction propagate before the transaction's own writes
  (rules out execution (1) of section 5.2);
* ``tprop2`` — transactional writes are multicopy-atomic
  (rules out execution (2));
* ``thb`` — transactions serialise in an order no thread can contradict
  (rules out the IRIW-style execution (3)), folded into ``hb`` via
  ``weaklift`` so the serialisation order need not be constructed;
* TxnCancelsRMW — an RMW straddling a transaction boundary always fails.

The ii/ic/ci/cc fixpoint is a single IR ``fix`` node — the same node
``powerppo.cat`` compiles to — so Power, Dongol and both ``.cat`` twins
share one fixpoint computation per candidate.
"""

from __future__ import annotations

from ..core.relation import Relation
from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.eval import evaluate
from ..ir.model import IRAxiom, IRDefinition, IRModel
from ..ir.nodes import Node

__all__ = ["Power", "power_ppo", "power_ppo_node", "power_fence_base"]


def _build_ppo() -> Node:
    """Preserved program order: the herding-cats ii/ic/ci/cc fixpoint.

    ::

        ii0 = addr | data | rdw | rfi
        ci0 = ctrl_isync | detour
        cc0 = addr | data | po_loc | ctrl | addr;po
        ii  = ii0 | ci | ic;ci | ii;ii
        ic  = ii | cc | ic;cc | ii;ic      (ic0 is empty)
        ci  = ci0 | ci;ii | cc;ci
        cc  = cc0 | ci | ci;ic | cc;cc
        ppo = (R×R ∩ ii) | (R×W ∩ ic)
    """
    dd = P.addr | P.data
    rdw = P.po_loc & (P.fre @ P.rfe)
    detour = P.po_loc & (P.coe @ P.rfe)
    isync = N.lift(N.sinter(N.bset("ISYNC"), P.F))
    ctrl_isync = (P.ctrl @ isync @ P.po) | (P.ctrl & P.fencerel("ISYNC"))

    ii0 = dd | rdw | P.rfi
    ci0 = ctrl_isync | detour
    cc0 = dd | P.po_loc | P.ctrl | (P.addr @ P.po)

    ii, ic, ci, cc = N.var(0), N.var(1), N.var(2), N.var(3)
    bodies = (
        ii0 | ci | (ic @ ci) | (ii @ ii),
        ii | cc | (ic @ cc) | (ii @ ic),
        ci0 | (ci @ ii) | (cc @ ci),
        cc0 | ci | (ci @ ic) | (cc @ cc),
    )
    fii = N.fix(bodies, 0)
    fic = N.fix(bodies, 1)
    return (N.cross(P.R, P.R) & fii) | (N.cross(P.R, P.W) & fic)


#: The interned ppo node (shared with dongol and the .cat library).
_PPO = _build_ppo()


def power_ppo_node() -> Node:
    """The IR node for Power preserved program order."""
    return _PPO


def power_ppo(x) -> Relation:
    """Preserved program order of ``x`` (execution or analysis).

    Evaluated through the shared IR engine: the Power and Dongol models
    (native and ``.cat``, and their ``tm=False`` baselines) all read the
    same memoized fixpoint per candidate.
    """
    return evaluate(_PPO, x)


def power_fence_base(with_tfence: bool) -> Node:
    """``sync ∪ tfence? ∪ (lwsync \\ W×R)`` — shared with dongol."""
    sync = P.fencerel("SYNC")
    lwsync = P.fencerel("LWSYNC")
    parts = [sync, lwsync - N.cross(P.W, P.R)]
    if with_tfence:
        parts.append(P.tfence)
    return N.union(*parts)


def _define_power() -> IRDefinition:
    writes = N.lift(P.W)
    sync = P.fencerel("SYNC")

    fence = power_fence_base(with_tfence=True)
    ihb = _PPO | fence

    frecoe = P.fre | P.coe
    # thb: chains of ihb and external communication, excluding
    # (fre|coe);rfe sub-chains that end mid-chain (they give no
    # ordering on a non-multicopy-atomic machine).
    thb = (
        (P.rfe | (frecoe.star() @ ihb)).star()
        @ frecoe.star()
        @ P.rfe.opt()
    )
    hb = (P.rfe.opt() @ ihb @ P.rfe.opt()) | P.weaklift(thb)
    hb_star = hb.star()

    efence = P.rfe.opt() @ fence @ P.rfe.opt()
    prop1 = writes @ efence @ hb_star @ writes
    prop2 = (
        P.come.star() @ efence.star() @ hb_star @ (sync | P.tfence) @ hb_star
    )
    tprop1 = P.rfe @ P.stxn @ writes
    tprop2 = P.stxn @ P.rfe
    prop = prop1 | prop2 | tprop1 | tprop2

    return IRDefinition(
        (
            IRAxiom("Coherence", "acyclic", "coherence", P.coherence),
            IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
            IRAxiom("Order", "acyclic", "hb", hb),
            IRAxiom("Propagation", "acyclic", "propagation", P.co | prop),
            IRAxiom(
                "Observation", "irreflexive", "observation",
                P.fre @ prop @ hb_star,
            ),
            IRAxiom(
                "StrongIsol", "acyclic", "strong_isol", P.stronglift(P.com)
            ),
            IRAxiom("TxnOrder", "acyclic", "txn_order", P.stronglift(hb)),
            IRAxiom(
                "TxnCancelsRMW", "empty", "txn_cancels_rmw",
                P.rmw & P.tfence,
            ),
        )
    )


class Power(IRModel):
    """Power with the ISA 3.0 transactional-memory facility."""

    arch = "power"
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return _define_power()
