"""The Power memory model with HTM (paper Fig. 6, section 5).

The baseline follows the herding-cats Power model of Alglave et al. [5]:
``ppo`` is their mutually-recursive ii/ic/ci/cc fixpoint (the paper elides
it, Fig. 6 says "(preserved program order, elided)"), the ``fence``
relation combines ``sync``/``lwsync``, and the Propagation/Observation
axioms govern write propagation in a non-multicopy-atomic machine.

The highlighted TM additions (all implemented below):

* StrongIsol — transactions "appear atomic with respect to both
  transactional and non-transactional accesses" (Power ISA 5.1);
* ``tfence`` — cumulative barriers created by successful ``tbegin``/
  ``tend`` (Power ISA 1.8), added alongside ``sync``;
* TxnOrder — ``hb`` must not cycle through transactions;
* ``tprop1`` — the "integrated memory barrier": writes observed by a
  transaction propagate before the transaction's own writes
  (rules out execution (1) of section 5.2);
* ``tprop2`` — transactional writes are multicopy-atomic
  (rules out execution (2));
* ``thb`` — transactions serialise in an order no thread can contradict
  (rules out the IRIW-style execution (3)), folded into ``hb`` via
  ``weaklift`` so the serialisation order need not be constructed;
* TxnCancelsRMW — an RMW straddling a transaction boundary always fails.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["Power", "power_ppo"]


def power_ppo(x: "Execution | CandidateAnalysis") -> Relation:
    """Preserved program order: the herding-cats ii/ic/ci/cc fixpoint.

    ::

        ii0 = addr | data | rdw | rfi
        ci0 = ctrl_isync | detour
        cc0 = addr | data | po_loc | ctrl | addr;po
        ii  = ii0 | ci | ic;ci | ii;ii
        ic  = ii | cc | ic;cc | ii;ic      (ic0 is empty)
        ci  = ci0 | ci;ii | cc;ci
        cc  = cc0 | ci | ci;ic | cc;cc
        ppo = (R×R ∩ ii) | (R×W ∩ ic)

    The fixpoint is transaction-independent and memoized on the shared
    candidate analysis: the Power and Dongol models (and their
    ``tm=False`` baselines) compute it once per candidate.
    """
    a = analyze(x)
    return a.memo("power.ppo", lambda: _power_ppo(a), txn_free=True)


def _power_ppo(a: CandidateAnalysis) -> Relation:
    n = a.n
    dd = a.addr_rel | a.data_rel
    po = a.po
    rdw = a.po_loc & (a.fre @ a.rfe)
    detour = a.po_loc & (a.coe @ a.rfe)
    isync_events = [
        i for i in a.fences if a.events[i].has(Label.ISYNC)
    ]
    ctrl_isync = (
        a.ctrl_rel.restrict(range(n), isync_events) @ po
    ) | (a.ctrl_rel & a.fence_rel(Label.ISYNC))

    ii0 = dd | rdw | a.rfi
    ci0 = ctrl_isync | detour
    cc0 = dd | a.po_loc | a.ctrl_rel | (a.addr_rel @ po)

    empty = Relation.empty(n)
    ii, ic, ci, cc = ii0, empty, ci0, cc0
    while True:
        new_ii = ii0 | ci | (ic @ ci) | (ii @ ii)
        new_ic = ii | cc | (ic @ cc) | (ii @ ic)
        new_ci = ci0 | (ci @ ii) | (cc @ ci)
        new_cc = cc0 | ci | (ci @ ic) | (cc @ cc)
        if (new_ii, new_ic, new_ci, new_cc) == (ii, ic, ci, cc):
            break
        ii, ic, ci, cc = new_ii, new_ic, new_ci, new_cc

    rr = a.cross(a.reads, a.reads)
    rw = a.cross(a.reads, a.writes)
    return (rr & ii) | (rw & ic)


class Power(MemoryModel):
    """Power with the ISA 3.0 transactional-memory facility."""

    arch = "power"
    enforces_coherence = True

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        writes = a.lift(a.writes)

        ppo = power_ppo(a)
        sync = a.fence_rel(Label.SYNC)
        lwsync = a.fence_rel(Label.LWSYNC)
        wr = a.cross(a.writes, a.reads)
        tfence = a.tfence

        fence = sync | tfence | (lwsync - wr)
        ihb = ppo | fence

        frecoe = a.fre | a.coe
        # thb: chains of ihb and external communication, excluding
        # (fre|coe);rfe sub-chains that end mid-chain (they give no
        # ordering on a non-multicopy-atomic machine).
        thb = (
            (a.rfe | (frecoe.star() @ ihb)).star()
            @ frecoe.star()
            @ a.rfe.opt()
        )
        hb = (a.rfe.opt() @ ihb @ a.rfe.opt()) | a.weaklift(thb)
        hb_star = hb.star()

        efence = a.rfe.opt() @ fence @ a.rfe.opt()
        prop1 = writes @ efence @ hb_star @ writes
        prop2 = a.come.star() @ efence.star() @ hb_star @ (sync | tfence) @ hb_star
        tprop1 = a.rfe @ a.stxn @ writes
        tprop2 = a.stxn @ a.rfe
        prop = prop1 | prop2 | tprop1 | tprop2

        return {
            "coherence": a.coherence,
            "rmw_isol": a.rmw_isol,
            "hb": hb,
            "propagation": a.co_rel | prop,
            "observation": a.fre @ prop @ hb_star,
            "strong_isol": a.stronglift(a.com),
            "txn_order": a.stronglift(hb),
            "txn_cancels_rmw": a.rmw_rel & a.tfence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
            Axiom("Propagation", "acyclic", "propagation"),
            Axiom("Observation", "irreflexive", "observation"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
            Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"),
        )
