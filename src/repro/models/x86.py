"""The x86 memory model with TSX transactions (paper Fig. 5, section 5).

The baseline is the axiomatic TSO formulation of Alglave et al. [5]; the
highlighted TM additions are:

* ``tfence`` — implicit fences at successful-transaction boundaries
  ("a successfully committed [transaction] has the same ordering semantics
  as a LOCK prefixed instruction", Intel SDM 16.3.6);
* StrongIsol — TSX detects conflicts against *any* other logical
  processor, transactional or not (SDM 16.2);
* TxnOrder — transactions appear to execute instantaneously, so ``hb``
  must not cycle through them.

The model is declared as IR expressions (:mod:`repro.ir`): the nodes
below intern to the same DAG as the compiled ``x86tm.cat``, so the two
checker families share every evaluation per candidate.
"""

from __future__ import annotations

from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.model import IRAxiom, IRDefinition, IRModel

__all__ = ["X86"]


def _build():
    # ppo: TSO preserves all of po except W->R pairs.
    ppo = (
        N.cross(P.W, P.W) | N.cross(P.R, P.W) | N.cross(P.R, P.R)
    ) & P.po

    mfence = P.fencerel("MFENCE")

    # LOCK'd instructions (the two halves of atomic RMWs) imply fencing
    # on both sides; successful transaction boundaries do the same.
    locked = N.domain(P.rmw) | N.range_(P.rmw)
    implied = (N.lift(locked) @ P.po) | (P.po @ N.lift(locked)) | P.tfence

    hb = mfence | ppo | implied | P.rfe | P.fr | P.co
    return hb


_HB = _build()


class X86(IRModel):
    """x86-TSO with Intel TSX transactions."""

    arch = "x86"
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return IRDefinition(
            (
                IRAxiom("Coherence", "acyclic", "coherence", P.coherence),
                IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
                IRAxiom("Order", "acyclic", "hb", _HB),
                IRAxiom(
                    "StrongIsol", "acyclic", "strong_isol",
                    P.stronglift(P.com),
                ),
                IRAxiom(
                    "TxnOrder", "acyclic", "txn_order", P.stronglift(_HB)
                ),
            )
        )
