"""The x86 memory model with TSX transactions (paper Fig. 5, section 5).

The baseline is the axiomatic TSO formulation of Alglave et al. [5]; the
highlighted TM additions are:

* ``tfence`` — implicit fences at successful-transaction boundaries
  ("a successfully committed [transaction] has the same ordering semantics
  as a LOCK prefixed instruction", Intel SDM 16.3.6);
* StrongIsol — TSX detects conflicts against *any* other logical
  processor, transactional or not (SDM 16.2);
* TxnOrder — transactions appear to execute instantaneously, so ``hb``
  must not cycle through them.
"""

from __future__ import annotations

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["X86"]


class X86(MemoryModel):
    """x86-TSO with Intel TSX transactions."""

    arch = "x86"

    def relations(self, x: Execution) -> DerivedRelations:
        n = x.n
        reads = Relation.lift(n, x.reads)
        writes = Relation.lift(n, x.writes)

        # ppo: TSO preserves all of po except W->R pairs.
        ww = Relation.cross(n, x.writes, x.writes)
        rw = Relation.cross(n, x.reads, x.writes)
        rr = Relation.cross(n, x.reads, x.reads)
        ppo = (ww | rw | rr) & x.po

        mfence = x.fence_rel(Label.MFENCE)

        tfence = x.tfence

        # LOCK'd instructions (the two halves of atomic RMWs) imply
        # fencing on both sides.
        locked = x.rmw_rel.domain() | x.rmw_rel.codomain()
        lift_locked = Relation.lift(n, locked)
        implied = (lift_locked @ x.po) | (x.po @ lift_locked) | tfence

        hb = mfence | ppo | implied | x.rfe | x.fr | x.co_rel

        return {
            "coherence": x.po_loc | x.com,
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "hb": hb,
            "strong_isol": stronglift(x.com, x.stxn),
            "txn_order": stronglift(hb, x.stxn),
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
        )
