"""The x86 memory model with TSX transactions (paper Fig. 5, section 5).

The baseline is the axiomatic TSO formulation of Alglave et al. [5]; the
highlighted TM additions are:

* ``tfence`` — implicit fences at successful-transaction boundaries
  ("a successfully committed [transaction] has the same ordering semantics
  as a LOCK prefixed instruction", Intel SDM 16.3.6);
* StrongIsol — TSX detects conflicts against *any* other logical
  processor, transactional or not (SDM 16.2);
* TxnOrder — transactions appear to execute instantaneously, so ``hb``
  must not cycle through them.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["X86"]


def _tso_base(a: CandidateAnalysis):
    """The transaction-independent TSO skeleton: ``ppo`` plus the fences
    implied by mfence and LOCK'd RMW halves (shared by tm sweeps)."""

    def compute():
        # ppo: TSO preserves all of po except W->R pairs.
        ww = a.cross(a.writes, a.writes)
        rw = a.cross(a.reads, a.writes)
        rr = a.cross(a.reads, a.reads)
        ppo = (ww | rw | rr) & a.po

        mfence = a.fence_rel(Label.MFENCE)

        # LOCK'd instructions (the two halves of atomic RMWs) imply
        # fencing on both sides.
        locked = a.rmw_rel.domain() | a.rmw_rel.codomain()
        lift_locked = a.lift(locked)
        implied = (lift_locked @ a.po) | (a.po @ lift_locked)

        return mfence | ppo | implied

    return a.memo("x86.base", compute, txn_free=True)


class X86(MemoryModel):
    """x86-TSO with Intel TSX transactions."""

    arch = "x86"
    enforces_coherence = True

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        hb = _tso_base(a) | a.tfence | a.rfe | a.fr | a.co_rel
        return {
            "coherence": a.coherence,
            "rmw_isol": a.rmw_isol,
            "hb": hb,
            "strong_isol": a.stronglift(a.com),
            "txn_order": a.stronglift(hb),
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
        )
