"""Weak and strong isolation as standalone checks (paper section 3.3).

These are properties an execution either has or violates, independent of
any architecture model::

    WeakIsol:   acyclic(weaklift(com, stxn))
    StrongIsol: acyclic(stronglift(com, stxn))

Strong isolation also protects transactions from *non-transactional*
interference; the four 3-event discriminating shapes are Fig. 3 of the
paper (and live in :mod:`repro.catalog.figures`).
"""

from __future__ import annotations

from ..core.execution import Execution
from ..core.lifting import stronglift, weaklift
from ..core.relation import Relation

__all__ = [
    "weak_isolation_rel",
    "strong_isolation_rel",
    "weakly_isolated",
    "strongly_isolated",
]


def weak_isolation_rel(x: Execution) -> Relation:
    """The relation whose acyclicity is the WeakIsol axiom."""
    return weaklift(x.com, x.stxn)


def strong_isolation_rel(x: Execution) -> Relation:
    """The relation whose acyclicity is the StrongIsol axiom."""
    return stronglift(x.com, x.stxn)


def weakly_isolated(x: Execution) -> bool:
    """True iff the execution satisfies WeakIsol."""
    return weak_isolation_rel(x).is_acyclic()


def strongly_isolated(x: Execution) -> bool:
    """True iff the execution satisfies StrongIsol."""
    return strong_isolation_rel(x).is_acyclic()
