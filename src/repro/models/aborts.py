"""Race semantics for aborted C++ transactions (paper Remarks 3.1, 7.1).

The C++ TM specification "clarifies that although events in an
unsuccessful transaction are unobservable, they can still participate in
races" (Remark 7.1).  The paper's execution framework handles this
automatically for transactions that *can* succeed — "the race will be
detected in the case where the transaction succeeds" — but leaves
transactions that *never* succeed, such as ::

    atomic{ x = 1; abort(); }   ||   atomic_store(&x, 2);

as future work.  This module carries that future work out.

The key observation in the remark is that the racing events are the ones
the transaction executes *before* aborting.  So the race semantics of a
program with unconditional ``abort()`` calls is obtained by checking the
*truncated-success* variant: each always-aborting transaction is
replaced by a transaction containing exactly its pre-abort prefix, which
can commit.  If a consistent execution of any truncation choice is racy,
the original program is racy — the rollback does not erase the race.

:func:`truncate_aborts` performs the transformation, and
:func:`program_racy` implements the full check.  The regular candidate
expansion (:mod:`repro.litmus.candidates`) is unchanged: for
reachability/outcome questions, always-aborting transactions simply
never commit.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..litmus.candidates import candidate_executions
from ..litmus.program import Instruction, Program, TxAbort, TxBegin, TxEnd
from .cpp import Cpp

__all__ = ["truncate_aborts", "abort_variants", "program_racy"]


def _truncate_thread(
    thread: tuple[Instruction, ...], keep_abort: dict[int, bool]
) -> tuple[Instruction, ...]:
    """Drop the suffix of every aborting transaction from its
    (chosen-kept) unconditional abort point to its ``TxEnd``.

    ``keep_abort`` maps the index of each *conditional* abort to whether
    this variant assumes it fires.  Unconditional aborts always fire.
    """
    out: list[Instruction] = []
    in_txn = False
    dropping = False
    cond_counter = -1
    for instr in thread:
        if isinstance(instr, TxBegin):
            in_txn = True
            dropping = False
            out.append(instr)
            continue
        if isinstance(instr, TxEnd):
            in_txn = False
            dropping = False
            out.append(instr)
            continue
        if dropping:
            continue
        if isinstance(instr, TxAbort) and in_txn:
            fires = True
            if instr.reg is not None:
                cond_counter += 1
                fires = keep_abort.get(cond_counter, False)
            if fires:
                dropping = True
                continue  # cut here: the suffix rolls back
            # A conditional abort assumed NOT to fire stays in place: the
            # candidate expansion then enforces that its register read
            # zero, keeping this variant exact.  (The firing direction
            # over-approximates — the read-nonzero requirement is
            # dropped — which can only add races for contrived
            # conditions; unconditional aborts, the Remark 7.1 case, are
            # exact.)
            out.append(instr)
            continue
        out.append(instr)
    return tuple(out)


def _count_conditional_aborts(thread: tuple[Instruction, ...]) -> int:
    return sum(
        1
        for instr in thread
        if isinstance(instr, TxAbort) and instr.reg is not None
    )


def truncate_aborts(program: Program) -> Program:
    """The truncated-success variant with every abort firing.

    Every transaction is cut at its first abort point (conditional or
    not); the resulting transactions can commit, exposing the pre-abort
    events to race detection.
    """
    threads = []
    for thread in program.threads:
        n_cond = _count_conditional_aborts(thread)
        keep = {i: True for i in range(n_cond)}
        threads.append(_truncate_thread(thread, keep))
    return Program(tuple(threads))


def abort_variants(program: Program) -> Iterator[Program]:
    """All truncation variants of ``program``.

    Unconditional aborts always fire; each conditional abort
    independently fires or not (whether it *can* fire in a consistent
    execution is decided downstream by the candidate expansion, which
    knows the register values).
    """
    counts = [_count_conditional_aborts(thread) for thread in program.threads]
    spaces = [list(itertools.product([True, False], repeat=c)) for c in counts]
    for choice in itertools.product(*spaces):
        threads = tuple(
            _truncate_thread(thread, dict(enumerate(fires)))
            for thread, fires in zip(program.threads, choice)
        )
        yield Program(threads)


def program_racy(program: Program, model: Cpp | None = None) -> bool:
    """Is the program racy under the C++ TM race semantics?

    A program is racy iff *some* consistent execution of some abort
    variant has a data race (racy programs are undefined, so one racy
    execution suffices).  For programs without ``TxAbort`` this
    coincides with checking the ordinary candidate executions.
    """
    model = model or Cpp()
    for variant in abort_variants(program):
        for candidate in candidate_executions(variant):
            x = candidate.execution
            if model.consistent(x) and not model.race_free(x):
                return True
    return False
