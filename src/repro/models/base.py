"""Memory-model interface.

A model is a list of named axioms over the derived relations of an
execution (paper section 2).  Three axiom forms appear in the paper and
are supported here:

* ``acyclic(r)``   — ``r`` must have no cycles;
* ``irreflexive(r)`` — ``r`` must have no reflexive pairs;
* ``empty(r)``     — ``r`` must contain no pairs.

:meth:`MemoryModel.check` evaluates every axiom and returns a
:class:`Verdict` with failure witnesses; :meth:`MemoryModel.consistent`
short-circuits on the first failure (the hot path of the synthesizer).

Models take a ``tm`` flag: with ``tm=False`` the transactional structure of
the execution is ignored entirely (``stxn`` treated as empty), which gives
the *non-transactional baseline* used when synthesizing the Forbid suites
("forbidden by our transactional models but allowed under the
non-transactional baselines", section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import trace
from ..core.analysis import CandidateAnalysis, analyze
from ..core.execution import Execution
from ..core.relation import Relation

__all__ = [
    "Axiom",
    "AxiomResult",
    "Verdict",
    "MemoryModel",
    "DerivedRelations",
    "canonical_cycle",
    "witness_for",
]

#: The derived-relation dictionary each model computes per execution.
DerivedRelations = dict[str, Relation]


def canonical_cycle(cycle: list[int]) -> list[int]:
    """Rotate a cycle so its smallest event comes first.

    ``find_cycle`` is deterministic for a given relation, but the DFS
    entry point is an implementation detail; canonicalising keeps
    witnesses byte-stable across refactors of the search (golden and
    fuzz reports diff cleanly).
    """
    if not cycle:
        return cycle
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def witness_for(kind: str, rel: Relation):
    """A deterministic failure witness for ``kind`` over ``rel``.

    Returns ``None`` when the check holds; otherwise a canonical cycle
    (``acyclic``), the sorted reflexive events (``irreflexive``), or the
    sorted offending pairs (``empty``).
    """
    if kind == "acyclic":
        cycle = rel.find_cycle()
        return None if cycle is None else canonical_cycle(cycle)
    if kind == "irreflexive":
        witness = sorted(i for i in range(rel.n) if (i, i) in rel)
        return witness or None
    if kind == "empty":
        witness = [list(pair) for pair in sorted(rel.pairs())]
        return witness or None
    raise ValueError(f"unknown axiom kind {kind!r}")


@dataclass(frozen=True)
class Axiom:
    """A named constraint of one of the three standard forms."""

    name: str
    kind: str  # "acyclic" | "irreflexive" | "empty"
    relation: str  # key into the model's derived-relation dict

    def evaluate(self, relations: DerivedRelations) -> "AxiomResult":
        witness = witness_for(self.kind, relations[self.relation])
        return AxiomResult(self.name, witness is None, witness)

    def holds(self, relations: DerivedRelations) -> bool:
        rel = relations[self.relation]
        if self.kind == "acyclic":
            return rel.is_acyclic()
        if self.kind == "irreflexive":
            return rel.is_irreflexive()
        if self.kind == "empty":
            return rel.is_empty()
        raise ValueError(f"unknown axiom kind {self.kind!r}")


@dataclass(frozen=True)
class AxiomResult:
    """The outcome of evaluating one axiom: pass/fail plus a witness."""

    name: str
    holds: bool
    witness: object = None

    def __str__(self) -> str:
        status = "ok" if self.holds else f"VIOLATED (witness: {self.witness})"
        return f"{self.name}: {status}"


@dataclass(frozen=True)
class Verdict:
    """Full consistency report for one execution under one model."""

    model: str
    consistent: bool
    results: tuple[AxiomResult, ...] = field(default_factory=tuple)

    @property
    def failures(self) -> tuple[AxiomResult, ...]:
        return tuple(r for r in self.results if not r.holds)

    def __str__(self) -> str:
        head = f"{self.model}: {'consistent' if self.consistent else 'INCONSISTENT'}"
        lines = [head] + [f"  {r}" for r in self.results]
        return "\n".join(lines)


class MemoryModel:
    """Base class for every model in :mod:`repro.models`.

    Subclasses implement :meth:`relations` (the derived-relation
    dictionary) and :meth:`axioms` (the axiom list); everything else is
    inherited.
    """

    #: Short architecture tag ("sc", "x86", "power", "armv8", "cpp").
    arch: str = ""

    #: True iff the model's axioms imply per-location coherence
    #: (``acyclic(po_loc ∪ com)``).  The candidate enumerator tags each
    #: candidate with a coherence bit; consumers skip the full axiom
    #: sweep for incoherent candidates of models that declare this.
    #: Every architecture model in the paper enforces it; the default is
    #: conservative for ad-hoc subclasses.
    enforces_coherence: bool = False

    def __init__(self, tm: bool = True) -> None:
        self.tm = tm

    @property
    def name(self) -> str:
        suffix = "" if self.tm else " (no TM)"
        return f"{self.arch}{suffix}"

    # -- to be provided by subclasses ----------------------------------

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        """Compute the model's derived relations for ``x``.

        Implementations start with ``a = analyze(x)`` and read every
        base relation off the shared :class:`CandidateAnalysis`, so one
        candidate checked by many models derives ``po``/``fr``/``ppo``/…
        exactly once.
        """
        raise NotImplementedError

    def axioms(self) -> tuple[Axiom, ...]:
        """The model's axioms in evaluation order."""
        raise NotImplementedError

    # -- shared machinery ----------------------------------------------

    def _effective(self, x: Execution) -> Execution:
        return x if self.tm else x.without_transactions()

    def _analysis(self, x: "Execution | CandidateAnalysis") -> CandidateAnalysis:
        """The analysis this model evaluates against: the candidate's
        shared analysis, or its transaction-erased baseline view when
        ``tm=False`` (the section 5.3 non-transactional sweep)."""
        a = analyze(x)
        return a if self.tm else a.baseline

    def check(self, x: "Execution | CandidateAnalysis") -> Verdict:
        """Evaluate every axiom; return a full report with witnesses."""
        relations = self.relations(self._analysis(x))
        results = tuple(axiom.evaluate(relations) for axiom in self.axioms())
        return Verdict(self.name, all(r.holds for r in results), results)

    def batch_definition(self):
        """The :class:`~repro.ir.model.IRDefinition` the batched
        evaluation path may check instead of per-candidate
        :meth:`consistent` calls, or ``None`` when this model's
        consistency is not expressible as plain IR axioms (then every
        consumer falls back to the scalar path)."""
        return None

    def consistent_batch(self, executions) -> "list[bool] | None":
        """:meth:`consistent` over a stack of same-universe executions,
        evaluated through the compiled batch plans; ``None`` when the
        model has no batchable definition."""
        definition = self.batch_definition()
        if definition is None:
            return None
        from ..ir.plan import consistent_batch

        return consistent_batch(self, definition, executions)

    def consistent(self, x: "Execution | CandidateAnalysis") -> bool:
        """Fast yes/no consistency (short-circuits on first failure)."""
        if trace.ACTIVE is not None:
            with trace.stage("axioms"):
                relations = self.relations(self._analysis(x))
                return all(
                    axiom.holds(relations) for axiom in self.axioms()
                )
        relations = self.relations(self._analysis(x))
        return all(axiom.holds(relations) for axiom in self.axioms())

    def failed_axioms(self, x: "Execution | CandidateAnalysis") -> list[str]:
        """Names of the axioms the execution violates."""
        return [r.name for r in self.check(x).failures]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} tm={self.tm}>"


def chain(*relations: Relation) -> Relation:
    """Compose relations left to right (helper for model definitions)."""
    result = relations[0]
    for rel in relations[1:]:
        result = result @ rel
    return result
