"""Sequential consistency and transactional SC (paper Fig. 4, section 3.4).

SC is characterised by a single axiom [Shasha & Snir 1988]::

    acyclic(hb)  where  hb = po ∪ com              (Order)

TSC strengthens SC so that consecutive events of a transaction appear
consecutively in the overall order::

    acyclic(stronglift(hb, stxn))                   (TxnOrder)

TxnOrder subsumes StrongIsol (com ⊆ hb), as the paper notes.

Both models are declared as IR expressions over the shared hash-consed
DAG (:mod:`repro.ir`): ``sc_hb`` below is *the same interned node* that
``sc.cat``/``tsc.cat`` compile to, so a campaign mixing native and
``.cat`` checkers evaluates it once per candidate.
"""

from __future__ import annotations

from ..ir import prelude as P
from ..ir.model import IRAxiom, IRDefinition, IRModel
from ..ir.nodes import Node

__all__ = ["SC", "TSC", "sc_hb"]

#: ``po ∪ com`` — shared by SC and TSC (and their .cat twins) by interning.
sc_hb: Node = P.po | P.com


class SC(IRModel):
    """Plain sequential consistency (ignores transactions entirely)."""

    arch = "sc"
    enforces_coherence = True

    def __init__(self) -> None:
        super().__init__(tm=False)

    @classmethod
    def define(cls) -> IRDefinition:
        return IRDefinition(
            (IRAxiom("Order", "acyclic", "hb", sc_hb),)
        )


class TSC(IRModel):
    """Transactional sequential consistency (Fig. 4 with highlights)."""

    arch = "tsc"
    enforces_coherence = True

    def __init__(self, tm: bool = True) -> None:
        super().__init__(tm=tm)

    @classmethod
    def define(cls) -> IRDefinition:
        return IRDefinition(
            (
                IRAxiom("Order", "acyclic", "hb", sc_hb),
                IRAxiom("TxnOrder", "acyclic", "txn_hb", P.stronglift(sc_hb)),
            )
        )
