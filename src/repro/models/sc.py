"""Sequential consistency and transactional SC (paper Fig. 4, section 3.4).

SC is characterised by a single axiom [Shasha & Snir 1988]::

    acyclic(hb)  where  hb = po ∪ com              (Order)

TSC strengthens SC so that consecutive events of a transaction appear
consecutively in the overall order::

    acyclic(stronglift(hb, stxn))                   (TxnOrder)

TxnOrder subsumes StrongIsol (com ⊆ hb), as the paper notes.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.execution import Execution
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["SC", "TSC"]


def _sc_hb(a: CandidateAnalysis) -> Relation:
    """``po ∪ com`` — shared by SC and TSC via the analysis memo."""
    return a.memo("sc.hb", lambda: a.po | a.com, txn_free=True)


class SC(MemoryModel):
    """Plain sequential consistency (ignores transactions entirely)."""

    arch = "sc"
    enforces_coherence = True

    def __init__(self) -> None:
        super().__init__(tm=False)

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        return {"hb": _sc_hb(analyze(x))}

    def axioms(self) -> tuple[Axiom, ...]:
        return (Axiom("Order", "acyclic", "hb"),)


class TSC(MemoryModel):
    """Transactional sequential consistency (Fig. 4 with highlights)."""

    arch = "tsc"
    enforces_coherence = True

    def __init__(self, tm: bool = True) -> None:
        super().__init__(tm=tm)

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        hb = _sc_hb(a)
        return {"hb": hb, "txn_hb": a.stronglift(hb)}

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Order", "acyclic", "hb"),
            Axiom("TxnOrder", "acyclic", "txn_hb"),
        )
