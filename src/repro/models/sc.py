"""Sequential consistency and transactional SC (paper Fig. 4, section 3.4).

SC is characterised by a single axiom [Shasha & Snir 1988]::

    acyclic(hb)  where  hb = po ∪ com              (Order)

TSC strengthens SC so that consecutive events of a transaction appear
consecutively in the overall order::

    acyclic(stronglift(hb, stxn))                   (TxnOrder)

TxnOrder subsumes StrongIsol (com ⊆ hb), as the paper notes.
"""

from __future__ import annotations

from ..core.execution import Execution
from ..core.lifting import stronglift
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["SC", "TSC"]


class SC(MemoryModel):
    """Plain sequential consistency (ignores transactions entirely)."""

    arch = "sc"

    def __init__(self) -> None:
        super().__init__(tm=False)

    def relations(self, x: Execution) -> DerivedRelations:
        return {"hb": x.po | x.com}

    def axioms(self) -> tuple[Axiom, ...]:
        return (Axiom("Order", "acyclic", "hb"),)


class TSC(MemoryModel):
    """Transactional sequential consistency (Fig. 4 with highlights)."""

    arch = "tsc"

    def __init__(self, tm: bool = True) -> None:
        super().__init__(tm=tm)

    def relations(self, x: Execution) -> DerivedRelations:
        hb = x.po | x.com
        return {"hb": hb, "txn_hb": stronglift(hb, x.stxn)}

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Order", "acyclic", "hb"),
            Axiom("TxnOrder", "acyclic", "txn_hb"),
        )
