"""Axiomatic memory models: SC, TSC, x86, Power, ARMv8, RISC-V, C++
(plus the Dongol-et-al ablation and abort-race semantics)."""

from .aborts import abort_variants, program_racy, truncate_aborts
from .armv8 import ARMv8
from .base import Axiom, AxiomResult, MemoryModel, Verdict
from .cpp import Cpp
from .dongol import DongolPower
from .isolation import (
    strong_isolation_rel,
    strongly_isolated,
    weak_isolation_rel,
    weakly_isolated,
)
from .power import Power, power_ppo
from .registry import MODELS, get_model, model_names
from .riscv import RiscV, riscv_ppo
from .sc import SC, TSC
from .x86 import X86

__all__ = [
    "ARMv8",
    "RiscV",
    "abort_variants",
    "program_racy",
    "riscv_ppo",
    "truncate_aborts",
    "Axiom",
    "AxiomResult",
    "Cpp",
    "DongolPower",
    "MODELS",
    "MemoryModel",
    "Power",
    "SC",
    "TSC",
    "Verdict",
    "X86",
    "get_model",
    "model_names",
    "power_ppo",
    "strong_isolation_rel",
    "strongly_isolated",
    "weak_isolation_rel",
    "weakly_isolated",
]
