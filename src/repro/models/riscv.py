"""RISC-V RVWMO with a transactional-memory extension.

The paper names RISC-V as a target for its methodology: "other
architectures ... that could be targetted ... include RISC-V, which
plans to incorporate TM in the future" (section 9, citing the RISC-V
ISA manual [54]).  This module carries that suggestion out.

Baseline
========

RVWMO is the multicopy-atomic memory model of the RISC-V unprivileged
specification; we follow its axiomatic presentation (the ``riscv.cat``
herd model in the spec's appendix), restricted to this project's event
vocabulary.  The global axiom set is the standard MCA formulation:

* Coherence — ``acyclic(po_loc ∪ com)``;
* Atomicity — ``empty(rmw ∩ (fre ; coe))`` (LR/SC pairs);
* Main — ``acyclic(ppo ∪ rfe ∪ coe ∪ fre)``, with ``ppo`` the union of
  the spec's thirteen preserved-program-order rules (r1–r13 below).

Annotations map onto this project's labels: ``.aq`` on loads is
:data:`~repro.core.events.Label.ACQ`, ``.rl`` on stores is ``REL``
(both RCsc, as in the base ISA), store-conditionals carry ``EXCL``, and
the four FENCE flavours we model are ``fence rw,rw``, ``fence r,rw``,
``fence rw,w`` and ``fence.tso``.

TM extension
============

RISC-V has no ratified TM extension, so — exactly as the paper does for
ARMv8 (section 6.1) — we apply its recipe for a *reasonable* hardware
TM on an MCA architecture:

* StrongIsol — conflicts are detected against any other hart;
* ``tfence`` — implicit fences at successful-transaction boundaries,
  added to the Main order;
* TxnOrder — no Main-order cycles through transactions;
* TxnCancelsRMW — an LR/SC pair straddling a transaction boundary
  always fails.

The lock-elision study of section 8.3 extends to this model in
:mod:`repro.metatheory.lockelision`; like ARMv8, the RISC-V spinlock
(LR.aq/SC loop with an SW.rl release) is *unsound* under lock elision,
and for the same reason — nothing orders the store-conditional before
the critical-region body.

Declared as IR expressions shared (by interning) with ``riscvtm.cat``.
"""

from __future__ import annotations

from ..core.relation import Relation
from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.eval import evaluate
from ..ir.model import IRAxiom, IRDefinition, IRModel
from ..ir.nodes import Node

__all__ = ["RiscV", "riscv_ppo", "riscv_ppo_node"]


def _fence_order() -> Node:
    """The order induced by the four modelled FENCE flavours.

    ``fence pr,ps`` orders predecessor-set events before successor-set
    events; ``fence.tso`` orders R→RW and W→W.
    """
    r = N.lift(P.R)
    w = N.lift(P.W)
    full = P.fencerel("FENCE.RW.RW")
    r_rw = r @ P.fencerel("FENCE.R.RW")
    rw_w = P.fencerel("FENCE.RW.W") @ w
    tso = P.fencerel("FENCE.TSO")
    return full | r_rw | rw_w | (r @ tso) | (w @ tso @ w)


def _build_ppo() -> Node:
    """Preserved program order: the thirteen RVWMO rules.

    Rule numbering follows the RVWMO chapter of the spec:

    ====  ======================================================
    r1    ``[M] ; po_loc ; [W]`` — same-address, later store
    r2    same-address loads with no intervening same-address
          store, unless they read from the same store (``rsw``)
    r3    value returned locally from an AMO/SC write
    r4    FENCE instructions (:func:`_fence_order`)
    r5    acquire annotation orders everything po-later
    r6    release annotation orders everything po-earlier
    r7    RCsc-annotated pairs stay ordered
    r8    the two halves of a paired AMO / LR-SC
    r9    address dependencies
    r10   data dependencies (into stores)
    r11   control dependencies into stores
    r12   load that reads from a dependency-ordered local store
    r13   address dependency followed by any access, into a store
    ====  ======================================================
    """
    reads = N.lift(P.R)
    writes = N.lift(P.W)
    rr = N.cross(P.R, P.R)

    rsw = P.rf.inverse() @ P.rf
    po_loc_no_w = P.po_loc - (P.po_loc @ writes @ P.po_loc)

    aq = N.lift(N.sinter(N.bset("ACQ"), P.R))
    rl = N.lift(N.sinter(N.bset("REL"), P.W))
    rcsc = N.lift(N.sinter(N.sunion(N.bset("ACQ"), N.bset("REL")), P.M))
    atomic_writes = N.lift(
        N.sunion(N.range_(P.rmw), N.sinter(P.W, N.bset("X")))
    )

    r1 = P.po_loc @ writes
    r2 = (po_loc_no_w & rr) - rsw
    r3 = atomic_writes @ P.rfi
    r4 = _fence_order()
    r5 = aq @ P.po
    r6 = P.po @ rl
    r7 = rcsc @ P.po @ rcsc
    r8 = P.rmw
    r9 = P.addr
    r10 = P.data @ writes
    r11 = P.ctrl @ writes
    r12 = reads @ (P.addr | P.data) @ P.rfi
    r13 = P.addr @ P.po @ writes

    return N.union(
        r1, r2, r3, r4, r5, r6, r7, r8, r9, r10, r11, r12, r13
    )


#: The interned ppo node (shared with riscvtm.cat).
_PPO = _build_ppo()

#: Main order with the TM extension's tfence.
_MAIN = _PPO | P.rfe | P.coe | P.fre | P.tfence


def riscv_ppo_node() -> Node:
    """The IR node for RVWMO preserved program order."""
    return _PPO


def riscv_ppo(x) -> Relation:
    """Preserved program order of ``x``, via the shared IR engine."""
    return evaluate(_PPO, x)


class RiscV(IRModel):
    """RVWMO with the TM extension built by the paper's recipe."""

    arch = "riscv"
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return IRDefinition(
            (
                IRAxiom("Coherence", "acyclic", "coherence", P.coherence),
                IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
                IRAxiom("Main", "acyclic", "main", _MAIN),
                IRAxiom(
                    "StrongIsol", "acyclic", "strong_isol",
                    P.stronglift(P.com),
                ),
                IRAxiom(
                    "TxnOrder", "acyclic", "txn_order",
                    P.stronglift(_MAIN.plus()),
                ),
                IRAxiom(
                    "TxnCancelsRMW", "empty", "txn_cancels_rmw",
                    P.rmw & P.tfence,
                ),
            )
        )
