"""RISC-V RVWMO with a transactional-memory extension.

The paper names RISC-V as a target for its methodology: "other
architectures ... that could be targetted ... include RISC-V, which
plans to incorporate TM in the future" (section 9, citing the RISC-V
ISA manual [54]).  This module carries that suggestion out.

Baseline
========

RVWMO is the multicopy-atomic memory model of the RISC-V unprivileged
specification; we follow its axiomatic presentation (the ``riscv.cat``
herd model in the spec's appendix), restricted to this project's event
vocabulary.  The global axiom set is the standard MCA formulation:

* Coherence — ``acyclic(po_loc ∪ com)``;
* Atomicity — ``empty(rmw ∩ (fre ; coe))`` (LR/SC pairs);
* Main — ``acyclic(ppo ∪ rfe ∪ coe ∪ fre)``, with ``ppo`` the union of
  the spec's thirteen preserved-program-order rules (r1–r13 below).

Annotations map onto this project's labels: ``.aq`` on loads is
:data:`~repro.core.events.Label.ACQ`, ``.rl`` on stores is ``REL``
(both RCsc, as in the base ISA), store-conditionals carry ``EXCL``, and
the four FENCE flavours we model are ``fence rw,rw``, ``fence r,rw``,
``fence rw,w`` and ``fence.tso``.

TM extension
============

RISC-V has no ratified TM extension, so — exactly as the paper does for
ARMv8 (section 6.1) — we apply its recipe for a *reasonable* hardware
TM on an MCA architecture:

* StrongIsol — conflicts are detected against any other hart;
* ``tfence`` — implicit fences at successful-transaction boundaries,
  added to the Main order;
* TxnOrder — no Main-order cycles through transactions;
* TxnCancelsRMW — an LR/SC pair straddling a transaction boundary
  always fails.

The lock-elision study of section 8.3 extends to this model in
:mod:`repro.metatheory.lockelision`; like ARMv8, the RISC-V spinlock
(LR.aq/SC loop with an SW.rl release) is *unsound* under lock elision,
and for the same reason — nothing orders the store-conditional before
the critical-region body.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["RiscV", "riscv_ppo"]


def _fence_order(a: CandidateAnalysis) -> Relation:
    """The order induced by the four modelled FENCE flavours.

    ``fence pr,ps`` orders predecessor-set events before successor-set
    events; ``fence.tso`` orders R→RW and W→W.
    """
    r = a.lift(a.reads)
    w = a.lift(a.writes)
    full = a.fence_rel(Label.FENCE_RW_RW)
    r_rw = r @ a.fence_rel(Label.FENCE_R_RW)
    rw_w = a.fence_rel(Label.FENCE_RW_W) @ w
    tso = a.fence_rel(Label.FENCE_TSO)
    return full | r_rw | rw_w | (r @ tso) | (w @ tso @ w)


def riscv_ppo(x: "Execution | CandidateAnalysis") -> Relation:
    """Preserved program order: the thirteen RVWMO rules.

    Rule numbering follows the RVWMO chapter of the spec:

    ====  ======================================================
    r1    ``[M] ; po_loc ; [W]`` — same-address, later store
    r2    same-address loads with no intervening same-address
          store, unless they read from the same store (``rsw``)
    r3    value returned locally from an AMO/SC write
    r4    FENCE instructions (:func:`_fence_order`)
    r5    acquire annotation orders everything po-later
    r6    release annotation orders everything po-earlier
    r7    RCsc-annotated pairs stay ordered
    r8    the two halves of a paired AMO / LR-SC
    r9    address dependencies
    r10   data dependencies (into stores)
    r11   control dependencies into stores
    r12   load that reads from a dependency-ordered local store
    r13   address dependency followed by any access, into a store
    ====  ======================================================

    The rule union is transaction-independent and memoized on the
    shared candidate analysis (one computation per candidate across
    the ``tm`` sweeps).
    """
    a = analyze(x)
    return a.memo("riscv.ppo", lambda: _riscv_ppo(a), txn_free=True)


def _riscv_ppo(a: CandidateAnalysis) -> Relation:
    reads = a.lift(a.reads)
    writes = a.lift(a.writes)
    rr = a.cross(a.reads, a.reads)

    rsw = a.rf_rel.inverse() @ a.rf_rel
    po_loc_no_w = a.po_loc - (a.po_loc @ writes @ a.po_loc)

    aq = a.lift(a.labelled(Label.ACQ) & a.reads)
    rl = a.lift(a.labelled(Label.REL) & a.writes)
    rcsc = a.lift(
        (a.labelled(Label.ACQ) | a.labelled(Label.REL)) & a.accesses
    )
    atomic_writes = a.lift(
        a.rmw_rel.codomain() | (a.labelled(Label.EXCL) & a.writes)
    )

    r1 = a.po_loc @ writes
    r2 = (po_loc_no_w & rr) - rsw
    r3 = atomic_writes @ a.rfi
    r4 = _fence_order(a)
    r5 = aq @ a.po
    r6 = a.po @ rl
    r7 = rcsc @ a.po @ rcsc
    r8 = a.rmw_rel
    r9 = a.addr_rel
    r10 = a.data_rel @ writes
    r11 = a.ctrl_rel @ writes
    r12 = reads @ (a.addr_rel | a.data_rel) @ a.rfi
    r13 = a.addr_rel @ a.po @ writes

    return r1 | r2 | r3 | r4 | r5 | r6 | r7 | r8 | r9 | r10 | r11 | r12 | r13


class RiscV(MemoryModel):
    """RVWMO with the TM extension built by the paper's recipe."""

    arch = "riscv"
    enforces_coherence = True

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        main = riscv_ppo(a) | a.rfe | a.coe | a.fre | a.tfence
        return {
            "coherence": a.coherence,
            "rmw_isol": a.rmw_isol,
            "main": main,
            "strong_isol": a.stronglift(a.com),
            "txn_order": a.stronglift(main.plus()),
            "txn_cancels_rmw": a.rmw_rel & a.tfence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Main", "acyclic", "main"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
            Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"),
        )
