"""RISC-V RVWMO with a transactional-memory extension.

The paper names RISC-V as a target for its methodology: "other
architectures ... that could be targetted ... include RISC-V, which
plans to incorporate TM in the future" (section 9, citing the RISC-V
ISA manual [54]).  This module carries that suggestion out.

Baseline
========

RVWMO is the multicopy-atomic memory model of the RISC-V unprivileged
specification; we follow its axiomatic presentation (the ``riscv.cat``
herd model in the spec's appendix), restricted to this project's event
vocabulary.  The global axiom set is the standard MCA formulation:

* Coherence — ``acyclic(po_loc ∪ com)``;
* Atomicity — ``empty(rmw ∩ (fre ; coe))`` (LR/SC pairs);
* Main — ``acyclic(ppo ∪ rfe ∪ coe ∪ fre)``, with ``ppo`` the union of
  the spec's thirteen preserved-program-order rules (r1–r13 below).

Annotations map onto this project's labels: ``.aq`` on loads is
:data:`~repro.core.events.Label.ACQ`, ``.rl`` on stores is ``REL``
(both RCsc, as in the base ISA), store-conditionals carry ``EXCL``, and
the four FENCE flavours we model are ``fence rw,rw``, ``fence r,rw``,
``fence rw,w`` and ``fence.tso``.

TM extension
============

RISC-V has no ratified TM extension, so — exactly as the paper does for
ARMv8 (section 6.1) — we apply its recipe for a *reasonable* hardware
TM on an MCA architecture:

* StrongIsol — conflicts are detected against any other hart;
* ``tfence`` — implicit fences at successful-transaction boundaries,
  added to the Main order;
* TxnOrder — no Main-order cycles through transactions;
* TxnCancelsRMW — an LR/SC pair straddling a transaction boundary
  always fails.

The lock-elision study of section 8.3 extends to this model in
:mod:`repro.metatheory.lockelision`; like ARMv8, the RISC-V spinlock
(LR.aq/SC loop with an SW.rl release) is *unsound* under lock elision,
and for the same reason — nothing orders the store-conditional before
the critical-region body.
"""

from __future__ import annotations

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["RiscV", "riscv_ppo"]


def _fence_order(x: Execution) -> Relation:
    """The order induced by the four modelled FENCE flavours.

    ``fence pr,ps`` orders predecessor-set events before successor-set
    events; ``fence.tso`` orders R→RW and W→W.
    """
    n = x.n
    r = Relation.lift(n, x.reads)
    w = Relation.lift(n, x.writes)
    full = x.fence_rel(Label.FENCE_RW_RW)
    r_rw = r @ x.fence_rel(Label.FENCE_R_RW)
    rw_w = x.fence_rel(Label.FENCE_RW_W) @ w
    tso = x.fence_rel(Label.FENCE_TSO)
    return full | r_rw | rw_w | (r @ tso) | (w @ tso @ w)


def riscv_ppo(x: Execution) -> Relation:
    """Preserved program order: the thirteen RVWMO rules.

    Rule numbering follows the RVWMO chapter of the spec:

    ====  ======================================================
    r1    ``[M] ; po_loc ; [W]`` — same-address, later store
    r2    same-address loads with no intervening same-address
          store, unless they read from the same store (``rsw``)
    r3    value returned locally from an AMO/SC write
    r4    FENCE instructions (:func:`_fence_order`)
    r5    acquire annotation orders everything po-later
    r6    release annotation orders everything po-earlier
    r7    RCsc-annotated pairs stay ordered
    r8    the two halves of a paired AMO / LR-SC
    r9    address dependencies
    r10   data dependencies (into stores)
    r11   control dependencies into stores
    r12   load that reads from a dependency-ordered local store
    r13   address dependency followed by any access, into a store
    ====  ======================================================
    """
    n = x.n
    reads = Relation.lift(n, x.reads)
    writes = Relation.lift(n, x.writes)
    rr = Relation.cross(n, x.reads, x.reads)

    rsw = x.rf_rel.inverse() @ x.rf_rel
    po_loc_no_w = x.po_loc - (x.po_loc @ writes @ x.po_loc)

    aq = Relation.lift(n, (e for e in x.reads if x.events[e].has(Label.ACQ)))
    rl = Relation.lift(n, (e for e in x.writes if x.events[e].has(Label.REL)))
    rcsc_events = frozenset(
        e
        for e in x.accesses
        if x.events[e].has(Label.ACQ) or x.events[e].has(Label.REL)
    )
    rcsc = Relation.lift(n, rcsc_events)
    atomic_writes = Relation.lift(
        n,
        x.rmw_rel.codomain()
        | {w for w in x.writes if x.events[w].has(Label.EXCL)},
    )

    r1 = x.po_loc @ writes
    r2 = (po_loc_no_w & rr) - rsw
    r3 = atomic_writes @ x.rfi
    r4 = _fence_order(x)
    r5 = aq @ x.po
    r6 = x.po @ rl
    r7 = rcsc @ x.po @ rcsc
    r8 = x.rmw_rel
    r9 = x.addr_rel
    r10 = x.data_rel @ writes
    r11 = x.ctrl_rel @ writes
    r12 = reads @ (x.addr_rel | x.data_rel) @ x.rfi
    r13 = x.addr_rel @ x.po @ writes

    return r1 | r2 | r3 | r4 | r5 | r6 | r7 | r8 | r9 | r10 | r11 | r12 | r13


class RiscV(MemoryModel):
    """RVWMO with the TM extension built by the paper's recipe."""

    arch = "riscv"

    def relations(self, x: Execution) -> DerivedRelations:
        main = riscv_ppo(x) | x.rfe | x.coe | x.fre | x.tfence
        return {
            "coherence": x.po_loc | x.com,
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "main": main,
            "strong_isol": stronglift(x.com, x.stxn),
            "txn_order": stronglift(main.plus(), x.stxn),
            "txn_cancels_rmw": x.rmw_rel & x.tfence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Main", "acyclic", "main"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
            Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"),
        )
