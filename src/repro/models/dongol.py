"""The atomicity-only Power TM model of Dongol et al. [23] (paper §9).

Dongol et al. lift relations from events to transactions like the paper,
but "capture only the atomicity of transactions, not the ordering".  We
model this as the Power baseline plus StrongIsol, with none of the
ordering extensions (no ``tfence`` in ``fence``, no ``thb`` lifting, no
``tprop1``/``tprop2``, no TxnOrder).

The paper demonstrates the gap with a two-thread execution — a
transaction writing ``x`` then ``y``, observed inconsistently by a
non-transactional reader — that our Power model forbids (Observation,
via ``tprop2``) but this model allows.  :mod:`repro.catalog.figures`
contains that execution (``dongol_gap``) and
``benchmarks/bench_ablation.py`` measures the divergence between the
two models over the whole enumerated execution space.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from .base import Axiom, DerivedRelations, MemoryModel
from .power import power_ppo

__all__ = ["DongolPower"]


class DongolPower(MemoryModel):
    """Power with transactions that are atomic but impose no ordering."""

    arch = "power-dongol"
    enforces_coherence = True

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        writes = a.lift(a.writes)

        ppo = power_ppo(a)
        sync = a.fence_rel(Label.SYNC)
        lwsync = a.fence_rel(Label.LWSYNC)
        wr = a.cross(a.writes, a.reads)

        fence = sync | (lwsync - wr)
        ihb = ppo | fence
        hb = a.rfe.opt() @ ihb @ a.rfe.opt()
        hb_star = hb.star()

        efence = a.rfe.opt() @ fence @ a.rfe.opt()
        prop1 = writes @ efence @ hb_star @ writes
        prop2 = a.come.star() @ efence.star() @ hb_star @ sync @ hb_star
        prop = prop1 | prop2

        return {
            "coherence": a.coherence,
            "rmw_isol": a.rmw_isol,
            "hb": hb,
            "propagation": a.co_rel | prop,
            "observation": a.fre @ prop @ hb_star,
            "strong_isol": a.stronglift(a.com),
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
            Axiom("Propagation", "acyclic", "propagation"),
            Axiom("Observation", "irreflexive", "observation"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
        )
