"""The atomicity-only Power TM model of Dongol et al. [23] (paper §9).

Dongol et al. lift relations from events to transactions like the paper,
but "capture only the atomicity of transactions, not the ordering".  We
model this as the Power baseline plus StrongIsol, with none of the
ordering extensions (no ``tfence`` in ``fence``, no ``thb`` lifting, no
``tprop1``/``tprop2``, no TxnOrder).

The paper demonstrates the gap with a two-thread execution — a
transaction writing ``x`` then ``y``, observed inconsistently by a
non-transactional reader — that our Power model forbids (Observation,
via ``tprop2``) but this model allows.  :mod:`repro.catalog.figures`
contains that execution (``dongol_gap``) and
``benchmarks/bench_ablation.py`` measures the divergence between the
two models over the whole enumerated execution space.
"""

from __future__ import annotations

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel
from .power import power_ppo

__all__ = ["DongolPower"]


class DongolPower(MemoryModel):
    """Power with transactions that are atomic but impose no ordering."""

    arch = "power-dongol"

    def relations(self, x: Execution) -> DerivedRelations:
        n = x.n
        writes = Relation.lift(n, x.writes)

        ppo = power_ppo(x)
        sync = x.fence_rel(Label.SYNC)
        lwsync = x.fence_rel(Label.LWSYNC)
        wr = Relation.cross(n, x.writes, x.reads)

        fence = sync | (lwsync - wr)
        ihb = ppo | fence
        hb = x.rfe.opt() @ ihb @ x.rfe.opt()
        hb_star = hb.star()

        efence = x.rfe.opt() @ fence @ x.rfe.opt()
        prop1 = writes @ efence @ hb_star @ writes
        prop2 = x.come.star() @ efence.star() @ hb_star @ sync @ hb_star
        prop = prop1 | prop2

        return {
            "coherence": x.po_loc | x.com,
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "hb": hb,
            "propagation": x.co_rel | prop,
            "observation": x.fre @ prop @ hb_star,
            "strong_isol": stronglift(x.com, x.stxn),
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("Order", "acyclic", "hb"),
            Axiom("Propagation", "acyclic", "propagation"),
            Axiom("Observation", "irreflexive", "observation"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
        )
