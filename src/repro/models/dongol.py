"""The atomicity-only Power TM model of Dongol et al. [23] (paper §9).

Dongol et al. lift relations from events to transactions like the paper,
but "capture only the atomicity of transactions, not the ordering".  We
model this as the Power baseline plus StrongIsol, with none of the
ordering extensions (no ``tfence`` in ``fence``, no ``thb`` lifting, no
``tprop1``/``tprop2``, no TxnOrder).

The paper demonstrates the gap with a two-thread execution — a
transaction writing ``x`` then ``y``, observed inconsistently by a
non-transactional reader — that our Power model forbids (Observation,
via ``tprop2``) but this model allows.  :mod:`repro.catalog.figures`
contains that execution (``dongol_gap``) and
``benchmarks/bench_ablation.py`` measures the divergence between the
two models over the whole enumerated execution space.

The model shares the ``ppo`` fixpoint node (and every other common
subexpression) with :class:`repro.models.power.Power` by interning.
"""

from __future__ import annotations

from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.model import IRAxiom, IRDefinition, IRModel
from .power import power_fence_base, power_ppo_node

__all__ = ["DongolPower"]


def _define() -> IRDefinition:
    writes = N.lift(P.W)
    sync = P.fencerel("SYNC")

    fence = power_fence_base(with_tfence=False)
    ihb = power_ppo_node() | fence
    hb = P.rfe.opt() @ ihb @ P.rfe.opt()
    hb_star = hb.star()

    efence = P.rfe.opt() @ fence @ P.rfe.opt()
    prop1 = writes @ efence @ hb_star @ writes
    prop2 = P.come.star() @ efence.star() @ hb_star @ sync @ hb_star
    prop = prop1 | prop2

    return IRDefinition(
        (
            IRAxiom("Coherence", "acyclic", "coherence", P.coherence),
            IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
            IRAxiom("Order", "acyclic", "hb", hb),
            IRAxiom("Propagation", "acyclic", "propagation", P.co | prop),
            IRAxiom(
                "Observation", "irreflexive", "observation",
                P.fre @ prop @ hb_star,
            ),
            IRAxiom(
                "StrongIsol", "acyclic", "strong_isol", P.stronglift(P.com)
            ),
        )
    )


class DongolPower(IRModel):
    """Power with transactions that are atomic but impose no ordering."""

    arch = "power-dongol"
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return _define()
