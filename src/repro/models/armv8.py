"""The ARMv8 memory model with the proposed TM extension (paper Fig. 8,
section 6).

The baseline follows the official multicopy-atomic axiomatic model
(Deacon's aarch64.cat [7, 21]): ordered-before (``ob``) collects external
communication, dependency order (``dob``), atomic-RMW order (``aob``), and
barrier order (``bob``), and must be acyclic.

The TM extension is *unofficial* — it models the proposal under
consideration within ARM Research that Example 1.1 shows to be
incompatible with lock elision:

* StrongIsol — the natural choice for hardware TM;
* ``tfence`` — implicit fences at transaction boundaries, added to ``ob``;
* TxnOrder — no ``ob`` cycles through transactions;
* TxnCancelsRMW — exclusives straddling a boundary always fail.
"""

from __future__ import annotations

from ..core.analysis import CandidateAnalysis, analyze
from ..core.events import Label
from ..core.execution import Execution
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["ARMv8"]


class ARMv8(MemoryModel):
    """ARMv8 (multicopy-atomic) with the proposed TM extension."""

    arch = "armv8"
    enforces_coherence = True

    def _dob(self, a: CandidateAnalysis) -> Relation:
        """Dependency-ordered-before."""
        writes = a.lift(a.writes)
        isb_lift = a.lift(a.labelled(Label.ISB) & a.fences)
        dep_to_isb = (a.ctrl_rel | (a.addr_rel @ a.po)) @ isb_lift @ a.po
        return (
            a.addr_rel
            | a.data_rel
            | (a.ctrl_rel @ writes)
            | dep_to_isb
            | (a.addr_rel @ a.po @ writes)
            | ((a.addr_rel | a.data_rel) @ a.rfi)
        )

    def _aob(self, a: CandidateAnalysis) -> Relation:
        """Atomic-ordered-before: RMWs, and acquire loads that read from
        the write half of a local RMW."""
        acq_reads = a.lift(a.labelled(Label.ACQ) & a.reads)
        rmw_writes = a.lift(a.rmw_rel.codomain())
        return a.rmw_rel | (rmw_writes @ a.rfi @ acq_reads)

    def _bob(self, a: CandidateAnalysis) -> Relation:
        """Barrier-ordered-before: DMB variants plus one-way
        release/acquire fencing."""
        reads = a.lift(a.reads)
        writes = a.lift(a.writes)
        acq = a.lift(a.labelled(Label.ACQ) & a.reads)
        rel = a.lift(a.labelled(Label.REL) & a.writes)
        dmb = a.fence_rel(Label.DMB)
        dmb_ld = reads @ a.fence_rel(Label.DMB_LD)
        dmb_st = writes @ a.fence_rel(Label.DMB_ST) @ writes
        return (
            dmb
            | dmb_ld
            | dmb_st
            | (acq @ a.po)
            | (a.po @ rel)
            | (rel @ a.po @ acq)
            | (a.po @ rel @ a.coi)
        )

    def _ob_skeleton(self, a: CandidateAnalysis) -> Relation:
        """The transaction-independent part of ordered-before."""
        return a.memo(
            "armv8.ob_base",
            lambda: a.come | self._dob(a) | self._aob(a) | self._bob(a),
            txn_free=True,
        )

    def relations(self, x: "Execution | CandidateAnalysis") -> DerivedRelations:
        a = analyze(x)
        ob_base = self._ob_skeleton(a) | a.tfence
        return {
            "coherence": a.coherence,
            "ob": ob_base,
            "rmw_isol": a.rmw_isol,
            "strong_isol": a.stronglift(a.com),
            "txn_order": a.stronglift(ob_base.plus()),
            "txn_cancels_rmw": a.rmw_rel & a.tfence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("Order", "acyclic", "ob"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
            Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"),
        )
