"""The ARMv8 memory model with the proposed TM extension (paper Fig. 8,
section 6).

The baseline follows the official multicopy-atomic axiomatic model
(Deacon's aarch64.cat [7, 21]): ordered-before (``ob``) collects external
communication, dependency order (``dob``), atomic-RMW order (``aob``), and
barrier order (``bob``), and must be acyclic.

The TM extension is *unofficial* — it models the proposal under
consideration within ARM Research that Example 1.1 shows to be
incompatible with lock elision:

* StrongIsol — the natural choice for hardware TM;
* ``tfence`` — implicit fences at transaction boundaries, added to ``ob``;
* TxnOrder — no ``ob`` cycles through transactions;
* TxnCancelsRMW — exclusives straddling a boundary always fail.
"""

from __future__ import annotations

from ..core.events import Label
from ..core.execution import Execution
from ..core.lifting import stronglift
from ..core.relation import Relation
from .base import Axiom, DerivedRelations, MemoryModel

__all__ = ["ARMv8"]


class ARMv8(MemoryModel):
    """ARMv8 (multicopy-atomic) with the proposed TM extension."""

    arch = "armv8"

    def _dob(self, x: Execution) -> Relation:
        """Dependency-ordered-before."""
        n = x.n
        writes = Relation.lift(n, x.writes)
        isb_events = [i for i in x.fences if x.events[i].has(Label.ISB)]
        isb_lift = Relation.lift(n, isb_events)
        dep_to_isb = (x.ctrl_rel | (x.addr_rel @ x.po)) @ isb_lift @ x.po
        return (
            x.addr_rel
            | x.data_rel
            | (x.ctrl_rel @ writes)
            | dep_to_isb
            | (x.addr_rel @ x.po @ writes)
            | ((x.addr_rel | x.data_rel) @ x.rfi)
        )

    def _aob(self, x: Execution) -> Relation:
        """Atomic-ordered-before: RMWs, and acquire loads that read from
        the write half of a local RMW."""
        n = x.n
        acq_reads = Relation.lift(
            n, (r for r in x.reads if x.events[r].has(Label.ACQ))
        )
        rmw_writes = Relation.lift(n, x.rmw_rel.codomain())
        return x.rmw_rel | (rmw_writes @ x.rfi @ acq_reads)

    def _bob(self, x: Execution) -> Relation:
        """Barrier-ordered-before: DMB variants plus one-way
        release/acquire fencing."""
        n = x.n
        reads = Relation.lift(n, x.reads)
        writes = Relation.lift(n, x.writes)
        acq = Relation.lift(
            n, (r for r in x.reads if x.events[r].has(Label.ACQ))
        )
        rel = Relation.lift(
            n, (w for w in x.writes if x.events[w].has(Label.REL))
        )
        dmb = x.fence_rel(Label.DMB)
        dmb_ld = reads @ x.fence_rel(Label.DMB_LD)
        dmb_st = writes @ x.fence_rel(Label.DMB_ST) @ writes
        return (
            dmb
            | dmb_ld
            | dmb_st
            | (acq @ x.po)
            | (x.po @ rel)
            | (rel @ x.po @ acq)
            | (x.po @ rel @ x.coi)
        )

    def relations(self, x: Execution) -> DerivedRelations:
        ob_base = (
            x.come | self._dob(x) | self._aob(x) | self._bob(x) | x.tfence
        )
        return {
            "coherence": x.po_loc | x.com,
            "ob": ob_base,
            "rmw_isol": x.rmw_rel & (x.fre @ x.coe),
            "strong_isol": stronglift(x.com, x.stxn),
            "txn_order": stronglift(ob_base.plus(), x.stxn),
            "txn_cancels_rmw": x.rmw_rel & x.tfence,
        }

    def axioms(self) -> tuple[Axiom, ...]:
        return (
            Axiom("Coherence", "acyclic", "coherence"),
            Axiom("Order", "acyclic", "ob"),
            Axiom("RMWIsol", "empty", "rmw_isol"),
            Axiom("StrongIsol", "acyclic", "strong_isol"),
            Axiom("TxnOrder", "acyclic", "txn_order"),
            Axiom("TxnCancelsRMW", "empty", "txn_cancels_rmw"),
        )
