"""The ARMv8 memory model with the proposed TM extension (paper Fig. 8,
section 6).

The baseline follows the official multicopy-atomic axiomatic model
(Deacon's aarch64.cat [7, 21]): ordered-before (``ob``) collects external
communication, dependency order (``dob``), atomic-RMW order (``aob``), and
barrier order (``bob``), and must be acyclic.

The TM extension is *unofficial* — it models the proposal under
consideration within ARM Research that Example 1.1 shows to be
incompatible with lock elision:

* StrongIsol — the natural choice for hardware TM;
* ``tfence`` — implicit fences at transaction boundaries, added to ``ob``;
* TxnOrder — no ``ob`` cycles through transactions;
* TxnCancelsRMW — exclusives straddling a boundary always fail.

Declared as IR expressions; ``ob`` and its parts are the same interned
nodes ``armv8tm.cat`` compiles to.
"""

from __future__ import annotations

from ..ir import nodes as N
from ..ir import prelude as P
from ..ir.model import IRAxiom, IRDefinition, IRModel
from ..ir.nodes import Node

__all__ = ["ARMv8"]


def _dob() -> Node:
    """Dependency-ordered-before."""
    writes = N.lift(P.W)
    isb = N.lift(N.sinter(N.bset("ISB"), P.F))
    dep_to_isb = (P.ctrl | (P.addr @ P.po)) @ isb @ P.po
    return (
        P.addr
        | P.data
        | (P.ctrl @ writes)
        | dep_to_isb
        | (P.addr @ P.po @ writes)
        | ((P.addr | P.data) @ P.rfi)
    )


def _aob() -> Node:
    """Atomic-ordered-before: RMWs, and acquire loads that read from
    the write half of a local RMW."""
    acq_reads = N.lift(N.sinter(N.bset("ACQ"), P.R))
    rmw_writes = N.lift(N.range_(P.rmw))
    return P.rmw | (rmw_writes @ P.rfi @ acq_reads)


def _bob() -> Node:
    """Barrier-ordered-before: DMB variants plus one-way release/acquire
    fencing."""
    reads = N.lift(P.R)
    writes = N.lift(P.W)
    acq = N.lift(N.sinter(N.bset("ACQ"), P.R))
    rel = N.lift(N.sinter(N.bset("REL"), P.W))
    dmb = P.fencerel("DMB")
    dmb_ld = reads @ P.fencerel("DMB.LD")
    dmb_st = writes @ P.fencerel("DMB.ST") @ writes
    return (
        dmb
        | dmb_ld
        | dmb_st
        | (acq @ P.po)
        | (P.po @ rel)
        | (rel @ P.po @ acq)
        | (P.po @ rel @ P.coi)
    )


#: Ordered-before, including the TM extension's tfence.
_OB = P.come | _dob() | _aob() | _bob() | P.tfence


class ARMv8(IRModel):
    """ARMv8 (multicopy-atomic) with the proposed TM extension."""

    arch = "armv8"
    enforces_coherence = True

    @classmethod
    def define(cls) -> IRDefinition:
        return IRDefinition(
            (
                IRAxiom("Coherence", "acyclic", "coherence", P.coherence),
                IRAxiom("Order", "acyclic", "ob", _OB),
                IRAxiom("RMWIsol", "empty", "rmw_isol", P.rmw_isol),
                IRAxiom(
                    "StrongIsol", "acyclic", "strong_isol",
                    P.stronglift(P.com),
                ),
                IRAxiom(
                    "TxnOrder", "acyclic", "txn_order",
                    P.stronglift(_OB.plus()),
                ),
                IRAxiom(
                    "TxnCancelsRMW", "empty", "txn_cancels_rmw",
                    P.rmw & P.tfence,
                ),
            )
        )
