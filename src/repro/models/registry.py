"""Model registry: look models up by name (used by the CLI and tests)."""

from __future__ import annotations

from .armv8 import ARMv8
from .base import MemoryModel
from .cpp import Cpp
from .dongol import DongolPower
from .power import Power
from .riscv import RiscV
from .sc import SC, TSC
from .x86 import X86

__all__ = ["MODELS", "get_model", "model_names"]

MODELS: dict[str, type] = {
    "sc": SC,
    "tsc": TSC,
    "x86": X86,
    "power": Power,
    "armv8": ARMv8,
    "cpp": Cpp,
    "power-dongol": DongolPower,
    "riscv": RiscV,
}


def model_names() -> list[str]:
    """All registered model names."""
    return sorted(MODELS)


def get_model(name: str, tm: bool = True) -> MemoryModel:
    """Instantiate the model registered under ``name``.

    ``tm=False`` gives the non-transactional baseline (transactions in
    the execution are ignored).  SC ignores the flag (it has no TM).
    """
    try:
        cls = MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; known: {', '.join(model_names())}"
        ) from None
    if cls is SC:
        return cls()
    return cls(tm=tm)
